// Property tests for the fast tree-ensemble engine: FeatureBins binning
// invariants, histogram-mode training accuracy vs the exact reference, and
// bit-identity of CompiledEnsemble batch inference against the tree walk.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "ccpred/core/compiled_ensemble.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/grid_search.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/core/serialize.hpp"
#include "test_util.hpp"

namespace ccpred {
namespace {

using ml::CompiledEnsemble;
using ml::DecisionTreeRegressor;
using ml::FeatureBins;
using ml::GradientBoostingRegressor;
using ml::RandomForestRegressor;
using ml::SplitMode;
using ml::TreeOptions;

// Menu-structured matrix like the paper's features: every column draws from
// a small discrete set of values.
linalg::Matrix make_menu_matrix(std::size_t n, std::size_t d,
                                std::size_t menu_size, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      x(i, c) = static_cast<double>(rng.uniform_int(
                    0, static_cast<std::int64_t>(menu_size) - 1)) *
                    1.5 -
                3.0;
    }
  }
  return x;
}

// ---------- FeatureBins ----------

class FeatureBinsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeatureBinsProperty, CodeEdgeEquivalenceHolds) {
  const auto s = test::make_nonlinear(160, 0.1, GetParam());
  const int max_bins = 32;
  const auto bins = FeatureBins::build(s.x, max_bins);
  ASSERT_EQ(bins.rows(), s.x.rows());
  ASSERT_EQ(bins.cols(), s.x.cols());
  for (std::size_t f = 0; f < bins.cols(); ++f) {
    ASSERT_GE(bins.bin_count(f), 1);
    ASSERT_LE(bins.bin_count(f), max_bins);
    for (std::size_t r = 0; r < bins.rows(); ++r) {
      const int code = bins.code(r, f);
      ASSERT_LT(code, bins.bin_count(f));
      // The defining invariant: code(x) <= b  ⇔  x <= upper_edge(f, b).
      for (int b = 0; b + 1 < bins.bin_count(f); ++b) {
        EXPECT_EQ(code <= b, s.x(r, f) <= bins.upper_edge(f, b))
            << "row " << r << " feature " << f << " bin " << b;
      }
    }
  }
}

TEST_P(FeatureBinsProperty, MenuFeaturesGetOneBinPerDistinctValue) {
  const auto x = make_menu_matrix(300, 4, 7, GetParam());
  const auto bins = FeatureBins::build(x, 255);
  for (std::size_t f = 0; f < bins.cols(); ++f) {
    std::set<double> distinct;
    for (std::size_t r = 0; r < x.rows(); ++r) distinct.insert(x(r, f));
    EXPECT_EQ(bins.bin_count(f), static_cast<int>(distinct.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureBinsProperty,
                         ::testing::Values(11u, 22u, 33u));

TEST(FeatureBinsTest, ConstantColumnGetsSingleBin) {
  linalg::Matrix x(50, 2);
  Rng rng(5);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = 4.25;
    x(i, 1) = rng.uniform(0.0, 1.0);
  }
  const auto bins = FeatureBins::build(x, 16);
  EXPECT_EQ(bins.bin_count(0), 1);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(bins.code(i, 0), 0);
}

TEST(FeatureBinsTest, ManyDistinctValuesRespectMaxBins) {
  const auto s = test::make_nonlinear(2000, 0.0, 17);
  const auto bins = FeatureBins::build(s.x, 24);
  for (std::size_t f = 0; f < bins.cols(); ++f) {
    EXPECT_LE(bins.bin_count(f), 24);
    EXPECT_GE(bins.bin_count(f), 20);  // quantile bins should be used
  }
}

// ---------- histogram training accuracy ----------

TreeOptions hist_options(int max_bins = 64) {
  TreeOptions opt;
  opt.split_mode = SplitMode::kHistogram;
  opt.max_bins = max_bins;
  return opt;
}

class HistogramAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramAccuracy, TreeMatchesExactOnMenuFeatures) {
  // With <= max_bins distinct values per feature the candidate-threshold
  // set is identical to exact mode's, so the fitted trees agree.
  const auto x = make_menu_matrix(400, 3, 9, GetParam());
  std::vector<double> y(x.rows());
  Rng rng(GetParam() ^ 0x9e);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[i] = 2.0 * x(i, 0) - x(i, 1) * x(i, 2) + rng.normal(0.0, 0.05);
  }
  TreeOptions exact_opt;
  exact_opt.max_depth = 6;
  DecisionTreeRegressor exact(exact_opt);
  exact.fit(x, y);
  TreeOptions h = hist_options(255);
  h.max_depth = 6;
  DecisionTreeRegressor hist(h);
  hist.fit(x, y);
  const auto pe = exact.predict(x);
  const auto ph = hist.predict(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(pe[i], ph[i], 1e-9) << "row " << i;
  }
}

TEST_P(HistogramAccuracy, GbHistogramWithinToleranceOfExact) {
  const auto train = test::make_nonlinear(1200, 0.1, GetParam());
  const auto test_set = test::make_nonlinear(400, 0.1, GetParam() ^ 0xf00d);
  TreeOptions exact_opt;
  exact_opt.max_depth = 4;
  GradientBoostingRegressor gb_exact(120, 0.1, exact_opt);
  gb_exact.fit(train.x, train.y);
  TreeOptions h = hist_options(64);
  h.max_depth = 4;
  GradientBoostingRegressor gb_hist(120, 0.1, h);
  gb_hist.fit(train.x, train.y);

  const auto se = ml::score_all(test_set.y, gb_exact.predict(test_set.x));
  const auto sh = ml::score_all(test_set.y, gb_hist.predict(test_set.x));
  EXPECT_GT(se.r2, 0.9);  // sanity: the reference itself fits well
  EXPECT_GT(sh.r2, se.r2 - 0.03);
  EXPECT_LT(sh.mae, se.mae * 1.35 + 1e-3);
}

TEST_P(HistogramAccuracy, RfHistogramWithinToleranceOfExact) {
  const auto train = test::make_nonlinear(900, 0.1, GetParam());
  const auto test_set = test::make_nonlinear(300, 0.1, GetParam() ^ 0xbeef);
  TreeOptions exact_opt;
  exact_opt.max_depth = 8;
  RandomForestRegressor rf_exact(40, exact_opt, true, 9);
  rf_exact.fit(train.x, train.y);
  TreeOptions h = hist_options(64);
  h.max_depth = 8;
  RandomForestRegressor rf_hist(40, h, true, 9);
  rf_hist.fit(train.x, train.y);

  const auto se = ml::score_all(test_set.y, rf_exact.predict(test_set.x));
  const auto sh = ml::score_all(test_set.y, rf_hist.predict(test_set.x));
  EXPECT_GT(se.r2, 0.85);
  EXPECT_GT(sh.r2, se.r2 - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy,
                         ::testing::Values(101u, 202u, 303u));

// ---------- compiled inference bit-identity ----------

struct EngineCase {
  std::uint64_t seed;
  SplitMode mode;
};

class CompiledBitIdentity : public ::testing::TestWithParam<EngineCase> {};

TEST_P(CompiledBitIdentity, GbPredictIsBitIdenticalToWalk) {
  const auto p = GetParam();
  const auto train = test::make_nonlinear(500, 0.1, p.seed);
  const auto query = test::make_nonlinear(700, 0.1, p.seed ^ 0x51);
  TreeOptions opt;
  opt.max_depth = 5;
  opt.split_mode = p.mode;
  opt.max_bins = 48;
  GradientBoostingRegressor gb(60, 0.1, opt, 0.8, p.seed);
  gb.fit(train.x, train.y);

  const auto compiled = gb.predict(query.x);
  const auto walk = gb.predict_walk(query.x);
  ASSERT_EQ(compiled.size(), walk.size());
  for (std::size_t i = 0; i < walk.size(); ++i) {
    EXPECT_EQ(compiled[i], walk[i]) << "row " << i;  // bitwise, not NEAR
  }
  // Single-row entry point agrees with the batch kernel.
  for (std::size_t i = 0; i < query.x.rows(); i += 97) {
    EXPECT_EQ(gb.compiled().predict_row(query.x.row_ptr(i)), compiled[i]);
  }
}

TEST_P(CompiledBitIdentity, RfPredictIsBitIdenticalToWalk) {
  const auto p = GetParam();
  const auto train = test::make_nonlinear(400, 0.1, p.seed);
  const auto query = test::make_nonlinear(600, 0.1, p.seed ^ 0x52);
  TreeOptions opt;
  opt.max_depth = 7;
  opt.max_features = 2;
  opt.split_mode = p.mode;
  opt.max_bins = 48;
  RandomForestRegressor rf(30, opt, true, p.seed);
  rf.fit(train.x, train.y);

  const auto compiled = rf.predict(query.x);
  const auto walk = rf.predict_walk(query.x);
  ASSERT_EQ(compiled.size(), walk.size());
  for (std::size_t i = 0; i < walk.size(); ++i) {
    EXPECT_EQ(compiled[i], walk[i]) << "row " << i;
  }
  for (std::size_t i = 0; i < query.x.rows(); i += 89) {
    EXPECT_EQ(rf.compiled().predict_row(query.x.row_ptr(i)), compiled[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompiledBitIdentity,
    ::testing::Values(EngineCase{7u, SplitMode::kExact},
                      EngineCase{7u, SplitMode::kHistogram},
                      EngineCase{19u, SplitMode::kExact},
                      EngineCase{19u, SplitMode::kHistogram},
                      EngineCase{31u, SplitMode::kExact}));

TEST(CompiledEnsembleTest, SerializationRoundTripStaysBitIdentical) {
  // The serving registry loads via from_parts; the reloaded model must
  // compile eagerly and predict exactly like the original.
  const auto train = test::make_nonlinear(300, 0.1, 77);
  const auto query = test::make_nonlinear(300, 0.1, 78);
  GradientBoostingRegressor gb(40, 0.1, hist_options(32));
  gb.fit(train.x, train.y);
  const auto loaded = ml::deserialize_gb(ml::serialize_gb(gb));
  const auto a = gb.predict(query.x);
  const auto b = loaded.predict(query.x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  RandomForestRegressor rf(20, {});
  rf.fit(train.x, train.y);
  const auto rf_loaded = ml::deserialize_rf(ml::serialize_rf(rf));
  const auto ra = rf.predict(query.x);
  const auto rb = rf_loaded.predict(query.x);
  for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
}

TEST(CompiledEnsembleTest, BlockBoundarySizesAllAgree) {
  // Exercise batch sizes straddling the internal row-block length.
  const auto train = test::make_nonlinear(300, 0.1, 55);
  GradientBoostingRegressor gb(25, 0.1, {});
  gb.fit(train.x, train.y);
  for (const std::size_t n : {1u, 255u, 256u, 257u, 513u}) {
    const auto query = test::make_nonlinear(n, 0.1, 91);
    const auto compiled = gb.predict(query.x);
    const auto walk = gb.predict_walk(query.x);
    ASSERT_EQ(compiled.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(compiled[i], walk[i]);
  }
}

TEST(CompiledEnsembleTest, CountsMatchSourceModel) {
  const auto train = test::make_nonlinear(200, 0.1, 66);
  GradientBoostingRegressor gb(15, 0.1, {});
  gb.fit(train.x, train.y);
  std::size_t nodes = 0;
  for (const auto& t : gb.stages()) nodes += t.node_count();
  EXPECT_EQ(gb.compiled().tree_count(), gb.stage_count());
  EXPECT_EQ(gb.compiled().node_count(), nodes);
}

// ---------- parallel search determinism ----------

TEST(ParallelSearchTest, GridSearchIsDeterministicAcrossRuns) {
  const auto s = test::make_nonlinear(240, 0.1, 13);
  GradientBoostingRegressor proto(20, 0.1, {});
  ml::ParamGrid grid;
  grid["max_depth"] = {2.0, 3.0, 4.0};
  grid["learning_rate"] = {0.05, 0.1};
  ml::SearchOptions opt;
  opt.cv_folds = 3;
  opt.refit = false;
  const auto a = ml::grid_search(proto, grid, s.x, s.y, opt);
  const auto b = ml::grid_search(proto, grid, s.x, s.y, opt);
  ASSERT_EQ(a.trials.size(), 6u);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].value, b.trials[i].value);
    EXPECT_EQ(a.trials[i].params, b.trials[i].params);
  }
  EXPECT_EQ(a.best_params, b.best_params);
  // The winner is the best-valued trial, earliest on ties.
  double best = a.trials[0].value;
  for (const auto& t : a.trials) best = std::max(best, t.value);
  EXPECT_EQ(ml::scoring_value(a.best_cv_scores, opt.scoring), best);
}

}  // namespace
}  // namespace ccpred
