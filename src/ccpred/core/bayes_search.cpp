#include "ccpred/core/bayes_search.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "ccpred/common/error.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/core/gaussian_process.hpp"

namespace ccpred::ml {
namespace {

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

}  // namespace

double expected_improvement(double mu, double sigma, double best) {
  if (sigma <= 1e-12) return std::max(0.0, mu - best);
  const double z = (mu - best) / sigma;
  return (mu - best) * normal_cdf(z) + sigma * normal_pdf(z);
}

SearchResult bayes_search(const Regressor& prototype, const ParamSpace& space,
                          int n_iter, const linalg::Matrix& x,
                          const std::vector<double>& y,
                          const BayesSearchOptions& options) {
  CCPRED_CHECK_MSG(n_iter > 0, "bayes search needs n_iter > 0");
  CCPRED_CHECK_MSG(options.n_initial >= 1, "need at least one warm-up point");
  Stopwatch watch;
  Rng rng(options.base.seed ^ 0xb5297a4dULL);

  SearchResult result;
  double best = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> encoded;  // evaluated points, unit cube

  auto evaluate = [&](const ParamMap& params) {
    auto model = prototype.clone();
    model->set_params(params);
    Rng cv_rng(options.base.seed);
    const CvResult cv =
        cross_validate(*model, x, y, options.base.cv_folds, cv_rng);
    const double value = scoring_value(cv.mean, options.base.scoring);
    result.trials.push_back(
        SearchTrial{.params = params, .cv_scores = cv.mean, .value = value});
    encoded.push_back(encode_params(space, params));
    if (value > best) {
      best = value;
      result.best_params = params;
      result.best_cv_scores = cv.mean;
    }
  };

  const int warmup = std::min(options.n_initial, n_iter);
  for (int i = 0; i < warmup; ++i) evaluate(sample_params(space, rng));

  const std::size_t d = space.size();
  for (int it = warmup; it < n_iter; ++it) {
    // Fit the surrogate on (encoded params -> value).
    linalg::Matrix xs(encoded.size(), d);
    std::vector<double> vs(encoded.size());
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      for (std::size_t c = 0; c < d; ++c) xs(i, c) = encoded[i][c];
      vs[i] = result.trials[i].value;
    }
    GaussianProcessRegression surrogate(/*gamma=*/1.0, /*noise=*/1e-6,
                                        /*optimize=*/true);
    surrogate.fit(xs, vs);

    // Acquire: maximize EI over random probes of the unit cube.
    linalg::Matrix probes(static_cast<std::size_t>(options.n_candidates), d);
    for (std::size_t i = 0; i < probes.rows(); ++i) {
      for (std::size_t c = 0; c < d; ++c) probes(i, c) = rng.uniform();
    }
    std::vector<double> mean;
    std::vector<double> std;
    surrogate.predict_with_std(probes, mean, std);
    std::size_t arg_best = 0;
    double ei_best = -1.0;
    for (std::size_t i = 0; i < probes.rows(); ++i) {
      const double ei = expected_improvement(mean[i], std[i], best);
      if (ei > ei_best) {
        ei_best = ei;
        arg_best = i;
      }
    }
    evaluate(decode_params(space, probes.row(arg_best)));
  }

  if (options.base.refit) {
    result.best_model = prototype.clone();
    result.best_model->set_params(result.best_params);
    result.best_model->fit(x, y);
  }
  result.elapsed_s = watch.elapsed_s();
  return result;
}

}  // namespace ccpred::ml
