#pragma once

/// \file problems.hpp
/// The molecular problem sizes (occupied/virtual orbital counts) used in
/// the paper's evaluation — the (O, V) pairs of Tables 3-6.

#include <string>
#include <utility>
#include <vector>

namespace ccpred::data {

/// One molecular system characterized by orbital counts.
struct Problem {
  int o = 0;  ///< occupied orbitals
  int v = 0;  ///< virtual orbitals

  friend bool operator==(const Problem&, const Problem&) = default;
};

/// The 22 problem sizes evaluated on Aurora (paper Table 3/5).
const std::vector<Problem>& aurora_problems();

/// The 20 problem sizes evaluated on Frontier (paper Table 4/6).
const std::vector<Problem>& frontier_problems();

/// Problem list for a machine by name ("aurora" or "frontier").
const std::vector<Problem>& problems_for(const std::string& machine_name);

}  // namespace ccpred::data
