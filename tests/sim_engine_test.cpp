// Tests for the fast simulation engine: SimCache correctness, task-graph
// reuse, per-config measurement streams and campaign bit-identity between
// the fast (memoized/batched/parallel) and reference (serial from-scratch)
// paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/guidance/optimal.hpp"
#include "ccpred/sim/machine.hpp"
#include "ccpred/sim/sim_engine.hpp"

namespace ccpred::sim {
namespace {

CcsdSimulator aurora_sim() { return CcsdSimulator(MachineModel::aurora()); }

const std::vector<data::Problem>& small_problems() {
  static const std::vector<data::Problem> problems = {{.o = 44, .v = 260},
                                                      {.o = 60, .v = 300}};
  return problems;
}

// ---------- SimCache ----------

TEST(SimCacheTest, RandomizedOpsMatchUncachedReference) {
  SimCache cache;
  std::map<std::tuple<int, int, int, std::uint64_t>, double> reference;
  Rng rng(99);
  std::uint64_t expected_hits = 0;
  std::uint64_t expected_misses = 0;
  for (int step = 0; step < 2000; ++step) {
    // A small key space so lookups hit both present and absent keys.
    const int o = static_cast<int>(rng.uniform_int(1, 4));
    const int nodes = static_cast<int>(rng.uniform_int(1, 5));
    const int tile = static_cast<int>(rng.uniform_int(1, 3));
    const auto seed = static_cast<std::uint64_t>(rng.uniform_int(0, 2));
    const SimCache::Key key{.machine = 7u,
                            .o = o,
                            .v = o * 10,
                            .nodes = nodes,
                            .tile = tile,
                            .seed = seed};
    const auto ref_key = std::make_tuple(o, nodes, tile, seed);
    double value = 0.0;
    const bool hit = cache.lookup(key, &value);
    const auto it = reference.find(ref_key);
    ASSERT_EQ(hit, it != reference.end()) << "step " << step;
    if (hit) {
      EXPECT_EQ(value, it->second);
      ++expected_hits;
    } else {
      const double fresh = static_cast<double>(step) + 0.25;
      cache.insert(key, fresh);
      reference.emplace(ref_key, fresh);
      ++expected_misses;
    }
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, reference.size());
  EXPECT_EQ(stats.hits, expected_hits);
  EXPECT_EQ(stats.misses, expected_misses);
}

TEST(SimCacheTest, DistinguishesMachineAndSeed) {
  SimCache cache;
  const SimCache::Key a{.machine = 1, .o = 2, .v = 3, .nodes = 4, .tile = 5};
  SimCache::Key b = a;
  b.machine = 2;
  SimCache::Key c = a;
  c.seed = 17;
  cache.insert(a, 1.0);
  double value = 0.0;
  EXPECT_FALSE(cache.lookup(b, &value));
  EXPECT_FALSE(cache.lookup(c, &value));
  EXPECT_TRUE(cache.lookup(a, &value));
  EXPECT_EQ(value, 1.0);
}

TEST(SimCacheTest, ConcurrentInsertLookupStorm) {
  // Hammer a small key set from several threads; first writer wins, and
  // every subsequent lookup must observe that first value. Run under TSAN.
  SimCache cache;
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int step = 0; step < kOps; ++step) {
        const int o = static_cast<int>(rng.uniform_int(1, 8));
        const int nodes = static_cast<int>(rng.uniform_int(1, 8));
        const SimCache::Key key{
            .machine = 3u, .o = o, .v = 9, .nodes = nodes, .tile = 2};
        const double canonical = static_cast<double>(o * 100 + nodes);
        double value = 0.0;
        if (cache.lookup(key, &value)) {
          ASSERT_EQ(value, canonical);
        } else {
          cache.insert(key, canonical);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.stats().entries, 64u);
}

// ---------- task-graph reuse ----------

TEST(TaskGraphTest, ReusedGraphMatchesFromScratchAcrossNodeMenu) {
  const auto simulator = aurora_sim();
  for (const int tile : {40, 90, 180}) {
    const TaskGraph graph = simulator.build_task_graph(44, 260, tile);
    for (const int nodes : simulator.machine().node_menu()) {
      const RunConfig cfg{.o = 44, .v = 260, .nodes = nodes, .tile = tile};
      if (!simulator.feasible(cfg)) continue;
      const auto from_graph = simulator.breakdown(graph, nodes);
      const auto from_scratch = simulator.breakdown(cfg);
      EXPECT_EQ(from_graph.total_s(), from_scratch.total_s())
          << "nodes=" << nodes << " tile=" << tile;
      EXPECT_EQ(from_graph.tasks, from_scratch.tasks);
      EXPECT_EQ(from_graph.contraction_s, from_scratch.contraction_s);
      EXPECT_EQ(from_graph.collective_s, from_scratch.collective_s);
    }
  }
}

TEST(TaskGraphTest, MismatchedInventoryThrows) {
  const auto ccsd = aurora_sim();
  const CcsdSimulator triples(MachineModel::aurora(), triples_contractions());
  const TaskGraph graph = ccsd.build_task_graph(20, 120, 40);
  EXPECT_THROW(triples.breakdown(graph, 50), Error);
}

// ---------- engine ----------

TEST(SimEngineTest, BatchMatchesSingleAndReference) {
  const auto simulator = aurora_sim();
  SimEngine fast(simulator);
  SimEngine reference(simulator, {.mode = SimEngineMode::kReference});

  std::vector<RunConfig> batch;
  for (const int nodes : {90, 128, 256}) {
    for (const int tile : {40, 90}) {
      batch.push_back({.o = 44, .v = 260, .nodes = nodes, .tile = tile});
    }
  }
  batch.push_back(batch.front());  // duplicate: served from the dedup/cache

  const auto fast_times = fast.simulate_batch(batch);
  const auto ref_times = reference.simulate_batch(batch);
  ASSERT_EQ(fast_times.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(fast_times[i], ref_times[i]) << "i=" << i;
    EXPECT_EQ(fast_times[i], simulator.iteration_time(batch[i]));
  }
  EXPECT_EQ(fast_times.front(), fast_times.back());
  // The duplicate and the repeated (o, v, tile) pairs collapse: one graph
  // per (o, v, tile), one evaluation per distinct config.
  EXPECT_EQ(fast.stats().graph_builds, 2u);
  EXPECT_EQ(fast.stats().evaluations, batch.size() - 1);
}

TEST(SimEngineTest, MeasuredSeriesIsDeterministicAndSeedSensitive) {
  const auto simulator = aurora_sim();
  SimEngine fast(simulator);
  SimEngine reference(simulator, {.mode = SimEngineMode::kReference});
  const RunConfig cfg{.o = 44, .v = 260, .nodes = 128, .tile = 60};

  const auto first = fast.measured_series(cfg, 42, 5);
  const auto cached = fast.measured_series(cfg, 42, 5);  // cache replay
  const auto ref = reference.measured_series(cfg, 42, 5);
  ASSERT_EQ(first.size(), 5u);
  EXPECT_EQ(first, cached);
  EXPECT_EQ(first, ref);
  EXPECT_EQ(fast.measured_time(cfg, 42, 3), first[3]);

  const auto other_seed = fast.measured_series(cfg, 43, 5);
  EXPECT_NE(first, other_seed);
  // Streams are per-config: a different config draws different noise.
  RunConfig other_cfg = cfg;
  other_cfg.nodes = 256;
  const auto other = fast.measured_series(other_cfg, 42, 1);
  EXPECT_NE(first[0] / simulator.iteration_time(cfg),
            other[0] / simulator.iteration_time(other_cfg));
}

TEST(SimEngineTest, CacheDisabledStillCorrect) {
  const auto simulator = aurora_sim();
  SimEngine nocache(simulator, {.use_cache = false});
  const RunConfig cfg{.o = 44, .v = 260, .nodes = 128, .tile = 60};
  EXPECT_EQ(nocache.iteration_time(cfg), simulator.iteration_time(cfg));
  EXPECT_EQ(nocache.cache().stats().entries, 0u);
  EXPECT_EQ(nocache.measured_series(cfg, 7, 3),
            SimEngine(simulator).measured_series(cfg, 7, 3));
}

// ---------- campaign bit-identity ----------

TEST(SimEngineTest, CampaignBitIdenticalAcrossModesAtSeeds) {
  const auto simulator = aurora_sim();
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    data::GeneratorOptions ref_opt;
    ref_opt.seed = seed;
    ref_opt.target_total = 90;
    ref_opt.engine_mode = SimEngineMode::kReference;
    data::GeneratorOptions fast_opt = ref_opt;
    fast_opt.engine_mode = SimEngineMode::kFast;

    const auto ref =
        data::generate_dataset(simulator, small_problems(), ref_opt);
    const auto fast =
        data::generate_dataset(simulator, small_problems(), fast_opt);
    ASSERT_EQ(ref.size(), fast.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_TRUE(ref.config(i) == fast.config(i)) << "seed=" << seed;
      ASSERT_EQ(ref.target(i), fast.target(i))
          << "seed=" << seed << " row=" << i;
    }
  }
}

TEST(SimEngineTest, SharedEngineCampaignMatchesPrivateEngine) {
  const auto simulator = aurora_sim();
  data::GeneratorOptions opt;
  opt.seed = 11;
  opt.target_total = 60;

  SimEngine shared(simulator);
  data::GeneratorOptions shared_opt = opt;
  shared_opt.shared_engine = &shared;

  const auto a = data::generate_dataset(simulator, small_problems(), opt);
  const auto b =
      data::generate_dataset(simulator, small_problems(), shared_opt);
  // Regenerating through the warmed shared cache must not change a bit.
  const auto c =
      data::generate_dataset(simulator, small_problems(), shared_opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.target(i), b.target(i));
    EXPECT_EQ(a.target(i), c.target(i));
  }
  EXPECT_GT(shared.cache().stats().hits, 0u);

  // A shared engine wrapping a different simulator is rejected.
  const CcsdSimulator other(MachineModel::frontier());
  SimEngine wrong(other);
  data::GeneratorOptions bad = opt;
  bad.shared_engine = &wrong;
  EXPECT_THROW(data::generate_dataset(simulator, small_problems(), bad),
               Error);
}

// ---------- true-optima sweeps ----------

TEST(TrueOptimaSweepTest, FastMatchesReferenceAndFindsMenuOptimum) {
  const auto simulator = aurora_sim();
  SimEngine fast(simulator);
  SimEngine reference(simulator, {.mode = SimEngineMode::kReference});
  const std::vector<data::Problem> problems = {{.o = 44, .v = 260}};

  const auto fast_sweeps = guide::true_optima_sweeps(
      fast, problems, guide::Objective::kShortestTime);
  const auto ref_sweeps = guide::true_optima_sweeps(
      reference, problems, guide::Objective::kShortestTime);
  ASSERT_EQ(fast_sweeps.size(), 1u);
  ASSERT_EQ(fast_sweeps[0].points.size(), ref_sweeps[0].points.size());
  for (std::size_t j = 0; j < fast_sweeps[0].points.size(); ++j) {
    EXPECT_EQ(fast_sweeps[0].points[j].time_s, ref_sweeps[0].points[j].time_s);
  }
  EXPECT_TRUE(fast_sweeps[0].best.config == ref_sweeps[0].best.config);
  // The argmin really is the minimum of the surface.
  for (const auto& pt : fast_sweeps[0].points) {
    EXPECT_LE(fast_sweeps[0].best.value, pt.value);
  }
}

}  // namespace
}  // namespace ccpred::sim
