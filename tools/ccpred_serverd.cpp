/// ccpred_serverd — the recommendation-serving daemon.
///
/// Subcommands:
///   train --artifacts DIR --machine aurora|frontier [--model gb|rf]
///         [--rows N] [--seed S] [--estimators N]
///       Run a simulated trace-collection campaign, train the model and
///       publish the artifact as DIR/<machine>-<model>.model.
///   serve --artifacts DIR [--default-machine M] [--default-model gb|rf]
///         [--threads N] [--cache N] [--port P] [--backlog N] [--serial]
///         [--fleet N] [--max-queue N] [--fault-seed S] [--fault-artifact P]
///         [--fault-sweep P] [--fault-sweep-ms MS] [--fault-stall P]
///         [--fault-stall-ms MS] [--fault-cache P] [--fault-cache-ms MS]
///       Serve requests (see serve/protocol.hpp) from stdin, one response
///       line per request line, in request order. Requests are pipelined
///       through the worker pool unless --serial is given.
///
///       With --port, additionally listen on 127.0.0.1:P through the
///       non-blocking epoll event loop (serve/event_loop.hpp). Every
///       connection may speak line-JSON, the binary batch protocol
///       (serve/wire.hpp), or interleave both — the server tells them
///       apart from the first byte of each message. --backlog sets the
///       listen(2) queue (default SOMAXCONN). EOF on stdin shuts the
///       server down and prints a final stats line to stderr.
///
///       --fleet N forks N shard processes listening on ports P+1..P+N,
///       each a full Server over the shared artifacts directory; the
///       parent becomes a consistent-hash router on P, forwarding every
///       request to the shard owning its (machine, model, O, V) key over
///       pooled binary-wire connections, failing over to the next shard
///       in ring order if a shard dies. Pre-train artifacts first so the
///       shards start instantly and answer reproducibly. `stats` fans out
///       to every live shard and aggregates.
///
///       --max-queue bounds each worker backlog: beyond it, requests are
///       answered immediately with code="overloaded" (the event loop
///       passes the rejection through; clients own the retry policy).
///       The --fault-* flags arm the deterministic FaultInjector for
///       chaos drills; see serve/fault_injector.hpp.
///
///       --online 1 activates the closed-loop online learner: the `report`
///       verb ingests measured runs, drift against served predictions
///       triggers background refits, and candidates that win shadow
///       evaluation are atomically promoted (see serve/online/). The
///       --online-* flags tune its thresholds.
///
/// Missing artifacts are trained on first use (train-and-cache), so
/// `serve` works on an empty directory — pre-train with `train` to make
/// startup instant and answers reproducible across deployments.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/serve/event_loop.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/serve/fleet.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"
#include "ccpred/serve/wire.hpp"

namespace {

using namespace ccpred;

/// Minimal --key value argument parser (same contract as ccpred_cli: a
/// trailing flag without a value is a hard error).
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; i += 2) {
    CCPRED_CHECK_MSG(std::strncmp(argv[i], "--", 2) == 0,
                     "expected --flag, got '" << argv[i] << "'");
    CCPRED_CHECK_MSG(i + 1 < argc,
                     "flag '" << argv[i] << "' is missing a value");
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags,
                 const std::string& key) {
  const auto it = flags.find(key);
  CCPRED_CHECK_MSG(it != flags.end(), "missing required flag --" << key);
  return it->second;
}

std::string get_or(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

serve::RegistryOptions registry_options(
    const std::map<std::string, std::string>& flags) {
  serve::RegistryOptions opt;
  opt.fallback_rows =
      static_cast<std::size_t>(parse_int(get_or(flags, "rows", "600")));
  opt.fallback_seed =
      static_cast<std::uint64_t>(parse_int(get_or(flags, "seed", "2025")));
  if (flags.count("estimators")) {
    const int n = static_cast<int>(parse_int(flags.at("estimators")));
    opt.gb_estimators = n;
    opt.rf_estimators = n;
  }
  return opt;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  serve::ModelRegistry registry(need(flags, "artifacts"),
                                registry_options(flags));
  const std::string machine = need(flags, "machine");
  const std::string kind = get_or(flags, "model", "gb");
  const std::string path = registry.train_artifact(machine, kind);
  std::printf("trained %s/%s artifact: %s\n", machine.c_str(), kind.c_str(),
              path.c_str());
  return 0;
}

/// One protocol line in, one response line out (used by the stdin
/// --serial path).
std::string answer_line(serve::Server& server, const std::string& line) {
  try {
    return serve::format_response(server.handle(serve::parse_request(line)));
  } catch (const std::exception& e) {
    return serve::format_response(serve::error_response(e.what()));
  }
}

/// Builds the injector from --fault-* flags; nullptr when none are given.
std::unique_ptr<serve::FaultInjector> fault_injector_from_flags(
    const std::map<std::string, std::string>& flags) {
  serve::FaultOptions fopt;
  bool armed = false;
  const auto prob = [&](const char* flag, double& target) {
    const auto it = flags.find(flag);
    if (it == flags.end()) return;
    target = parse_double(it->second);
    armed = true;
  };
  prob("fault-artifact", fopt.artifact_read_failure);
  prob("fault-sweep", fopt.sweep_delay);
  prob("fault-stall", fopt.worker_stall);
  prob("fault-cache", fopt.cache_shard_hold);
  prob("fault-report", fopt.report_ingest);
  prob("fault-refit", fopt.refit_stall);
  prob("fault-promote", fopt.promotion_race);
  fopt.seed =
      static_cast<std::uint64_t>(parse_int(get_or(flags, "fault-seed", "2025")));
  fopt.sweep_delay_ms = parse_double(get_or(flags, "fault-sweep-ms", "10"));
  fopt.worker_stall_ms = parse_double(get_or(flags, "fault-stall-ms", "5"));
  fopt.cache_shard_hold_ms =
      parse_double(get_or(flags, "fault-cache-ms", "2"));
  fopt.report_ingest_ms = parse_double(get_or(flags, "fault-report-ms", "2"));
  fopt.refit_stall_ms = parse_double(get_or(flags, "fault-refit-ms", "20"));
  fopt.promotion_race_ms =
      parse_double(get_or(flags, "fault-promote-ms", "10"));
  if (!armed) return nullptr;
  return std::make_unique<serve::FaultInjector>(fopt);
}

/// Builds the online-learning options from --online* flags.
serve::online::OnlineOptions online_options_from_flags(
    const std::map<std::string, std::string>& flags) {
  serve::online::OnlineOptions opt;
  opt.enabled = flags.count("online") != 0 && get_or(flags, "online", "0") != "0";
  if (!opt.enabled) return opt;
  opt.buffer_capacity = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-buffer", "4096")));
  opt.drift.window = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-drift-window", "64")));
  opt.drift.min_samples = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-min-reports", "16")));
  opt.drift.mape_threshold =
      parse_double(get_or(flags, "online-drift-threshold", "0.25"));
  opt.refit_interval = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-refit-interval", "0")));
  opt.min_refit_rows = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-min-refit-rows", "32")));
  opt.holdout =
      static_cast<std::size_t>(parse_int(get_or(flags, "online-holdout", "16")));
  opt.min_improvement =
      parse_double(get_or(flags, "online-min-improvement", "0"));
  opt.feedback_weight = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-feedback-weight", "8")));
  return opt;
}

serve::ServeOptions serve_options_from_flags(
    const std::map<std::string, std::string>& flags) {
  serve::ServeOptions opt;
  opt.threads =
      static_cast<std::size_t>(parse_int(get_or(flags, "threads", "0")));
  opt.cache_capacity =
      static_cast<std::size_t>(parse_int(get_or(flags, "cache", "256")));
  opt.max_queue_depth =
      static_cast<std::size_t>(parse_int(get_or(flags, "max-queue", "0")));
  opt.default_machine = get_or(flags, "default-machine", "aurora");
  opt.default_model = get_or(flags, "default-model", "gb");
  opt.online = online_options_from_flags(flags);
  // Dynamic micro-batching: on by default for the daemon (the whole point
  // of a multi-client front end); --batch-max 0 disables it.
  opt.batch.max_batch =
      static_cast<std::size_t>(parse_int(get_or(flags, "batch-max", "64")));
  opt.batch.enabled = opt.batch.max_batch > 0;
  opt.batch.max_hold_us = static_cast<std::uint32_t>(
      parse_int(get_or(flags, "batch-hold-us", "200")));
  return opt;
}

serve::EventLoopOptions event_loop_options_from_flags(
    const std::map<std::string, std::string>& flags, int port) {
  serve::EventLoopOptions opt;
  opt.port = port;
  opt.backlog = static_cast<int>(parse_int(get_or(flags, "backlog", "-1")));
  opt.max_line_bytes = static_cast<std::size_t>(parse_int(
      get_or(flags, "max-line", std::to_string(opt.max_line_bytes))));
  opt.max_outbuf_bytes = static_cast<std::size_t>(parse_int(
      get_or(flags, "max-outbuf", std::to_string(opt.max_outbuf_bytes))));
  opt.max_inbuf_bytes = static_cast<std::size_t>(
      parse_int(get_or(flags, "max-inbuf", "0")));
  return opt;
}

/// Event-loop dispatch callbacks bound to one Server: single requests go
/// through submit_with, whole binary frames through submit_batch_with (one
/// pool hand-off per frame).
serve::EventLoopServer::Dispatch make_dispatch(serve::Server& server) {
  return [&server](serve::Request request,
                   serve::EventLoopServer::Completion done) {
    server.submit_with(std::move(request), std::move(done));
  };
}

serve::EventLoopServer::BatchDispatch make_batch_dispatch(
    serve::Server& server) {
  return [&server](std::vector<serve::Request> batch,
                   serve::EventLoopServer::BatchCompletion done) {
    server.submit_batch_with(std::move(batch), std::move(done));
  };
}

void print_loop_stats(const serve::EventLoopServer& listener) {
  const serve::EventLoopStats ls = listener.stats();
  std::fprintf(stderr,
               "event loop: %llu connections, %llu requests (%llu frames, "
               "%llu lines), %llu protocol errors, %llu overflow closes\n",
               static_cast<unsigned long long>(ls.connections_accepted),
               static_cast<unsigned long long>(ls.requests_in),
               static_cast<unsigned long long>(ls.frames_in),
               static_cast<unsigned long long>(ls.lines_in),
               static_cast<unsigned long long>(ls.protocol_errors),
               static_cast<unsigned long long>(ls.overflow_closes));
}

void print_final_stats(const serve::ServerStats& s) {
  std::fprintf(stderr,
               "served %llu requests (%llu errors), %llu sweeps, cache "
               "hit rate %.2f, p50 %.2f ms, p95 %.2f ms\n",
               static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.errors),
               static_cast<unsigned long long>(s.sweeps_computed),
               s.cache_hit_rate, s.latency_p50_ms, s.latency_p95_ms);
  if (s.deadline_exceeded + s.shed + s.stale_served + s.reload_failures +
          s.retries >
      0) {
    std::fprintf(
        stderr,
        "degraded: %llu deadline, %llu shed, %llu stale, %llu reload "
        "failures, %llu retries\n",
        static_cast<unsigned long long>(s.deadline_exceeded),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.stale_served),
        static_cast<unsigned long long>(s.reload_failures),
        static_cast<unsigned long long>(s.retries));
  }
}

// ---------------------------------------------------------------------------
// --fleet mode: shard child processes + parent consistent-hash router.

/// Body of one forked shard process: a full Server on its own port. Blocks
/// until the parent closes the shutdown pipe (EOF), then tears down. Never
/// touches stdin/stdout — those belong to the parent.
int run_fleet_child(const std::map<std::string, std::string>& flags,
                    int shard_index, int port, int shutdown_fd) {
  serve::ModelRegistry registry(need(flags, "artifacts"),
                                registry_options(flags));
  const auto fault = fault_injector_from_flags(flags);
  registry.set_fault_injector(fault.get());
  serve::ServeOptions opt = serve_options_from_flags(flags);
  opt.fault_injector = fault.get();
  serve::Server server(registry, opt);
  serve::EventLoopServer listener(make_dispatch(server),
                                  make_batch_dispatch(server),
                                  event_loop_options_from_flags(flags, port));
  server.set_overflow_source(
      [&listener] { return listener.stats().overflow_closes; });
  std::fprintf(stderr, "ccpred_serverd shard %d listening on 127.0.0.1:%d\n",
               shard_index, port);
  char byte = 0;
  while (true) {
    const ssize_t n = ::read(shutdown_fd, &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (or error): the parent is shutting down or gone.
  }
  ::close(shutdown_fd);
  return 0;
}

/// Parent-side request router: forwards to shard processes over pooled
/// binary-wire connections, one per shard, routed by the same consistent-
/// hash ring the in-process ShardFleet uses (both sides derive the ring
/// from the shard count alone, so they agree without coordination).
///
/// A shard that fails a round trip — connect timeout, mid-frame EOF,
/// malformed reply — is treated as crashed: marked dead and skipped by
/// every later request, which fails over to the next shard in ring order.
/// Process respawn is an operator concern (the in-process fleet covers
/// restart semantics); when every shard is dead, requests are answered
/// code="unavailable".
class FleetRouter {
 public:
  FleetRouter(std::vector<int> ports, std::string default_machine,
              std::string default_model)
      : default_machine_(std::move(default_machine)),
        default_model_(std::move(default_model)) {
    for (std::size_t i = 0; i < ports.size(); ++i) {
      ring_.add(static_cast<int>(i));
      remotes_.push_back(std::make_unique<Remote>(ports[i]));
    }
  }

  ~FleetRouter() {
    for (auto& remote : remotes_) {
      std::lock_guard<std::mutex> lock(remote->mutex);
      if (remote->fd >= 0) ::close(remote->fd);
    }
  }

  /// Routes one request to its shard (stats fan out and aggregate).
  serve::Response forward(const serve::Request& request) {
    if (request.op == serve::Op::kStats) return stats_response(request);
    std::vector<serve::Request> one(1, request);
    std::vector<serve::Response> replies = forward_batch(std::move(one));
    return replies.at(0);
  }

  /// Routes a whole frame by its first record's key — clients batch by
  /// destination, so this preserves cache locality; mixed frames are still
  /// answered correctly by whichever shard receives them.
  std::vector<serve::Response> forward_batch(
      std::vector<serve::Request> batch) {
    if (batch.empty()) return {};
    const std::uint64_t key = key_of(batch.front());
    const std::vector<int> prefs = ring_.preference(key, remotes_.size());
    for (std::size_t k = 0; k < prefs.size(); ++k) {
      const auto shard = static_cast<std::size_t>(prefs[k]);
      Remote& remote = *remotes_[shard];
      if (!remote.alive.load(std::memory_order_acquire)) continue;
      try {
        std::vector<serve::Response> replies = exchange(remote, batch);
        CCPRED_CHECK_MSG(replies.size() == batch.size(),
                         "shard answered " << replies.size() << " records for "
                                           << batch.size());
        if (k > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
        forwarded_.fetch_add(batch.size(), std::memory_order_relaxed);
        return replies;
      } catch (const std::exception& e) {
        mark_dead(shard, e.what());
      }
    }
    std::vector<serve::Response> failed;
    failed.reserve(batch.size());
    for (const serve::Request& request : batch) {
      failed.push_back(serve::error_response("no live shard",
                                             serve::op_name(request.op),
                                             request.id, "unavailable"));
    }
    return failed;
  }

  std::uint64_t forwarded() const {
    return forwarded_.load(std::memory_order_relaxed);
  }
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  struct Remote {
    explicit Remote(int p) : port(p) {}
    const int port;
    std::mutex mutex;  ///< serializes the fd's request/response round trips
    int fd = -1;       ///< pooled connection, opened lazily
    std::atomic<bool> alive{true};
  };

  std::uint64_t key_of(const serve::Request& request) const {
    const std::string& machine =
        request.machine.empty() ? default_machine_ : request.machine;
    const std::string& model =
        request.model.empty() ? default_model_ : request.model;
    return serve::HashRing::key_hash(machine, model, request.o, request.v);
  }

  void mark_dead(std::size_t shard, const char* why) {
    Remote& remote = *remotes_[shard];
    std::lock_guard<std::mutex> lock(remote.mutex);
    if (remote.fd >= 0) ::close(remote.fd);
    remote.fd = -1;
    if (remote.alive.exchange(false, std::memory_order_acq_rel)) {
      std::fprintf(stderr, "fleet router: shard on port %d marked dead: %s\n",
                   remote.port, why);
    }
  }

  /// One frame out, one frame back, under the remote's mutex. Throws on
  /// any connect/IO/protocol failure; the caller turns that into a death.
  std::vector<serve::Response> exchange(
      Remote& remote, const std::vector<serve::Request>& batch) {
    std::lock_guard<std::mutex> lock(remote.mutex);
    if (remote.fd < 0) remote.fd = connect_with_retry(remote.port);
    send_all(remote.fd, serve::wire::encode_request_frame(batch));
    return read_response_frame(remote.fd);
  }

  /// Shards train missing artifacts on first use, so the first connect can
  /// race a multi-second startup: retry for up to ~60 s before declaring
  /// the shard dead.
  static int connect_with_retry(int port) {
    for (int attempt = 0;; ++attempt) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      CCPRED_CHECK_MSG(fd >= 0, "cannot create router socket");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
          0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return fd;
      }
      ::close(fd);
      CCPRED_CHECK_MSG(attempt < 300,
                       "cannot connect to shard on port " << port);
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }

  static void send_all(int fd, const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      CCPRED_CHECK_MSG(n > 0, "shard connection lost mid-send");
      sent += static_cast<std::size_t>(n);
    }
  }

  static std::vector<serve::Response> read_response_frame(int fd) {
    std::string buf;
    char chunk[65536];
    serve::wire::FrameHeader header;
    while (true) {
      std::string error;
      const serve::wire::FrameStatus status = serve::wire::probe_frame(
          reinterpret_cast<const unsigned char*>(buf.data()), buf.size(),
          &header, &error);
      CCPRED_CHECK_MSG(status != serve::wire::FrameStatus::kBad,
                       "shard protocol error: " << error);
      if (status == serve::wire::FrameStatus::kHeader &&
          buf.size() >= serve::wire::kHeaderBytes + header.payload_bytes) {
        // Round trips are serialized per connection, so nothing may follow
        // the frame.
        CCPRED_CHECK_MSG(
            buf.size() == serve::wire::kHeaderBytes + header.payload_bytes,
            "unexpected bytes after shard response frame");
        return serve::wire::decode_response_frame(
            header, reinterpret_cast<const unsigned char*>(buf.data()) +
                        serve::wire::kHeaderBytes);
      }
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      CCPRED_CHECK_MSG(n > 0, "shard connection closed mid-frame");
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Fans a stats request out to every live shard and aggregates, mirroring
  /// ShardFleet::aggregated_stats (shards own separate registries here, so
  /// registry counters sum instead of being taken once).
  serve::Response stats_response(const serve::Request& request) {
    serve::Response out;
    out.op = serve::op_name(serve::Op::kStats);
    out.id = request.id;
    serve::ServerStats& total = out.stats;
    std::uint64_t latency_weight = 0;
    std::uint64_t verb_weight[serve::kNumOps] = {};
    bool any = false;
    for (std::size_t shard = 0; shard < remotes_.size(); ++shard) {
      Remote& remote = *remotes_[shard];
      if (!remote.alive.load(std::memory_order_acquire)) continue;
      std::vector<serve::Response> replies;
      try {
        replies = exchange(remote, {request});
      } catch (const std::exception& e) {
        mark_dead(shard, e.what());
        continue;
      }
      if (replies.size() != 1 || !replies[0].ok || !replies[0].has_stats) {
        continue;
      }
      any = true;
      const serve::ServerStats& s = replies[0].stats;
      total.requests += s.requests;
      total.errors += s.errors;
      total.sweeps_computed += s.sweeps_computed;
      total.coalesced += s.coalesced;
      total.cache_hits += s.cache_hits;
      total.cache_misses += s.cache_misses;
      total.cache_evictions += s.cache_evictions;
      total.cache_size += s.cache_size;
      total.queue_depth += s.queue_depth;
      total.deadline_exceeded += s.deadline_exceeded;
      total.shed += s.shed;
      total.stale_served += s.stale_served;
      total.reload_failures += s.reload_failures;
      total.retries += s.retries;
      total.models_loaded += s.models_loaded;
      total.models_trained += s.models_trained;
      total.latency_p50_ms +=
          s.latency_p50_ms * static_cast<double>(s.requests);
      total.latency_p95_ms +=
          s.latency_p95_ms * static_cast<double>(s.requests);
      total.latency_mean_ms +=
          s.latency_mean_ms * static_cast<double>(s.requests);
      latency_weight += s.requests;
      total.batched_requests += s.batched_requests;
      total.batch_flushes += s.batch_flushes;
      total.batch_bypass += s.batch_bypass;
      const auto dispatches =
          static_cast<double>(s.batch_flushes + s.batch_bypass);
      total.batch_size_p50 += s.batch_size_p50 * dispatches;
      total.batch_size_p95 += s.batch_size_p95 * dispatches;
      total.overflow_closed += s.overflow_closed;
      for (std::size_t v = 0; v < serve::kNumOps; ++v) {
        total.verb_latency[v].count += s.verb_latency[v].count;
        total.verb_latency[v].p50_ms +=
            s.verb_latency[v].p50_ms *
            static_cast<double>(s.verb_latency[v].count);
        total.verb_latency[v].p95_ms +=
            s.verb_latency[v].p95_ms *
            static_cast<double>(s.verb_latency[v].count);
        total.verb_latency[v].p99_ms +=
            s.verb_latency[v].p99_ms *
            static_cast<double>(s.verb_latency[v].count);
        total.verb_latency[v].max_ms =
            std::max(total.verb_latency[v].max_ms, s.verb_latency[v].max_ms);
        verb_weight[v] += s.verb_latency[v].count;
      }
      if (s.online_enabled) {
        total.online_enabled = true;
        total.online.reports += s.online.reports;
        total.online.measurements += s.online.measurements;
        total.online.duplicates += s.online.duplicates;
        total.online.rejected += s.online.rejected;
        total.online.buffered += s.online.buffered;
        total.online.rolling_mape =
            std::max(total.online.rolling_mape, s.online.rolling_mape);
        total.online.drift_events += s.online.drift_events;
        total.online.incremental_updates += s.online.incremental_updates;
        total.online.refits += s.online.refits;
        total.online.shadow_evals += s.online.shadow_evals;
        total.online.promotions += s.online.promotions;
        total.online.promotions_rejected += s.online.promotions_rejected;
        total.online.cache_invalidated += s.online.cache_invalidated;
      }
    }
    if (!any) {
      return serve::error_response("no live shard",
                                   serve::op_name(serve::Op::kStats),
                                   request.id, "unavailable");
    }
    if (latency_weight > 0) {
      const double w = static_cast<double>(latency_weight);
      total.latency_p50_ms /= w;
      total.latency_p95_ms /= w;
      total.latency_mean_ms /= w;
    }
    for (std::size_t v = 0; v < serve::kNumOps; ++v) {
      if (verb_weight[v] == 0) continue;
      const double w = static_cast<double>(verb_weight[v]);
      total.verb_latency[v].p50_ms /= w;
      total.verb_latency[v].p95_ms /= w;
      total.verb_latency[v].p99_ms /= w;
    }
    if (total.batch_flushes + total.batch_bypass > 0) {
      const auto w =
          static_cast<double>(total.batch_flushes + total.batch_bypass);
      total.batch_size_p50 /= w;
      total.batch_size_p95 /= w;
    }
    if (total.cache_hits + total.cache_misses > 0) {
      total.cache_hit_rate =
          static_cast<double>(total.cache_hits) /
          static_cast<double>(total.cache_hits + total.cache_misses);
    }
    out.ok = true;
    out.has_stats = true;
    return out;
  }

  const std::string default_machine_;
  const std::string default_model_;
  serve::HashRing ring_;
  std::vector<std::unique_ptr<Remote>> remotes_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failovers_{0};
};

int cmd_serve_fleet(const std::map<std::string, std::string>& flags,
                    int shards) {
  CCPRED_CHECK_MSG(flags.count("port") != 0, "--fleet requires --port");
  CCPRED_CHECK_MSG(shards >= 1 && shards <= 64,
                   "--fleet wants 1..64 shards, got " << shards);
  const int base_port = static_cast<int>(parse_int(flags.at("port")));

  // Fork every shard BEFORE the parent creates any thread (router pool,
  // event loop): forking a multithreaded process clones only the calling
  // thread and leaves cloned locks in undefined states.
  std::vector<pid_t> pids;
  std::vector<int> child_ports;
  std::vector<int> shutdown_fds;  // parent-held write ends
  for (int i = 0; i < shards; ++i) {
    int pipe_fds[2];
    CCPRED_CHECK_MSG(::pipe(pipe_fds) == 0, "cannot create shutdown pipe");
    const int child_port = base_port + 1 + i;
    const pid_t pid = ::fork();
    CCPRED_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      ::close(pipe_fds[1]);
      for (const int fd : shutdown_fds) ::close(fd);
      int code = 1;
      try {
        code = run_fleet_child(flags, i, child_port, pipe_fds[0]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "shard %d: fatal: %s\n", i, e.what());
      }
      // _Exit: a child must not run the parent's atexit/static teardown.
      std::_Exit(code);
    }
    ::close(pipe_fds[0]);
    shutdown_fds.push_back(pipe_fds[1]);
    child_ports.push_back(child_port);
    pids.push_back(pid);
  }

  FleetRouter router(child_ports, get_or(flags, "default-machine", "aurora"),
                     get_or(flags, "default-model", "gb"));
  {
    // Forwarding blocks on child round trips, so it runs on a small pool,
    // never on the loop thread. Pool before listener: dispatched tasks may
    // outlive the listener's destructor, and completions landing after it
    // are dropped by the loop's closed sink.
    const auto threads =
        static_cast<std::size_t>(parse_int(get_or(flags, "threads", "0")));
    ThreadPool forward_pool(threads == 0 ? 4 : threads);
    const auto dispatch = [&router, &forward_pool](
                              serve::Request request,
                              serve::EventLoopServer::Completion done) {
      forward_pool.post([&router, request = std::move(request),
                         done = std::move(done)]() mutable {
        serve::Response response;
        try {
          response = router.forward(request);
        } catch (const std::exception& e) {
          response = serve::error_response(e.what(),
                                           serve::op_name(request.op),
                                           request.id, "internal");
        }
        done(std::move(response));
      });
    };
    const auto batch_dispatch =
        [&router, &forward_pool](
            std::vector<serve::Request> batch,
            serve::EventLoopServer::BatchCompletion done) {
          forward_pool.post([&router, batch = std::move(batch),
                             done = std::move(done)]() mutable {
            std::vector<serve::Response> replies;
            try {
              replies = router.forward_batch(std::move(batch));
            } catch (const std::exception& e) {
              replies.assign(1, serve::error_response(e.what(), "", "",
                                                      "internal"));
            }
            done(std::move(replies));
          });
        };
    serve::EventLoopServer listener(
        dispatch, batch_dispatch,
        event_loop_options_from_flags(flags, base_port));
    std::fprintf(stderr,
                 "ccpred_serverd fleet router on 127.0.0.1:%d "
                 "(%d shards on %d..%d)\n",
                 base_port, shards, base_port + 1, base_port + shards);

    // stdin side channel: route lines serially through the router.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (trim(line).empty()) continue;
      serve::Response response;
      try {
        response = router.forward(serve::parse_request(line));
      } catch (const std::exception& e) {
        response = serve::error_response(e.what());
      }
      std::cout << serve::format_response(response) << '\n';
    }
    std::cout.flush();

    serve::Request stats_request;
    stats_request.op = serve::Op::kStats;
    const serve::Response final_stats = router.forward(stats_request);
    if (final_stats.has_stats) print_final_stats(final_stats.stats);
    std::fprintf(stderr,
                 "fleet router: %llu forwarded, %llu failovers\n",
                 static_cast<unsigned long long>(router.forwarded()),
                 static_cast<unsigned long long>(router.failovers()));
    print_loop_stats(listener);
    // Scope end: listener stops accepting, then the forward pool drains.
  }

  for (const int fd : shutdown_fds) ::close(fd);
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  return 0;
}

// ---------------------------------------------------------------------------

int cmd_serve(const std::map<std::string, std::string>& flags) {
  const int fleet = static_cast<int>(parse_int(get_or(flags, "fleet", "0")));
  if (fleet > 0) return cmd_serve_fleet(flags, fleet);

  serve::ModelRegistry registry(need(flags, "artifacts"),
                                registry_options(flags));
  const auto fault = fault_injector_from_flags(flags);
  registry.set_fault_injector(fault.get());
  serve::ServeOptions opt = serve_options_from_flags(flags);
  opt.fault_injector = fault.get();
  serve::Server server(registry, opt);
  if (opt.online.enabled) {
    std::fprintf(stderr,
                 "ccpred_serverd online learning ENABLED (drift threshold "
                 "%.2f, window %zu)\n",
                 opt.online.drift.mape_threshold, opt.online.drift.window);
  }
  if (fault != nullptr) {
    std::fprintf(stderr,
                 "ccpred_serverd FAULT INJECTION ARMED (seed %llu)\n",
                 static_cast<unsigned long long>(fault->options().seed));
  }
  const bool serial = flags.count("serial") != 0;

  std::unique_ptr<serve::EventLoopServer> listener;
  if (flags.count("port")) {
    const int port = static_cast<int>(parse_int(flags.at("port")));
    listener = std::make_unique<serve::EventLoopServer>(
        make_dispatch(server), make_batch_dispatch(server),
        event_loop_options_from_flags(flags, port));
    std::fprintf(stderr,
                 "ccpred_serverd listening on 127.0.0.1:%d "
                 "(epoll, JSON + binary frames)\n",
                 listener->port());
    server.set_overflow_source(
        [&listener] { return listener->stats().overflow_closes; });
  }

  // stdin/stdout loop: submit each line to the pool and flush completed
  // responses in request order (a response never overtakes an earlier one).
  std::deque<std::future<serve::Response>> pending;
  const auto flush_ready = [&](bool all) {
    while (!pending.empty() &&
           (all || pending.front().wait_for(std::chrono::seconds(0)) ==
                       std::future_status::ready)) {
      std::cout << serve::format_response(pending.front().get()) << '\n';
      pending.pop_front();
    }
    if (all) std::cout.flush();
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (trim(line).empty()) continue;
    if (serial) {
      std::cout << answer_line(server, line) << std::endl;
      continue;
    }
    serve::Request req;
    try {
      req = serve::parse_request(line);
    } catch (const std::exception& e) {
      // Keep ordering: materialize the parse error as a ready future.
      std::promise<serve::Response> p;
      p.set_value(serve::error_response(e.what()));
      pending.push_back(p.get_future());
      flush_ready(false);
      continue;
    }
    pending.push_back(server.submit(std::move(req)));
    flush_ready(false);
  }
  flush_ready(true);

  print_final_stats(server.stats());
  if (listener != nullptr) print_loop_stats(*listener);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ccpred_serverd <train|serve> [--flag value ...]\n"
               "  train --artifacts DIR --machine M [--model gb|rf] "
               "[--rows N] [--seed S] [--estimators N]\n"
               "  serve --artifacts DIR [--default-machine M] "
               "[--default-model gb|rf] [--threads N] [--cache N] "
               "[--port P] [--backlog N] [--fleet N] [--serial 1] "
               "[--max-queue N]\n"
               "        [--batch-max N (0 disables batching)] "
               "[--batch-hold-us US] [--max-line BYTES] "
               "[--max-inbuf BYTES (0 = derived)] [--max-outbuf BYTES]\n"
               "        [--fault-seed S] [--fault-artifact P] "
               "[--fault-sweep P] [--fault-sweep-ms MS] [--fault-stall P] "
               "[--fault-stall-ms MS] [--fault-cache P] "
               "[--fault-cache-ms MS]\n"
               "        [--fault-report P] [--fault-report-ms MS] "
               "[--fault-refit P] [--fault-refit-ms MS] "
               "[--fault-promote P] [--fault-promote-ms MS]\n"
               "        [--online 1] [--online-buffer N] "
               "[--online-drift-window N] [--online-min-reports N] "
               "[--online-drift-threshold X] [--online-refit-interval N]\n"
               "        [--online-min-refit-rows N] [--online-holdout N] "
               "[--online-min-improvement X] [--online-feedback-weight N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // The router and event loop handle write-to-closed-peer as EPIPE; a
  // default-disposition SIGPIPE would kill the daemon instead.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "serve") return cmd_serve(flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
