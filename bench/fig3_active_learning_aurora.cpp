/// Reproduces paper Figure 3: Aurora active-learning curves (R^2, MAPE,
/// MAE vs number of labeled experiments) for RS, US and QC.

#include "al_figures.hpp"

int main() { return ccpred::bench::run_al_curves("aurora"); }
