#include "ccpred/common/latency_histogram.hpp"

#include <cmath>

namespace ccpred {

std::size_t LatencyHistogram::bucket_for(double seconds) const {
  if (!(seconds > kMinSeconds)) return 0;
  const double i = std::log(seconds / kMinSeconds) / std::log(kGrowth);
  const auto bucket = static_cast<std::size_t>(i);
  return bucket >= kBuckets ? kBuckets - 1 : bucket;
}

double LatencyHistogram::bucket_lower(std::size_t i) const {
  return kMinSeconds * std::pow(kGrowth, static_cast<double>(i));
}

void LatencyHistogram::record(double seconds) { record_n(seconds, 1); }

void LatencyHistogram::record_n(double seconds, std::uint64_t n) {
  if (n == 0) return;
  if (seconds < 0.0) seconds = 0.0;
  buckets_[bucket_for(seconds)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  sum_ns_.fetch_add(ns * n, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e9 /
         static_cast<double>(n);
}

double LatencyHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil so q=1 is the max bucket).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate position-in-bucket between the bucket bounds.
      const double lo = bucket_lower(i);
      const double hi = lo * kGrowth;
      const double frac = in_bucket == 0
                              ? 0.0
                              : static_cast<double>(rank - seen) /
                                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return bucket_lower(kBuckets - 1) * kGrowth;
}

double LatencyHistogram::max() const {
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e9;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace ccpred
