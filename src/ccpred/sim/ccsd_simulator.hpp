#pragma once

/// \file ccsd_simulator.hpp
/// End-to-end performance model of one CCSD iteration on a simulated
/// supercomputer — the oracle that stands in for the paper's ExaChem/TAMM
/// runs on Aurora and Frontier.
///
/// For a run configuration (O, V, nodes, tile) the simulator:
///  1. tiles the occupied/virtual index spaces (ragged last tile included),
///  2. expands each CCSD contraction class into task groups — one task per
///     output tile block, with GEMM-view compute time (tile-size-dependent
///     efficiency, GPU-memory spill penalty) and α–β communication time
///     (remote fraction, congestion, partial compute/comm overlap),
///  3. list-schedules each contraction's tasks onto the job's GPU workers
///     (LPT makespan — the source of load-imbalance cliffs),
///  4. adds per-iteration fixed, synchronization and collective costs,
///  5. optionally applies machine-specific multiplicative measurement noise.

#include <cstdint>

#include "ccpred/common/rng.hpp"
#include "ccpred/sim/contraction.hpp"
#include "ccpred/sim/machine.hpp"
#include "ccpred/sim/scheduler.hpp"

namespace ccpred::sim {

/// One CCSD run configuration: problem size and runtime parameters.
struct RunConfig {
  int o = 0;      ///< occupied orbitals
  int v = 0;      ///< virtual orbitals
  int nodes = 0;  ///< supercomputer nodes
  int tile = 0;   ///< TAMM tile size

  friend bool operator==(const RunConfig&, const RunConfig&) = default;
};

/// Cost breakdown returned by CcsdSimulator::breakdown().
struct CostBreakdown {
  double contraction_s = 0.0;  ///< sum of per-contraction makespans
  double collective_s = 0.0;   ///< allreduce / broadcast costs
  double sync_s = 0.0;         ///< synchronization (log^2 nodes) term
  double fixed_s = 0.0;        ///< serial per-iteration cost
  std::int64_t tasks = 0;      ///< total tile tasks in the iteration

  double total_s() const {
    return contraction_s + collective_s + sync_s + fixed_s;
  }
};

/// Node-count-independent decomposition of one iteration at (o, v, tile).
///
/// The tiling/bucket expansion of step 2 depends only on (O, V, tile); only
/// the communication terms, the worker count and the collectives depend on
/// the node count. A TaskGraph captures the node-independent half so sweeps
/// over a node menu (campaign generation, true-optima sweeps) build it once
/// per (O, V, tile) and evaluate it per node count — bit-identical to the
/// from-scratch path, which routes through the same graph internally.
struct TaskGraph {
  /// One (volume, count) bucket of tile tasks of a contraction.
  struct Bucket {
    double compute_s = 0.0;   ///< GEMM-view compute time of one task
    double bytes = 0.0;       ///< communication payload of one task
    std::int64_t count = 0;   ///< tasks with this shape
  };
  /// All buckets of one contraction plus its output-reduction payload.
  struct ContractionTasks {
    std::vector<Bucket> buckets;
    double out_bytes = 0.0;   ///< machine-wide output-accumulation bytes
  };

  int o = 0;
  int v = 0;
  int tile = 0;
  std::vector<ContractionTasks> contractions;  ///< one per inventory entry
};

/// Deterministic performance simulator for one machine.
///
/// By default it models one CCSD iteration; pass a different contraction
/// inventory (e.g. sim::triples_contractions()) to simulate another
/// many-body kernel on the same machine/runtime model.
class CcsdSimulator {
 public:
  explicit CcsdSimulator(MachineModel machine)
      : machine_(std::move(machine)), inventory_(ccsd_contractions()) {}

  CcsdSimulator(MachineModel machine, std::vector<Contraction> inventory)
      : machine_(std::move(machine)), inventory_(std::move(inventory)) {}

  const MachineModel& machine() const { return machine_; }

  /// The contraction classes this simulator executes per iteration.
  const std::vector<Contraction>& inventory() const { return inventory_; }

  /// Minimum nodes whose aggregate memory holds the distributed tensors
  /// (amplitudes, residuals, Cholesky-decomposed integrals).
  int min_nodes(int o, int v) const;

  /// True if the configuration fits in memory and is well-formed.
  bool feasible(const RunConfig& cfg) const;

  /// Noise-free wall time of one CCSD iteration, seconds.
  /// Throws ccpred::Error if the configuration is infeasible.
  double iteration_time(const RunConfig& cfg) const;

  /// Peak per-node memory footprint in GB: this node's share of the
  /// distributed tensors plus the tile buffers of its resident GPU tasks.
  /// (The paper lists memory usage among the predictable target metrics.)
  double memory_per_node_gb(const RunConfig& cfg) const;

  /// Full cost breakdown for one iteration (noise-free).
  CostBreakdown breakdown(const RunConfig& cfg) const;

  /// The node-count-independent decomposition at (o, v, tile), one
  /// ContractionTasks per inventory entry. Reusable across every node count
  /// sharing the same problem size and tile.
  TaskGraph build_task_graph(int o, int v, int tile) const;

  /// Breakdown of one iteration evaluated from a prebuilt graph. Identical
  /// to breakdown({graph.o, graph.v, nodes, graph.tile}) bit-for-bit — the
  /// from-scratch overload routes through here.
  CostBreakdown breakdown(const TaskGraph& graph, int nodes) const;

  /// One simulated *measurement*: iteration_time with machine noise.
  double measured_time(const RunConfig& cfg, Rng& rng) const;

  /// Node-hours consumed: nodes * time / 3600.
  static double node_hours(const RunConfig& cfg, double time_s) {
    return static_cast<double>(cfg.nodes) * time_s / 3600.0;
  }

  /// Task groups of one contraction at this configuration (exposed for
  /// tests and the simulator ablation bench).
  std::vector<TaskGroup> task_groups(const Contraction& c,
                                     const RunConfig& cfg) const;

 private:
  MachineModel machine_;
  std::vector<Contraction> inventory_;
};

}  // namespace ccpred::sim
