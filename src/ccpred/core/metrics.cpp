#include "ccpred/core/metrics.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::ml {
namespace {

void check_sizes(const std::vector<double>& a, const std::vector<double>& b) {
  CCPRED_CHECK_MSG(!a.empty(), "metrics need at least one observation");
  CCPRED_CHECK_MSG(a.size() == b.size(),
                   "y_true size " << a.size() << " != y_pred size "
                                  << b.size());
}

}  // namespace

double r2_score(const std::vector<double>& y_true,
                const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double mean = 0.0;
  for (double v : y_true) mean += v;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mean_absolute_error(const std::vector<double>& y_true,
                           const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    s += std::abs(y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double mean_absolute_percentage_error(const std::vector<double>& y_true,
                                      const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    CCPRED_CHECK_MSG(y_true[i] != 0.0, "MAPE undefined for zero target");
    s += std::abs((y_true[i] - y_pred[i]) / y_true[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double root_mean_squared_error(const std::vector<double>& y_true,
                               const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    s += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
  }
  return std::sqrt(s / static_cast<double>(y_true.size()));
}

Scores score_all(const std::vector<double>& y_true,
                 const std::vector<double>& y_pred) {
  return Scores{.r2 = r2_score(y_true, y_pred),
                .mae = mean_absolute_error(y_true, y_pred),
                .mape = mean_absolute_percentage_error(y_true, y_pred),
                .rmse = root_mean_squared_error(y_true, y_pred)};
}

}  // namespace ccpred::ml
