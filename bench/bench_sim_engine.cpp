/// Simulation-engine bench: the memoized/batched/parallel SimEngine against
/// the serial from-scratch reference, on the paper's Aurora reproduction
/// workloads.
///
/// Two timed sections:
///   - campaign generation: the figure pipeline regenerates the paper
///     campaign once per bench binary; we time two regenerations, reference
///     (one from-scratch simulation per row) vs fast (one shared engine
///     whose SimCache persists across regenerations)
///   - STQ/BQ true-optima sweeps: the paper's exhaustive ground-truth sweep
///     over the machine menu, repeated for several evaluation rounds (the
///     AL goal evaluation used to recompute it every round), reference vs
///     one fast engine
///
/// Gates (exit nonzero on failure):
///   - campaign generation: fast >= 4x faster than reference
///   - STQ/BQ sweep rounds: fast >= 3x faster than reference
///   - fast results bit-identical (operator==) to the reference results
///
/// Emits the measurements to BENCH_sim_engine.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/guidance/optimal.hpp"
#include "ccpred/sim/sim_engine.hpp"

namespace {

using namespace ccpred;

/// Exact row-by-row equality (configs and targets compared with ==).
bool datasets_identical(const data::Dataset& a, const data::Dataset& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.config(i) == b.config(i))) return false;
    if (a.target(i) != b.target(i)) return false;
  }
  return true;
}

/// Exact sweep equality: every point's config and time, and the argmin.
bool sweeps_identical(const std::vector<guide::TrueOptimaSweep>& a,
                      const std::vector<guide::TrueOptimaSweep>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].o != b[i].o || a[i].v != b[i].v) return false;
    if (a[i].points.size() != b[i].points.size()) return false;
    for (std::size_t j = 0; j < a[i].points.size(); ++j) {
      if (!(a[i].points[j].config == b[i].points[j].config)) return false;
      if (a[i].points[j].time_s != b[i].points[j].time_s) return false;
      if (a[i].points[j].value != b[i].points[j].value) return false;
    }
    if (!(a[i].best.config == b[i].best.config)) return false;
    if (a[i].best.value != b[i].best.value) return false;
  }
  return true;
}

/// The k smallest problems by O*V work proxy (cheapest sweep surfaces).
std::vector<data::Problem> smallest_problems(std::vector<data::Problem> all,
                                             std::size_t k) {
  std::sort(all.begin(), all.end(),
            [](const data::Problem& a, const data::Problem& b) {
              return static_cast<double>(a.o) * a.v <
                     static_cast<double>(b.o) * b.v;
            });
  all.resize(std::min(k, all.size()));
  return all;
}

}  // namespace

int main() {
  const bool fast_mode = bench::fast_mode();
  const auto simulator = bench::make_simulator("aurora");
  const auto& problems = data::problems_for("aurora");
  const std::size_t threads = ThreadPool::global().size();

  std::printf("== Simulation engine vs serial reference (aurora, %zu threads%s) ==\n\n",
              threads, fast_mode ? ", fast mode" : "");

  // ---- campaign generation: two figure-pipeline regenerations ----
  // Fast mode shrinks the PROBLEM SET, not the row target: the fast path's
  // advantage rides on the campaign's repeat ratio (rows per distinct
  // config), and thinning rows across the full problem list would measure
  // a repeat-free workload no pipeline actually runs.
  const int regens = 2;
  const auto campaign_problems =
      fast_mode ? smallest_problems(problems, 6) : problems;
  data::GeneratorOptions ref_opt;
  ref_opt.seed = 2025;
  ref_opt.target_total =
      fast_mode ? data::paper_total_rows("aurora") / 4
                : data::paper_total_rows("aurora");
  ref_opt.engine_mode = sim::SimEngineMode::kReference;

  data::Dataset ref_campaign;
  Stopwatch campaign_ref_watch;
  for (int r = 0; r < regens; ++r) {
    ref_campaign = data::generate_dataset(simulator, campaign_problems, ref_opt);
  }
  const double campaign_ref_s = campaign_ref_watch.elapsed_s();

  data::GeneratorOptions fast_opt = ref_opt;
  fast_opt.engine_mode = sim::SimEngineMode::kFast;
  sim::SimEngine shared_engine(simulator);
  fast_opt.shared_engine = &shared_engine;

  data::Dataset fast_campaign;
  Stopwatch campaign_fast_watch;
  for (int r = 0; r < regens; ++r) {
    fast_campaign = data::generate_dataset(simulator, campaign_problems, fast_opt);
  }
  const double campaign_fast_s = campaign_fast_watch.elapsed_s();
  const double campaign_speedup = campaign_ref_s / campaign_fast_s;
  const bool campaign_identical = datasets_identical(ref_campaign, fast_campaign);
  const auto campaign_cache = shared_engine.cache().stats();

  // ---- STQ/BQ true-optima sweeps across evaluation rounds ----
  const int rounds = 4;
  const auto sweep_problems =
      smallest_problems(problems, fast_mode ? 3 : 6);

  sim::SimEngine ref_engine(simulator,
                            {.mode = sim::SimEngineMode::kReference});
  std::vector<guide::TrueOptimaSweep> ref_stq, ref_bq;
  Stopwatch sweep_ref_watch;
  for (int r = 0; r < rounds; ++r) {
    ref_stq = guide::true_optima_sweeps(ref_engine, sweep_problems,
                                        guide::Objective::kShortestTime);
    ref_bq = guide::true_optima_sweeps(ref_engine, sweep_problems,
                                       guide::Objective::kNodeHours);
  }
  const double sweep_ref_s = sweep_ref_watch.elapsed_s();

  sim::SimEngine fast_engine(simulator);
  std::vector<guide::TrueOptimaSweep> fast_stq, fast_bq;
  Stopwatch sweep_fast_watch;
  for (int r = 0; r < rounds; ++r) {
    fast_stq = guide::true_optima_sweeps(fast_engine, sweep_problems,
                                         guide::Objective::kShortestTime);
    fast_bq = guide::true_optima_sweeps(fast_engine, sweep_problems,
                                        guide::Objective::kNodeHours);
  }
  const double sweep_fast_s = sweep_fast_watch.elapsed_s();
  const double sweep_speedup = sweep_ref_s / sweep_fast_s;
  const bool sweep_identical =
      sweeps_identical(ref_stq, fast_stq) && sweeps_identical(ref_bq, fast_bq);
  std::size_t sweep_configs = 0;
  for (const auto& sw : ref_stq) sweep_configs += sw.points.size();
  const auto sweep_cache = fast_engine.cache().stats();

  TextTable table({"section", "path", "seconds", "speedup"},
                  "Simulation engine vs reference");
  table.add_row({"campaign x2", "reference",
                 TextTable::cell(campaign_ref_s, 3), "1.0x"});
  table.add_row({"campaign x2", "fast (shared cache)",
                 TextTable::cell(campaign_fast_s, 3),
                 TextTable::cell(campaign_speedup, 1) + "x"});
  table.add_row({"STQ/BQ sweep x4", "reference",
                 TextTable::cell(sweep_ref_s, 3), "1.0x"});
  table.add_row({"STQ/BQ sweep x4", "fast (memoized)",
                 TextTable::cell(sweep_fast_s, 3),
                 TextTable::cell(sweep_speedup, 1) + "x"});
  table.print();

  const bool campaign_ok = campaign_speedup >= 4.0;
  const bool sweep_ok = sweep_speedup >= 3.0;
  const bool identical_ok = campaign_identical && sweep_identical;
  std::printf(
      "\ncampaign rows %zu x%d regens; engine cache: %zu entries, %llu hits\n"
      "sweep problems %zu, %zu configs x%d rounds x2 objectives; cache: %zu "
      "entries, %llu hits\n"
      "campaign generation speedup %.1fx (target >= 4x): %s\n"
      "STQ/BQ sweep speedup %.1fx (target >= 3x): %s\n"
      "fast vs reference bit-identity (campaign %s, sweeps %s): %s\n",
      ref_campaign.size(), regens, campaign_cache.entries,
      static_cast<unsigned long long>(campaign_cache.hits),
      sweep_problems.size(), sweep_configs, rounds, sweep_cache.entries,
      static_cast<unsigned long long>(sweep_cache.hits), campaign_speedup,
      campaign_ok ? "PASS" : "FAIL", sweep_speedup, sweep_ok ? "PASS" : "FAIL",
      campaign_identical ? "yes" : "NO", sweep_identical ? "yes" : "NO",
      identical_ok ? "PASS" : "FAIL");

  const bool pass = campaign_ok && sweep_ok && identical_ok;
  std::FILE* json = std::fopen("BENCH_sim_engine.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"machine\": \"aurora\",\n"
        "  \"fast_mode\": %s,\n"
        "  \"threads\": %zu,\n"
        "  \"campaign\": {\"rows\": %zu, \"regens\": %d, \"reference_s\": "
        "%.6f, \"fast_s\": %.6f, \"speedup\": %.3f, \"identical\": %s,\n"
        "    \"cache_entries\": %zu, \"cache_hits\": %llu},\n"
        "  \"sweep\": {\"problems\": %zu, \"configs\": %zu, \"rounds\": %d, "
        "\"reference_s\": %.6f, \"fast_s\": %.6f, \"speedup\": %.3f, "
        "\"identical\": %s,\n"
        "    \"cache_entries\": %zu, \"cache_hits\": %llu},\n"
        "  \"provenance\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        fast_mode ? "true" : "false", threads, ref_campaign.size(), regens,
        campaign_ref_s, campaign_fast_s, campaign_speedup,
        campaign_identical ? "true" : "false", campaign_cache.entries,
        static_cast<unsigned long long>(campaign_cache.hits),
        sweep_problems.size(), sweep_configs, rounds, sweep_ref_s,
        sweep_fast_s, sweep_speedup, sweep_identical ? "true" : "false",
        sweep_cache.entries,
        static_cast<unsigned long long>(sweep_cache.hits),
        bench::provenance_json().c_str(), pass ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_sim_engine.json\n");
  }

  return pass ? 0 : 1;
}
