#pragma once

/// \file optimal.hpp
/// get_optimal_values / compute_losses (paper §3.4): per problem size, the
/// configuration minimizing an objective, and the *true-loss* evaluation of
/// predicted optima — the loss of a predicted configuration is its TRUE
/// measured value, not the model's predicted value (the paper's bold
/// caveat: anything else under-reports the loss).

#include <vector>

#include "ccpred/core/metrics.hpp"
#include "ccpred/data/dataset.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/sim/sim_engine.hpp"

namespace ccpred::guide {

/// User objective: STQ minimizes wall time, BQ minimizes node-hours.
enum class Objective {
  kShortestTime,  ///< STQ
  kNodeHours,     ///< BQ
};

/// Objective value of dataset row `i` given (possibly predicted) times `y`.
double objective_value(const data::Dataset& dataset,
                       const std::vector<double>& y, std::size_t i,
                       Objective objective);

/// The winning row for one problem size.
struct OptimalChoice {
  int o = 0;
  int v = 0;
  std::size_t row = 0;        ///< dataset row index of the optimum
  sim::RunConfig config;      ///< its (nodes, tile)
  double value = 0.0;         ///< objective value used for the argmin
};

/// Full objective sweep of one problem size: every dataset row of the
/// problem with its objective value, plus the argmin. Callers that need
/// both the winner and the surface (STQ/BQ tables, AL loss evaluation)
/// take the sweep once instead of recomputing it per use.
struct ProblemSweep {
  int o = 0;
  int v = 0;
  std::vector<std::size_t> rows;   ///< dataset row indices (grouping order)
  std::vector<double> values;      ///< objective value per row
  OptimalChoice best;              ///< the sweep's argmin
};

/// Per problem size (ascending), the full objective sweep of `dataset`
/// under `y` (pass dataset.targets() for true sweeps or model predictions
/// for predicted sweeps). Problems are swept in parallel over the shared
/// ThreadPool; results are deterministic. Ties break deterministically:
/// lowest nodes first, then smallest tile.
std::vector<ProblemSweep> sweep_optimal_values(const data::Dataset& dataset,
                                               const std::vector<double>& y,
                                               Objective objective);

/// The argmins of sweep_optimal_values (same tie-break rules).
std::vector<OptimalChoice> get_optimal_values(const data::Dataset& dataset,
                                              const std::vector<double>& y,
                                              Objective objective);

/// True-vs-predicted optimum for one problem size.
struct ProblemOutcome {
  int o = 0;
  int v = 0;
  OptimalChoice truth;          ///< argmin under true values
  OptimalChoice predicted;      ///< argmin under predicted values
  double true_value = 0.0;      ///< objective at truth.row (true y)
  double realized_value = 0.0;  ///< TRUE objective at predicted.row
  double true_time = 0.0;       ///< wall time at truth.row
  double realized_time = 0.0;   ///< TRUE wall time at predicted.row
  bool config_match = false;    ///< same (nodes, tile)?
};

/// Evaluates predicted optima with true-loss semantics: the predicted
/// configuration is located with `y_pred`, then scored at its *true*
/// target. `y_pred` must be predictions for the rows of `dataset`.
std::vector<ProblemOutcome> evaluate_optima(const data::Dataset& dataset,
                                            const std::vector<double>& y_pred,
                                            Objective objective);

/// Same, but reuses precomputed true sweeps (from sweep_optimal_values on
/// dataset.targets()) instead of recomputing them — this is what lets the
/// AL loop and the STQ/BQ tables sweep the truth once per dataset rather
/// than once per evaluation round.
std::vector<ProblemOutcome> evaluate_optima(
    const data::Dataset& dataset, const std::vector<double>& y_pred,
    Objective objective, const std::vector<ProblemSweep>& true_sweeps);

/// One point of a model-free exhaustive sweep: a feasible configuration
/// with its noise-free simulated time and objective value.
struct TrueSweepPoint {
  sim::RunConfig config;
  double time_s = 0.0;
  double value = 0.0;
};

/// Exhaustive true-optima sweep of one problem over the machine's full
/// (node menu x tile menu) grid.
struct TrueOptimaSweep {
  int o = 0;
  int v = 0;
  std::vector<TrueSweepPoint> points;  ///< menu order (nodes, then tile)
  TrueSweepPoint best;                 ///< argmin (lowest nodes, then tile)
};

/// The paper's exhaustive ground-truth sweep (§3.4): simulates every
/// feasible menu configuration of every problem through `engine` in one
/// batch (task-graph reuse + memoization + pool fan-out) and returns the
/// per-problem surfaces with their true optima.
std::vector<TrueOptimaSweep> true_optima_sweeps(
    sim::SimEngine& engine, const std::vector<data::Problem>& problems,
    Objective objective);

/// Paper-style losses over the outcomes: R^2 / MAE / MAPE between the true
/// optimal objective values and the realized (true-at-predicted-config)
/// values.
ml::Scores compute_losses(const std::vector<ProblemOutcome>& outcomes);

}  // namespace ccpred::guide
