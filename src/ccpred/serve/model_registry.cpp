#include "ccpred/serve/model_registry.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <utility>

#include "ccpred/common/error.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"

namespace ccpred::serve {
namespace {

namespace fs = std::filesystem;

std::int64_t mtime_ns(const std::string& path) {
  std::error_code ec;
  const auto t = fs::last_write_time(path, ec);
  if (ec) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

void check_kind(const std::string& kind) {
  CCPRED_CHECK_MSG(kind == "gb" || kind == "rf",
                   "unknown model kind '" << kind << "' (use gb|rf)");
}

}  // namespace

sim::CcsdSimulator simulator_for(const std::string& machine) {
  if (machine == "aurora") {
    return sim::CcsdSimulator(sim::MachineModel::aurora());
  }
  if (machine == "frontier") {
    return sim::CcsdSimulator(sim::MachineModel::frontier());
  }
  throw Error("unknown machine: " + machine + " (use aurora|frontier)");
}

ModelRegistry::ModelRegistry(std::string artifact_dir, RegistryOptions options)
    : dir_(std::move(artifact_dir)), options_(options) {
  CCPRED_CHECK_MSG(!dir_.empty(), "artifact directory must not be empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CCPRED_CHECK_MSG(!ec, "cannot create artifact directory " << dir_ << ": "
                                                            << ec.message());
}

std::string ModelRegistry::artifact_path(const std::string& machine,
                                         const std::string& kind) const {
  return (fs::path(dir_) / (machine + "-" + kind + ".model")).string();
}

std::uint64_t ModelRegistry::hash_artifact_locked(
    const std::string& path) const {
  if (fault_ != nullptr && fault_->fire(FaultPoint::kArtifactRead)) {
    throw Error("injected fault: artifact read failure for " + path);
  }
  std::ifstream in(path, std::ios::binary);
  CCPRED_CHECK_MSG(in.good(), "cannot read artifact " << path);
  // FNV-1a 64: cheap, deterministic, and only change *detection* is needed
  // (a colliding publish degrades to the old mtime-only behavior).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  char buf[4096];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t ModelRegistry::published_gen_locked(
    const std::string& key) const {
  const auto it = published_gen_.find(key);
  return it == published_gen_.end() ? 0 : it->second;
}

void ModelRegistry::note_published(const std::string& machine,
                                   const std::string& kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++published_gen_[machine + "/" + kind];
}

ModelHandle ModelRegistry::load_locked(const std::string& machine,
                                       const std::string& kind,
                                       const std::string& path) {
  ModelHandle handle;
  if (kind == "gb") {
    handle.model = std::make_shared<const ml::GradientBoostingRegressor>(
        ml::load_gb(path));
  } else {
    handle.model = std::make_shared<const ml::RandomForestRegressor>(
        ml::load_rf(path));
  }
  handle.version = next_version_++;
  handle.machine = machine;
  handle.kind = kind;
  handle.path = path;
  ++loads_;
  return handle;
}

std::string ModelRegistry::train_artifact(const std::string& machine,
                                          const std::string& kind) {
  check_kind(kind);
  const auto simulator = simulator_for(machine);
  data::GeneratorOptions gen;
  gen.seed = options_.fallback_seed;
  gen.target_total = options_.fallback_rows;
  const auto dataset = data::generate_dataset(
      simulator, data::problems_for(simulator.machine().name), gen);
  const std::string path = artifact_path(machine, kind);
  if (kind == "gb") {
    ml::GradientBoostingRegressor model(options_.gb_estimators);
    model.fit(dataset.features(), dataset.targets());
    ml::save_gb(model, path);
  } else {
    ml::RandomForestRegressor model(options_.rf_estimators);
    model.fit(dataset.features(), dataset.targets());
    ml::save_rf(model, path);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++trainings_;
  }
  return path;
}

ModelHandle ModelRegistry::get(const std::string& machine,
                               const std::string& kind) {
  check_kind(kind);
  simulator_for(machine);  // validates the machine name early
  const std::string key = machine + "/" + kind;
  const std::string path = artifact_path(machine, kind);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (!options_.hot_reload) return it->second.handle;
      const std::uint64_t gen = published_gen_locked(key);
      const std::int64_t now_ns = mtime_ns(path);
      const bool gen_changed = gen != it->second.loaded_gen;
      if (now_ns != 0 && now_ns == it->second.mtime_ns && !gen_changed) {
        // Disk matches what we serve; a reappeared artifact clears stale.
        it->second.handle.stale = false;
        return it->second.handle;
      }
      if (now_ns == 0) {
        // Artifact vanished: degrade to the last-good model rather than
        // retraining mid-serve; a republished file triggers a reload.
        it->second.handle.stale = true;
        return it->second.handle;
      }
      if (now_ns == it->second.failed_mtime_ns && !gen_changed) {
        // This publish already failed to load; wait for the next one.
        return it->second.handle;
      }
      // A changed mtime or a note_published() within the same mtime
      // granularity: verify the bytes before paying for a reload.
      try {
        const std::uint64_t hash = hash_artifact_locked(path);
        if (hash == it->second.content_hash) {
          // Same bytes (touch / identical or intra-granularity re-publish):
          // absorb without a version bump so cached sweeps stay valid.
          it->second.mtime_ns = now_ns;
          it->second.loaded_gen = gen;
          it->second.handle.stale = false;
          ++hash_skips_;
          return it->second.handle;
        }
        Entry entry{load_locked(machine, kind, path), now_ns};
        entry.content_hash = hash;
        entry.loaded_gen = gen;
        it->second = entry;
        return entry.handle;
      } catch (const std::exception&) {
        // Unreadable/corrupt publish: keep serving the last-good model,
        // marked stale, and retry only when the artifact changes again.
        ++reload_failures_;
        it->second.failed_mtime_ns = now_ns;
        it->second.loaded_gen = gen;
        it->second.handle.stale = true;
        return it->second.handle;
      }
    } else if (fs::exists(path)) {
      try {
        const std::uint64_t hash = hash_artifact_locked(path);
        Entry entry{load_locked(machine, kind, path), mtime_ns(path)};
        entry.content_hash = hash;
        entry.loaded_gen = published_gen_locked(key);
        entries_[key] = entry;
        return entry.handle;
      } catch (const std::exception&) {
        // First load failed — there is no last-good model to degrade to.
        ++reload_failures_;
        throw;
      }
    }
  }
  // Missing artifact: train-and-cache outside the lock (training is the
  // slow path and must not block serving other machines), then load.
  train_artifact(machine, kind);
  const std::lock_guard<std::mutex> lock(mutex_);
  // Another thread may have loaded while we trained; reuse its entry.
  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.handle;
  try {
    const std::uint64_t hash = hash_artifact_locked(path);
    Entry entry{load_locked(machine, kind, path), mtime_ns(path)};
    entry.content_hash = hash;
    entry.loaded_gen = published_gen_locked(key);
    entries_[key] = entry;
    return entry.handle;
  } catch (const std::exception&) {
    ++reload_failures_;
    throw;
  }
}

std::uint64_t ModelRegistry::loads() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return loads_;
}

std::uint64_t ModelRegistry::trainings() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trainings_;
}

std::uint64_t ModelRegistry::reload_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reload_failures_;
}

std::uint64_t ModelRegistry::hash_skips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hash_skips_;
}

}  // namespace ccpred::serve
