/// Serving-fleet throughput gate: epoll event loop + binary batch frames
/// vs the pre-PR thread-per-connection JSON daemon.
///
/// Four configurations are driven by the same closed-loop epoll load
/// generator at increasing connection counts ({64, 512, 4096}; fast
/// {16, 64, 256}):
///
///   baseline-json  — thread-per-connection blocking server, one JSON
///                    line per round trip (replica of the old daemon);
///   epoll-json     — EventLoopServer, same JSON line protocol;
///   epoll-binary   — EventLoopServer, 16-record binary frames;
///   fleet-binary   — 3-shard ShardFleet behind the event loop, frames.
///
/// Every backend is pre-warmed (one STQ per problem size) so the numbers
/// measure SERVING throughput — syscalls, parsing, scheduling — not sweep
/// compute. Two exit-code gates:
///
///   1. at the highest connection count, epoll-binary QPS >= 3x the
///      thread-per-connection baseline;
///   2. binary-batched STQ answers are byte-identical to the line-JSON
///      answers for the same requests (format_response comparison).
///
/// Emits BENCH_serve_fleet.json (per-level p50/p99/QPS for every config,
/// the gate verdicts, and provenance).

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/common/error.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/serve/event_loop.hpp"
#include "ccpred/serve/fleet.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/protocol.hpp"
#include "ccpred/serve/server.hpp"
#include "ccpred/serve/wire.hpp"

namespace {

using namespace ccpred;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------- baseline

/// The pre-PR daemon's architecture: one blocking thread per accepted
/// connection, newline-delimited JSON both ways, synchronous handle().
class ThreadPerConnServer {
 public:
  explicit ThreadPerConnServer(serve::Server& server) : server_(server) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CCPRED_CHECK_MSG(listen_fd_ >= 0, "socket: " + std::string(strerror(errno)));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    CCPRED_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) == 0,
                     "bind: " + std::string(strerror(errno)));
    CCPRED_CHECK_MSG(::listen(listen_fd_, SOMAXCONN) == 0, "listen failed");
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~ThreadPerConnServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    acceptor_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& t : conns_) t.join();
  }

  int port() const { return port_; }

 private:
  void accept_loop() {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener shut down
      std::lock_guard<std::mutex> lock(mutex_);
      conns_.emplace_back([this, fd] { serve_connection(fd); });
    }
  }

  void serve_connection(int fd) {
    std::string buf;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        const std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        serve::Response r;
        try {
          r = server_.handle(serve::parse_request(line));
        } catch (const std::exception& e) {
          r = serve::error_response(e.what());
        }
        const std::string out = serve::format_response(r) + "\n";
        std::size_t sent = 0;
        while (sent < out.size()) {
          const ssize_t w = ::send(fd, out.data() + sent, out.size() - sent,
                                   MSG_NOSIGNAL);
          if (w <= 0) { ::close(fd); return; }
          sent += static_cast<std::size_t>(w);
        }
      }
    }
    ::close(fd);
  }

  serve::Server& server_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::mutex mutex_;
  std::vector<std::thread> conns_;
};

// ----------------------------------------------------------- load generator

struct LoadResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t requests = 0;
};

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CCPRED_CHECK_MSG(fd >= 0, "client socket failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  CCPRED_CHECK_MSG(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof addr) == 0,
                   "connect: " + std::string(strerror(errno)));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Closed-loop: every connection keeps exactly one request (or one
/// 16-record frame) in flight and fires the next the instant the response
/// completes. Latency is measured per round trip.
LoadResult run_load(int port, int conns, int rounds, bool binary, int batch) {
  const auto& problems = data::problems_for("aurora");

  struct Conn {
    int fd = -1;
    std::string payload;       // the (fixed) request bytes, resent per round
    std::size_t sent = 0;      // offset into payload
    std::string inbuf;
    int rounds_done = 0;
    Clock::time_point t_send;
    bool out_armed = false;
  };

  std::vector<Conn> cs(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    auto& conn = cs[static_cast<std::size_t>(c)];
    if (binary) {
      std::vector<serve::Request> frame;
      for (int b = 0; b < batch; ++b) {
        serve::Request req;
        req.op = serve::Op::kStq;
        const auto& p =
            problems[static_cast<std::size_t>(c + b) % problems.size()];
        req.o = p.o;
        req.v = p.v;
        req.id = std::to_string(c) + "." + std::to_string(b);
        frame.push_back(std::move(req));
      }
      conn.payload = serve::wire::encode_request_frame(frame);
    } else {
      serve::Request req;
      req.op = serve::Op::kStq;
      const auto& p = problems[static_cast<std::size_t>(c) % problems.size()];
      req.o = p.o;
      req.v = p.v;
      req.id = std::to_string(c);
      conn.payload = serve::format_request(req) + "\n";
    }
    conn.fd = connect_loopback(port);
  }

  const int ep = ::epoll_create1(0);
  CCPRED_CHECK_MSG(ep >= 0, "epoll_create1 failed");
  for (int c = 0; c < conns; ++c) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(c);
    ::epoll_ctl(ep, EPOLL_CTL_ADD, cs[static_cast<std::size_t>(c)].fd, &ev);
  }

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(conns) *
                    static_cast<std::size_t>(rounds));
  int live = conns;

  const auto arm_out = [&](Conn& conn, int c, bool want) {
    if (conn.out_armed == want) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u32 = static_cast<std::uint32_t>(c);
    ::epoll_ctl(ep, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.out_armed = want;
  };

  const auto try_send = [&](Conn& conn, int c) {
    while (conn.sent < conn.payload.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.payload.data() + conn.sent,
                 conn.payload.size() - conn.sent, MSG_NOSIGNAL);
      if (n > 0) {
        conn.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        arm_out(conn, c, true);
        return;
      }
      CCPRED_CHECK_MSG(false, "client send failed: " + std::string(strerror(errno)));
    }
    arm_out(conn, c, false);
  };

  // Returns true when one full response (line or frame) is in `inbuf` and
  // consumes it.
  const auto response_complete = [&](Conn& conn) {
    if (!binary) {
      const std::size_t nl = conn.inbuf.find('\n');
      if (nl == std::string::npos) return false;
      conn.inbuf.erase(0, nl + 1);
      return true;
    }
    serve::wire::FrameHeader header;
    std::string error;
    const auto status = serve::wire::probe_frame(
        reinterpret_cast<const unsigned char*>(conn.inbuf.data()),
        conn.inbuf.size(), &header, &error);
    CCPRED_CHECK_MSG(status != serve::wire::FrameStatus::kBad,
                     "bad response frame: " + error);
    if (status != serve::wire::FrameStatus::kHeader ||
        conn.inbuf.size() < serve::wire::kHeaderBytes + header.payload_bytes) {
      return false;
    }
    conn.inbuf.erase(0, serve::wire::kHeaderBytes + header.payload_bytes);
    return true;
  };

  const Clock::time_point start = Clock::now();
  for (int c = 0; c < conns; ++c) {
    auto& conn = cs[static_cast<std::size_t>(c)];
    conn.t_send = Clock::now();
    try_send(conn, c);
  }

  std::vector<epoll_event> events(256);
  char chunk[16384];
  while (live > 0) {
    const int n = ::epoll_wait(ep, events.data(),
                               static_cast<int>(events.size()), 10000);
    CCPRED_CHECK_MSG(n > 0, "load generator stalled (epoll_wait timeout)");
    for (int e = 0; e < n; ++e) {
      const int c = static_cast<int>(events[static_cast<std::size_t>(e)].data.u32);
      auto& conn = cs[static_cast<std::size_t>(c)];
      if (conn.fd < 0) continue;
      const auto flags = events[static_cast<std::size_t>(e)].events;
      if ((flags & EPOLLOUT) != 0u) try_send(conn, c);
      if ((flags & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0u) continue;
      while (true) {
        const ssize_t r = ::read(conn.fd, chunk, sizeof chunk);
        if (r > 0) {
          conn.inbuf.append(chunk, static_cast<std::size_t>(r));
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        CCPRED_CHECK_MSG(false, "server closed a load connection early");
      }
      while (conn.rounds_done < rounds && response_complete(conn)) {
        latencies.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      conn.t_send)
                .count());
        if (++conn.rounds_done >= rounds) {
          ::epoll_ctl(ep, EPOLL_CTL_DEL, conn.fd, nullptr);
          ::close(conn.fd);
          conn.fd = -1;
          --live;
          break;
        }
        conn.sent = 0;
        conn.t_send = Clock::now();
        try_send(conn, c);
      }
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  ::close(ep);

  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    if (latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  LoadResult out;
  out.requests = static_cast<std::size_t>(conns) *
                 static_cast<std::size_t>(rounds) *
                 static_cast<std::size_t>(binary ? batch : 1);
  out.qps = static_cast<double>(out.requests) / elapsed;
  out.p50_ms = at(0.50);
  out.p99_ms = at(0.99);
  return out;
}

// --------------------------------------------------------------- backends

serve::EventLoopServer::Dispatch dispatch_of(serve::Server& s) {
  return [&s](serve::Request req, serve::EventLoopServer::Completion done) {
    s.submit_with(std::move(req), std::move(done));
  };
}

serve::EventLoopServer::BatchDispatch batch_dispatch_of(serve::Server& s) {
  return [&s](std::vector<serve::Request> batch,
              serve::EventLoopServer::BatchCompletion done) {
    s.submit_batch_with(std::move(batch), std::move(done));
  };
}

serve::EventLoopServer::Dispatch dispatch_of(serve::ShardFleet& f) {
  return [&f](serve::Request req, serve::EventLoopServer::Completion done) {
    f.submit_with(std::move(req), std::move(done));
  };
}

serve::EventLoopServer::BatchDispatch batch_dispatch_of(serve::ShardFleet& f) {
  return [&f](std::vector<serve::Request> batch,
              serve::EventLoopServer::BatchCompletion done) {
    f.submit_batch_with(std::move(batch), std::move(done));
  };
}

template <typename Backend>
void prewarm(Backend& backend) {
  for (const auto& p : data::problems_for("aurora")) {
    serve::Request req;
    req.op = serve::Op::kStq;
    req.o = p.o;
    req.v = p.v;
    const auto r = backend.handle(req);
    CCPRED_CHECK_MSG(r.ok, "prewarm failed: " + r.error);
  }
}

// ------------------------------------------------------------ bit identity

/// Sends every problem's STQ to the epoll server twice — once as JSON
/// lines, once inside one binary frame — and compares the formatted
/// answers byte for byte.
bool binary_matches_json(int port) {
  const auto& problems = data::problems_for("aurora");
  std::vector<serve::Request> frame;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    serve::Request req;
    req.op = serve::Op::kStq;
    req.o = problems[i].o;
    req.v = problems[i].v;
    req.id = "bit" + std::to_string(i);
    frame.push_back(std::move(req));
  }

  const int fd = connect_loopback(port);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);  // blocking is fine here

  const auto send_all = [&](const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      CCPRED_CHECK_MSG(n > 0, "bit-identity send failed");
      sent += static_cast<std::size_t>(n);
    }
  };

  std::string inbuf;
  char chunk[4096];
  const auto fill = [&] {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    CCPRED_CHECK_MSG(n > 0, "bit-identity read failed");
    inbuf.append(chunk, static_cast<std::size_t>(n));
  };

  // JSON pass.
  std::vector<std::string> json_lines;
  for (const auto& req : frame) {
    send_all(serve::format_request(req) + "\n");
    std::size_t nl;
    while ((nl = inbuf.find('\n')) == std::string::npos) fill();
    json_lines.push_back(inbuf.substr(0, nl));
    inbuf.erase(0, nl + 1);
  }

  // Binary pass, same requests in one frame.
  send_all(serve::wire::encode_request_frame(frame));
  serve::wire::FrameHeader header;
  while (true) {
    std::string error;
    const auto status = serve::wire::probe_frame(
        reinterpret_cast<const unsigned char*>(inbuf.data()), inbuf.size(),
        &header, &error);
    CCPRED_CHECK_MSG(status != serve::wire::FrameStatus::kBad, error);
    if (status == serve::wire::FrameStatus::kHeader &&
        inbuf.size() >= serve::wire::kHeaderBytes + header.payload_bytes) {
      break;
    }
    fill();
  }
  const auto decoded = serve::wire::decode_response_frame(
      header,
      reinterpret_cast<const unsigned char*>(inbuf.data()) +
          serve::wire::kHeaderBytes);
  ::close(fd);

  if (decoded.size() != json_lines.size()) return false;
  bool identical = true;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (serve::format_response(decoded[i]) != json_lines[i]) {
      std::printf("bit-identity MISMATCH at %zu:\n  json:   %s\n  binary: %s\n",
                  i, json_lines[i].c_str(),
                  serve::format_response(decoded[i]).c_str());
      identical = false;
    }
  }
  return identical;
}

void raise_nofile_limit(rlim_t need) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= need) return;
  lim.rlim_cur = std::min(need, lim.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &lim);
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  std::signal(SIGPIPE, SIG_IGN);

  const bool fast = bench::fast_mode();
  const std::vector<int> conn_levels =
      fast ? std::vector<int>{16, 64, 256} : std::vector<int>{64, 512, 4096};
  const int rounds_json = 8;
  const int rounds_binary = 4;
  const int batch = 16;
  raise_nofile_limit(static_cast<rlim_t>(conn_levels.back()) * 2 + 512);

  const fs::path dir = fs::temp_directory_path() / "ccpred_bench_fleet";
  fs::remove_all(dir);
  serve::RegistryOptions ropt;
  ropt.fallback_rows = fast ? 300 : 600;
  ropt.gb_estimators = fast ? 40 : 120;
  serve::ModelRegistry registry(dir.string(), ropt);
  registry.train_artifact("aurora", "gb");

  serve::ServeOptions sopt;
  sopt.threads = 2;
  sopt.cache_capacity = 64;

  struct Row {
    int conns;
    LoadResult baseline, epoll_json, epoll_binary, fleet_binary;
  };
  std::vector<Row> rows;
  bool identical = false;

  {
    // Single-shard backends share one Server (cache stays warm across
    // levels for both, keeping the comparison about transport).
    serve::Server server(registry, sopt);
    prewarm(server);

    serve::FleetOptions fopt;
    fopt.shards = 3;
    fopt.serve = sopt;
    serve::ShardFleet fleet(registry, fopt);
    prewarm(fleet);

    ThreadPerConnServer baseline(server);
    serve::EventLoopServer epoll_srv(dispatch_of(server),
                                     batch_dispatch_of(server));
    serve::EventLoopServer fleet_srv(dispatch_of(fleet),
                                     batch_dispatch_of(fleet));

    identical = binary_matches_json(epoll_srv.port());

    for (const int conns : conn_levels) {
      Row row;
      row.conns = conns;
      row.baseline = run_load(baseline.port(), conns, rounds_json, false, 1);
      row.epoll_json = run_load(epoll_srv.port(), conns, rounds_json, false, 1);
      row.epoll_binary =
          run_load(epoll_srv.port(), conns, rounds_binary, true, batch);
      row.fleet_binary =
          run_load(fleet_srv.port(), conns, rounds_binary, true, batch);
      rows.push_back(row);
      std::printf("conns %4d: baseline %.0f q/s | epoll-json %.0f q/s | "
                  "epoll-binary %.0f q/s | fleet-binary %.0f q/s\n",
                  conns, row.baseline.qps, row.epoll_json.qps,
                  row.epoll_binary.qps, row.fleet_binary.qps);
    }
  }

  std::printf("\n== Serving fleet throughput (aurora, gb, warm cache) ==\n\n");
  std::printf("%8s  %-14s %12s %10s %10s\n", "conns", "config", "req/s",
              "p50 ms", "p99 ms");
  for (const auto& row : rows) {
    const auto line = [&](const char* name, const LoadResult& r) {
      std::printf("%8d  %-14s %12.0f %10.3f %10.3f\n", row.conns, name, r.qps,
                  r.p50_ms, r.p99_ms);
    };
    line("baseline-json", row.baseline);
    line("epoll-json", row.epoll_json);
    line("epoll-binary", row.epoll_binary);
    line("fleet-binary", row.fleet_binary);
  }

  const Row& top = rows.back();
  const double speedup = top.epoll_binary.qps / top.baseline.qps;
  const bool speedup_ok = speedup >= 3.0;
  std::printf(
      "\nepoll-binary vs thread-per-connection at %d conns: %.1fx "
      "(gate >= 3x): %s\n"
      "binary answers byte-identical to JSON: %s\n",
      top.conns, speedup, speedup_ok ? "PASS" : "FAIL",
      identical ? "PASS" : "FAIL");

  std::FILE* json = std::fopen("BENCH_serve_fleet.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"levels\": [");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      const auto obj = [&](const char* name, const LoadResult& r,
                           bool last) {
        std::fprintf(json,
                     "\"%s\": {\"qps\": %.1f, \"p50_ms\": %.3f, "
                     "\"p99_ms\": %.3f, \"requests\": %zu}%s",
                     name, r.qps, r.p50_ms, r.p99_ms, r.requests,
                     last ? "" : ", ");
      };
      std::fprintf(json, "%s{\"conns\": %d, ", i == 0 ? "" : ", ", row.conns);
      obj("baseline_json", row.baseline, false);
      obj("epoll_json", row.epoll_json, false);
      obj("epoll_binary", row.epoll_binary, false);
      obj("fleet_binary", row.fleet_binary, true);
      std::fprintf(json, "}");
    }
    std::fprintf(json,
                 "], \"speedup_at_max_conns\": %.2f, \"speedup_gate\": 3.0, "
                 "\"bit_identical\": %s, \"fast\": %d, \"provenance\": %s}\n",
                 speedup, identical ? "true" : "false", fast ? 1 : 0,
                 bench::provenance_json().c_str());
    std::fclose(json);
    std::printf("wrote BENCH_serve_fleet.json\n");
  }

  fs::remove_all(dir);
  return (speedup_ok && identical) ? 0 : 1;
}
