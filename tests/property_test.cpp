// Property-based suites (parameterized gtest): invariants that must hold
// across seeds, scales and configurations rather than at single points.

#include <gtest/gtest.h>

#include <cmath>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"
#include "test_util.hpp"

namespace ccpred {
namespace {

// ---------- RNG statistical properties across seeds ----------

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMomentsStable) {
  Rng rng(GetParam());
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.015);
  EXPECT_NEAR(sq / n, 1.0 / 3.0, 0.015);
}

TEST_P(RngSeedSweep, PermutationUnbiasedFirstElement) {
  // Over many permutations of size 8, element 0 lands in each slot with
  // roughly equal frequency.
  Rng rng(GetParam());
  std::vector<int> counts(8, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto p = rng.permutation(8);
    for (std::size_t s = 0; s < 8; ++s) {
      if (p[s] == 0) ++counts[s];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / 8.0, 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ULL, 42ULL, 2025ULL,
                                           0xdeadbeefULL, 999983ULL));

// ---------- metric invariances ----------

class MetricScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(MetricScaleSweep, R2AndMapeScaleInvariant) {
  // Multiplying y_true and y_pred by a constant leaves R^2 and MAPE
  // unchanged and scales MAE linearly.
  const double c = GetParam();
  Rng rng(7);
  std::vector<double> yt(50);
  std::vector<double> yp(50);
  for (std::size_t i = 0; i < 50; ++i) {
    yt[i] = rng.uniform(1.0, 10.0);
    yp[i] = yt[i] * rng.uniform(0.8, 1.2);
  }
  auto scaled = [c](std::vector<double> v) {
    for (auto& x : v) x *= c;
    return v;
  };
  EXPECT_NEAR(ml::r2_score(scaled(yt), scaled(yp)), ml::r2_score(yt, yp),
              1e-9);
  EXPECT_NEAR(ml::mean_absolute_percentage_error(scaled(yt), scaled(yp)),
              ml::mean_absolute_percentage_error(yt, yp), 1e-9);
  EXPECT_NEAR(ml::mean_absolute_error(scaled(yt), scaled(yp)),
              c * ml::mean_absolute_error(yt, yp), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, MetricScaleSweep,
                         ::testing::Values(0.001, 0.5, 3.0, 1000.0));

TEST(MetricPropertyTest, MaeLowerBoundsRmse) {
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> yt(20);
    std::vector<double> yp(20);
    for (std::size_t i = 0; i < 20; ++i) {
      yt[i] = rng.uniform(1.0, 5.0);
      yp[i] = rng.uniform(1.0, 5.0);
    }
    EXPECT_LE(ml::mean_absolute_error(yt, yp),
              ml::root_mean_squared_error(yt, yp) + 1e-12);
  }
}

// ---------- simulator invariants across the config space ----------

class SimulatorInvariants
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  sim::CcsdSimulator simulator_{sim::MachineModel::aurora()};
};

TEST_P(SimulatorInvariants, WorkConservation) {
  // Makespan-based time at n nodes is at least the perfectly-parallel
  // time: t(n) * n >= t(4n) * 4n never holds strictly better than linear,
  // i.e. node-seconds are non-decreasing in node count.
  const auto [o, v, tile] = GetParam();
  const int base = std::max(simulator_.min_nodes(o, v), 5);
  const sim::RunConfig c1{o, v, base, tile};
  const sim::RunConfig c4{o, v, 4 * base, tile};
  const double ns1 = simulator_.iteration_time(c1) * c1.nodes;
  const double ns4 = simulator_.iteration_time(c4) * c4.nodes;
  EXPECT_GE(ns4, ns1 * 0.999);
}

TEST_P(SimulatorInvariants, MoreVirtualsNeverCheaper) {
  const auto [o, v, tile] = GetParam();
  const int nodes = std::max(simulator_.min_nodes(o, v + 200), 50);
  EXPECT_LE(simulator_.iteration_time({o, v, nodes, tile}),
            simulator_.iteration_time({o, v + 200, nodes, tile}));
}

TEST_P(SimulatorInvariants, NoiseBandIsBounded) {
  const auto [o, v, tile] = GetParam();
  const int nodes = std::max(simulator_.min_nodes(o, v), 25);
  const sim::RunConfig cfg{o, v, nodes, tile};
  const double truth = simulator_.iteration_time(cfg);
  Rng rng(static_cast<std::uint64_t>(o * 1000 + v));
  for (int i = 0; i < 200; ++i) {
    const double measured = simulator_.measured_time(cfg, rng);
    EXPECT_GT(measured, 0.6 * truth);
    EXPECT_LT(measured, 1.8 * truth);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimulatorInvariants,
    ::testing::Values(std::tuple{44, 260, 40}, std::tuple{85, 698, 80},
                      std::tuple{134, 951, 90}, std::tuple{146, 1568, 120},
                      std::tuple{280, 1040, 100}));

// ---------- dataset generator invariants across targets ----------

class GeneratorTargetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorTargetSweep, ExactRowCountAndFeasibility) {
  const sim::CcsdSimulator simulator(sim::MachineModel::frontier());
  data::GeneratorOptions opt;
  opt.target_total = GetParam();
  const auto ds = data::generate_dataset(
      simulator, data::frontier_problems(), opt);
  EXPECT_EQ(ds.size(), GetParam());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(simulator.feasible(ds.config(i)));
    EXPECT_GT(ds.target(i), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, GeneratorTargetSweep,
                         ::testing::Values(100u, 333u, 777u, 2454u));

// ---------- split invariants across fractions ----------

class SplitFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionSweep, PartitionAndStratification) {
  const auto tt_src = test::small_campaign(400);
  // Rebuild the union to test splitting itself.
  data::Dataset all;
  for (std::size_t i = 0; i < tt_src.train.size(); ++i) {
    all.add(tt_src.train.config(i), tt_src.train.target(i));
  }
  for (std::size_t i = 0; i < tt_src.test.size(); ++i) {
    all.add(tt_src.test.config(i), tt_src.test.target(i));
  }
  Rng rng(31);
  const auto split = data::stratified_split_fraction(all, GetParam(), rng);
  EXPECT_EQ(split.train.size() + split.test.size(), all.size());
  const double got =
      static_cast<double>(split.test.size()) / static_cast<double>(all.size());
  EXPECT_NEAR(got, GetParam(), 0.01);
  const auto tt = data::apply_split(all, split);
  EXPECT_EQ(tt.test.problems().size(), all.problems().size());
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionSweep,
                         ::testing::Values(0.1, 0.25, 0.4));

// ---------- model-accuracy ordering on the real task ----------

TEST(ModelOrderingTest, TreeEnsemblesBeatLinearOnRuntimeSurface) {
  // The paper's core finding: GB (tree ensembles) beat the linear-family
  // models on the CCSD runtime surface.
  const auto tt = test::small_campaign(500);
  auto evaluate = [&](const std::string& key) {
    auto model = ml::make_model(key);
    if (key == "GB") model->set_params({{"n_estimators", 200.0}});
    model->fit(tt.train.features(), tt.train.targets());
    return ml::r2_score(tt.test.targets(),
                        model->predict(tt.test.features()));
  };
  const double gb = evaluate("GB");
  const double pr = evaluate("PR");
  const double br = evaluate("BR");
  EXPECT_GT(gb, pr);
  EXPECT_GT(gb, br);
  EXPECT_GT(gb, 0.9);
}

}  // namespace
}  // namespace ccpred
