#pragma once

/// \file qr.hpp
/// Householder QR for least-squares — numerically safer than normal
/// equations for the (possibly ill-conditioned) polynomial design matrices.

#include <vector>

#include "ccpred/linalg/matrix.hpp"

namespace ccpred::linalg {

/// Compact Householder QR of an m x n matrix (m >= n).
class QR {
 public:
  /// Factorizes `a`; throws if m < n or a column is (numerically) zero
  /// dependent (rank deficiency).
  explicit QR(const Matrix& a);

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Least-squares solution of min ||A x - b||_2.
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  Matrix qr_;                  // R in the upper triangle, reflectors below
  std::vector<double> rdiag_;  // diagonal of R
};

/// Convenience: least-squares solve of A x = b via QR.
std::vector<double> lstsq(const Matrix& a, const std::vector<double>& b);

}  // namespace ccpred::linalg
