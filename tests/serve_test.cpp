// Tests for the serving subsystem: LRU cache + latency histogram
// utilities, the line protocol, the artifact registry (fallback training
// and hot reload), and the server itself — including the concurrent-
// correctness property that any interleaving of requests produces the
// same recommendations as serial execution.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/latency_histogram.hpp"
#include "ccpred/common/lru_cache.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"
#include "ccpred/sim/solver.hpp"
#include "test_util.hpp"

namespace ccpred::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ccpred_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A small fitted GB on real campaign features (4 columns), fast to train.
ml::GradientBoostingRegressor campaign_gb(int stages = 15) {
  static const auto split = test::small_campaign(250);
  ml::GradientBoostingRegressor model(stages);
  model.fit(split.train.features(), split.train.targets());
  return model;
}

// ---------------------------------------------------------------- LruCache

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_EQ(cache.get(1).value(), 10);  // 1 is now most recent
  cache.put(3, 30);                     // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), 10);
  EXPECT_EQ(cache.get(3).value(), 30);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(LruCacheTest, CountersTrackHitsAndMisses) {
  LruCache<int, int> cache(4);
  EXPECT_FALSE(cache.get(7).has_value());
  cache.put(7, 70);
  EXPECT_TRUE(cache.get(7).has_value());
  EXPECT_TRUE(cache.get(7).has_value());
  EXPECT_EQ(cache.counters().hits, 2u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.counters().hit_rate(), 2.0 / 3.0);
}

TEST(LruCacheTest, PutOverwritesAndRefreshes) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // overwrite refreshes recency, no eviction
  EXPECT_EQ(cache.size(), 2u);
  cache.put(3, 30);  // evicts 2, not 1
  EXPECT_EQ(cache.get(1).value(), 11);
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(LruCacheTest, ZeroCapacityRejected) {
  EXPECT_THROW((LruCache<int, int>(0)), Error);
}

// ------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, QuantilesAreOrderedAndBracketed) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-4);  // 0.1 ms .. 100 ms
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Geometric buckets grow by 1.5x: quantiles are right within that factor.
  EXPECT_NEAR(p50, 0.050, 0.050 * 0.6);
  EXPECT_NEAR(p95, 0.095, 0.095 * 0.6);
  EXPECT_NEAR(h.mean(), 0.05005, 0.002);
}

TEST(LatencyHistogramTest, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(0.01);
  EXPECT_EQ(h.count(), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.record(1e-3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 4000u);
}

// ---------------------------------------------------------------- Protocol

TEST(ProtocolTest, ParsesFlatRecords) {
  const auto rec = parse_record(
      R"({"op":"stq","o":134,"v":951,"machine":"aurora","flag":true})");
  EXPECT_EQ(rec.at("op"), "stq");
  EXPECT_EQ(rec.at("o"), "134");
  EXPECT_EQ(rec.at("machine"), "aurora");
  EXPECT_EQ(rec.at("flag"), "true");
}

TEST(ProtocolTest, ParseRequestFillsTypedFields) {
  const auto req = parse_request(
      R"({"op":"budget","o":99,"v":718,"max_node_hours":2.5,"id":"q1"})");
  EXPECT_EQ(req.op, Op::kBudget);
  EXPECT_EQ(req.o, 99);
  EXPECT_EQ(req.v, 718);
  EXPECT_DOUBLE_EQ(req.max_node_hours, 2.5);
  EXPECT_EQ(req.id, "q1");
  EXPECT_TRUE(req.machine.empty());
}

TEST(ProtocolTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_record("not json"), Error);
  EXPECT_THROW(parse_record(R"({"a":1)"), Error);          // unterminated
  EXPECT_THROW(parse_record(R"({"a":{"b":1}})"), Error);   // nested
  EXPECT_THROW(parse_record(R"({"a":1,"a":2})"), Error);   // duplicate
  EXPECT_THROW(parse_record(R"({"a":1} trailing)"), Error);
  EXPECT_THROW(parse_request(R"({"op":"warp","o":1,"v":2})"), Error);
  EXPECT_THROW(parse_request(R"({"op":"stq","o":1})"), Error);  // missing v
  EXPECT_THROW(parse_request(R"({"o":1,"v":2})"), Error);       // missing op
  EXPECT_THROW(parse_request(R"({"op":"stq","o":"x","v":2})"), Error);
}

TEST(ProtocolTest, ResponseRoundTripsThroughParseRecord) {
  Response r;
  r.ok = true;
  r.op = "stq";
  r.id = "a\"b";  // embedded quote must survive escaping
  r.has_recommendation = true;
  r.nodes = 110;
  r.tile = 90;
  r.time_s = 123.456;
  r.node_hours = 3.7718;
  r.model_version = 42;
  r.sweep_size = 480;
  const auto rec = parse_record(format_response(r));
  EXPECT_EQ(rec.at("ok"), "true");
  EXPECT_EQ(rec.at("id"), "a\"b");
  EXPECT_EQ(rec.at("nodes"), "110");
  EXPECT_DOUBLE_EQ(parse_double(rec.at("time_s")), 123.456);
  EXPECT_EQ(rec.at("model_version"), "42");
}

TEST(ProtocolTest, StatsRequestNeedsNoProblemSize) {
  const auto req = parse_request(R"({"op":"stats"})");
  EXPECT_EQ(req.op, Op::kStats);
}

// -------------------------------------------------------------- SweepCache

TEST(SweepCacheTest, StoresAndEvictsAcrossShards) {
  SweepCache cache(4, 2);
  const auto rec = std::make_shared<const guide::Recommendation>();
  for (int o = 1; o <= 8; ++o) {
    cache.put(SweepKey{"aurora", "gb", 1, o, o * 10}, rec);
  }
  EXPECT_LE(cache.size(), 4u);
  const auto counters = cache.counters();
  EXPECT_GE(counters.evictions, 4u);
  // Most recent key should still be resident.
  EXPECT_NE(cache.get(SweepKey{"aurora", "gb", 1, 8, 80}), nullptr);
}

TEST(SweepCacheTest, VersionIsPartOfTheKey) {
  SweepCache cache(8);
  const auto rec = std::make_shared<const guide::Recommendation>();
  cache.put(SweepKey{"aurora", "gb", 1, 134, 951}, rec);
  EXPECT_NE(cache.get(SweepKey{"aurora", "gb", 1, 134, 951}), nullptr);
  EXPECT_EQ(cache.get(SweepKey{"aurora", "gb", 2, 134, 951}), nullptr);
  EXPECT_EQ(cache.get(SweepKey{"aurora", "rf", 1, 134, 951}), nullptr);
}

// ----------------------------------------------------------- ModelRegistry

TEST(ModelRegistryTest, LoadsPublishedArtifact) {
  const auto dir = scratch_dir("registry_load");
  const auto model = campaign_gb();
  ModelRegistry registry(dir);
  ml::save_gb(model, registry.artifact_path("aurora", "gb"));

  const auto handle = registry.get("aurora", "gb");
  ASSERT_NE(handle.model, nullptr);
  EXPECT_EQ(handle.version, 1u);
  EXPECT_EQ(registry.trainings(), 0u);
  EXPECT_EQ(registry.loads(), 1u);
  // Bit-identical predictions to the published model.
  const auto split = test::small_campaign(250);
  const auto expect = model.predict(split.test.features());
  const auto got = handle.model->predict(split.test.features());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(expect[i], got[i]);
  }
  // Unchanged artifact: same version, no reload.
  EXPECT_EQ(registry.get("aurora", "gb").version, 1u);
  EXPECT_EQ(registry.loads(), 1u);
}

TEST(ModelRegistryTest, HotReloadsOnArtifactChange) {
  const auto dir = scratch_dir("registry_reload");
  ModelRegistry registry(dir);
  const auto path = registry.artifact_path("aurora", "gb");
  ml::save_gb(campaign_gb(10), path);
  const auto first = registry.get("aurora", "gb");
  EXPECT_EQ(first.version, 1u);

  // Publish a different model and force a visible mtime step (filesystem
  // clocks can be coarse).
  ml::save_gb(campaign_gb(20), path);
  fs::last_write_time(path,
                      fs::last_write_time(path) + std::chrono::seconds(2));
  const auto second = registry.get("aurora", "gb");
  EXPECT_EQ(second.version, 2u);
  EXPECT_NE(first.model, second.model);
  // The old handle still works (shared ownership).
  EXPECT_TRUE(first.model->is_fitted());
}

TEST(ModelRegistryTest, TrainsAndCachesWhenArtifactMissing) {
  const auto dir = scratch_dir("registry_train");
  RegistryOptions opt;
  opt.fallback_rows = 150;  // clipped up to one row per config — still small
  opt.gb_estimators = 6;
  ModelRegistry registry(dir, opt);
  const auto handle = registry.get("aurora", "gb");
  ASSERT_NE(handle.model, nullptr);
  EXPECT_TRUE(handle.model->is_fitted());
  EXPECT_EQ(registry.trainings(), 1u);
  EXPECT_TRUE(fs::exists(registry.artifact_path("aurora", "gb")));
  // Second get serves the cached artifact without retraining.
  registry.get("aurora", "gb");
  EXPECT_EQ(registry.trainings(), 1u);
  // A fresh registry over the same directory loads instead of training.
  ModelRegistry again(dir, opt);
  again.get("aurora", "gb");
  EXPECT_EQ(again.trainings(), 0u);
}

TEST(ModelRegistryTest, RejectsUnknownMachineAndKind) {
  ModelRegistry registry(scratch_dir("registry_bad"));
  EXPECT_THROW(registry.get("summit", "gb"), Error);
  EXPECT_THROW(registry.get("aurora", "xgboost"), Error);
}

// ------------------------------------------------------------------ Server

/// Registry + server over one pre-published small GB artifact.
struct ServerFixture {
  explicit ServerFixture(std::size_t cache_capacity = 32,
                         std::size_t threads = 4)
      : dir(scratch_dir("server")), registry(dir) {
    ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
    ServeOptions opt;
    opt.threads = threads;
    opt.cache_capacity = cache_capacity;
    server = std::make_unique<Server>(registry, opt);
  }

  Request stq(int o, int v) {
    Request r;
    r.op = Op::kStq;
    r.o = o;
    r.v = v;
    return r;
  }

  std::string dir;
  ModelRegistry registry;
  std::unique_ptr<Server> server;
};

TEST(ServerTest, MatchesInProcessAdvisorExactly) {
  ServerFixture f;
  const auto handle = f.registry.get("aurora", "gb");
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const guide::Advisor advisor(*handle.model, simulator);

  for (const auto& [o, v] : std::vector<std::pair<int, int>>{
           {44, 260}, {85, 698}, {134, 951}}) {
    Request req = f.stq(o, v);
    const auto stq = f.server->handle(req);
    ASSERT_TRUE(stq.ok) << stq.error;
    const auto expect_stq = advisor.shortest_time(o, v);
    EXPECT_EQ(stq.nodes, expect_stq.config.nodes);
    EXPECT_EQ(stq.tile, expect_stq.config.tile);
    EXPECT_EQ(stq.time_s, expect_stq.predicted_time_s);
    EXPECT_EQ(stq.node_hours, expect_stq.predicted_node_hours);
    EXPECT_EQ(stq.sweep_size, expect_stq.sweep.size());

    req.op = Op::kBq;
    const auto bq = f.server->handle(req);
    const auto expect_bq = advisor.cheapest_run(o, v);
    EXPECT_EQ(bq.nodes, expect_bq.config.nodes);
    EXPECT_EQ(bq.time_s, expect_bq.predicted_time_s);

    req.op = Op::kBudget;
    req.max_node_hours = expect_stq.predicted_node_hours * 0.75;
    const auto budget = f.server->handle(req);
    if (budget.ok) {
      const auto expect_budget =
          advisor.fastest_within_budget(o, v, req.max_node_hours);
      EXPECT_EQ(budget.nodes, expect_budget.config.nodes);
      EXPECT_EQ(budget.time_s, expect_budget.predicted_time_s);
      EXPECT_LE(budget.node_hours, req.max_node_hours);
    } else {
      EXPECT_THROW(advisor.fastest_within_budget(o, v, req.max_node_hours),
                   Error);
    }
  }
}

TEST(ServerTest, RepeatQuestionsHitTheSweepCache) {
  ServerFixture f;
  Request req = f.stq(134, 951);
  const auto first = f.server->handle(req);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.cache_hit);
  req.op = Op::kBq;
  const auto second = f.server->handle(req);
  EXPECT_TRUE(second.cache_hit);  // BQ reuses the STQ sweep
  req.op = Op::kStq;
  const auto third = f.server->handle(req);
  EXPECT_TRUE(third.cache_hit);
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.sweeps_computed, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.requests, 3u);
}

TEST(ServerTest, ErrorsComeBackAsResponsesAndAreCounted) {
  ServerFixture f;
  Request req = f.stq(-3, 100);  // invalid orbital count
  const auto r = f.server->handle(req);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  Request bad_machine = f.stq(44, 260);
  bad_machine.machine = "summit";
  EXPECT_FALSE(f.server->handle(bad_machine).ok);
  EXPECT_EQ(f.server->stats().errors, 2u);
}

TEST(ServerTest, JobEstimatesMatchTheSimulator) {
  ServerFixture f;
  Request req;
  req.op = Op::kJob;
  req.o = 134;
  req.v = 951;
  req.nodes = 110;
  req.tile = 90;
  const auto r = f.server->handle(req);
  ASSERT_TRUE(r.ok) << r.error;
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const auto job = sim::estimate_job(
      simulator, sim::RunConfig{.o = 134, .v = 951, .nodes = 110, .tile = 90});
  EXPECT_EQ(r.total_s, job.total_s);
  EXPECT_EQ(r.iterations, job.iterations);
  EXPECT_EQ(r.node_hours, job.node_hours);
}

TEST(ServerTest, SubmitRunsThroughTheWorkerPool) {
  ServerFixture f;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(f.server->submit(f.stq(85, 698)));
  for (auto& fut : futures) {
    const auto r = fut.get();
    EXPECT_TRUE(r.ok) << r.error;
  }
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.requests, 8u);
  // One sweep total: the rest were cache hits or coalesced onto the leader.
  EXPECT_EQ(stats.sweeps_computed, 1u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 7u);
}

TEST(ServerConcurrencyTest, ParallelRequestsMatchSerialExecution) {
  // The acceptance property: N threads issuing overlapping STQ/BQ/budget
  // requests produce exactly the answers serial execution produces.
  const std::vector<std::pair<int, int>> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}};

  // Serial reference on its own server instance (fresh cache).
  ServerFixture serial_f(32, 1);
  ServerFixture parallel_f(32, 4);

  const auto make_request = [&](int step) {
    const auto& [o, v] = problems[step % problems.size()];
    Request r;
    r.o = o;
    r.v = v;
    switch (step % 3) {
      case 0: r.op = Op::kStq; break;
      case 1: r.op = Op::kBq; break;
      default:
        r.op = Op::kBudget;
        r.max_node_hours = 100.0;
    }
    return r;
  };

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::vector<Response> serial(kThreads * kPerThread);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    serial[i] = serial_f.server->handle(make_request(i));
  }

  std::vector<Response> parallel(kThreads * kPerThread);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int idx = t * kPerThread + i;
        parallel[idx] = parallel_f.server->handle(make_request(idx));
        if (!parallel[idx].ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  for (int i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(parallel[i].nodes, serial[i].nodes) << "request " << i;
    EXPECT_EQ(parallel[i].tile, serial[i].tile) << "request " << i;
    EXPECT_EQ(parallel[i].time_s, serial[i].time_s) << "request " << i;
    EXPECT_EQ(parallel[i].node_hours, serial[i].node_hours)
        << "request " << i;
  }

  // Sweep work must not scale with request count: one sweep per problem
  // size (model version is fixed), everything else cache/coalesce.
  const auto stats = parallel_f.server->stats();
  EXPECT_EQ(stats.sweeps_computed, problems.size());
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServerTest, CacheEvictionKeepsServing) {
  ServerFixture f(/*cache_capacity=*/1, /*threads=*/1);
  const auto a = f.server->handle(f.stq(44, 260));
  const auto b = f.server->handle(f.stq(85, 698));   // evicts (44,260)
  const auto a2 = f.server->handle(f.stq(44, 260));  // recomputed, same answer
  ASSERT_TRUE(a.ok && b.ok && a2.ok);
  EXPECT_EQ(a.nodes, a2.nodes);
  EXPECT_EQ(a.time_s, a2.time_s);
  EXPECT_GE(f.server->stats().cache_evictions, 1u);
  EXPECT_EQ(f.server->stats().sweeps_computed, 3u);
}

// ------------------------------------------------- Advisor sweep reuse

TEST(AdvisorSweepReuseTest, BudgetOverloadMatchesFullSweep) {
  const auto handle_model = campaign_gb();
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const guide::Advisor advisor(handle_model, simulator);
  const auto base = advisor.shortest_time(134, 951);

  const auto direct = advisor.fastest_within_budget(134, 951, 2.0);
  const auto reused = guide::Advisor::fastest_within_budget(base, 2.0);
  EXPECT_EQ(direct.config.nodes, reused.config.nodes);
  EXPECT_EQ(direct.config.tile, reused.config.tile);
  EXPECT_EQ(direct.predicted_time_s, reused.predicted_time_s);

  const auto bq = guide::Advisor::from_sweep(base.sweep,
                                             guide::Objective::kNodeHours);
  const auto expect_bq = advisor.cheapest_run(134, 951);
  EXPECT_EQ(bq.config.nodes, expect_bq.config.nodes);
  EXPECT_EQ(bq.predicted_node_hours, expect_bq.predicted_node_hours);

  EXPECT_THROW(guide::Advisor::fastest_within_budget(base, 1e-9), Error);
  EXPECT_THROW(guide::Advisor::from_sweep({}, guide::Objective::kNodeHours),
               Error);
}

}  // namespace
}  // namespace ccpred::serve
