#pragma once

/// \file error.hpp
/// Error handling for ccpred: a library-wide exception type plus
/// precondition/invariant check macros. Following the C++ Core Guidelines
/// (E.2, I.6) we throw on contract violations rather than aborting, so
/// callers (tests in particular) can observe and recover from misuse.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccpred {

/// Exception thrown on any ccpred contract violation or runtime failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "ccpred check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ::ccpred::Error(os.str());
}

}  // namespace detail
}  // namespace ccpred

/// Check a precondition/invariant; throws ccpred::Error with context on
/// failure. Enabled in all build types: the checked expressions in this
/// library are O(1) and never on an inner loop.
#define CCPRED_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ccpred::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// CCPRED_CHECK with an explanatory message (streamed, e.g. "n=" << n).
#define CCPRED_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream ccpred_os_;                                    \
      ccpred_os_ << msg;                                                \
      ::ccpred::detail::throw_check_failure(#expr, __FILE__, __LINE__,  \
                                            ccpred_os_.str());          \
    }                                                                   \
  } while (0)
