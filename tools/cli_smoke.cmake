# CTest script: generate a small campaign CSV, evaluate it, and ask for
# advice — the CLI's three data-driven subcommands end to end.

set(csv "${WORKDIR}/cli_smoke_campaign.csv")

execute_process(COMMAND "${CLI}" generate --machine aurora --rows 500
                        --seed 3 --out "${csv}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}")
endif()

execute_process(COMMAND "${CLI}" evaluate --data "${csv}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "R\\^2=")
  message(FATAL_ERROR "evaluate failed: ${out}")
endif()

execute_process(COMMAND "${CLI}" advise --data "${csv}" --machine aurora
                        --o 134 --v 951 --budget 8.0
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "fastest")
  message(FATAL_ERROR "advise failed: ${out}")
endif()

file(REMOVE "${csv}")
message(STATUS "CLI smoke OK")
