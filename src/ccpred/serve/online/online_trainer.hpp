#pragma once

/// \file online_trainer.hpp
/// The closed-loop coordinator of the serving layer's online learning:
///
///   report -> FeedbackBuffer -> DriftDetector -> background refit
///          -> ShadowEvaluator -> atomic promotion -> cache invalidation
///
/// Per (machine, kind) stream the trainer:
///  * ingests user-reported measurements on the request hot path: predicts
///    each reported configuration with the serving model, feeds the
///    (predicted, measured) pair to the drift detector, and buffers the
///    row (dedup-keyed, bounded);
///  * grows a live GP surrogate of the feedback stream incrementally —
///    GP::update() absorbs each accepted batch in O(n^2 q), with a full
///    refit every `gp_refit_cadence` batches, mirroring the active-learning
///    loop's incremental_refit / refit_cadence pattern;
///  * schedules a background full refit when drift trips (or on a report
///    cadence): candidate = the stream's model kind retrained on the
///    registry's deterministic fallback campaign blended with the buffered
///    feedback (feedback rows replicated `feedback_weight` times, so a few
///    dozen reports can outvote a 600-row campaign where they overlap);
///  * shadow-evaluates the candidate against the incumbent on a holdout of
///    the newest reports (excluded from training) and, only on a win,
///    atomically republishes through the registry (tmp + rename +
///    note_published) and invalidates the affected sweep-cache shards.
///
/// A failed or losing refit changes nothing: the incumbent keeps serving
/// and the feedback keeps accumulating. All entry points are thread-safe.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ccpred/common/thread_pool.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/data/dataset.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/online/drift_detector.hpp"
#include "ccpred/serve/online/feedback_buffer.hpp"
#include "ccpred/serve/online/shadow_evaluator.hpp"
#include "ccpred/serve/sweep_cache.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"

namespace ccpred::serve::online {

/// Online-learning knobs. The defaults suit a long-running daemon; tests
/// shrink the thresholds and set `synchronous` for determinism.
struct OnlineOptions {
  bool enabled = false;           ///< master switch (serverd --online)
  std::size_t buffer_capacity = 4096;  ///< measurements kept per stream
  DriftOptions drift;             ///< rolling-MAPE drift detection
  /// Accepted reports between cadence-triggered refits; 0 = drift-only.
  std::size_t refit_interval = 0;
  std::size_t min_refit_rows = 32;  ///< buffered rows required to refit
  std::size_t holdout = 16;         ///< newest rows reserved for shadow eval
  /// Relative holdout-MAPE improvement required to promote (0 = any win).
  double min_improvement = 0.0;
  /// Each feedback row appears this many times in the candidate's training
  /// set, weighting recent truth against the synthetic campaign.
  std::size_t feedback_weight = 8;
  /// Blend the registry's deterministic fallback campaign into candidate
  /// training (off = train on feedback alone; only for focused tests).
  bool use_campaign = true;
  /// Run refits inline on the reporting thread instead of the background
  /// pool — deterministic end-to-end tests.
  bool synchronous = false;
  std::size_t gp_seed_rows = 8;     ///< rows before the surrogate first fits
  std::size_t gp_max_rows = 512;    ///< surrogate stops growing here
  std::size_t gp_refit_cadence = 8; ///< full surrogate refit every N batches
};

/// What one report ingest did — echoed to the client.
struct ReportOutcome {
  std::size_t accepted = 0;    ///< measurements stored
  std::size_t duplicates = 0;  ///< byte-exact repeats dropped
  std::size_t rejected = 0;    ///< invalid wall times dropped
  std::size_t buffered = 0;    ///< stream buffer size afterwards
  double rolling_mape = 0.0;   ///< drift window MAPE afterwards
  bool drifting = false;
  bool refit_scheduled = false;
  std::uint64_t model_version = 0;  ///< model that scored the reports
};

/// Aggregated observable state (surfaced through the stats verb).
struct OnlineCounters {
  std::uint64_t reports = 0;       ///< report requests ingested
  std::uint64_t measurements = 0;  ///< individual wall times received
  std::uint64_t duplicates = 0;
  std::uint64_t rejected = 0;
  std::size_t buffered = 0;        ///< rows buffered across streams
  double rolling_mape = 0.0;       ///< worst stream's rolling MAPE
  std::uint64_t drift_events = 0;  ///< transitions into the drifting state
  std::uint64_t incremental_updates = 0;  ///< GP::update() absorptions
  std::uint64_t refits = 0;               ///< background candidates trained
  std::uint64_t shadow_evals = 0;
  std::uint64_t promotions = 0;
  std::uint64_t promotions_rejected = 0;  ///< candidates that lost shadow eval
  std::uint64_t cache_invalidated = 0;    ///< sweeps dropped by promotions
};

/// See file comment. The registry (and cache, when given) must outlive the
/// trainer; the destructor drains in-flight background refits.
class OnlineTrainer {
 public:
  OnlineTrainer(ModelRegistry& registry, SweepCache* cache,
                OnlineOptions options, FaultInjector* fault = nullptr);

  /// Ingests one report: `wall_times` are repeat measurements of `cfg` on
  /// `machine` under model `kind`. Throws ccpred::Error on unknown
  /// machines/kinds (same contract as ModelRegistry::get).
  ReportOutcome ingest(const std::string& machine, const std::string& kind,
                       const sim::RunConfig& cfg,
                       const std::vector<double>& wall_times);

  /// Point-in-time counters across all streams.
  OnlineCounters counters() const;

  /// Blocks until no background refit is in flight (test hook).
  void wait_idle();

  const OnlineOptions& options() const { return options_; }

 private:
  /// All per-(machine, kind) state. `mutex` guards everything but the
  /// buffer (which locks itself — refits snapshot it without holding the
  /// stream lock).
  struct Stream {
    explicit Stream(const OnlineOptions& opt)
        : buffer(opt.buffer_capacity), drift(opt.drift) {}

    std::mutex mutex;
    FeedbackBuffer buffer;
    DriftDetector drift;
    bool was_drifting = false;
    std::uint64_t accepted_at_last_refit = 0;
    bool refit_inflight = false;

    /// Live incremental surrogate of the feedback stream. Fixed
    /// hyper-parameters (no per-update grid search) keep updates cheap and
    /// deterministic; log target/features match the runtime's
    /// multiplicative noise and power-law shape.
    ml::GaussianProcessRegression gp{0.5, 1e-4, /*optimize=*/false,
                                     /*log_target=*/true,
                                     /*log_features=*/true};
    std::vector<MeasuredRun> gp_rows;
    std::size_t gp_batches = 0;
  };

  Stream& stream(const std::string& machine, const std::string& kind);

  /// Absorbs newly accepted rows into the stream's GP surrogate (caller
  /// holds the stream mutex).
  void absorb_into_gp_locked(Stream& s, const std::vector<MeasuredRun>& batch);

  /// The background refit + shadow eval + promotion job. Never throws —
  /// a failed refit leaves the incumbent serving.
  void run_refit(const std::string& machine, const std::string& kind);

  /// The deterministic fallback campaign for `machine`, generated once and
  /// cached (refit path only).
  const data::Dataset& campaign(const std::string& machine);

  ModelRegistry& registry_;
  SweepCache* cache_;  ///< may be null (no sweeps to invalidate)
  OnlineOptions options_;
  FaultInjector* fault_;

  mutable std::mutex streams_mutex_;
  std::map<std::string, std::unique_ptr<Stream>> streams_;

  std::mutex campaigns_mutex_;
  std::map<std::string, data::Dataset> campaigns_;

  /// Serializes the write -> note_published -> reload -> invalidate window
  /// across streams so two promotions can never interleave their swaps.
  std::mutex promote_mutex_;

  std::atomic<std::uint64_t> reports_{0};
  std::atomic<std::uint64_t> measurements_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> drift_events_{0};
  std::atomic<std::uint64_t> incremental_updates_{0};
  std::atomic<std::uint64_t> refits_{0};
  std::atomic<std::uint64_t> shadow_evals_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> promotions_rejected_{0};
  std::atomic<std::uint64_t> cache_invalidated_{0};

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::size_t refits_inflight_ = 0;

  /// Last member: destructs (drains + joins) first, while every field its
  /// refit tasks touch is still alive. One thread — refits are rare and
  /// serializing them bounds their memory.
  ThreadPool refit_pool_{1};
};

}  // namespace ccpred::serve::online
