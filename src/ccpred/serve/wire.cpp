#include "ccpred/serve/wire.hpp"

#include <cstring>

#include "ccpred/common/error.hpp"

namespace ccpred::serve::wire {
namespace {

/// Appends little-endian primitives to a growing frame.
struct Writer {
  std::string& out;

  void u8(std::uint8_t v) { out.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    CCPRED_CHECK_MSG(s.size() <= kMaxStringBytes,
                     "wire: string field of " << s.size()
                                              << " bytes exceeds the cap");
    u32(static_cast<std::uint32_t>(s.size()));
    out.append(s);
  }
};

/// Bounds-checked little-endian reads over one frame payload. Every read
/// throws instead of running past the declared payload, so a hostile
/// length prefix can never make the decoder touch adjacent memory.
struct Reader {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    CCPRED_CHECK_MSG(size - pos >= n,
                     "wire: truncated record (need " << n << " bytes, have "
                                                     << size - pos << ")");
  }
  std::uint8_t u8() {
    need(1);
    return data[pos++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data[pos++]) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    CCPRED_CHECK_MSG(n <= kMaxStringBytes,
                     "wire: string length " << n << " exceeds the cap");
    need(n);
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
};

void write_header(Writer& w, FrameKind kind, std::size_t count,
                  std::size_t payload_bytes) {
  CCPRED_CHECK_MSG(count <= kMaxFrameRecords,
                   "wire: " << count << " records exceed the frame cap");
  CCPRED_CHECK_MSG(payload_bytes <= kMaxFramePayload,
                   "wire: payload of " << payload_bytes
                                       << " bytes exceeds the frame cap");
  for (const unsigned char m : kMagic) w.u8(m);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u16(static_cast<std::uint16_t>(count));
  w.u32(static_cast<std::uint32_t>(payload_bytes));
}

void encode_request(Writer& w, const Request& r) {
  w.u8(static_cast<std::uint8_t>(r.op));
  w.str(r.id);
  w.str(r.machine);
  w.str(r.model);
  w.i32(r.o);
  w.i32(r.v);
  w.i32(r.nodes);
  w.i32(r.tile);
  w.f64(r.max_node_hours);
  w.i32(r.deadline_ms);
  CCPRED_CHECK_MSG(r.wall_times.size() <= kMaxReportBatch,
                   "wire: wall-time batch exceeds " << kMaxReportBatch);
  w.u16(static_cast<std::uint16_t>(r.wall_times.size()));
  for (const double wall : r.wall_times) w.f64(wall);
}

Request decode_request(Reader& rd) {
  Request r;
  const std::uint8_t op = rd.u8();
  CCPRED_CHECK_MSG(op < kNumOps, "wire: invalid op byte "
                                     << static_cast<int>(op));
  r.op = static_cast<Op>(op);
  r.id = rd.str();
  r.machine = rd.str();
  r.model = rd.str();
  r.o = rd.i32();
  r.v = rd.i32();
  r.nodes = rd.i32();
  r.tile = rd.i32();
  r.max_node_hours = rd.f64();
  r.deadline_ms = rd.i32();
  const std::uint16_t walls = rd.u16();
  // Cap enforced before allocating: a hostile count cannot reserve memory.
  CCPRED_CHECK_MSG(walls <= kMaxReportBatch,
                   "wire: wall-time batch of " << walls << " exceeds "
                                               << kMaxReportBatch);
  r.wall_times.reserve(walls);
  for (std::uint16_t i = 0; i < walls; ++i) r.wall_times.push_back(rd.f64());
  validate_request(r);  // same semantic gate as the JSON parse boundary
  return r;
}

// Response flag bits.
constexpr std::uint8_t kFlagOk = 1u << 0;
constexpr std::uint8_t kFlagStale = 1u << 1;
constexpr std::uint8_t kFlagRecommendation = 1u << 2;
constexpr std::uint8_t kFlagJob = 1u << 3;
constexpr std::uint8_t kFlagReport = 1u << 4;
constexpr std::uint8_t kFlagStats = 1u << 5;
constexpr std::uint8_t kFlagCacheHit = 1u << 6;
constexpr std::uint8_t kFlagDrift = 1u << 7;

void encode_stats(Writer& w, const ServerStats& s) {
  w.u64(s.requests);
  w.u64(s.errors);
  w.u64(s.sweeps_computed);
  w.u64(s.coalesced);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
  w.u64(s.cache_evictions);
  w.f64(s.cache_hit_rate);
  w.u64(s.cache_size);
  w.u64(s.queue_depth);
  w.u64(s.deadline_exceeded);
  w.u64(s.shed);
  w.u64(s.stale_served);
  w.u64(s.reload_failures);
  w.u64(s.retries);
  w.u64(s.models_loaded);
  w.u64(s.models_trained);
  w.f64(s.latency_p50_ms);
  w.f64(s.latency_p95_ms);
  w.f64(s.latency_mean_ms);
  w.u64(s.batched_requests);
  w.u64(s.batch_flushes);
  w.u64(s.batch_bypass);
  w.f64(s.batch_size_p50);
  w.f64(s.batch_size_p95);
  w.u64(s.overflow_closed);
  for (std::size_t i = 0; i < kNumOps; ++i) {
    w.u64(s.verb_latency[i].count);
    w.f64(s.verb_latency[i].p50_ms);
    w.f64(s.verb_latency[i].p95_ms);
    w.f64(s.verb_latency[i].p99_ms);
    w.f64(s.verb_latency[i].max_ms);
  }
  w.u8(s.online_enabled ? 1 : 0);
  if (!s.online_enabled) return;
  const OnlineStats& o = s.online;
  w.u64(o.reports);
  w.u64(o.measurements);
  w.u64(o.duplicates);
  w.u64(o.rejected);
  w.u64(o.buffered);
  w.f64(o.rolling_mape);
  w.u64(o.drift_events);
  w.u64(o.incremental_updates);
  w.u64(o.refits);
  w.u64(o.shadow_evals);
  w.u64(o.promotions);
  w.u64(o.promotions_rejected);
  w.u64(o.cache_invalidated);
}

void decode_stats(Reader& rd, ServerStats* s) {
  s->requests = rd.u64();
  s->errors = rd.u64();
  s->sweeps_computed = rd.u64();
  s->coalesced = rd.u64();
  s->cache_hits = rd.u64();
  s->cache_misses = rd.u64();
  s->cache_evictions = rd.u64();
  s->cache_hit_rate = rd.f64();
  s->cache_size = static_cast<std::size_t>(rd.u64());
  s->queue_depth = static_cast<std::size_t>(rd.u64());
  s->deadline_exceeded = rd.u64();
  s->shed = rd.u64();
  s->stale_served = rd.u64();
  s->reload_failures = rd.u64();
  s->retries = rd.u64();
  s->models_loaded = rd.u64();
  s->models_trained = rd.u64();
  s->latency_p50_ms = rd.f64();
  s->latency_p95_ms = rd.f64();
  s->latency_mean_ms = rd.f64();
  s->batched_requests = rd.u64();
  s->batch_flushes = rd.u64();
  s->batch_bypass = rd.u64();
  s->batch_size_p50 = rd.f64();
  s->batch_size_p95 = rd.f64();
  s->overflow_closed = rd.u64();
  for (std::size_t i = 0; i < kNumOps; ++i) {
    s->verb_latency[i].count = rd.u64();
    s->verb_latency[i].p50_ms = rd.f64();
    s->verb_latency[i].p95_ms = rd.f64();
    s->verb_latency[i].p99_ms = rd.f64();
    s->verb_latency[i].max_ms = rd.f64();
  }
  s->online_enabled = rd.u8() != 0;
  if (!s->online_enabled) return;
  OnlineStats& o = s->online;
  o.reports = rd.u64();
  o.measurements = rd.u64();
  o.duplicates = rd.u64();
  o.rejected = rd.u64();
  o.buffered = static_cast<std::size_t>(rd.u64());
  o.rolling_mape = rd.f64();
  o.drift_events = rd.u64();
  o.incremental_updates = rd.u64();
  o.refits = rd.u64();
  o.shadow_evals = rd.u64();
  o.promotions = rd.u64();
  o.promotions_rejected = rd.u64();
  o.cache_invalidated = rd.u64();
}

void encode_response(Writer& w, const Response& r) {
  std::uint8_t flags = 0;
  if (r.ok) flags |= kFlagOk;
  if (r.stale) flags |= kFlagStale;
  if (r.has_recommendation) flags |= kFlagRecommendation;
  if (r.has_job) flags |= kFlagJob;
  if (r.has_report) flags |= kFlagReport;
  if (r.has_stats) flags |= kFlagStats;
  if (r.cache_hit) flags |= kFlagCacheHit;
  if (r.drifting) flags |= kFlagDrift;
  w.u8(flags);
  w.str(r.op);
  w.str(r.id);
  w.str(r.error);
  w.str(r.code);
  if (r.has_recommendation) {
    w.i32(r.nodes);
    w.i32(r.tile);
    w.f64(r.time_s);
    w.f64(r.node_hours);
    w.u64(r.model_version);
    w.u64(r.sweep_size);
  }
  if (r.has_job) {
    w.i32(r.iterations);
    w.f64(r.setup_s);
    w.f64(r.iteration_s);
    w.f64(r.total_s);
    w.f64(r.node_hours);
  }
  if (r.has_report) {
    w.u64(r.accepted);
    w.u64(r.duplicates);
    w.u64(r.buffered);
    w.f64(r.rolling_mape);
    w.u8(r.refit_scheduled ? 1 : 0);
    w.u64(r.model_version);
  }
  if (r.has_stats) encode_stats(w, r.stats);
}

Response decode_response(Reader& rd) {
  Response r;
  const std::uint8_t flags = rd.u8();
  r.ok = (flags & kFlagOk) != 0;
  r.stale = (flags & kFlagStale) != 0;
  r.has_recommendation = (flags & kFlagRecommendation) != 0;
  r.has_job = (flags & kFlagJob) != 0;
  r.has_report = (flags & kFlagReport) != 0;
  r.has_stats = (flags & kFlagStats) != 0;
  r.cache_hit = (flags & kFlagCacheHit) != 0;
  r.drifting = (flags & kFlagDrift) != 0;
  r.op = rd.str();
  r.id = rd.str();
  r.error = rd.str();
  r.code = rd.str();
  if (r.has_recommendation) {
    r.nodes = rd.i32();
    r.tile = rd.i32();
    r.time_s = rd.f64();
    r.node_hours = rd.f64();
    r.model_version = rd.u64();
    r.sweep_size = static_cast<std::size_t>(rd.u64());
  }
  if (r.has_job) {
    r.iterations = rd.i32();
    r.setup_s = rd.f64();
    r.iteration_s = rd.f64();
    r.total_s = rd.f64();
    r.node_hours = rd.f64();
  }
  if (r.has_report) {
    r.accepted = static_cast<std::size_t>(rd.u64());
    r.duplicates = static_cast<std::size_t>(rd.u64());
    r.buffered = static_cast<std::size_t>(rd.u64());
    r.rolling_mape = rd.f64();
    r.refit_scheduled = rd.u8() != 0;
    r.model_version = rd.u64();
  }
  if (r.has_stats) decode_stats(rd, &r.stats);
  return r;
}

template <typename Record, typename EncodeFn>
std::string encode_frame(FrameKind kind, const std::vector<Record>& records,
                         EncodeFn&& encode_one) {
  std::string payload;
  Writer pw{payload};
  for (const Record& rec : records) encode_one(pw, rec);
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  Writer fw{frame};
  write_header(fw, kind, records.size(), payload.size());
  frame.append(payload);
  return frame;
}

void check_kind(const FrameHeader& header, FrameKind want) {
  CCPRED_CHECK_MSG(header.kind == want,
                   "wire: expected a "
                       << (want == FrameKind::kRequest ? "request" : "response")
                       << " frame");
}

}  // namespace

bool starts_frame(unsigned char first) { return first == kMagic[0]; }

FrameStatus probe_frame(const unsigned char* data, std::size_t size,
                        FrameHeader* header, std::string* error) {
  const auto bad = [&](const std::string& why) {
    if (error != nullptr) *error = "wire: " + why;
    return FrameStatus::kBad;
  };
  for (std::size_t i = 0; i < size && i < 4; ++i) {
    if (data[i] != kMagic[i]) return bad("bad frame magic");
  }
  if (size >= 5 && data[4] != kVersion) {
    return bad("unsupported frame version " + std::to_string(data[4]));
  }
  if (size >= 6 && data[5] > static_cast<std::uint8_t>(FrameKind::kResponse)) {
    return bad("unknown frame kind " + std::to_string(data[5]));
  }
  if (size < kHeaderBytes) return FrameStatus::kNeedMore;

  FrameHeader h;
  h.version = data[4];
  h.kind = static_cast<FrameKind>(data[5]);
  h.count = static_cast<std::uint16_t>(data[6]) |
            static_cast<std::uint16_t>(data[7]) << 8;
  h.payload_bytes = static_cast<std::uint32_t>(data[8]) |
                    static_cast<std::uint32_t>(data[9]) << 8 |
                    static_cast<std::uint32_t>(data[10]) << 16 |
                    static_cast<std::uint32_t>(data[11]) << 24;
  if (h.count > kMaxFrameRecords) {
    return bad("frame declares " + std::to_string(h.count) + " records (cap " +
               std::to_string(kMaxFrameRecords) + ")");
  }
  if (h.payload_bytes > kMaxFramePayload) {
    return bad("frame declares a " + std::to_string(h.payload_bytes) +
               "-byte payload (cap " + std::to_string(kMaxFramePayload) + ")");
  }
  if (h.count > 0 && h.payload_bytes == 0) {
    return bad("frame declares records but no payload");
  }
  if (header != nullptr) *header = h;
  return FrameStatus::kHeader;
}

std::string encode_request_frame(const std::vector<Request>& requests) {
  return encode_frame(FrameKind::kRequest, requests,
                      [](Writer& w, const Request& r) { encode_request(w, r); });
}

std::string encode_response_frame(const std::vector<Response>& responses) {
  return encode_frame(
      FrameKind::kResponse, responses,
      [](Writer& w, const Response& r) { encode_response(w, r); });
}

std::vector<Request> decode_request_frame(const FrameHeader& header,
                                          const unsigned char* payload) {
  check_kind(header, FrameKind::kRequest);
  Reader rd{payload, header.payload_bytes};
  std::vector<Request> out;
  out.reserve(header.count);
  for (std::uint16_t i = 0; i < header.count; ++i) {
    out.push_back(decode_request(rd));
  }
  CCPRED_CHECK_MSG(rd.pos == rd.size, "wire: " << rd.size - rd.pos
                                               << " trailing payload bytes");
  return out;
}

std::vector<Response> decode_response_frame(const FrameHeader& header,
                                            const unsigned char* payload) {
  check_kind(header, FrameKind::kResponse);
  Reader rd{payload, header.payload_bytes};
  std::vector<Response> out;
  out.reserve(header.count);
  for (std::uint16_t i = 0; i < header.count; ++i) {
    out.push_back(decode_response(rd));
  }
  CCPRED_CHECK_MSG(rd.pos == rd.size, "wire: " << rd.size - rd.pos
                                               << " trailing payload bytes");
  return out;
}

}  // namespace ccpred::serve::wire
