#pragma once

/// \file blas.hpp
/// Cache-blocked dense kernels (GEMM/GEMV/dot/axpy) used by the matrix
/// factorizations and kernel regressors. Written in plain C++ with
/// register-tiled inner loops; GEMM additionally parallelizes over row
/// blocks through the global thread pool.

#include <cstddef>
#include <vector>

#include "ccpred/linalg/matrix.hpp"

namespace ccpred::linalg {

/// Dot product of two equal-length vectors.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x (equal lengths).
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Returns A * x (x.size() == A.cols()).
std::vector<double> gemv(const Matrix& a, const std::vector<double>& x);

/// Returns A^T * x (x.size() == A.rows()).
std::vector<double> gemv_transposed(const Matrix& a,
                                    const std::vector<double>& x);

/// Returns A * B (dimension-checked), blocked and multi-threaded.
Matrix gemm(const Matrix& a, const Matrix& b);

/// Returns A^T * A (n x n symmetric, only needs A once).
Matrix syrk_at_a(const Matrix& a);

/// Returns A * A^T.
Matrix syrk_a_at(const Matrix& a);

}  // namespace ccpred::linalg
