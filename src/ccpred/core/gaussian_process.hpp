#pragma once

/// \file gaussian_process.hpp
/// Gaussian-process regression (paper §3.1 "GP") with an RBF kernel plus
/// white noise. Provides the posterior predictive standard deviation that
/// drives the uncertainty-sampling active-learning strategy (Algorithm 1).

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/kernels.hpp"
#include "ccpred/core/regressor.hpp"
#include "ccpred/data/scaler.hpp"
#include "ccpred/exec/engine_mode.hpp"
#include "ccpred/linalg/cholesky.hpp"

namespace ccpred::ml {

/// Parameters: "gamma" (RBF width), "noise" (white-noise variance added to
/// the diagonal), "optimize" (1 = grid-search gamma/noise by marginal
/// likelihood on fit, 0 = keep as set), "log_target" (1 = model log(y),
/// the exact likelihood under the machines' multiplicative run-to-run
/// noise; predictions are transformed back with the delta method),
/// "log_features" (1 = kernel operates on log-transformed features —
/// runtime is a power law in the orbital counts and node count, so
/// distances in log space are the natural metric; features must be > 0).
/// An additional parameter "engine" (0 = fast, 1 = reference) selects the
/// compute engine. The fast engine caches the pairwise squared-distance
/// matrix once per fit (every grid candidate's Gram matrix is then an
/// elementwise exp; noise only touches the diagonal), factors with the
/// blocked parallel Cholesky, and batches all predictive variances into one
/// multi-RHS triangular solve. The reference engine is the original
/// per-candidate / per-row path, kept for tests and the speedup gates.
class GaussianProcessRegression : public UncertaintyRegressor {
 public:
  /// The executor layer's shared reference-vs-fast convention.
  using Engine = exec::EngineMode;

  explicit GaussianProcessRegression(double gamma = 0.5, double noise = 1e-4,
                                     bool optimize = true,
                                     bool log_target = false,
                                     bool log_features = false);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  void predict_with_std(const linalg::Matrix& x, std::vector<double>& mean,
                        std::vector<double>& std) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return chol_ != nullptr; }

  /// Incremental refit: absorbs newly labeled rows by extending the cached
  /// distance matrix and Cholesky factor in O(n^2 q) instead of the O(n^3)
  /// from-scratch fit. Hyper-parameters and the feature/target scalers stay
  /// frozen at their last full-fit values (rescaling would invalidate the
  /// cached factor) — the active-learning loop refits from scratch on a
  /// configurable cadence to absorb the drift.
  void update(const linalg::Matrix& x_new,
              const std::vector<double>& y_new) override;
  bool supports_incremental_update() const override { return true; }

  void set_engine(Engine engine) { engine_ = engine; }
  Engine engine() const { return engine_; }

  /// Log marginal likelihood of the training data under the current
  /// hyper-parameters (computed during fit).
  double log_marginal_likelihood() const { return lml_; }

  /// RBF gamma in effect after fitting (post-optimization).
  double gamma() const { return kernel_.gamma; }

 private:
  void fit_with_gamma(double gamma);
  void factor_and_score(linalg::Matrix k);
  linalg::Matrix maybe_log(const linalg::Matrix& x) const;

  Kernel kernel_;
  double noise_;
  bool optimize_;
  bool log_target_;
  bool log_features_;
  Engine engine_ = Engine::kFast;
  double lml_ = 0.0;
  data::StandardScaler scaler_;
  data::TargetScaler y_scaler_;
  linalg::Matrix x_train_;
  linalg::Matrix dist2_;  // cached pairwise squared distances (fast engine)
  std::vector<double> yz_;
  std::vector<double> alpha_;  // K^{-1} y
  std::unique_ptr<linalg::Cholesky> chol_;
};

}  // namespace ccpred::ml
