#pragma once

/// \file split.hpp
/// Train/test splitting. The paper evaluates STQ/BQ per problem size, so
/// the split must be stratified by (O, V): every problem keeps ~the same
/// test fraction and therefore appears in both sets.

#include <cstddef>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/data/dataset.hpp"

namespace ccpred::data {

/// Row-index partition of a dataset.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified split by problem (O, V): each stratum contributes ~test_count
/// * |stratum| / n test rows (largest-remainder rounding to hit test_count
/// exactly). Requires 0 < test_count < dataset size.
SplitIndices stratified_split(const Dataset& dataset, std::size_t test_count,
                              Rng& rng);

/// Stratified split by fraction (e.g. 0.25 for the paper's 75/25).
SplitIndices stratified_split_fraction(const Dataset& dataset,
                                       double test_fraction, Rng& rng);

/// Post-processes a split so that every distinct run configuration with at
/// least two measurements keeps at least one of them in the training set
/// (group-coverage): any fully-held-out configuration swaps one test row
/// with a same-problem train row whose configuration stays covered. Set
/// sizes are preserved. Mirrors the coverage the paper's denser campaigns
/// had by construction; without it a handful of corner configurations can
/// dominate MAPE.
void ensure_config_coverage(const Dataset& dataset, SplitIndices& split);

/// Materialized train/test datasets.
struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Applies a SplitIndices to a dataset.
TrainTest apply_split(const Dataset& dataset, const SplitIndices& split);

}  // namespace ccpred::data
