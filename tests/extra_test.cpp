// Second-wave tests: cross-cutting edge cases and equivalence properties
// that the per-module suites don't cover.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <queue>
#include <set>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/kernel_ridge.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/core/svr.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/sim/scheduler.hpp"
#include "test_util.hpp"

namespace ccpred {
namespace {

// ---------- scheduler: bulk water-fill equals exact greedy ----------

/// Brute-force greedy list scheduler (task-by-task, min-heap).
double exact_greedy_makespan(const std::vector<sim::TaskGroup>& groups_in,
                             int workers) {
  auto groups = groups_in;
  std::sort(groups.begin(), groups.end(),
            [](const sim::TaskGroup& a, const sim::TaskGroup& b) {
              return a.duration_s > b.duration_s;
            });
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < workers; ++i) heap.emplace(0.0, i);
  std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
  for (const auto& g : groups) {
    for (std::int64_t t = 0; t < g.count; ++t) {
      auto [l, i] = heap.top();
      heap.pop();
      load[static_cast<std::size_t>(i)] = l + g.duration_s;
      heap.emplace(load[static_cast<std::size_t>(i)], i);
    }
  }
  double m = 0.0;
  for (double l : load) m = std::max(m, l);
  return m;
}

class SchedulerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerEquivalence, BulkPathMatchesExactGreedyWithinOneTask) {
  Rng rng(GetParam());
  std::vector<sim::TaskGroup> groups;
  double max_d = 0.0;
  for (int g = 0; g < 4; ++g) {
    const double d = rng.uniform(0.05, 2.0);
    max_d = std::max(max_d, d);
    // Counts large enough to exercise the water-fill bulk path.
    groups.push_back(sim::TaskGroup{d, rng.uniform_int(100, 5000)});
  }
  const int workers = static_cast<int>(rng.uniform_int(3, 40));
  const double fast = sim::lpt_makespan(groups, workers);
  const double exact = exact_greedy_makespan(groups, workers);
  // The bulk water-fill may deviate from task-by-task greedy by at most
  // one task duration.
  EXPECT_NEAR(fast, exact, max_d + 1e-9);
  // And never below the work lower bound.
  EXPECT_GE(fast, sim::total_work(groups) / workers - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence,
                         ::testing::Values(1u, 7u, 23u, 91u, 1234u, 777u));

// ---------- model determinism ----------

TEST(DeterminismTest, GradientBoostingBitReproducible) {
  const auto s = test::make_nonlinear(200, 0.1, 5);
  ml::GradientBoostingRegressor a(100, 0.1, ml::TreeOptions{.max_depth = 5},
                                  0.7, 99);
  ml::GradientBoostingRegressor b(100, 0.1, ml::TreeOptions{.max_depth = 5},
                                  0.7, 99);
  a.fit(s.x, s.y);
  b.fit(s.x, s.y);
  const auto pa = a.predict(s.x);
  const auto pb = b.predict(s.x);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(DeterminismTest, PaperDatasetStableAcrossCalls) {
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const auto a = data::paper_dataset(simulator, 7);
  const auto b = data::paper_dataset(simulator, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_DOUBLE_EQ(a.target(i), b.target(i));
  }
}

TEST(DeterminismTest, CloneTrainsToIdenticalModel) {
  const auto s = test::make_nonlinear(150, 0.05, 6);
  for (const char* key : {"DT", "RF", "GB"}) {
    auto original = ml::make_model(key);
    if (std::string(key) != "DT") {
      original->set_params({{"n_estimators", 25.0}});
    }
    auto copy = original->clone();
    original->fit(s.x, s.y);
    copy->fit(s.x, s.y);
    const auto pa = original->predict(s.x);
    const auto pb = copy->predict(s.x);
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_DOUBLE_EQ(pa[i], pb[i]) << key;
    }
  }
}

// ---------- SVR convergence controls ----------

TEST(SvrControlTest, MaxSweepsBoundsWork) {
  const auto s = test::make_nonlinear(150, 0.05, 7);
  ml::SupportVectorRegression svr(10.0, 0.05, 0.5);
  svr.set_params({{"max_sweeps", 3.0}});
  svr.fit(s.x, s.y);
  EXPECT_LE(svr.sweeps_used(), 3);
  // Loose tolerance converges in fewer sweeps than a tight one.
  ml::SupportVectorRegression loose(10.0, 0.05, 0.5);
  loose.set_params({{"tol", 1e-1}});
  loose.fit(s.x, s.y);
  ml::SupportVectorRegression tight(10.0, 0.05, 0.5);
  tight.set_params({{"tol", 1e-6}, {"max_sweeps", 500.0}});
  tight.fit(s.x, s.y);
  EXPECT_LE(loose.sweeps_used(), tight.sweeps_used());
}

// ---------- kernel ridge with polynomial kernel ----------

TEST(KernelRidgePolyTest, FitsPolynomialTarget) {
  Rng rng(8);
  linalg::Matrix x(150, 2);
  std::vector<double> y(150);
  for (std::size_t i = 0; i < 150; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = (x(i, 0) + 2.0 * x(i, 1)) * (x(i, 0) + 2.0 * x(i, 1));
  }
  ml::KernelRidgeRegression model(
      ml::Kernel{.type = ml::KernelType::kPolynomial, .gamma = 1.0,
                 .coef0 = 1.0, .degree = 2},
      1e-4);
  model.fit(x, y);
  EXPECT_GT(ml::r2_score(y, model.predict(x)), 0.999);
}

// ---------- generator: tile rotation covers the menu ----------

TEST(GeneratorCoverageTest, UnionOfProblemsCoversTileMenu) {
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const auto ds = data::paper_dataset(simulator);
  std::set<int> tiles;
  for (std::size_t i = 0; i < ds.size(); ++i) tiles.insert(ds.config(i).tile);
  // Each problem sweeps only 5 tiles, but the rotated union must cover
  // most of the 15-entry machine menu.
  EXPECT_GE(tiles.size(), 10u);
}

TEST(GeneratorCoverageTest, RepeatCountsBalanced) {
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  data::GeneratorOptions opt;
  opt.target_total = 300;
  const std::vector<data::Problem> probs = {{134, 951}};
  const auto ds = data::generate_dataset(simulator, probs, opt);
  std::map<std::pair<int, int>, int> counts;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    counts[{ds.config(i).nodes, ds.config(i).tile}]++;
  }
  int lo = 1 << 30;
  int hi = 0;
  for (const auto& [key, c] : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LE(hi - lo, 1);  // round-robin: counts differ by at most one
}

// ---------- predict_one convenience ----------

TEST(PredictOneTest, MatchesBatchPrediction) {
  const auto s = test::make_linear(100, 0.0, 9);
  auto model = ml::make_model("KR");
  model->fit(s.x, s.y);
  const auto batch = model->predict(s.x);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(model->predict_one(s.x.row(i)), batch[i], 1e-12);
  }
}

// ---------- zoo: GB wins on the runtime surface against every model ----------

TEST(PaperFindingTest, GbBestOfZooOnRuntimeSurface) {
  const auto tt = test::small_campaign(600, 17);
  double gb_r2 = 0.0;
  double best_other = -1e300;
  for (const auto& entry : ml::model_zoo()) {
    auto model = entry.make();
    if (entry.key == "GB") {
      model->set_params({{"n_estimators", 300.0}});
    } else if (entry.key == "RF") {
      model->set_params({{"n_estimators", 60.0}});
    } else if (entry.key == "AB") {
      model->set_params({{"n_estimators", 30.0}});
    }
    model->fit(tt.train.features(), tt.train.targets());
    const double r2 = ml::r2_score(tt.test.targets(),
                                   model->predict(tt.test.features()));
    if (entry.key == "GB") {
      gb_r2 = r2;
    } else {
      best_other = std::max(best_other, r2);
    }
  }
  // GB need not beat every model by a margin, but it must be competitive
  // with the best and clearly positive — the paper's ranking.
  EXPECT_GT(gb_r2, 0.9);
  EXPECT_GT(gb_r2, best_other - 0.03);
}

}  // namespace
}  // namespace ccpred
