#include "ccpred/core/polynomial.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::ml {
namespace {

void enumerate(std::size_t dims, int remaining, std::vector<int>& current,
               std::vector<std::vector<int>>& out) {
  if (current.size() == dims) {
    int total = 0;
    for (int e : current) total += e;
    if (total >= 1) out.push_back(current);
    return;
  }
  for (int e = 0; e <= remaining; ++e) {
    current.push_back(e);
    enumerate(dims, remaining - e, current, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<std::vector<int>> monomial_exponents(std::size_t dims,
                                                 int degree) {
  CCPRED_CHECK_MSG(dims > 0, "need at least one feature");
  CCPRED_CHECK_MSG(degree >= 1, "polynomial degree must be >= 1");
  std::vector<std::vector<int>> out;
  std::vector<int> current;
  enumerate(dims, degree, current, out);
  return out;
}

linalg::Matrix polynomial_expand(
    const linalg::Matrix& x, const std::vector<std::vector<int>>& exponents) {
  CCPRED_CHECK_MSG(!exponents.empty(), "empty monomial set");
  for (const auto& e : exponents) {
    CCPRED_CHECK_MSG(e.size() == x.cols(), "exponent arity mismatch");
  }
  linalg::Matrix out(x.rows(), exponents.size());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* xi = x.row_ptr(i);
    for (std::size_t m = 0; m < exponents.size(); ++m) {
      double v = 1.0;
      for (std::size_t c = 0; c < exponents[m].size(); ++c) {
        for (int e = 0; e < exponents[m][c]; ++e) v *= xi[c];
      }
      out(i, m) = v;
    }
  }
  return out;
}

PolynomialRegression::PolynomialRegression(int degree, double alpha)
    : degree_(degree), alpha_(alpha), linear_(alpha) {
  CCPRED_CHECK_MSG(degree >= 1 && degree <= 6,
                   "polynomial degree must be in [1, 6]");
}

void PolynomialRegression::fit(const linalg::Matrix& x,
                               const std::vector<double>& y) {
  exponents_ = monomial_exponents(x.cols(), degree_);
  linear_ = RidgeRegression(alpha_);
  linear_.fit(polynomial_expand(x, exponents_), y);
}

std::vector<double> PolynomialRegression::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "PolynomialRegression::predict before fit");
  return linear_.predict(polynomial_expand(x, exponents_));
}

std::unique_ptr<Regressor> PolynomialRegression::clone() const {
  return std::make_unique<PolynomialRegression>(degree_, alpha_);
}

const std::string& PolynomialRegression::name() const {
  static const std::string n = "PR";
  return n;
}

void PolynomialRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "degree") {
      const int d = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(d >= 1 && d <= 6, "polynomial degree must be in [1,6]");
      degree_ = d;
    } else if (key == "alpha") {
      CCPRED_CHECK_MSG(value >= 0.0, "alpha must be >= 0");
      alpha_ = value;
    } else {
      throw Error("PolynomialRegression: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
