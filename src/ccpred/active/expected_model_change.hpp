#pragma once

/// \file expected_model_change.hpp
/// Expected model change (EMC) — the third query-strategy family the
/// paper's §3.4 describes: query the experiments whose labels would move
/// the model the most, quantified by the expected gradient norm.
///
/// For squared loss the gradient of a candidate (x, y) with respect to a
/// linear(ized) parameterization is (y - f(x)) * phi(x); taking the
/// expectation of |y - f(x)| under the model's predictive distribution
/// gives  score(x) ∝ std(x) * ||phi(x)||  with phi(x) the standardized
/// feature vector plus bias. Like uncertainty sampling this needs a model
/// with predictive uncertainty, but it additionally prefers points far
/// from the feature centroid — the configurations with the most leverage.

#include "ccpred/active/strategy.hpp"
#include "ccpred/data/scaler.hpp"

namespace ccpred::al {

/// argsort(-std * ||phi||)[:query_size] over the unlabeled pool.
class ExpectedModelChange : public QueryStrategy {
 public:
  const std::string& name() const override;

  /// `fitted_model` must be an UncertaintyRegressor; throws otherwise.
  std::vector<std::size_t> select(const Pool& pool,
                                  const ml::Regressor& fitted_model,
                                  std::size_t query_size, Rng& rng) override;
};

}  // namespace ccpred::al
