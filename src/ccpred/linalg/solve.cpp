#include "ccpred/linalg/solve.hpp"

#include "ccpred/linalg/blas.hpp"
#include "ccpred/linalg/cholesky.hpp"

namespace ccpred::linalg {

std::vector<double> ridge_solve(const Matrix& a, const std::vector<double>& b,
                                double lambda) {
  CCPRED_CHECK_MSG(lambda >= 0.0, "ridge lambda must be >= 0");
  CCPRED_CHECK(a.rows() == b.size());
  Matrix gram = syrk_at_a(a);
  gram.add_diagonal(lambda);
  const auto rhs = gemv_transposed(a, b);
  return spd_solve_with_jitter(std::move(gram), rhs);
}

std::vector<double> spd_solve_with_jitter(Matrix k, const std::vector<double>& b,
                                          double jitter, int max_tries) {
  return spd_factor_with_jitter(std::move(k), jitter, max_tries).solve(b);
}

Cholesky spd_factor_with_jitter(Matrix k, double jitter, int max_tries) {
  double added = 0.0;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    try {
      return Cholesky(k);
    } catch (const Error&) {
      const double bump = (attempt == 0) ? jitter : added;
      k.add_diagonal(bump);
      added += bump;
    }
  }
  throw Error("spd_solve_with_jitter: matrix not positive definite even "
              "after jitter");
}

}  // namespace ccpred::linalg
