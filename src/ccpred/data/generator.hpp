#pragma once

/// \file generator.hpp
/// Trace-collection campaign generator: sweeps (nodes, tile) configurations
/// for every problem size on a simulated machine and records one measured
/// CCSD-iteration time per configuration — the stand-in for the paper's
/// batch-queue experiment campaigns on Aurora and Frontier (Table 1).

#include <cstdint>
#include <vector>

#include "ccpred/data/dataset.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"
#include "ccpred/sim/sim_engine.hpp"

namespace ccpred::data {

/// Campaign parameters.
struct GeneratorOptions {
  std::uint64_t seed = 2025;
  /// Total rows to generate; every configuration is measured at least once
  /// and surplus rows are repeated (independent-noise) measurements.
  /// 0 means "one measurement per feasible configuration".
  std::size_t target_total = 0;
  /// At most this many node counts swept per problem.
  std::size_t max_node_values = 7;
  /// At most this many tile sizes swept per problem.
  std::size_t max_tile_values = 5;
  /// Simulation strategy. kFast labels through the memoized parallel
  /// engine; kReference labels serially from scratch. Both produce
  /// bit-identical rows (each configuration draws its noise from its own
  /// measurement stream — see sim::measurement_stream_seed).
  sim::SimEngineMode engine_mode = sim::SimEngineMode::kFast;
  /// Optional externally owned engine (must wrap `simulator`); lets a
  /// figure pipeline share one SimCache across campaign regenerations and
  /// sweeps. nullptr means "use a private engine with `engine_mode`".
  sim::SimEngine* shared_engine = nullptr;
};

/// Node counts swept for one problem on one machine: the machine's node
/// menu clipped to [memory-feasible minimum, work-dependent maximum] —
/// nobody queues a 44-orbital molecule on 800 nodes.
std::vector<int> node_grid(const sim::CcsdSimulator& simulator,
                           const Problem& p);

/// Generates the measurement campaign for `problems` on `simulator`.
/// Rows are deterministic given options.seed — independent of engine mode,
/// thread count and evaluation order.
Dataset generate_dataset(const sim::CcsdSimulator& simulator,
                         const std::vector<Problem>& problems,
                         const GeneratorOptions& options);

/// The paper's dataset for a machine ("aurora" -> 2329 rows, "frontier" ->
/// 2454 rows, per Table 1), using that machine's problem list.
Dataset paper_dataset(const sim::CcsdSimulator& simulator,
                      std::uint64_t seed = 2025);

/// Paper Table 1 totals.
std::size_t paper_total_rows(const std::string& machine_name);
/// Paper Table 1 test-set sizes.
std::size_t paper_test_rows(const std::string& machine_name);

}  // namespace ccpred::data
