#pragma once

/// \file feedback_buffer.hpp
/// Bounded, dedup-keyed, thread-safe store of measured runs reported back
/// by users — the raw material of the serving layer's online learning
/// loop. The buffer keeps the most recent `capacity` distinct
/// measurements per stream (oldest evicted first) and drops exact
/// duplicates, so a client retry loop re-delivering the same report can
/// never skew training toward repeated rows.
///
/// A "duplicate" is byte-exact: same (o, v, nodes, tile) and the same
/// wall-time bit pattern. Two genuinely independent measurements of the
/// same configuration differ in their noise and are both kept.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace ccpred::serve::online {

/// One user-reported measurement, plus what the serving model predicted
/// for it at ingest time (the residual feeds drift detection).
struct MeasuredRun {
  int o = 0;
  int v = 0;
  int nodes = 0;
  int tile = 0;
  double wall_time_s = 0.0;  ///< measured per-iteration wall time
  double predicted_s = 0.0;  ///< what the served model predicted at ingest
  std::uint64_t model_version = 0;  ///< model that made the prediction
  std::uint64_t seq = 0;            ///< ingest order within the buffer
};

/// Outcome of one add() call.
enum class AddResult {
  kAccepted,   ///< stored (possibly evicting the oldest row)
  kDuplicate,  ///< byte-identical to a buffered row; dropped
  kRejected,   ///< non-finite or non-positive wall time; dropped
};

/// Bounded FIFO of measured runs with duplicate suppression. Thread-safe.
class FeedbackBuffer {
 public:
  explicit FeedbackBuffer(std::size_t capacity);

  /// Stores `run` unless it is invalid or a byte-exact duplicate of a
  /// buffered row. Assigns `run.seq` on acceptance. When the buffer is
  /// full the oldest row (and its dedup key) is evicted first.
  AddResult add(MeasuredRun run);

  /// Chronological copy (oldest first) of everything buffered.
  std::vector<MeasuredRun> snapshot() const;

  /// The most recent `n` rows, oldest of them first.
  std::vector<MeasuredRun> recent(std::size_t n) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Total rows ever accepted (monotonic; eviction does not decrease it).
  std::uint64_t accepted() const;

 private:
  struct DedupKey {
    int o, v, nodes, tile;
    std::uint64_t wall_bits;

    friend bool operator==(const DedupKey&, const DedupKey&) = default;
  };
  struct DedupKeyHash {
    std::size_t operator()(const DedupKey& k) const;
  };

  static DedupKey key_of(const MeasuredRun& run);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<MeasuredRun> runs_;  ///< front = oldest
  std::unordered_set<DedupKey, DedupKeyHash> keys_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ccpred::serve::online
