/// Quickstart: the 60-second tour of ccpred.
///
/// 1. Build a simulated machine (the stand-in for a real supercomputer).
/// 2. Run a small trace-collection campaign to get training data.
/// 3. Train the paper's Gradient Boosting runtime model.
/// 4. Predict the wall time of an unseen configuration and compare against
///    a fresh measurement.

#include <cstdio>

#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"

int main() {
  using namespace ccpred;

  // A machine model parameterized like ALCF Aurora (6 GPUs/node).
  sim::CcsdSimulator simulator(sim::MachineModel::aurora());

  // Collect a small campaign: ~1400 measured CCSD iterations across the
  // paper's problem sizes.
  data::GeneratorOptions options;
  options.seed = 7;
  options.target_total = 1400;
  const auto dataset = data::generate_dataset(
      simulator, data::aurora_problems(), options);
  std::printf("campaign: %zu measured runs over %zu problem sizes\n",
              dataset.size(), dataset.problems().size());

  // 75/25 split, stratified by problem size.
  Rng rng(1);
  auto split = data::stratified_split_fraction(dataset, 0.25, rng);
  data::ensure_config_coverage(dataset, split);
  const auto tt = data::apply_split(dataset, split);

  // The paper's production model: GB(750 trees, depth 10).
  auto model = ml::make_paper_gb();
  model->fit(tt.train.features(), tt.train.targets());

  const auto scores =
      ml::score_all(tt.test.targets(), model->predict(tt.test.features()));
  std::printf("held-out accuracy: R^2=%.3f MAE=%.2fs MAPE=%.3f\n", scores.r2,
              scores.mae, scores.mape);

  // Ask about an unseen configuration.
  const sim::RunConfig config{.o = 120, .v = 900, .nodes = 150, .tile = 90};
  const double predicted =
      model->predict_one({static_cast<double>(config.o),
                          static_cast<double>(config.v),
                          static_cast<double>(config.nodes),
                          static_cast<double>(config.tile)});
  Rng measure(99);
  const double measured = simulator.measured_time(config, measure);
  std::printf(
      "O=%d V=%d nodes=%d tile=%d: predicted %.1fs, measured %.1fs "
      "(%.1f%% off)\n",
      config.o, config.v, config.nodes, config.tile, predicted, measured,
      100.0 * std::abs(predicted - measured) / measured);
  return 0;
}
