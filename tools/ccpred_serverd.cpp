/// ccpred_serverd — the recommendation-serving daemon.
///
/// Subcommands:
///   train --artifacts DIR --machine aurora|frontier [--model gb|rf]
///         [--rows N] [--seed S] [--estimators N]
///       Run a simulated trace-collection campaign, train the model and
///       publish the artifact as DIR/<machine>-<model>.model.
///   serve --artifacts DIR [--default-machine M] [--default-model gb|rf]
///         [--threads N] [--cache N] [--port P] [--serial]
///         [--max-queue N] [--fault-seed S] [--fault-artifact P]
///         [--fault-sweep P] [--fault-sweep-ms MS] [--fault-stall P]
///         [--fault-stall-ms MS] [--fault-cache P] [--fault-cache-ms MS]
///       Serve line-protocol requests (see serve/protocol.hpp) from stdin,
///       one response line per request line, in request order. Requests are
///       pipelined through the worker pool unless --serial is given. With
///       --port, additionally listen on 127.0.0.1:P; every connection
///       speaks the same protocol. EOF on stdin shuts the server down and
///       prints a final stats line to stderr.
///
///       --max-queue bounds the worker backlog: beyond it, requests are
///       answered immediately with code="overloaded" (TCP connections
///       retry a few times with jittered backoff before passing the
///       rejection through). The --fault-* flags arm the deterministic
///       FaultInjector for chaos drills; see serve/fault_injector.hpp.
///
///       --online 1 activates the closed-loop online learner: the `report`
///       verb ingests measured runs, drift against served predictions
///       triggers background refits, and candidates that win shadow
///       evaluation are atomically promoted (see serve/online/). The
///       --online-* flags tune its thresholds.
///
/// Missing artifacts are trained on first use (train-and-cache), so
/// `serve` works on an empty directory — pre-train with `train` to make
/// startup instant and answers reproducible across deployments.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"

namespace {

using namespace ccpred;

/// Minimal --key value argument parser (same contract as ccpred_cli: a
/// trailing flag without a value is a hard error).
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; i += 2) {
    CCPRED_CHECK_MSG(std::strncmp(argv[i], "--", 2) == 0,
                     "expected --flag, got '" << argv[i] << "'");
    CCPRED_CHECK_MSG(i + 1 < argc,
                     "flag '" << argv[i] << "' is missing a value");
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags,
                 const std::string& key) {
  const auto it = flags.find(key);
  CCPRED_CHECK_MSG(it != flags.end(), "missing required flag --" << key);
  return it->second;
}

std::string get_or(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

serve::RegistryOptions registry_options(
    const std::map<std::string, std::string>& flags) {
  serve::RegistryOptions opt;
  opt.fallback_rows =
      static_cast<std::size_t>(parse_int(get_or(flags, "rows", "600")));
  opt.fallback_seed =
      static_cast<std::uint64_t>(parse_int(get_or(flags, "seed", "2025")));
  if (flags.count("estimators")) {
    const int n = static_cast<int>(parse_int(flags.at("estimators")));
    opt.gb_estimators = n;
    opt.rf_estimators = n;
  }
  return opt;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  serve::ModelRegistry registry(need(flags, "artifacts"),
                                registry_options(flags));
  const std::string machine = need(flags, "machine");
  const std::string kind = get_or(flags, "model", "gb");
  const std::string path = registry.train_artifact(machine, kind);
  std::printf("trained %s/%s artifact: %s\n", machine.c_str(), kind.c_str(),
              path.c_str());
  return 0;
}

/// One protocol line in, one response line out (used by both the stdin
/// --serial path and TCP connections).
std::string answer_line(serve::Server& server, const std::string& line) {
  try {
    return serve::format_response(server.handle(serve::parse_request(line)));
  } catch (const std::exception& e) {
    return serve::format_response(serve::error_response(e.what()));
  }
}

/// Sleeps for a jittered exponential backoff: base 2^attempt ms, scaled by
/// a uniform factor in [0.5, 1.5) so retry storms decorrelate.
void backoff_sleep(Rng& rng, int attempt, double base_ms = 1.0) {
  const double ms =
      base_ms * static_cast<double>(1u << attempt) * rng.uniform(0.5, 1.5);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Answers one TCP request line through the bounded queue, retrying shed
/// requests a few times with jittered backoff before passing the
/// overloaded response through to the client.
std::string answer_line_with_retry(serve::Server& server,
                                   const std::string& line, Rng& rng) {
  serve::Request req;
  try {
    req = serve::parse_request(line);
  } catch (const std::exception& e) {
    return serve::format_response(serve::error_response(e.what()));
  }
  constexpr int kMaxRetries = 4;
  serve::Response response;
  for (int attempt = 0;; ++attempt) {
    response = server.submit(req).get();
    if (response.code != "overloaded" || attempt >= kMaxRetries) break;
    server.record_retries(1);
    backoff_sleep(rng, attempt);
  }
  return serve::format_response(response);
}

/// Serves one accepted TCP connection until the peer closes it.
void serve_connection(serve::Server& server, int fd, std::uint64_t conn_id) {
  // Per-connection backoff stream: deterministic given the connection id.
  Rng rng(0x5e4d5ecull ^ conn_id);
  std::string buffer;
  char chunk[4096];
  ssize_t got = 0;
  while ((got = ::read(fd, chunk, sizeof chunk)) > 0) {
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t nl = 0;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (trim(line).empty()) continue;
      const std::string out = answer_line_with_retry(server, line, rng) + "\n";
      std::size_t sent = 0;
      while (sent < out.size()) {
        const ssize_t n = ::write(fd, out.data() + sent, out.size() - sent);
        if (n <= 0) {
          ::close(fd);
          return;
        }
        sent += static_cast<std::size_t>(n);
      }
    }
  }
  ::close(fd);
}

/// Localhost TCP listener; accepts until the listening socket is closed.
class TcpListener {
 public:
  TcpListener(serve::Server& server, int port) : server_(server) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CCPRED_CHECK_MSG(listen_fd_ >= 0, "cannot create socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    CCPRED_CHECK_MSG(
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
            0,
        "cannot bind 127.0.0.1:" << port);
    CCPRED_CHECK_MSG(::listen(listen_fd_, 16) == 0, "cannot listen on port "
                                                        << port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~TcpListener() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& t : connections_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void accept_loop() {
    Rng backoff_rng(0xacce97ull);
    int failures = 0;
    std::uint64_t conn_id = 0;
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        // Transient accept failures (fd exhaustion, aborted handshakes,
        // signals) back off and retry instead of killing the listener; a
        // closed listening socket (shutdown) returns for good.
        const bool transient = errno == EINTR || errno == ECONNABORTED ||
                               errno == EMFILE || errno == ENFILE ||
                               errno == ENOBUFS || errno == ENOMEM;
        if (!transient || failures >= 8) return;
        ++failures;
        backoff_sleep(backoff_rng, failures);
        continue;
      }
      failures = 0;
      const std::uint64_t id = conn_id++;
      connections_.emplace_back(
          [this, fd, id] { serve_connection(server_, fd, id); });
    }
  }

  serve::Server& server_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> connections_;
};

/// Builds the injector from --fault-* flags; nullptr when none are given.
std::unique_ptr<serve::FaultInjector> fault_injector_from_flags(
    const std::map<std::string, std::string>& flags) {
  serve::FaultOptions fopt;
  bool armed = false;
  const auto prob = [&](const char* flag, double& target) {
    const auto it = flags.find(flag);
    if (it == flags.end()) return;
    target = parse_double(it->second);
    armed = true;
  };
  prob("fault-artifact", fopt.artifact_read_failure);
  prob("fault-sweep", fopt.sweep_delay);
  prob("fault-stall", fopt.worker_stall);
  prob("fault-cache", fopt.cache_shard_hold);
  prob("fault-report", fopt.report_ingest);
  prob("fault-refit", fopt.refit_stall);
  prob("fault-promote", fopt.promotion_race);
  fopt.seed =
      static_cast<std::uint64_t>(parse_int(get_or(flags, "fault-seed", "2025")));
  fopt.sweep_delay_ms = parse_double(get_or(flags, "fault-sweep-ms", "10"));
  fopt.worker_stall_ms = parse_double(get_or(flags, "fault-stall-ms", "5"));
  fopt.cache_shard_hold_ms =
      parse_double(get_or(flags, "fault-cache-ms", "2"));
  fopt.report_ingest_ms = parse_double(get_or(flags, "fault-report-ms", "2"));
  fopt.refit_stall_ms = parse_double(get_or(flags, "fault-refit-ms", "20"));
  fopt.promotion_race_ms =
      parse_double(get_or(flags, "fault-promote-ms", "10"));
  if (!armed) return nullptr;
  return std::make_unique<serve::FaultInjector>(fopt);
}

/// Builds the online-learning options from --online* flags.
serve::online::OnlineOptions online_options_from_flags(
    const std::map<std::string, std::string>& flags) {
  serve::online::OnlineOptions opt;
  opt.enabled = flags.count("online") != 0 && get_or(flags, "online", "0") != "0";
  if (!opt.enabled) return opt;
  opt.buffer_capacity = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-buffer", "4096")));
  opt.drift.window = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-drift-window", "64")));
  opt.drift.min_samples = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-min-reports", "16")));
  opt.drift.mape_threshold =
      parse_double(get_or(flags, "online-drift-threshold", "0.25"));
  opt.refit_interval = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-refit-interval", "0")));
  opt.min_refit_rows = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-min-refit-rows", "32")));
  opt.holdout =
      static_cast<std::size_t>(parse_int(get_or(flags, "online-holdout", "16")));
  opt.min_improvement =
      parse_double(get_or(flags, "online-min-improvement", "0"));
  opt.feedback_weight = static_cast<std::size_t>(
      parse_int(get_or(flags, "online-feedback-weight", "8")));
  return opt;
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  serve::ModelRegistry registry(need(flags, "artifacts"),
                                registry_options(flags));
  const auto fault = fault_injector_from_flags(flags);
  registry.set_fault_injector(fault.get());
  serve::ServeOptions opt;
  opt.threads =
      static_cast<std::size_t>(parse_int(get_or(flags, "threads", "0")));
  opt.cache_capacity =
      static_cast<std::size_t>(parse_int(get_or(flags, "cache", "256")));
  opt.max_queue_depth =
      static_cast<std::size_t>(parse_int(get_or(flags, "max-queue", "0")));
  opt.default_machine = get_or(flags, "default-machine", "aurora");
  opt.default_model = get_or(flags, "default-model", "gb");
  opt.fault_injector = fault.get();
  opt.online = online_options_from_flags(flags);
  serve::Server server(registry, opt);
  if (opt.online.enabled) {
    std::fprintf(stderr,
                 "ccpred_serverd online learning ENABLED (drift threshold "
                 "%.2f, window %zu)\n",
                 opt.online.drift.mape_threshold, opt.online.drift.window);
  }
  if (fault != nullptr) {
    std::fprintf(stderr,
                 "ccpred_serverd FAULT INJECTION ARMED (seed %llu)\n",
                 static_cast<unsigned long long>(fault->options().seed));
  }
  const bool serial = flags.count("serial") != 0;

  std::unique_ptr<TcpListener> listener;
  if (flags.count("port")) {
    const int port = static_cast<int>(parse_int(flags.at("port")));
    listener = std::make_unique<TcpListener>(server, port);
    std::fprintf(stderr, "ccpred_serverd listening on 127.0.0.1:%d\n", port);
  }

  // stdin/stdout loop: submit each line to the pool and flush completed
  // responses in request order (a response never overtakes an earlier one).
  std::deque<std::future<serve::Response>> pending;
  const auto flush_ready = [&](bool all) {
    while (!pending.empty() &&
           (all || pending.front().wait_for(std::chrono::seconds(0)) ==
                       std::future_status::ready)) {
      std::cout << serve::format_response(pending.front().get()) << '\n';
      pending.pop_front();
    }
    if (all) std::cout.flush();
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (trim(line).empty()) continue;
    if (serial) {
      std::cout << answer_line(server, line) << std::endl;
      continue;
    }
    serve::Request req;
    try {
      req = serve::parse_request(line);
    } catch (const std::exception& e) {
      // Keep ordering: materialize the parse error as a ready future.
      std::promise<serve::Response> p;
      p.set_value(serve::error_response(e.what()));
      pending.push_back(p.get_future());
      flush_ready(false);
      continue;
    }
    pending.push_back(server.submit(std::move(req)));
    flush_ready(false);
  }
  flush_ready(true);

  const auto final_stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests (%llu errors), %llu sweeps, cache "
               "hit rate %.2f, p50 %.2f ms, p95 %.2f ms\n",
               static_cast<unsigned long long>(final_stats.requests),
               static_cast<unsigned long long>(final_stats.errors),
               static_cast<unsigned long long>(final_stats.sweeps_computed),
               final_stats.cache_hit_rate, final_stats.latency_p50_ms,
               final_stats.latency_p95_ms);
  if (final_stats.deadline_exceeded + final_stats.shed +
          final_stats.stale_served + final_stats.reload_failures +
          final_stats.retries >
      0) {
    std::fprintf(
        stderr,
        "degraded: %llu deadline, %llu shed, %llu stale, %llu reload "
        "failures, %llu retries\n",
        static_cast<unsigned long long>(final_stats.deadline_exceeded),
        static_cast<unsigned long long>(final_stats.shed),
        static_cast<unsigned long long>(final_stats.stale_served),
        static_cast<unsigned long long>(final_stats.reload_failures),
        static_cast<unsigned long long>(final_stats.retries));
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ccpred_serverd <train|serve> [--flag value ...]\n"
               "  train --artifacts DIR --machine M [--model gb|rf] "
               "[--rows N] [--seed S] [--estimators N]\n"
               "  serve --artifacts DIR [--default-machine M] "
               "[--default-model gb|rf] [--threads N] [--cache N] "
               "[--port P] [--serial 1] [--max-queue N]\n"
               "        [--fault-seed S] [--fault-artifact P] "
               "[--fault-sweep P] [--fault-sweep-ms MS] [--fault-stall P] "
               "[--fault-stall-ms MS] [--fault-cache P] "
               "[--fault-cache-ms MS]\n"
               "        [--fault-report P] [--fault-report-ms MS] "
               "[--fault-refit P] [--fault-refit-ms MS] "
               "[--fault-promote P] [--fault-promote-ms MS]\n"
               "        [--online 1] [--online-buffer N] "
               "[--online-drift-window N] [--online-min-reports N] "
               "[--online-drift-threshold X] [--online-refit-interval N]\n"
               "        [--online-min-refit-rows N] [--online-holdout N] "
               "[--online-min-improvement X] [--online-feedback-weight N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "serve") return cmd_serve(flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
