#include "ccpred/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"

namespace ccpred {

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw Error("CSV column not found: " + name);
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  bool have_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (trim(line).empty()) continue;
    const auto fields = split(line, ',');
    if (!have_header) {
      for (const auto& f : fields) table.header.push_back(trim(f));
      have_header = true;
      continue;
    }
    CCPRED_CHECK_MSG(fields.size() == table.header.size(),
                     "CSV line " << line_no << " has " << fields.size()
                                 << " fields, expected "
                                 << table.header.size());
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) row.push_back(parse_double(f));
    table.rows.push_back(std::move(row));
  }
  CCPRED_CHECK_MSG(have_header, "CSV text has no header row");
  return table;
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  CCPRED_CHECK_MSG(in.good(), "cannot open CSV file: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string to_csv(const CsvTable& table, int precision) {
  std::ostringstream out;
  out.precision(precision);
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i) out << ',';
    out << table.header[i];
  }
  out << '\n';
  for (const auto& row : table.rows) {
    CCPRED_CHECK_MSG(row.size() == table.header.size(),
                     "CSV row width mismatch on write");
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return out.str();
}

void write_csv(const CsvTable& table, const std::string& path, int precision) {
  std::ofstream out(path);
  CCPRED_CHECK_MSG(out.good(), "cannot open CSV file for write: " << path);
  out << to_csv(table, precision);
  CCPRED_CHECK_MSG(out.good(), "I/O error writing CSV file: " << path);
}

}  // namespace ccpred
