// Tests for the fast kernel-model engine: GP fast-vs-reference agreement,
// cached-Gram KRR refits, incremental GP updates and the incremental
// active-learning loop.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ccpred/active/loop.hpp"
#include "ccpred/active/random_sampling.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/kernel_ridge.hpp"
#include "ccpred/core/kernels.hpp"
#include "test_util.hpp"

namespace ccpred::ml {
namespace {

constexpr double kRelTol = 1e-9;

void expect_close_rel(const std::vector<double>& a,
                      const std::vector<double>& b, double rel,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    EXPECT_LT(std::abs(a[i] - b[i]) / scale, rel)
        << what << " diverged at index " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

// ---------- distance helpers ----------

TEST(SquaredDistancesTest, MatchesKernelGram) {
  Rng rng(31);
  linalg::Matrix x(130, 4);  // spans the mirror-pairing boundary
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) x(i, c) = rng.uniform(-2, 2);
  }
  Kernel rbf;
  rbf.type = KernelType::kRbf;
  rbf.gamma = 0.7;
  const linalg::Matrix d2 = squared_distances(x);
  const linalg::Matrix k = rbf_from_squared_distances(d2, rbf.gamma);
  const linalg::Matrix k_ref = rbf.gram_symmetric(x);
  // Same summation order as the kernel: entries are bit-for-bit equal.
  EXPECT_DOUBLE_EQ(k.max_abs_diff(k_ref), 0.0);
  const linalg::Matrix k_sym = rbf_from_squared_distances_symmetric(d2, rbf.gamma);
  EXPECT_DOUBLE_EQ(k_sym.max_abs_diff(k_ref), 0.0);
}

TEST(SquaredDistancesTest, RectangularMatchesSymmetric) {
  Rng rng(32);
  linalg::Matrix x(20, 3);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) x(i, c) = rng.uniform(-1, 1);
  }
  const linalg::Matrix sym = squared_distances(x);
  const linalg::Matrix rect = squared_distances(x, x);
  EXPECT_DOUBLE_EQ(sym.max_abs_diff(rect), 0.0);
}

// ---------- GP fast vs reference ----------

class GpEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { tt_ = test::small_campaign(350); }
  std::optional<data::TrainTest> tt_;
};

TEST_F(GpEngineTest, FastMatchesReferenceWithOptimization) {
  // The Fig. 3 US configuration: optimized hyper-parameters, log target.
  GaussianProcessRegression fast(0.5, 1e-4, true, true);
  GaussianProcessRegression ref(0.5, 1e-4, true, true);
  ref.set_params({{"engine", 1.0}});
  fast.fit(tt_->train.features(), tt_->train.targets());
  ref.fit(tt_->train.features(), tt_->train.targets());

  const auto x_test = tt_->test.features();
  expect_close_rel(fast.predict(x_test), ref.predict(x_test), kRelTol,
                   "predict");

  std::vector<double> mean_f, std_f, mean_r, std_r;
  fast.predict_with_std(x_test, mean_f, std_f);
  ref.predict_with_std(x_test, mean_r, std_r);
  expect_close_rel(mean_f, mean_r, kRelTol, "predict_with_std mean");
  // Variances subtract near-equal quantities; compare on the mean's scale.
  ASSERT_EQ(std_f.size(), std_r.size());
  for (std::size_t i = 0; i < std_f.size(); ++i) {
    const double scale = std::max(std::abs(mean_f[i]), 1e-12);
    EXPECT_LT(std::abs(std_f[i] - std_r[i]) / scale, kRelTol)
        << "std diverged at " << i;
  }
}

TEST_F(GpEngineTest, FastMatchesReferenceFixedHyperparams) {
  GaussianProcessRegression fast(0.8, 1e-3, false);
  GaussianProcessRegression ref(0.8, 1e-3, false);
  ref.set_params({{"engine", 1.0}});
  fast.fit(tt_->train.features(), tt_->train.targets());
  ref.fit(tt_->train.features(), tt_->train.targets());
  expect_close_rel(fast.predict(tt_->test.features()),
                   ref.predict(tt_->test.features()), kRelTol, "predict");
}

TEST(GpEngineParams, EngineParamValidatedAndCloned) {
  GaussianProcessRegression gp(0.5, 1e-4, false);
  EXPECT_THROW(gp.set_params({{"engine", 2.0}}), Error);
  gp.set_params({{"engine", 1.0}});
  EXPECT_EQ(gp.engine(), GaussianProcessRegression::Engine::kReference);
  const auto copy = gp.clone();
  auto* gp_copy = dynamic_cast<GaussianProcessRegression*>(copy.get());
  ASSERT_NE(gp_copy, nullptr);
  EXPECT_EQ(gp_copy->engine(), GaussianProcessRegression::Engine::kReference);
}

// ---------- GP incremental update ----------

TEST(GpUpdateTest, InterpolatesOldAndNewPointsAfterUpdate) {
  // With near-zero noise a GP interpolates its training data; a broken
  // factor extension or stale alpha would destroy this immediately.
  const auto s = test::make_nonlinear(120, 0.0, 7);
  linalg::Matrix x0(80, s.x.cols()), x1(40, s.x.cols());
  std::vector<double> y0(80), y1(40);
  for (std::size_t i = 0; i < 120; ++i) {
    auto& dst_x = i < 80 ? x0 : x1;
    auto& dst_y = i < 80 ? y0 : y1;
    const std::size_t r = i < 80 ? i : i - 80;
    for (std::size_t c = 0; c < s.x.cols(); ++c) dst_x(r, c) = s.x(i, c);
    dst_y[r] = s.y[i];
  }
  GaussianProcessRegression gp(1.0, 1e-8, false);
  gp.fit(x0, y0);
  EXPECT_TRUE(gp.supports_incremental_update());
  gp.update(x1, y1);
  const auto pred0 = gp.predict(x0);
  const auto pred1 = gp.predict(x1);
  for (std::size_t i = 0; i < y0.size(); ++i)
    EXPECT_NEAR(pred0[i], y0[i], 1e-4);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_NEAR(pred1[i], y1[i], 1e-4);
}

TEST(GpUpdateTest, UpdateBeforeFitThrows) {
  GaussianProcessRegression gp(0.5, 1e-4, false);
  EXPECT_THROW(gp.update(linalg::Matrix(1, 2), {1.0}), Error);
}

TEST(GpUpdateTest, BaseRegressorRejectsUpdate) {
  DecisionTreeRegressor dt;
  EXPECT_FALSE(dt.supports_incremental_update());
  EXPECT_THROW(dt.update(linalg::Matrix(1, 2), {1.0}), Error);
}

// ---------- KRR cached refits ----------

TEST(KernelRidgeCacheTest, RefitOnSameDataMatchesFreshFit) {
  const auto s = test::make_nonlinear(150, 0.05, 9);
  const auto probe = test::make_nonlinear(40, 0.0, 10);

  // Grid-search usage: set_params + fit over and over on the same rows.
  KernelRidgeRegression warm;
  warm.fit(s.x, s.y);
  warm.set_params({{"alpha", 0.01}, {"gamma", 0.3}});
  warm.fit(s.x, s.y);  // second fit reuses the cached distance matrix

  Kernel k;
  k.type = KernelType::kRbf;
  k.gamma = 0.3;
  KernelRidgeRegression fresh(k, 0.01);
  fresh.fit(s.x, s.y);

  expect_close_rel(warm.predict(probe.x), fresh.predict(probe.x), 1e-12,
                   "KRR cached refit");
  ASSERT_NE(warm.factorization(), nullptr);
  EXPECT_EQ(warm.factorization()->order(), s.x.rows());
}

TEST(KernelRidgeCacheTest, RefitOnDifferentDataInvalidatesCache) {
  const auto a = test::make_nonlinear(100, 0.05, 11);
  const auto b = test::make_nonlinear(120, 0.05, 12);
  const auto probe = test::make_nonlinear(30, 0.0, 13);
  KernelRidgeRegression warm;
  warm.fit(a.x, a.y);
  warm.fit(b.x, b.y);  // different rows: cache must not leak through
  KernelRidgeRegression fresh;
  fresh.fit(b.x, b.y);
  expect_close_rel(warm.predict(probe.x), fresh.predict(probe.x), 1e-12,
                   "KRR refit on new data");
}

}  // namespace
}  // namespace ccpred::ml

// ---------- incremental active learning ----------

namespace ccpred::al {
namespace {

class IncrementalLoopTest : public ::testing::Test {
 protected:
  void SetUp() override { tt_ = test::small_campaign(400); }
  std::optional<data::TrainTest> tt_;
};

TEST_F(IncrementalLoopTest, CurvesTrackFromScratchRefits) {
  // Random sampling keeps the labeled trajectory identical between the two
  // runs, and fixed hyper-parameters isolate the one intended difference:
  // incremental rounds keep the scalers frozen at the last full fit.
  const ml::GaussianProcessRegression proto(0.5, 1e-4, false, true);
  ActiveLearningOptions base;
  base.n_initial = 40;
  base.query_size = 40;
  base.n_queries = 7;

  RandomSampling rs_a;
  const auto scratch =
      run_active_learning(tt_->train, tt_->test, proto, rs_a, base);

  ActiveLearningOptions inc = base;
  inc.incremental_refit = true;
  inc.refit_cadence = 3;
  RandomSampling rs_b;
  const auto fast =
      run_active_learning(tt_->train, tt_->test, proto, rs_b, inc);

  ASSERT_EQ(fast.rounds.size(), scratch.rounds.size());
  for (std::size_t r = 0; r < fast.rounds.size(); ++r) {
    EXPECT_EQ(fast.rounds[r].labeled_count, scratch.rounds[r].labeled_count);
    if (r % 3 == 0) {
      // Cadence rounds refit from scratch on identical labeled sets.
      EXPECT_DOUBLE_EQ(fast.rounds[r].train_scores.r2,
                       scratch.rounds[r].train_scores.r2);
    } else {
      // Incremental rounds keep the scalers frozen; the curves must stay
      // within a tight band of the from-scratch run.
      EXPECT_NEAR(fast.rounds[r].train_scores.r2,
                  scratch.rounds[r].train_scores.r2, 0.05);
    }
  }
}

TEST_F(IncrementalLoopTest, WorksWithUncertaintySampling) {
  const ml::GaussianProcessRegression proto(0.5, 1e-4, true, true);
  ActiveLearningOptions opt;
  opt.n_initial = 40;
  opt.query_size = 40;
  opt.n_queries = 5;
  opt.incremental_refit = true;
  opt.refit_cadence = 3;
  UncertaintySampling us;
  const auto result =
      run_active_learning(tt_->train, tt_->test, proto, us, opt);
  ASSERT_EQ(result.rounds.size(), 5u);
  // The model keeps learning across incremental rounds.
  EXPECT_GT(result.rounds.back().train_scores.r2,
            result.rounds.front().train_scores.r2 - 0.05);
}

TEST_F(IncrementalLoopTest, FallsBackForModelsWithoutUpdate) {
  const ml::DecisionTreeRegressor proto(ml::TreeOptions{.max_depth = 6});
  ActiveLearningOptions plain;
  plain.n_initial = 30;
  plain.query_size = 30;
  plain.n_queries = 4;
  ActiveLearningOptions inc = plain;
  inc.incremental_refit = true;
  RandomSampling rs_a, rs_b;
  const auto a = run_active_learning(tt_->train, tt_->test, proto, rs_a, plain);
  const auto b = run_active_learning(tt_->train, tt_->test, proto, rs_b, inc);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.rounds[r].train_scores.r2, b.rounds[r].train_scores.r2);
  }
}

}  // namespace
}  // namespace ccpred::al
