/// Active-learning strategy ablation (extension beyond the paper's RS/US/
/// QC): adds Expected Model Change — the third strategy family §3.4
/// mentions — and compares all uncertainty-driven strategies under the
/// same GP model and budget on the Aurora dataset.

#include <cstdio>
#include <memory>

#include "al_figures.hpp"
#include "bench_util.hpp"
#include "ccpred/active/expected_model_change.hpp"
#include "ccpred/active/loop.hpp"
#include "ccpred/active/random_sampling.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/core/gaussian_process.hpp"

int main() {
  using namespace ccpred;
  const auto data = bench::load_paper_data("aurora");
  const ml::GaussianProcessRegression gp(/*gamma=*/0.5, /*noise=*/1e-4,
                                         /*optimize=*/true,
                                         /*log_target=*/true);

  al::ActiveLearningOptions opt;
  opt.n_initial = 50;
  opt.query_size = 50;
  opt.n_queries = bench::fast_mode() ? 5 : 14;
  opt.seed = 11;
  opt.goal = guide::Objective::kShortestTime;

  al::RandomSampling rs;
  al::UncertaintySampling us;
  al::ExpectedModelChange emc;
  std::vector<al::QueryStrategy*> strategies = {&rs, &us, &emc};

  std::vector<al::ActiveLearningResult> results;
  for (auto* strategy : strategies) {
    results.push_back(al::run_active_learning(data.split.train,
                                              data.split.test, gp, *strategy,
                                              opt));
  }

  TextTable table({"labeled", "RS MAPE", "US MAPE", "EMC MAPE",
                   "RS STQ-MAPE", "US STQ-MAPE", "EMC STQ-MAPE"},
                  "AL strategy ablation, GP model, Aurora");
  for (std::size_t r = 0; r < results.front().rounds.size(); ++r) {
    std::vector<std::string> row = {
        std::to_string(results[0].rounds[r].labeled_count)};
    for (const auto& res : results) {
      row.push_back(TextTable::cell(res.rounds[r].train_scores.mape, 3));
    }
    for (const auto& res : results) {
      row.push_back(TextTable::cell(res.rounds[r].goal_losses->mape, 3));
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nEMC = expected model change (std x leverage); the paper names this "
      "family in Section 3.4 but only evaluates US/QC.\n"
      "Note the negative result: with a well-specified (log-target) GP, "
      "plain random sampling is competitive — uncertainty-driven "
      "strategies over-sample extreme configurations, which inflates "
      "raw-scale MAPE. Their advantage (Figures 3-6) appears when the "
      "model is uncertain in the regions that matter.\n");
  return 0;
}
