#include "ccpred/core/kernels.hpp"

#include <cmath>

#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/simd/simd.hpp"

namespace ccpred::ml {

double Kernel::operator()(const double* x, const double* z,
                          std::size_t d) const {
  switch (type) {
    case KernelType::kRbf: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        const double diff = x[i] - z[i];
        s += diff * diff;
      }
      return std::exp(-gamma * s);
    }
    case KernelType::kPolynomial: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) s += x[i] * z[i];
      return std::pow(gamma * s + coef0, degree);
    }
    case KernelType::kLinear: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) s += x[i] * z[i];
      return s;
    }
  }
  throw Error("unknown kernel type");
}

linalg::Matrix Kernel::gram(const linalg::Matrix& a,
                            const linalg::Matrix& b) const {
  CCPRED_CHECK_MSG(a.cols() == b.cols(), "kernel feature dims differ");
  linalg::Matrix k(a.rows(), b.rows());
  const std::size_t d = a.cols();
  parallel_for(0, a.rows(), [&](std::size_t i) {
    const double* ai = a.row_ptr(i);
    double* ki = k.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      ki[j] = (*this)(ai, b.row_ptr(j), d);
    }
  });
  return k;
}

linalg::Matrix Kernel::gram_symmetric(const linalg::Matrix& a) const {
  const std::size_t n = a.rows();
  linalg::Matrix k(n, n);
  const std::size_t d = a.cols();
  // Upper-triangle row i holds n - i entries, so a flat split over rows
  // gives the worker owning row 0 n entries and the one owning row n-1 a
  // single one. Pairing row p with its mirror n-1-p makes every index
  // carry ~n+1 entries, so the static chunking stays balanced.
  const std::size_t half = (n + 1) / 2;
  parallel_for(0, half, [&](std::size_t p) {
    const double* ap = a.row_ptr(p);
    for (std::size_t j = p; j < n; ++j) {
      k(p, j) = (*this)(ap, a.row_ptr(j), d);
    }
    const std::size_t q = n - 1 - p;
    if (q == p) return;
    const double* aq = a.row_ptr(q);
    for (std::size_t j = q; j < n; ++j) {
      k(q, j) = (*this)(aq, a.row_ptr(j), d);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) k(i, j) = k(j, i);
  }
  return k;
}

std::string Kernel::name() const {
  switch (type) {
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "poly";
    case KernelType::kLinear:
      return "linear";
  }
  return "unknown";
}

namespace {

/// Feature-major (d x n) copy of `a`'s rows, the layout simd::sqdist_row
/// streams over: lane j of a vector load is point j, so four squared
/// distances build at once with the same k-ascending accumulation order as
/// the row-pair loop.
std::vector<double> transpose_points(const linalg::Matrix& a) {
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  std::vector<double> xt(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = a.row_ptr(i);
    for (std::size_t k = 0; k < d; ++k) xt[k * n + i] = row[k];
  }
  return xt;
}

}  // namespace

linalg::Matrix squared_distances(const linalg::Matrix& a) {
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  linalg::Matrix k(n, n);
  const std::vector<double> xt = transpose_points(a);
  const auto& ops = simd::ops();
  // Mirror-paired rows, same balancing as Kernel::gram_symmetric.
  const std::size_t half = (n + 1) / 2;
  parallel_for(0, half, [&](std::size_t p) {
    ops.sqdist_row(xt.data(), n, d, a.row_ptr(p), p, n, k.row_ptr(p));
    const std::size_t q = n - 1 - p;
    if (q == p) return;
    ops.sqdist_row(xt.data(), n, d, a.row_ptr(q), q, n, k.row_ptr(q));
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) k(i, j) = k(j, i);
  }
  return k;
}

linalg::Matrix squared_distances(const linalg::Matrix& a,
                                 const linalg::Matrix& b) {
  CCPRED_CHECK_MSG(a.cols() == b.cols(), "kernel feature dims differ");
  const std::size_t d = a.cols();
  linalg::Matrix k(a.rows(), b.rows());
  const std::vector<double> bt = transpose_points(b);
  const auto& ops = simd::ops();
  parallel_for(0, a.rows(), [&](std::size_t i) {
    ops.sqdist_row(bt.data(), b.rows(), d, a.row_ptr(i), 0, b.rows(),
                   k.row_ptr(i));
  });
  return k;
}

linalg::Matrix rbf_from_squared_distances(const linalg::Matrix& d2,
                                          double gamma) {
  linalg::Matrix k(d2.rows(), d2.cols());
  simd::ops().rbf_exp_map(d2.data(), k.data(), d2.size(), gamma);
  return k;
}

linalg::Matrix rbf_from_squared_distances_symmetric(const linalg::Matrix& d2,
                                                    double gamma) {
  CCPRED_CHECK_MSG(d2.rows() == d2.cols(),
                   "symmetric RBF map needs a square distance matrix");
  const std::size_t n = d2.rows();
  linalg::Matrix k(n, n);
  // exp() only the upper triangle and mirror: half the transcendental
  // cost of the dense map. Mirror-paired rows keep the split balanced.
  const auto& ops = simd::ops();
  const std::size_t half = (n + 1) / 2;
  parallel_for(0, half, [&](std::size_t p) {
    ops.rbf_exp_map(d2.row_ptr(p) + p, k.row_ptr(p) + p, n - p, gamma);
    const std::size_t q = n - 1 - p;
    if (q == p) return;
    ops.rbf_exp_map(d2.row_ptr(q) + q, k.row_ptr(q) + q, n - q, gamma);
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) k(i, j) = k(j, i);
  }
  return k;
}

KernelType kernel_type_from_name(const std::string& name) {
  if (name == "rbf") return KernelType::kRbf;
  if (name == "poly" || name == "polynomial") return KernelType::kPolynomial;
  if (name == "linear") return KernelType::kLinear;
  throw Error("unknown kernel name: " + name);
}

}  // namespace ccpred::ml
