/// Reproduces paper Figure 1: performance metrics (R^2, MAE, MAPE) and
/// hyper-parameter-optimization run times for all nine models and all
/// three search strategies on the Aurora dataset.

#include "model_comparison.hpp"

int main() { return ccpred::bench::run_model_comparison("aurora"); }
