// Unit and property tests for the dense linear algebra kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "ccpred/common/rng.hpp"
#include "ccpred/linalg/blas.hpp"
#include "ccpred/linalg/cholesky.hpp"
#include "ccpred/linalg/matrix.hpp"
#include "ccpred/linalg/qr.hpp"
#include "ccpred/linalg/solve.hpp"

namespace ccpred::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

/// Random symmetric positive-definite matrix A = B B^T + n I.
Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix b = random_matrix(n, n, rng);
  Matrix a = syrk_a_at(b);
  a.add_diagonal(static_cast<double>(n) * 0.1);
  return a;
}

Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

// ---------- Matrix ----------

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(MatrixTest, InitializerList) {
  const Matrix m = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(MatrixTest, AtOutOfRangeThrows) {
  const Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
}

TEST(MatrixTest, Identity) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 2), 0.0);
}

TEST(MatrixTest, FromRowsAndRowCol) {
  const auto m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
  EXPECT_THROW(Matrix::from_rows({{1}, {2, 3}}), Error);
}

TEST(MatrixTest, Transpose) {
  const Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, SelectRows) {
  const Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  const auto s = m.select_rows({2, 0});
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
  EXPECT_THROW(m.select_rows({3}), Error);
}

TEST(MatrixTest, Arithmetic) {
  const Matrix a = {{1, 2}, {3, 4}};
  const Matrix b = {{1, 1}, {1, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), 0.0);
  const Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, DimensionMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, Error);
}

TEST(MatrixTest, AddDiagonalRequiresSquare) {
  Matrix m(2, 3);
  EXPECT_THROW(m.add_diagonal(1.0), Error);
  Matrix sq(2, 2);
  sq.add_diagonal(3.0);
  EXPECT_DOUBLE_EQ(sq(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(sq(0, 1), 0.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix m = {{3, 4}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  const Matrix a = {{1, 2}};
  const Matrix b = {{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
}

// ---------- BLAS ----------

TEST(BlasTest, DotAndAxpy) {
  const std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  axpy(2.0, a, b);
  EXPECT_EQ(b, (std::vector<double>{6, 9, 12}));
}

TEST(BlasTest, DotSizeMismatchThrows) {
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), Error);
}

TEST(BlasTest, GemvMatchesManual) {
  const Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  const auto y = gemv(a, {1, -1});
  EXPECT_EQ(y, (std::vector<double>{-1, -1, -1}));
}

TEST(BlasTest, GemvTransposedMatchesTranspose) {
  Rng rng(5);
  const Matrix a = random_matrix(7, 4, rng);
  std::vector<double> x(7);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const auto y1 = gemv_transposed(a, x);
  const auto y2 = gemv(a.transposed(), x);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(BlasTest, GemmDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(gemm(a, b), Error);
}

TEST(BlasTest, SyrkAtAMatchesGemm) {
  Rng rng(6);
  const Matrix a = random_matrix(9, 5, rng);
  const Matrix g1 = syrk_at_a(a);
  const Matrix g2 = gemm(a.transposed(), a);
  EXPECT_LT(g1.max_abs_diff(g2), 1e-10);
}

TEST(BlasTest, SyrkAAtMatchesGemm) {
  Rng rng(7);
  const Matrix a = random_matrix(6, 8, rng);
  const Matrix g1 = syrk_a_at(a);
  const Matrix g2 = gemm(a, a.transposed());
  EXPECT_LT(g1.max_abs_diff(g2), 1e-10);
}

// Parameterized sweep: blocked gemm matches the naive reference across
// shapes including non-multiples of the block size.
class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 73 + k * 7 + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  EXPECT_LT(gemm(a, b).max_abs_diff(naive_gemm(a, b)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{17, 5, 9}, std::tuple{64, 64, 64},
                      std::tuple{65, 63, 66}, std::tuple{128, 1, 128},
                      std::tuple{1, 128, 1}, std::tuple{100, 130, 70}));

// ---------- Cholesky ----------

TEST(CholeskyTest, ReconstructsMatrix) {
  Rng rng(8);
  const Matrix a = random_spd(12, rng);
  const Cholesky chol(a);
  const Matrix l = chol.factor();
  EXPECT_LT(gemm(l, l.transposed()).max_abs_diff(a), 1e-9);
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Rng rng(9);
  const Matrix a = random_spd(20, rng);
  std::vector<double> x_true(20);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  const auto b = gemv(a, x_true);
  const auto x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, MatrixSolveMatchesVectorSolve) {
  Rng rng(10);
  const Matrix a = random_spd(8, rng);
  const Matrix b = random_matrix(8, 3, rng);
  const Cholesky chol(a);
  const Matrix x = chol.solve(b);
  for (std::size_t c = 0; c < 3; ++c) {
    const auto xc = chol.solve(b.col(c));
    for (std::size_t r = 0; r < 8; ++r) EXPECT_NEAR(x(r, c), xc[r], 1e-12);
  }
}

TEST(CholeskyTest, LogDeterminantMatchesKnown) {
  // diag(2, 3, 4): log det = log 24.
  Matrix d(3, 3);
  d(0, 0) = 2;
  d(1, 1) = 3;
  d(2, 2) = 4;
  EXPECT_NEAR(Cholesky(d).log_determinant(), std::log(24.0), 1e-12);
}

TEST(CholeskyTest, InverseTimesMatrixIsIdentity) {
  Rng rng(11);
  const Matrix a = random_spd(10, rng);
  const Matrix inv = Cholesky(a).inverse();
  EXPECT_LT(gemm(a, inv).max_abs_diff(Matrix::identity(10)), 1e-8);
}

TEST(CholeskyTest, NonSquareThrows) {
  EXPECT_THROW(Cholesky{Matrix(2, 3)}, Error);
}

TEST(CholeskyTest, IndefiniteThrows) {
  Matrix m = {{1, 0}, {0, -1}};
  EXPECT_THROW(Cholesky{m}, Error);
}

TEST(CholeskyTest, TriangularSolvesCompose) {
  Rng rng(12);
  const Matrix a = random_spd(6, rng);
  const Cholesky chol(a);
  std::vector<double> b(6);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto via_parts = chol.solve_upper(chol.solve_lower(b));
  const auto direct = chol.solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(via_parts[i], direct[i], 1e-12);
}

// Blocked (default) factorization must agree with the scalar left-looking
// reference across sizes spanning the panel boundary (kPanel = 64).
class CholeskyBlockedSizes : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyBlockedSizes, MatchesReference) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(100 + n));
  const Matrix a = random_spd(static_cast<std::size_t>(n), rng);
  const Cholesky fast(a, Cholesky::Method::kFast);
  const Cholesky ref(a, Cholesky::Method::kReference);
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) scale = std::max(scale, a(i, i));
  EXPECT_LT(fast.factor().max_abs_diff(ref.factor()), 1e-9 * scale)
      << "blocked factor diverged from reference at n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyBlockedSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 130, 200));

TEST(CholeskyTest, BlockedPreservesPositiveDefiniteMessage) {
  Matrix m = {{1, 0}, {0, -1}};
  for (auto method :
       {Cholesky::Method::kFast, Cholesky::Method::kReference}) {
    try {
      const Cholesky chol(m, method);
      FAIL() << "expected indefinite matrix to throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("not positive definite"),
                std::string::npos);
    }
  }
}

TEST(CholeskyTest, MultiRhsTriangularSolvesMatchVectorSolves) {
  Rng rng(42);
  const Matrix a = random_spd(150, rng);  // spans a column stripe boundary
  const Matrix b = random_matrix(150, 7, rng);
  const Cholesky chol(a);
  const Matrix lo = chol.solve_lower(b);
  const Matrix up = chol.solve_upper(b);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const auto lo_c = chol.solve_lower(b.col(c));
    const auto up_c = chol.solve_upper(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) {
      EXPECT_NEAR(lo(r, c), lo_c[r], 1e-12);
      EXPECT_NEAR(up(r, c), up_c[r], 1e-12);
    }
  }
}

TEST(CholeskyTest, ExtendMatchesFullRefactorization) {
  Rng rng(43);
  const std::size_t n = 90, q = 12;
  const Matrix full = random_spd(n + q, rng);
  Matrix a11(n, n), a21(q, n), a22(q, q);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a11(i, j) = full(i, j);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < n; ++j) a21(i, j) = full(n + i, j);
    for (std::size_t j = 0; j < q; ++j) a22(i, j) = full(n + i, n + j);
  }
  Cholesky grown(a11);
  grown.extend(a21, a22);
  const Cholesky direct(full);
  EXPECT_EQ(grown.order(), n + q);
  EXPECT_LT(grown.factor().max_abs_diff(direct.factor()), 1e-9);
}

TEST(CholeskyTest, ExtendDimensionMismatchThrows) {
  Rng rng(44);
  Cholesky chol(random_spd(5, rng));
  EXPECT_THROW(chol.extend(Matrix(2, 4), Matrix(2, 2)), Error);
  EXPECT_THROW(chol.extend(Matrix(2, 5), Matrix(3, 3)), Error);
}

TEST(MatrixTest, AppendRows) {
  Matrix m = {{1, 2}, {3, 4}};
  m.append_rows(Matrix{{5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  Matrix empty;
  empty.append_rows(m);
  EXPECT_EQ(empty.rows(), 3u);
  EXPECT_THROW(m.append_rows(Matrix(1, 3)), Error);
}

// ---------- QR ----------

TEST(QrTest, SolvesSquareSystemExactly) {
  Rng rng(13);
  const Matrix a = random_matrix(10, 10, rng);
  std::vector<double> x_true(10);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const auto x = QR(a).solve(gemv(a, x_true));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(QrTest, LeastSquaresResidualOrthogonalToColumns) {
  Rng rng(14);
  const Matrix a = random_matrix(30, 5, rng);
  std::vector<double> b(30);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x = lstsq(a, b);
  auto r = gemv(a, x);
  for (std::size_t i = 0; i < 30; ++i) r[i] = b[i] - r[i];
  const auto atr = gemv_transposed(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(QrTest, UnderdeterminedThrows) { EXPECT_THROW(QR{Matrix(3, 5)}, Error); }

TEST(QrTest, RankDeficientThrows) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // dependent column
  }
  EXPECT_THROW(QR{a}, Error);
}

// ---------- solve ----------

TEST(SolveTest, RidgeZeroLambdaMatchesLstsq) {
  Rng rng(15);
  const Matrix a = random_matrix(40, 6, rng);
  std::vector<double> b(40);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x1 = ridge_solve(a, b, 0.0);
  const auto x2 = lstsq(a, b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-6);
}

TEST(SolveTest, RidgeShrinksCoefficients) {
  Rng rng(16);
  const Matrix a = random_matrix(40, 6, rng);
  std::vector<double> b(40);
  for (auto& v : b) v = rng.uniform(-1, 1);
  auto norm = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return s;
  };
  EXPECT_LT(norm(ridge_solve(a, b, 10.0)), norm(ridge_solve(a, b, 0.01)));
}

TEST(SolveTest, RidgeNegativeLambdaThrows) {
  EXPECT_THROW(ridge_solve(Matrix(2, 2), {1, 2}, -1.0), Error);
}

TEST(SolveTest, JitterRecoversSemidefinite) {
  // Singular PSD matrix: jitter should make it solvable.
  Matrix a = {{1, 1}, {1, 1}};
  const auto x = spd_solve_with_jitter(a, {1.0, 1.0}, 1e-8);
  EXPECT_EQ(x.size(), 2u);
  EXPECT_TRUE(std::isfinite(x[0]));
}

TEST(SolveTest, JitterGivesUpOnNegativeDefinite) {
  Matrix a = {{-5, 0}, {0, -5}};
  EXPECT_THROW(spd_solve_with_jitter(a, {1.0, 1.0}, 1e-12, 3), Error);
}

}  // namespace
}  // namespace ccpred::linalg
