#pragma once

/// \file cholesky.hpp
/// Cholesky factorization of symmetric positive-definite matrices, the
/// backbone of the kernel ridge / Gaussian-process / Bayesian-ridge solvers.

#include <vector>

#include "ccpred/linalg/matrix.hpp"

namespace ccpred::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
///
/// Factorizes once, then solves any number of right-hand sides in O(n^2).
class Cholesky {
 public:
  /// Factorizes `a` (must be square, symmetric, positive definite).
  /// Throws ccpred::Error if a non-positive pivot is encountered.
  explicit Cholesky(const Matrix& a);

  std::size_t order() const { return l_.rows(); }

  /// The factor L (lower triangular; upper part is zero).
  const Matrix& factor() const { return l_; }

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A X = B column-wise.
  Matrix solve(const Matrix& b) const;

  /// Solves L y = b (forward substitution).
  std::vector<double> solve_lower(const std::vector<double>& b) const;

  /// Solves L^T x = y (backward substitution).
  std::vector<double> solve_upper(const std::vector<double>& y) const;

  /// log(det A) = 2 * sum(log L_ii); used by GP marginal likelihood.
  double log_determinant() const;

  /// A^{-1} via n triangular solve pairs (used by Bayesian ridge).
  Matrix inverse() const;

 private:
  Matrix l_;
};

}  // namespace ccpred::linalg
