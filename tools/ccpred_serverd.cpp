/// ccpred_serverd — the recommendation-serving daemon.
///
/// Subcommands:
///   train --artifacts DIR --machine aurora|frontier [--model gb|rf]
///         [--rows N] [--seed S] [--estimators N]
///       Run a simulated trace-collection campaign, train the model and
///       publish the artifact as DIR/<machine>-<model>.model.
///   serve --artifacts DIR [--default-machine M] [--default-model gb|rf]
///         [--threads N] [--cache N] [--port P] [--serial]
///       Serve line-protocol requests (see serve/protocol.hpp) from stdin,
///       one response line per request line, in request order. Requests are
///       pipelined through the worker pool unless --serial is given. With
///       --port, additionally listen on 127.0.0.1:P; every connection
///       speaks the same protocol. EOF on stdin shuts the server down and
///       prints a final stats line to stderr.
///
/// Missing artifacts are trained on first use (train-and-cache), so
/// `serve` works on an empty directory — pre-train with `train` to make
/// startup instant and answers reproducible across deployments.

#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"

namespace {

using namespace ccpred;

/// Minimal --key value argument parser (same contract as ccpred_cli: a
/// trailing flag without a value is a hard error).
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; i += 2) {
    CCPRED_CHECK_MSG(std::strncmp(argv[i], "--", 2) == 0,
                     "expected --flag, got '" << argv[i] << "'");
    CCPRED_CHECK_MSG(i + 1 < argc,
                     "flag '" << argv[i] << "' is missing a value");
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags,
                 const std::string& key) {
  const auto it = flags.find(key);
  CCPRED_CHECK_MSG(it != flags.end(), "missing required flag --" << key);
  return it->second;
}

std::string get_or(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

serve::RegistryOptions registry_options(
    const std::map<std::string, std::string>& flags) {
  serve::RegistryOptions opt;
  opt.fallback_rows =
      static_cast<std::size_t>(parse_int(get_or(flags, "rows", "600")));
  opt.fallback_seed =
      static_cast<std::uint64_t>(parse_int(get_or(flags, "seed", "2025")));
  if (flags.count("estimators")) {
    const int n = static_cast<int>(parse_int(flags.at("estimators")));
    opt.gb_estimators = n;
    opt.rf_estimators = n;
  }
  return opt;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  serve::ModelRegistry registry(need(flags, "artifacts"),
                                registry_options(flags));
  const std::string machine = need(flags, "machine");
  const std::string kind = get_or(flags, "model", "gb");
  const std::string path = registry.train_artifact(machine, kind);
  std::printf("trained %s/%s artifact: %s\n", machine.c_str(), kind.c_str(),
              path.c_str());
  return 0;
}

/// One protocol line in, one response line out (used by both the stdin
/// --serial path and TCP connections).
std::string answer_line(serve::Server& server, const std::string& line) {
  try {
    return serve::format_response(server.handle(serve::parse_request(line)));
  } catch (const std::exception& e) {
    return serve::format_response(serve::error_response(e.what()));
  }
}

/// Serves one accepted TCP connection until the peer closes it.
void serve_connection(serve::Server& server, int fd) {
  std::string buffer;
  char chunk[4096];
  ssize_t got = 0;
  while ((got = ::read(fd, chunk, sizeof chunk)) > 0) {
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t nl = 0;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (trim(line).empty()) continue;
      const std::string out = answer_line(server, line) + "\n";
      std::size_t sent = 0;
      while (sent < out.size()) {
        const ssize_t n = ::write(fd, out.data() + sent, out.size() - sent);
        if (n <= 0) {
          ::close(fd);
          return;
        }
        sent += static_cast<std::size_t>(n);
      }
    }
  }
  ::close(fd);
}

/// Localhost TCP listener; accepts until the listening socket is closed.
class TcpListener {
 public:
  TcpListener(serve::Server& server, int port) : server_(server) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CCPRED_CHECK_MSG(listen_fd_ >= 0, "cannot create socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    CCPRED_CHECK_MSG(
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
            0,
        "cannot bind 127.0.0.1:" << port);
    CCPRED_CHECK_MSG(::listen(listen_fd_, 16) == 0, "cannot listen on port "
                                                        << port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~TcpListener() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& t : connections_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void accept_loop() {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener closed: shut down
      connections_.emplace_back(
          [this, fd] { serve_connection(server_, fd); });
    }
  }

  serve::Server& server_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> connections_;
};

int cmd_serve(const std::map<std::string, std::string>& flags) {
  serve::ModelRegistry registry(need(flags, "artifacts"),
                                registry_options(flags));
  serve::ServeOptions opt;
  opt.threads =
      static_cast<std::size_t>(parse_int(get_or(flags, "threads", "0")));
  opt.cache_capacity =
      static_cast<std::size_t>(parse_int(get_or(flags, "cache", "256")));
  opt.default_machine = get_or(flags, "default-machine", "aurora");
  opt.default_model = get_or(flags, "default-model", "gb");
  serve::Server server(registry, opt);
  const bool serial = flags.count("serial") != 0;

  std::unique_ptr<TcpListener> listener;
  if (flags.count("port")) {
    const int port = static_cast<int>(parse_int(flags.at("port")));
    listener = std::make_unique<TcpListener>(server, port);
    std::fprintf(stderr, "ccpred_serverd listening on 127.0.0.1:%d\n", port);
  }

  // stdin/stdout loop: submit each line to the pool and flush completed
  // responses in request order (a response never overtakes an earlier one).
  std::deque<std::future<serve::Response>> pending;
  const auto flush_ready = [&](bool all) {
    while (!pending.empty() &&
           (all || pending.front().wait_for(std::chrono::seconds(0)) ==
                       std::future_status::ready)) {
      std::cout << serve::format_response(pending.front().get()) << '\n';
      pending.pop_front();
    }
    if (all) std::cout.flush();
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (trim(line).empty()) continue;
    if (serial) {
      std::cout << answer_line(server, line) << std::endl;
      continue;
    }
    serve::Request req;
    try {
      req = serve::parse_request(line);
    } catch (const std::exception& e) {
      // Keep ordering: materialize the parse error as a ready future.
      std::promise<serve::Response> p;
      p.set_value(serve::error_response(e.what()));
      pending.push_back(p.get_future());
      flush_ready(false);
      continue;
    }
    pending.push_back(server.submit(std::move(req)));
    flush_ready(false);
  }
  flush_ready(true);

  const auto final_stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests (%llu errors), %llu sweeps, cache "
               "hit rate %.2f, p50 %.2f ms, p95 %.2f ms\n",
               static_cast<unsigned long long>(final_stats.requests),
               static_cast<unsigned long long>(final_stats.errors),
               static_cast<unsigned long long>(final_stats.sweeps_computed),
               final_stats.cache_hit_rate, final_stats.latency_p50_ms,
               final_stats.latency_p95_ms);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ccpred_serverd <train|serve> [--flag value ...]\n"
               "  train --artifacts DIR --machine M [--model gb|rf] "
               "[--rows N] [--seed S] [--estimators N]\n"
               "  serve --artifacts DIR [--default-machine M] "
               "[--default-model gb|rf] [--threads N] [--cache N] "
               "[--port P] [--serial 1]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "serve") return cmd_serve(flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
