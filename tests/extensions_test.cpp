// Tests for the library extensions beyond the paper's core pipeline:
// the perturbative-triples workload, feature importances (impurity and
// permutation), the Pareto frontier and the budget-constrained advisor.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/importance.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/sim/contraction.hpp"
#include "ccpred/sim/solver.hpp"
#include "test_util.hpp"

namespace ccpred {
namespace {

// ---------- triples workload ----------

TEST(TriplesTest, SepticScaling) {
  // (T) flops ~ O^3 V^4: doubling V multiplies by ~16, doubling O by ~8-16.
  const double f = sim::triples_flops(100, 800);
  EXPECT_GT(sim::triples_flops(100, 1600) / f, 12.0);
  EXPECT_GT(sim::triples_flops(200, 800) / f, 7.5);
}

TEST(TriplesTest, MoreExpensiveThanCcsdIteration) {
  // The (T) correction dominates a CCSD iteration for realistic O/V.
  EXPECT_GT(sim::triples_flops(134, 951), sim::ccsd_iteration_flops(134, 951));
}

TEST(TriplesTest, SimulatorRunsWithTriplesInventory) {
  const sim::CcsdSimulator ccsd(sim::MachineModel::aurora());
  const sim::CcsdSimulator pt(sim::MachineModel::aurora(),
                              sim::triples_contractions());
  EXPECT_EQ(pt.inventory().size(), 3u);
  const sim::RunConfig cfg{85, 698, 110, 90};
  const double t_ccsd = ccsd.iteration_time(cfg);
  const double t_pt = pt.iteration_time(cfg);
  EXPECT_GT(t_pt, t_ccsd);
  EXPECT_TRUE(std::isfinite(t_pt));
}

TEST(TriplesTest, CampaignAndModelWorkOnTriples) {
  // The whole pipeline is workload-agnostic: generate a (T) campaign and
  // check GB still learns the surface.
  const sim::CcsdSimulator pt(sim::MachineModel::aurora(),
                              sim::triples_contractions());
  data::GeneratorOptions opt;
  opt.seed = 4;
  opt.target_total = 400;
  const std::vector<data::Problem> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}};
  const auto ds = data::generate_dataset(pt, problems, opt);
  EXPECT_EQ(ds.size(), 400u);
  Rng rng(5);
  auto split = data::stratified_split_fraction(ds, 0.25, rng);
  data::ensure_config_coverage(ds, split);
  const auto tt = data::apply_split(ds, split);
  ml::GradientBoostingRegressor gb(200, 0.1, ml::TreeOptions{.max_depth = 8});
  gb.fit(tt.train.features(), tt.train.targets());
  const auto scores =
      ml::score_all(tt.test.targets(), gb.predict(tt.test.features()));
  EXPECT_GT(scores.r2, 0.85);
}

// ---------- job-level solver ----------

TEST(SolverTest, IterationCountFromDecay) {
  sim::ConvergenceModel c;
  c.initial_residual = 1.0;
  c.decay = 0.1;
  c.tolerance = 2e-7;  // off the exact-power boundary (float-safe)
  EXPECT_EQ(c.iterations_to_converge(), 7);   // 10^-7 overshoots 2e-7
  c.decay = 0.5;
  EXPECT_EQ(c.iterations_to_converge(), 23);  // ceil(log(2e-7)/log(0.5))
  c.max_iterations = 10;
  EXPECT_EQ(c.iterations_to_converge(), 10);  // capped
}

TEST(SolverTest, InvalidConvergenceThrows) {
  sim::ConvergenceModel c;
  c.decay = 1.0;
  EXPECT_THROW(c.iterations_to_converge(), Error);
  c.decay = 0.3;
  c.tolerance = 2.0;  // above initial residual
  EXPECT_THROW(c.iterations_to_converge(), Error);
}

TEST(SolverTest, JobEstimateComposes) {
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const sim::RunConfig cfg{134, 951, 110, 90};
  const auto job = sim::estimate_job(simulator, cfg);
  EXPECT_GT(job.iterations, 1);
  EXPECT_GT(job.setup_s, 0.0);
  EXPECT_NEAR(job.total_s, job.setup_s + job.iterations * job.iteration_s,
              1e-9);
  EXPECT_NEAR(job.node_hours,
              sim::CcsdSimulator::node_hours(cfg, job.total_s), 1e-12);
  EXPECT_NEAR(job.iteration_s, simulator.iteration_time(cfg), 1e-12);
}

TEST(SolverTest, SetupShrinksWithNodes) {
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  EXPECT_GT(sim::setup_time_s(simulator, {134, 951, 10, 90}),
            sim::setup_time_s(simulator, {134, 951, 200, 90}));
  EXPECT_THROW(sim::setup_time_s(simulator, {134, 951, 0, 90}), Error);
}

TEST(SolverTest, TighterToleranceMeansMoreIterations) {
  sim::ConvergenceModel loose;
  loose.tolerance = 1e-5;
  sim::ConvergenceModel tight;
  tight.tolerance = 1e-9;
  EXPECT_LT(loose.iterations_to_converge(), tight.iterations_to_converge());
}

// ---------- impurity importances ----------

TEST(ImportanceTest, SingleTreePinpointsTheOnlyUsefulFeature) {
  Rng rng(6);
  linalg::Matrix x(300, 3);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform(-1, 1);
    y[i] = 5.0 * x(i, 1);  // only feature 1 matters
  }
  ml::DecisionTreeRegressor tree(ml::TreeOptions{.max_depth = 6});
  tree.fit(x, y);
  const auto imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[1], 0.95);
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
}

TEST(ImportanceTest, SingleLeafTreeHasZeroImportances) {
  linalg::Matrix x(10, 2, 1.0);
  const std::vector<double> y(10, 3.0);
  ml::DecisionTreeRegressor tree;
  tree.fit(x, y);
  for (double v : tree.feature_importances()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ImportanceTest, EnsemblesNormalizeAndAgree) {
  const auto s = test::make_linear(300, 0.05, 7);  // 3x0 - 2x1 + 0.5x2
  ml::RandomForestRegressor forest(40, ml::TreeOptions{.max_depth = 8});
  forest.fit(s.x, s.y);
  const auto fi = forest.feature_importances();
  EXPECT_NEAR(std::accumulate(fi.begin(), fi.end(), 0.0), 1.0, 1e-9);
  // The largest-coefficient feature dominates.
  EXPECT_GT(fi[0], fi[2]);

  ml::GradientBoostingRegressor gb(60, 0.1, ml::TreeOptions{.max_depth = 4});
  gb.fit(s.x, s.y);
  const auto gi = gb.feature_importances();
  EXPECT_NEAR(std::accumulate(gi.begin(), gi.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(gi[0], gi[2]);
}

TEST(ImportanceTest, ThrowsBeforeFit) {
  ml::DecisionTreeRegressor tree;
  EXPECT_THROW(tree.feature_importances(), Error);
  ml::GradientBoostingRegressor gb(10);
  EXPECT_THROW(gb.feature_importances(), Error);
}

// ---------- permutation importance ----------

TEST(PermutationImportanceTest, RanksRelevantFeatureHighest) {
  Rng rng(8);
  linalg::Matrix x(400, 3);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform(-1, 1);
    y[i] = 4.0 * x(i, 2) + 0.2 * x(i, 0);
  }
  ml::GradientBoostingRegressor gb(80, 0.1, ml::TreeOptions{.max_depth = 4});
  gb.fit(x, y);
  const auto imp = ml::permutation_importance(gb, x, y);
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[2], imp[0]);
  EXPECT_GT(imp[2], imp[1]);
  EXPECT_GT(imp[2], 0.5);          // shuffling the key feature is fatal
  EXPECT_LT(std::abs(imp[1]), 0.1);  // irrelevant feature ~ no effect
}

TEST(PermutationImportanceTest, OnRuntimeSurfaceNodesMatter) {
  // On the CCSD surface the node count must carry real importance — it is
  // the dominant knob of wall time at fixed problem size.
  const auto tt = test::small_campaign(500, 9);
  ml::GradientBoostingRegressor gb(150, 0.1, ml::TreeOptions{.max_depth = 8});
  gb.fit(tt.train.features(), tt.train.targets());
  const auto imp = ml::permutation_importance(gb, tt.test.features(),
                                              tt.test.targets());
  EXPECT_GT(imp[data::kFeatNodes], 0.05);
}

TEST(PermutationImportanceTest, UsageErrors) {
  ml::DecisionTreeRegressor tree;
  linalg::Matrix x(5, 2, 1.0);
  const std::vector<double> y(5, 1.0);
  EXPECT_THROW(ml::permutation_importance(tree, x, y), Error);
  tree.fit(x, y);
  EXPECT_THROW(ml::permutation_importance(tree, x, std::vector<double>(4)),
               Error);
}

// ---------- serialization ----------

TEST(SerializeTest, TreeRoundTripPredictsIdentically) {
  const auto s = test::make_nonlinear(200, 0.05, 31);
  ml::DecisionTreeRegressor tree(ml::TreeOptions{.max_depth = 8});
  tree.fit(s.x, s.y);
  const auto restored = ml::deserialize_tree(ml::serialize_tree(tree));
  const auto p1 = tree.predict(s.x);
  const auto p2 = restored.predict(s.x);
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
  // Importances survive the round trip.
  const auto i1 = tree.feature_importances();
  const auto i2 = restored.feature_importances();
  ASSERT_EQ(i1.size(), i2.size());
  for (std::size_t c = 0; c < i1.size(); ++c) EXPECT_DOUBLE_EQ(i1[c], i2[c]);
}

TEST(SerializeTest, GbRoundTripPredictsIdentically) {
  const auto tt = test::small_campaign(400, 32);
  ml::GradientBoostingRegressor gb(120, 0.1, ml::TreeOptions{.max_depth = 6});
  gb.fit(tt.train.features(), tt.train.targets());
  const auto restored = ml::deserialize_gb(ml::serialize_gb(gb));
  EXPECT_EQ(restored.stage_count(), gb.stage_count());
  EXPECT_DOUBLE_EQ(restored.base_prediction(), gb.base_prediction());
  const auto p1 = gb.predict(tt.test.features());
  const auto p2 = restored.predict(tt.test.features());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
}

TEST(SerializeTest, FileRoundTrip) {
  const auto s = test::make_linear(100, 0.0, 33);
  ml::GradientBoostingRegressor gb(30, 0.2, ml::TreeOptions{.max_depth = 4});
  gb.fit(s.x, s.y);
  const std::string path = ::testing::TempDir() + "/ccpred_model.txt";
  ml::save_gb(gb, path);
  const auto restored = ml::load_gb(path);
  EXPECT_DOUBLE_EQ(restored.predict_one(s.x.row(0)), gb.predict_one(s.x.row(0)));
  std::remove(path.c_str());
}

TEST(SerializeTest, MalformedInputThrows) {
  EXPECT_THROW(ml::deserialize_gb("not a model"), Error);
  EXPECT_THROW(ml::deserialize_tree("ccpred-gb-v1\n1 0.1 0"), Error);
  EXPECT_THROW(ml::deserialize_gb("ccpred-gb-v1\n3 0.1"), Error);  // truncated
  EXPECT_THROW(ml::deserialize_tree("ccpred-tree-v1\n2 0\n0 1.0 2.0 5 1\n"
                                    "-1 0 3.0 -1 -1\n"),
               Error);  // child index out of range
  EXPECT_THROW(ml::load_gb("/nonexistent/model.txt"), Error);
}

TEST(SerializeTest, UnfittedModelRejected) {
  ml::DecisionTreeRegressor tree;
  EXPECT_THROW(ml::serialize_tree(tree), Error);
  ml::GradientBoostingRegressor gb(10);
  EXPECT_THROW(ml::serialize_gb(gb), Error);
}

// ---------- Pareto front ----------

guide::SweepPoint make_point(double t, double nh) {
  guide::SweepPoint p;
  p.predicted_time_s = t;
  p.predicted_node_hours = nh;
  return p;
}

TEST(ParetoTest, FiltersDominatedPoints) {
  const std::vector<guide::SweepPoint> sweep = {
      make_point(10, 5), make_point(20, 3), make_point(15, 6),  // dominated
      make_point(30, 1), make_point(25, 4),                     // dominated
  };
  const auto front = guide::pareto_front(sweep);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].predicted_time_s, 10.0);
  EXPECT_DOUBLE_EQ(front[1].predicted_time_s, 20.0);
  EXPECT_DOUBLE_EQ(front[2].predicted_time_s, 30.0);
}

TEST(ParetoTest, FrontIsMonotone) {
  Rng rng(10);
  std::vector<guide::SweepPoint> sweep;
  for (int i = 0; i < 200; ++i) {
    sweep.push_back(make_point(rng.uniform(1, 100), rng.uniform(1, 100)));
  }
  const auto front = guide::pareto_front(sweep);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].predicted_time_s, front[i - 1].predicted_time_s);
    EXPECT_LT(front[i].predicted_node_hours,
              front[i - 1].predicted_node_hours);
  }
}

TEST(ParetoTest, EmptyAndSingleton) {
  EXPECT_TRUE(guide::pareto_front({}).empty());
  const auto front = guide::pareto_front({make_point(5, 5)});
  EXPECT_EQ(front.size(), 1u);
}

// ---------- budget-constrained advisor ----------

class BudgetAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tt_ = test::small_campaign(500, 11);
    model_ = ml::make_paper_gb();
    model_->set_params({{"n_estimators", 150.0}});
    model_->fit(tt_->train.features(), tt_->train.targets());
  }
  std::optional<data::TrainTest> tt_;
  std::unique_ptr<ml::Regressor> model_;
  sim::CcsdSimulator simulator_{sim::MachineModel::aurora()};
};

TEST_F(BudgetAdvisorTest, RespectsBudget) {
  const guide::Advisor advisor(*model_, simulator_);
  const auto bq = advisor.cheapest_run(134, 951);
  const double budget = 2.0 * bq.predicted_node_hours;
  const auto rec = advisor.fastest_within_budget(134, 951, budget);
  EXPECT_LE(rec.predicted_node_hours, budget + 1e-9);
  // With twice the minimum budget there is room to go faster than BQ.
  EXPECT_LE(rec.predicted_time_s, bq.predicted_time_s + 1e-9);
}

TEST_F(BudgetAdvisorTest, LargeBudgetRecoversStq) {
  const guide::Advisor advisor(*model_, simulator_);
  const auto stq = advisor.shortest_time(134, 951);
  const auto rec = advisor.fastest_within_budget(134, 951, 1e9);
  EXPECT_DOUBLE_EQ(rec.predicted_time_s, stq.predicted_time_s);
}

TEST_F(BudgetAdvisorTest, ImpossibleBudgetThrows) {
  const guide::Advisor advisor(*model_, simulator_);
  EXPECT_THROW(advisor.fastest_within_budget(134, 951, 1e-9), Error);
  EXPECT_THROW(advisor.fastest_within_budget(134, 951, -1.0), Error);
}

// A NaN/Inf prediction must fail loudly instead of silently winning or
// losing the argmin (regression tests for the advisor's sweep validation).
TEST(SweepValidationTest, FromSweepRejectsNaNPredictedTime) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(guide::Advisor::from_sweep({make_point(10, 5), make_point(nan, 3)},
                                          guide::Objective::kShortestTime),
               Error);
}

TEST(SweepValidationTest, FromSweepRejectsInfiniteNodeHours) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(guide::Advisor::from_sweep({make_point(10, inf)},
                                          guide::Objective::kNodeHours),
               Error);
}

TEST(SweepValidationTest, FromSweepAcceptsFiniteSweep) {
  const auto rec = guide::Advisor::from_sweep(
      {make_point(10, 5), make_point(20, 3)}, guide::Objective::kNodeHours);
  EXPECT_DOUBLE_EQ(rec.predicted_node_hours, 3.0);
}

TEST(SweepValidationTest, FastestWithinBudgetRejectsNonFiniteSweep) {
  guide::Recommendation base;
  base.sweep = {make_point(10, 5),
                make_point(std::numeric_limits<double>::quiet_NaN(), 2)};
  EXPECT_THROW(guide::Advisor::fastest_within_budget(base, 100.0), Error);
}

TEST_F(BudgetAdvisorTest, ParetoFrontContainsBothExtremes) {
  const guide::Advisor advisor(*model_, simulator_);
  const auto stq = advisor.shortest_time(134, 951);
  const auto front = guide::pareto_front(stq.sweep);
  ASSERT_GE(front.size(), 2u);
  // The fastest point and the cheapest point anchor the frontier.
  EXPECT_NEAR(front.front().predicted_time_s, stq.predicted_time_s, 1e-9);
  const auto bq = advisor.cheapest_run(134, 951);
  EXPECT_NEAR(front.back().predicted_node_hours, bq.predicted_node_hours,
              1e-9);
}

}  // namespace
}  // namespace ccpred
