#include "ccpred/serve/sweep_cache.hpp"

#include "ccpred/common/error.hpp"

namespace ccpred::serve {

SweepCache::SweepCache(std::size_t capacity, std::size_t shards) {
  CCPRED_CHECK_MSG(capacity > 0, "SweepCache capacity must be > 0");
  CCPRED_CHECK_MSG(shards > 0, "SweepCache needs at least one shard");
  if (shards > capacity) shards = capacity;
  const std::size_t per_shard = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

SweepCache::Shard& SweepCache::shard_for(const SweepKey& key) {
  return *shards_[SweepKeyHash()(key) % shards_.size()];
}

SweepPtr SweepCache::get(const SweepKey& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kCacheShard);
  auto hit = shard.cache.get(key);
  return hit ? *hit : nullptr;
}

void SweepCache::put(const SweepKey& key, SweepPtr sweep) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kCacheShard);
  shard.cache.put(key, std::move(sweep));
}

std::size_t SweepCache::invalidate(const std::string& machine,
                                   const std::string& kind) {
  std::size_t erased = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    erased += shard->cache.erase_if([&](const SweepKey& key) {
      return key.machine == machine && key.kind == kind;
    });
  }
  return erased;
}

CacheCounters SweepCache::counters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.counters();
  }
  return total;
}

std::size_t SweepCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.size();
  }
  return total;
}

}  // namespace ccpred::serve
