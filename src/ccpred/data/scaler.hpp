#pragma once

/// \file scaler.hpp
/// Feature standardization (zero mean, unit variance), required by the
/// kernel and linear models; tree ensembles are scale-invariant and skip it.

#include <vector>

#include "ccpred/linalg/matrix.hpp"

namespace ccpred::data {

/// Column-wise standard scaler: z = (x - mean) / std.
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation. Constant columns get
  /// std 1 so transform() is a no-op shift for them.
  void fit(const linalg::Matrix& x);

  /// True once fit() has been called.
  bool fitted() const { return !mean_.empty(); }

  /// Applies the learned transform; column count must match fit().
  linalg::Matrix transform(const linalg::Matrix& x) const;

  /// fit() then transform() in one step.
  linalg::Matrix fit_transform(const linalg::Matrix& x);

  /// Inverse transform (z * std + mean).
  linalg::Matrix inverse_transform(const linalg::Matrix& z) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Target scaler: standardizes a vector (used by models whose priors assume
/// centered targets, e.g. GP / Bayesian ridge).
class TargetScaler {
 public:
  void fit(const std::vector<double>& y);
  bool fitted() const { return fitted_; }
  std::vector<double> transform(const std::vector<double>& y) const;
  std::vector<double> fit_transform(const std::vector<double>& y);
  double inverse_one(double z) const { return z * std_ + mean_; }
  std::vector<double> inverse_transform(const std::vector<double>& z) const;
  double mean() const { return mean_; }
  double stddev() const { return std_; }

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double std_ = 1.0;
};

}  // namespace ccpred::data
