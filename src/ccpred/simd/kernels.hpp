#pragma once

/// \file kernels.hpp
/// Internal declarations for the per-mode kernel implementations. The
/// scalar TU is built with the project's default flags; the AVX2 TU is the
/// only code in the tree compiled with -mavx2 -mfma (and -ffp-contract=off
/// so bit-identity contracts survive), and is compiled empty off x86.

#include <cstddef>
#include <cstdint>

#include "ccpred/simd/simd.hpp"

namespace ccpred::simd {

void scalar_rbf_exp_map(const double* dist2, double* out, std::size_t n,
                        double gamma);
void scalar_sqdist_row(const double* xt, std::size_t n, std::size_t d,
                       const double* row, std::size_t j0, std::size_t j1,
                       double* out);
void scalar_ensemble_step(const TravNode* nodes, const double* x,
                          std::size_t bn, std::size_t n_cols,
                          std::int32_t* idx);
void scalar_hist_accumulate(const std::uint16_t* codes, std::size_t d,
                            const int* offsets, const std::uint32_t* rows,
                            std::size_t n, const double* y, double* sum,
                            std::uint32_t* count, std::size_t total_bins);
void scalar_hist_subtract(double* sum, std::uint32_t* count,
                          const double* osum, const std::uint32_t* ocount,
                          std::size_t total_bins);
bool scalar_split_scan(const double* sum, const std::uint32_t* count, int m,
                       double total, std::size_t n, std::size_t min_leaf,
                       double* io_best_gain, int* out_bin,
                       double* out_left_sum, std::size_t* out_left_count);
void scalar_bin_codes(const double* x, std::size_t n, std::size_t stride,
                      const double* edges, int n_edges, std::uint16_t* out,
                      std::size_t out_stride);
void scalar_update2x4(double* ya, double* yb, const double* a, const double* b,
                      const double* y0, const double* y1, const double* y2,
                      const double* y3, std::size_t len);
void scalar_update1x4(double* yr, const double* a, const double* y0,
                      const double* y1, const double* y2, const double* y3,
                      std::size_t len);

#if defined(CCPRED_HAVE_AVX2_BUILD)
void avx2_rbf_exp_map(const double* dist2, double* out, std::size_t n,
                      double gamma);
void avx2_sqdist_row(const double* xt, std::size_t n, std::size_t d,
                     const double* row, std::size_t j0, std::size_t j1,
                     double* out);
void avx2_ensemble_step(const TravNode* nodes, const double* x,
                        std::size_t bn, std::size_t n_cols, std::int32_t* idx);
void avx2_hist_accumulate(const std::uint16_t* codes, std::size_t d,
                          const int* offsets, const std::uint32_t* rows,
                          std::size_t n, const double* y, double* sum,
                          std::uint32_t* count, std::size_t total_bins);
void avx2_hist_subtract(double* sum, std::uint32_t* count, const double* osum,
                        const std::uint32_t* ocount, std::size_t total_bins);
void avx2_bin_codes(const double* x, std::size_t n, std::size_t stride,
                    const double* edges, int n_edges, std::uint16_t* out,
                    std::size_t out_stride);
void avx2_update2x4(double* ya, double* yb, const double* a, const double* b,
                    const double* y0, const double* y1, const double* y2,
                    const double* y3, std::size_t len);
void avx2_update1x4(double* yr, const double* a, const double* y0,
                    const double* y1, const double* y2, const double* y3,
                    std::size_t len);
#endif

}  // namespace ccpred::simd
