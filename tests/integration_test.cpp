// End-to-end integration tests: the full paper pipeline at reduced scale —
// campaign -> split -> train -> evaluate -> answer STQ/BQ -> active
// learning — plus persistence through CSV.

#include <gtest/gtest.h>

#include <cstdio>

#include "ccpred/active/loop.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/guidance/report.hpp"
#include "test_util.hpp"

namespace ccpred {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simulator_ = new sim::CcsdSimulator(sim::MachineModel::aurora());
    data::GeneratorOptions opt;
    opt.seed = 2025;
    opt.target_total = 1200;
    dataset_ = new data::Dataset(generate_dataset(
        *simulator_, data::aurora_problems(), opt));
    Rng rng(99);
    auto split = data::stratified_split_fraction(*dataset_, 0.25, rng);
    data::ensure_config_coverage(*dataset_, split);
    tt_ = new data::TrainTest(data::apply_split(*dataset_, split));
    auto gb = ml::make_paper_gb();
    gb->set_params({{"n_estimators", 300.0}});
    gb->fit(tt_->train.features(), tt_->train.targets());
    model_ = gb.release();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete tt_;
    delete dataset_;
    delete simulator_;
    model_ = nullptr;
    tt_ = nullptr;
    dataset_ = nullptr;
    simulator_ = nullptr;
  }

  static sim::CcsdSimulator* simulator_;
  static data::Dataset* dataset_;
  static data::TrainTest* tt_;
  static ml::Regressor* model_;
};

sim::CcsdSimulator* PipelineTest::simulator_ = nullptr;
data::Dataset* PipelineTest::dataset_ = nullptr;
data::TrainTest* PipelineTest::tt_ = nullptr;
ml::Regressor* PipelineTest::model_ = nullptr;

TEST_F(PipelineTest, GbPredictsHeldOutAccurately) {
  const auto scores = ml::score_all(tt_->test.targets(),
                                    model_->predict(tt_->test.features()));
  // Reduced-scale campaign: looser than the paper's 0.999/0.023 but the
  // same qualitative story.
  EXPECT_GT(scores.r2, 0.9);
  EXPECT_LT(scores.mape, 0.2);
}

TEST_F(PipelineTest, StqLossesSmallUnderTrueLossSemantics) {
  const auto y_pred = model_->predict(tt_->test.features());
  const auto outcomes = guide::evaluate_optima(
      tt_->test, y_pred, guide::Objective::kShortestTime);
  EXPECT_EQ(outcomes.size(), tt_->test.problems().size());
  const auto losses = guide::compute_losses(outcomes);
  EXPECT_GT(losses.r2, 0.9);
  EXPECT_LT(losses.mape, 0.2);
}

TEST_F(PipelineTest, BqRecommendationsCheaperThanStq) {
  const auto y_pred = model_->predict(tt_->test.features());
  const auto stq = guide::evaluate_optima(tt_->test, y_pred,
                                          guide::Objective::kShortestTime);
  const auto bq = guide::evaluate_optima(tt_->test, y_pred,
                                         guide::Objective::kNodeHours);
  // Per problem: the BQ predicted config must not use more nodes than the
  // STQ predicted config on average (Tables 3 vs 5 pattern).
  double stq_nodes = 0.0;
  double bq_nodes = 0.0;
  for (std::size_t i = 0; i < stq.size(); ++i) {
    stq_nodes += stq[i].predicted.config.nodes;
    bq_nodes += bq[i].predicted.config.nodes;
  }
  EXPECT_LT(bq_nodes, stq_nodes);
}

TEST_F(PipelineTest, AdvisorRegretIsBounded) {
  // The advisor's STQ recommendation, evaluated on the true simulator,
  // should be within 2x of the true best over the same candidate set.
  const guide::Advisor advisor(*model_, *simulator_);
  const auto rec = advisor.shortest_time(134, 951);
  double true_best = 1e300;
  for (const auto& pt : rec.sweep) {
    true_best = std::min(true_best, simulator_->iteration_time(pt.config));
  }
  const double realized = simulator_->iteration_time(rec.config);
  EXPECT_LT(realized, 2.0 * true_best);
}

TEST_F(PipelineTest, CsvPersistenceRoundTripsModelInput) {
  const std::string path = ::testing::TempDir() + "/ccpred_campaign.csv";
  write_csv(dataset_->to_csv(), path, /*precision=*/17);
  const auto reloaded = data::Dataset::from_csv(read_csv(path));
  ASSERT_EQ(reloaded.size(), dataset_->size());
  // Training on the reloaded data gives identical predictions.
  auto m1 = ml::make_model("DT");
  auto m2 = ml::make_model("DT");
  m1->fit(dataset_->features(), dataset_->targets());
  m2->fit(reloaded.features(), reloaded.targets());
  const auto p1 = m1->predict(tt_->test.features());
  const auto p2 = m2->predict(tt_->test.features());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
  std::remove(path.c_str());
}

TEST_F(PipelineTest, ActiveLearningUsefulInLowDataRegime) {
  al::UncertaintySampling us;
  const ml::GaussianProcessRegression gp(0.5, 1e-4, true, true);
  al::ActiveLearningOptions opt;
  opt.n_initial = 40;
  opt.query_size = 40;
  opt.n_queries = 6;
  opt.goal = guide::Objective::kShortestTime;
  const auto result =
      al::run_active_learning(tt_->train, tt_->test, gp, us, opt);
  ASSERT_EQ(result.rounds.size(), 6u);
  // The learning curve must improve substantially from round 0 to the end.
  EXPECT_GT(result.rounds.back().train_scores.r2,
            result.rounds.front().train_scores.r2);
  EXPECT_TRUE(result.rounds.back().goal_losses.has_value());
}

TEST_F(PipelineTest, TwoMachinesDifferInPredictability) {
  // Frontier's heavier noise must show up as higher best-case MAPE —
  // the paper's central cross-machine observation.
  auto run = [](const sim::MachineModel& machine) {
    const sim::CcsdSimulator simulator(machine);
    data::GeneratorOptions opt;
    opt.seed = 12;
    opt.target_total = 600;
    const auto ds = data::generate_dataset(
        simulator, data::problems_for(machine.name), opt);
    Rng rng(13);
    auto split = data::stratified_split_fraction(ds, 0.25, rng);
    data::ensure_config_coverage(ds, split);
    const auto tt = data::apply_split(ds, split);
    auto gb = ml::make_paper_gb();
    gb->set_params({{"n_estimators", 200.0}});
    gb->fit(tt.train.features(), tt.train.targets());
    return ml::mean_absolute_percentage_error(
        tt.test.targets(), gb->predict(tt.test.features()));
  };
  const double aurora_mape = run(sim::MachineModel::aurora());
  const double frontier_mape = run(sim::MachineModel::frontier());
  EXPECT_LT(aurora_mape, frontier_mape);
}

}  // namespace
}  // namespace ccpred
