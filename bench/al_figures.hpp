#pragma once

/// \file al_figures.hpp
/// Shared driver for Figures 3-6: active-learning curves on one machine,
/// with the paper's three query strategies (RS baseline, US with GP, QC
/// with a GB committee) and optionally the STQ/BQ goals.

#include <string>

namespace ccpred::bench {

/// Figures 3/4: plain learning curves (R^2, MAPE, MAE vs labeled count).
int run_al_curves(const std::string& machine);

/// Figures 5/6: goal-aware curves (STQ and BQ true losses vs labeled
/// count) plus the paper's key-observation thresholds.
int run_al_goal_curves(const std::string& machine);

}  // namespace ccpred::bench
