#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against committed baselines.

Every gated bench already enforces its own absolute floor (exit code), but
those floors are deliberately loose so they hold on any runner. This script
catches the slower drift the floors would miss: it diffs the headline
speedup metrics of freshly produced BENCH_*.json files against the
baselines committed in tools/bench_baselines.json and fails when a metric
regresses by more than the allowed tolerance (default 20%).

Baseline values are the LOW edge of the range observed on the reference
box, so runner-to-runner variance eats into the tolerance budget less than
a mid-range baseline would. Metrics may override the default tolerance
where run-to-run variance is known to be wider.

Usage:
  python3 tools/bench_compare.py                 # compare BENCH_*.json in cwd
  python3 tools/bench_compare.py build/*.json    # explicit files
  python3 tools/bench_compare.py --strict        # missing baselined file = error

Exit status: 0 when every present metric is within tolerance, 1 otherwise.
Stdlib only — no third-party imports.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def lookup(doc: dict, dotted: str):
    """Resolve a dotted path ('campaign.speedup') inside a parsed JSON doc."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) and not isinstance(node, bool) else None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json files (default: ./BENCH_*.json)")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_baselines.json"),
        help="baseline manifest (default: tools/bench_baselines.json)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail when a baselined bench file is absent (default: skip with a note)",
    )
    args = parser.parse_args()

    with open(args.baselines, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    default_tol = float(manifest.get("default_tolerance", 0.20))
    benches = manifest.get("benches", {})

    paths = args.files or sorted(glob.glob("BENCH_*.json"))
    by_name = {os.path.basename(p): p for p in paths}

    failures = 0
    checked = 0
    for bench_name, metrics in sorted(benches.items()):
        path = by_name.get(bench_name)
        if path is None:
            note = "MISSING" if args.strict else "skipped (not produced this run)"
            print(f"{bench_name}: {note}")
            if args.strict:
                failures += 1
            continue
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        for dotted, spec in sorted(metrics.items()):
            baseline = float(spec["value"])
            tol = float(spec.get("tolerance", default_tol))
            floor = baseline * (1.0 - tol)
            fresh = lookup(doc, dotted)
            checked += 1
            if fresh is None:
                print(f"{bench_name} {dotted}: MISSING METRIC (baseline {baseline:g}) — schema drift?")
                failures += 1
                continue
            if fresh < floor:
                drop = 100.0 * (1.0 - fresh / baseline)
                print(
                    f"{bench_name} {dotted}: REGRESSION {fresh:g} < floor {floor:g} "
                    f"(baseline {baseline:g}, -{drop:.0f}%, tolerance {tol:.0%})"
                )
                failures += 1
            else:
                verdict = "ok"
                if fresh > baseline * 1.5:
                    verdict = "ok (well above baseline — consider refreshing it)"
                print(f"{bench_name} {dotted}: {fresh:g} vs baseline {baseline:g} — {verdict}")

    if checked == 0 and failures == 0:
        print("no baselined benches found among:", ", ".join(sorted(by_name)) or "(none)")
    print(f"\n{checked} metrics checked, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
