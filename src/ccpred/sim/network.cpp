#include "ccpred/sim/network.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::sim {

double transfer_time_s(const MachineModel& m, double bytes, double messages,
                       int nodes) {
  CCPRED_CHECK_MSG(bytes >= 0.0 && messages >= 0.0,
                   "transfer sizes must be non-negative");
  CCPRED_CHECK_MSG(nodes > 0, "node count must be positive");
  const double remote_fraction =
      1.0 - 1.0 / static_cast<double>(nodes);
  const double per_gpu_bw =
      m.effective_bw_bytes(nodes) / static_cast<double>(m.gpus_per_node);
  return remote_fraction * (bytes / per_gpu_bw + messages * m.latency_s);
}

double allreduce_time_s(const MachineModel& m, double bytes, int nodes) {
  CCPRED_CHECK_MSG(nodes > 0, "node count must be positive");
  if (nodes == 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(nodes)));
  const double bw = m.effective_bw_bytes(nodes);
  return stages * (m.latency_s + bytes / bw);
}

}  // namespace ccpred::sim
