// Tests for the fast kernel-model engine: GP fast-vs-reference agreement,
// cached-Gram KRR refits, incremental GP updates and the incremental
// active-learning loop.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ccpred/active/loop.hpp"
#include "ccpred/active/random_sampling.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/kernel_ridge.hpp"
#include "ccpred/core/kernels.hpp"
#include "test_util.hpp"

namespace ccpred::ml {
namespace {

constexpr double kRelTol = 1e-9;

void expect_close_rel(const std::vector<double>& a,
                      const std::vector<double>& b, double rel,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    EXPECT_LT(std::abs(a[i] - b[i]) / scale, rel)
        << what << " diverged at index " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

// ---------- distance helpers ----------

TEST(SquaredDistancesTest, MatchesKernelGram) {
  Rng rng(31);
  linalg::Matrix x(130, 4);  // spans the mirror-pairing boundary
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) x(i, c) = rng.uniform(-2, 2);
  }
  Kernel rbf;
  rbf.type = KernelType::kRbf;
  rbf.gamma = 0.7;
  const linalg::Matrix d2 = squared_distances(x);
  const linalg::Matrix k = rbf_from_squared_distances(d2, rbf.gamma);
  const linalg::Matrix k_ref = rbf.gram_symmetric(x);
  // The squared distances share the kernel's summation order bit-for-bit;
  // the exp map may run the vectorized polynomial exp (max relative error
  // ~3e-16 vs libm), so the Gram comparison carries a tolerance far below
  // the engine-wide 1e-9. RBF entries are in (0, 1], so absolute error
  // bounds relative error here.
  EXPECT_LT(k.max_abs_diff(k_ref), 1e-14);
  const linalg::Matrix k_sym = rbf_from_squared_distances_symmetric(d2, rbf.gamma);
  EXPECT_LT(k_sym.max_abs_diff(k_ref), 1e-14);
  // The two map variants run the same exp on the same distances.
  EXPECT_DOUBLE_EQ(k.max_abs_diff(k_sym), 0.0);
}

TEST(SquaredDistancesTest, RectangularMatchesSymmetric) {
  Rng rng(32);
  linalg::Matrix x(20, 3);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) x(i, c) = rng.uniform(-1, 1);
  }
  const linalg::Matrix sym = squared_distances(x);
  const linalg::Matrix rect = squared_distances(x, x);
  EXPECT_DOUBLE_EQ(sym.max_abs_diff(rect), 0.0);
}

// ---------- GP fast vs reference ----------

class GpEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { tt_ = test::small_campaign(350); }
  std::optional<data::TrainTest> tt_;
};

TEST_F(GpEngineTest, FastMatchesReferenceWithOptimization) {
  // The Fig. 3 US configuration: optimized hyper-parameters, log target.
  GaussianProcessRegression fast(0.5, 1e-4, true, true);
  GaussianProcessRegression ref(0.5, 1e-4, true, true);
  ref.set_params({{"engine", 1.0}});
  fast.fit(tt_->train.features(), tt_->train.targets());
  ref.fit(tt_->train.features(), tt_->train.targets());

  const auto x_test = tt_->test.features();
  expect_close_rel(fast.predict(x_test), ref.predict(x_test), kRelTol,
                   "predict");

  std::vector<double> mean_f, std_f, mean_r, std_r;
  fast.predict_with_std(x_test, mean_f, std_f);
  ref.predict_with_std(x_test, mean_r, std_r);
  expect_close_rel(mean_f, mean_r, kRelTol, "predict_with_std mean");
  // Variances subtract near-equal quantities; compare on the mean's scale.
  ASSERT_EQ(std_f.size(), std_r.size());
  for (std::size_t i = 0; i < std_f.size(); ++i) {
    const double scale = std::max(std::abs(mean_f[i]), 1e-12);
    EXPECT_LT(std::abs(std_f[i] - std_r[i]) / scale, kRelTol)
        << "std diverged at " << i;
  }
}

TEST_F(GpEngineTest, FastMatchesReferenceFixedHyperparams) {
  GaussianProcessRegression fast(0.8, 1e-3, false);
  GaussianProcessRegression ref(0.8, 1e-3, false);
  ref.set_params({{"engine", 1.0}});
  fast.fit(tt_->train.features(), tt_->train.targets());
  ref.fit(tt_->train.features(), tt_->train.targets());
  expect_close_rel(fast.predict(tt_->test.features()),
                   ref.predict(tt_->test.features()), kRelTol, "predict");
}

TEST(GpEngineParams, EngineParamValidatedAndCloned) {
  GaussianProcessRegression gp(0.5, 1e-4, false);
  EXPECT_THROW(gp.set_params({{"engine", 2.0}}), Error);
  gp.set_params({{"engine", 1.0}});
  EXPECT_EQ(gp.engine(), GaussianProcessRegression::Engine::kReference);
  const auto copy = gp.clone();
  auto* gp_copy = dynamic_cast<GaussianProcessRegression*>(copy.get());
  ASSERT_NE(gp_copy, nullptr);
  EXPECT_EQ(gp_copy->engine(), GaussianProcessRegression::Engine::kReference);
}

// ---------- GP incremental update ----------

TEST(GpUpdateTest, InterpolatesOldAndNewPointsAfterUpdate) {
  // With near-zero noise a GP interpolates its training data; a broken
  // factor extension or stale alpha would destroy this immediately.
  const auto s = test::make_nonlinear(120, 0.0, 7);
  linalg::Matrix x0(80, s.x.cols()), x1(40, s.x.cols());
  std::vector<double> y0(80), y1(40);
  for (std::size_t i = 0; i < 120; ++i) {
    auto& dst_x = i < 80 ? x0 : x1;
    auto& dst_y = i < 80 ? y0 : y1;
    const std::size_t r = i < 80 ? i : i - 80;
    for (std::size_t c = 0; c < s.x.cols(); ++c) dst_x(r, c) = s.x(i, c);
    dst_y[r] = s.y[i];
  }
  GaussianProcessRegression gp(1.0, 1e-8, false);
  gp.fit(x0, y0);
  EXPECT_TRUE(gp.supports_incremental_update());
  gp.update(x1, y1);
  const auto pred0 = gp.predict(x0);
  const auto pred1 = gp.predict(x1);
  for (std::size_t i = 0; i < y0.size(); ++i)
    EXPECT_NEAR(pred0[i], y0[i], 1e-4);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_NEAR(pred1[i], y1[i], 1e-4);
}

TEST(GpUpdateTest, UpdateBeforeFitThrows) {
  GaussianProcessRegression gp(0.5, 1e-4, false);
  EXPECT_THROW(gp.update(linalg::Matrix(1, 2), {1.0}), Error);
}

TEST(GpUpdateTest, BaseRegressorRejectsUpdate) {
  DecisionTreeRegressor dt;
  EXPECT_FALSE(dt.supports_incremental_update());
  EXPECT_THROW(dt.update(linalg::Matrix(1, 2), {1.0}), Error);
}

// ---------- GP incremental update edge cases ----------

linalg::Matrix tile_rows(const linalg::Matrix& x, int times) {
  linalg::Matrix out(x.rows() * static_cast<std::size_t>(times), x.cols());
  for (int t = 0; t < times; ++t) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        out(static_cast<std::size_t>(t) * x.rows() + i, c) = x(i, c);
      }
    }
  }
  return out;
}

std::vector<double> tile_vec(const std::vector<double>& y, int times) {
  std::vector<double> out;
  out.reserve(y.size() * static_cast<std::size_t>(times));
  for (int t = 0; t < times; ++t) out.insert(out.end(), y.begin(), y.end());
  return out;
}

TEST(GpUpdateEdgeCases, ChainedDuplicateUpdatesMatchFullRefit) {
  // The feature/target scalers divide by the POPULATION std, so
  // replicating the whole training set changes neither mean nor std: the
  // incremental path's frozen scalers equal a fresh fit's, and
  // fit(A); update(A); update(A) must agree with fit(A+A+A) to solver
  // precision. This exercises duplicate training points (K is kept
  // positive definite by the white noise alone) and update-after-update
  // chains against the from-scratch factorization.
  const auto s = test::make_nonlinear(60, 0.05, 21);
  const auto probe = test::make_nonlinear(25, 0.0, 22);

  GaussianProcessRegression inc(1.0, 1e-4, false);
  inc.fit(s.x, s.y);
  inc.update(s.x, s.y);
  inc.update(s.x, s.y);

  GaussianProcessRegression full(1.0, 1e-4, false);
  full.fit(tile_rows(s.x, 3), tile_vec(s.y, 3));

  expect_close_rel(inc.predict(probe.x), full.predict(probe.x), kRelTol,
                   "chained duplicate updates vs full refit");
  std::vector<double> mean_i, std_i, mean_f, std_f;
  inc.predict_with_std(probe.x, mean_i, std_i);
  full.predict_with_std(probe.x, mean_f, std_f);
  expect_close_rel(mean_i, mean_f, kRelTol, "mean after duplicate chain");
  ASSERT_EQ(std_i.size(), std_f.size());
  for (std::size_t i = 0; i < std_i.size(); ++i) {
    const double scale = std::max(std::abs(mean_i[i]), 1e-12);
    EXPECT_LT(std::abs(std_i[i] - std_f[i]) / scale, kRelTol)
        << "std diverged at " << i;
  }
}

TEST(GpUpdateEdgeCases, ManySmallUpdatesMatchOneBigUpdate) {
  // Both sides share the same frozen scalers (fit on the same base), so
  // absorbing 40 rows as 8 batches of 5 must equal absorbing them at once.
  const auto base = test::make_nonlinear(80, 0.05, 23);
  const auto extra = test::make_nonlinear(40, 0.05, 24);
  const auto probe = test::make_nonlinear(20, 0.0, 25);

  GaussianProcessRegression chained(1.0, 1e-4, false);
  GaussianProcessRegression big(1.0, 1e-4, false);
  chained.fit(base.x, base.y);
  big.fit(base.x, base.y);

  for (std::size_t start = 0; start < 40; start += 5) {
    linalg::Matrix xb(5, extra.x.cols());
    std::vector<double> yb(5);
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t c = 0; c < extra.x.cols(); ++c) {
        xb(i, c) = extra.x(start + i, c);
      }
      yb[i] = extra.y[start + i];
    }
    chained.update(xb, yb);
  }
  big.update(extra.x, extra.y);

  expect_close_rel(chained.predict(probe.x), big.predict(probe.x), kRelTol,
                   "8x5 chained updates vs one 40-row update");
}

TEST(GpUpdateEdgeCases, ZeroVarianceBatchStaysFinite) {
  // A batch of identical rows with one repeated target: zero variance in
  // both features and target. The frozen scalers make the transform safe
  // (no division by a batch std) and the noise keeps the extended factor
  // positive definite.
  const auto s = test::make_nonlinear(80, 0.05, 26);
  GaussianProcessRegression gp(1.0, 1e-4, false);
  gp.fit(s.x, s.y);

  linalg::Matrix xb(12, s.x.cols());
  for (std::size_t i = 0; i < xb.rows(); ++i) {
    for (std::size_t c = 0; c < xb.cols(); ++c) xb(i, c) = s.x(0, c);
  }
  const std::vector<double> yb(12, 3.25);
  gp.update(xb, yb);

  const auto pred = gp.predict(s.x);
  for (const double p : pred) EXPECT_TRUE(std::isfinite(p));
  std::vector<double> mean, std;
  gp.predict_with_std(s.x, mean, std);
  for (const double v : std) EXPECT_TRUE(std::isfinite(v));

  // Twelve repeated low-noise observations dominate the posterior there.
  std::vector<double> row0(s.x.cols());
  for (std::size_t c = 0; c < s.x.cols(); ++c) row0[c] = s.x(0, c);
  EXPECT_GT(gp.predict_one(row0), 2.0);
}

// ---------- KRR cached refits ----------

TEST(KernelRidgeCacheTest, RefitOnSameDataMatchesFreshFit) {
  const auto s = test::make_nonlinear(150, 0.05, 9);
  const auto probe = test::make_nonlinear(40, 0.0, 10);

  // Grid-search usage: set_params + fit over and over on the same rows.
  KernelRidgeRegression warm;
  warm.fit(s.x, s.y);
  warm.set_params({{"alpha", 0.01}, {"gamma", 0.3}});
  warm.fit(s.x, s.y);  // second fit reuses the cached distance matrix

  Kernel k;
  k.type = KernelType::kRbf;
  k.gamma = 0.3;
  KernelRidgeRegression fresh(k, 0.01);
  fresh.fit(s.x, s.y);

  expect_close_rel(warm.predict(probe.x), fresh.predict(probe.x), 1e-12,
                   "KRR cached refit");
  ASSERT_NE(warm.factorization(), nullptr);
  EXPECT_EQ(warm.factorization()->order(), s.x.rows());
}

TEST(KernelRidgeCacheTest, RefitOnDifferentDataInvalidatesCache) {
  const auto a = test::make_nonlinear(100, 0.05, 11);
  const auto b = test::make_nonlinear(120, 0.05, 12);
  const auto probe = test::make_nonlinear(30, 0.0, 13);
  KernelRidgeRegression warm;
  warm.fit(a.x, a.y);
  warm.fit(b.x, b.y);  // different rows: cache must not leak through
  KernelRidgeRegression fresh;
  fresh.fit(b.x, b.y);
  expect_close_rel(warm.predict(probe.x), fresh.predict(probe.x), 1e-12,
                   "KRR refit on new data");
}

}  // namespace
}  // namespace ccpred::ml

// ---------- incremental active learning ----------

namespace ccpred::al {
namespace {

class IncrementalLoopTest : public ::testing::Test {
 protected:
  void SetUp() override { tt_ = test::small_campaign(400); }
  std::optional<data::TrainTest> tt_;
};

TEST_F(IncrementalLoopTest, CurvesTrackFromScratchRefits) {
  // Random sampling keeps the labeled trajectory identical between the two
  // runs, and fixed hyper-parameters isolate the one intended difference:
  // incremental rounds keep the scalers frozen at the last full fit.
  const ml::GaussianProcessRegression proto(0.5, 1e-4, false, true);
  ActiveLearningOptions base;
  base.n_initial = 40;
  base.query_size = 40;
  base.n_queries = 7;

  RandomSampling rs_a;
  const auto scratch =
      run_active_learning(tt_->train, tt_->test, proto, rs_a, base);

  ActiveLearningOptions inc = base;
  inc.incremental_refit = true;
  inc.refit_cadence = 3;
  RandomSampling rs_b;
  const auto fast =
      run_active_learning(tt_->train, tt_->test, proto, rs_b, inc);

  ASSERT_EQ(fast.rounds.size(), scratch.rounds.size());
  for (std::size_t r = 0; r < fast.rounds.size(); ++r) {
    EXPECT_EQ(fast.rounds[r].labeled_count, scratch.rounds[r].labeled_count);
    if (r % 3 == 0) {
      // Cadence rounds refit from scratch on identical labeled sets.
      EXPECT_DOUBLE_EQ(fast.rounds[r].train_scores.r2,
                       scratch.rounds[r].train_scores.r2);
    } else {
      // Incremental rounds keep the scalers frozen; the curves must stay
      // within a tight band of the from-scratch run.
      EXPECT_NEAR(fast.rounds[r].train_scores.r2,
                  scratch.rounds[r].train_scores.r2, 0.05);
    }
  }
}

TEST_F(IncrementalLoopTest, WorksWithUncertaintySampling) {
  const ml::GaussianProcessRegression proto(0.5, 1e-4, true, true);
  ActiveLearningOptions opt;
  opt.n_initial = 40;
  opt.query_size = 40;
  opt.n_queries = 5;
  opt.incremental_refit = true;
  opt.refit_cadence = 3;
  UncertaintySampling us;
  const auto result =
      run_active_learning(tt_->train, tt_->test, proto, us, opt);
  ASSERT_EQ(result.rounds.size(), 5u);
  // The model keeps learning across incremental rounds.
  EXPECT_GT(result.rounds.back().train_scores.r2,
            result.rounds.front().train_scores.r2 - 0.05);
}

TEST_F(IncrementalLoopTest, FallsBackForModelsWithoutUpdate) {
  const ml::DecisionTreeRegressor proto(ml::TreeOptions{.max_depth = 6});
  ActiveLearningOptions plain;
  plain.n_initial = 30;
  plain.query_size = 30;
  plain.n_queries = 4;
  ActiveLearningOptions inc = plain;
  inc.incremental_refit = true;
  RandomSampling rs_a, rs_b;
  const auto a = run_active_learning(tt_->train, tt_->test, proto, rs_a, plain);
  const auto b = run_active_learning(tt_->train, tt_->test, proto, rs_b, inc);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.rounds[r].train_scores.r2, b.rounds[r].train_scores.r2);
  }
}

}  // namespace
}  // namespace ccpred::al
