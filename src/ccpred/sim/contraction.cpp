#include "ccpred/sim/contraction.hpp"

#include "ccpred/common/error.hpp"

namespace ccpred::sim {

double Contraction::flops(int o, int v) const {
  CCPRED_CHECK_MSG(o > 0 && v > 0, "orbital counts must be positive");
  return 2.0 * mult * ipow(static_cast<double>(o), out_occ + sum_occ) *
         ipow(static_cast<double>(v), out_virt + sum_virt);
}

double Contraction::sum_extent(int o, int v) const {
  return ipow(static_cast<double>(o), sum_occ) *
         ipow(static_cast<double>(v), sum_virt);
}

const std::vector<Contraction>& ccsd_contractions() {
  // Multiplicities chosen so the aggregate tracks the operation profile of
  // a spin-adapted closed-shell CCSD residual (Scuseria et al. 1988):
  // the sextic terms dominate, ring terms contribute a comparable constant
  // at O ~ V/5, and the quintic singles terms matter only for small V.
  static const std::vector<Contraction> inventory = {
      //                 name         oo  ov  so  sv  mult
      {.name = "pp_ladder", .out_occ = 2, .out_virt = 2, .sum_occ = 0,
       .sum_virt = 2, .mult = 2.0},  // T2(ij,cd) * V(ab,cd) and exchange
      {.name = "hh_ladder", .out_occ = 2, .out_virt = 2, .sum_occ = 2,
       .sum_virt = 0, .mult = 1.0},  // T2(kl,ab) * W(ij,kl)
      {.name = "ring", .out_occ = 2, .out_virt = 2, .sum_occ = 1,
       .sum_virt = 1, .mult = 6.0},  // particle-hole ring family
      {.name = "t1_ovvv", .out_occ = 1, .out_virt = 1, .sum_occ = 0,
       .sum_virt = 2, .mult = 2.0},  // singles with ovvv integrals
      {.name = "t1_oovv", .out_occ = 1, .out_virt = 1, .sum_occ = 1,
       .sum_virt = 1, .mult = 4.0},  // singles/doubles dressing terms
  };
  return inventory;
}

double ccsd_iteration_flops(int o, int v) {
  double total = 0.0;
  for (const auto& c : ccsd_contractions()) total += c.flops(o, v);
  return total;
}

const std::vector<Contraction>& triples_contractions() {
  // (T) builds T3(ijk,abc) blocks on the fly: the particle contraction
  // sums over one virtual index (O^3 V^4), the hole contraction over one
  // occupied index (O^4 V^3); the energy accumulation is O^3 V^3.
  static const std::vector<Contraction> inventory = {
      {.name = "t3_particle", .out_occ = 3, .out_virt = 3, .sum_occ = 0,
       .sum_virt = 1, .mult = 3.0},
      {.name = "t3_hole", .out_occ = 3, .out_virt = 3, .sum_occ = 1,
       .sum_virt = 0, .mult = 3.0},
      {.name = "t3_energy", .out_occ = 3, .out_virt = 3, .sum_occ = 0,
       .sum_virt = 0, .mult = 2.0},
  };
  return inventory;
}

double triples_flops(int o, int v) {
  double total = 0.0;
  for (const auto& c : triples_contractions()) total += c.flops(o, v);
  return total;
}

}  // namespace ccpred::sim
