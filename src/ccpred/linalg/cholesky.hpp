#pragma once

/// \file cholesky.hpp
/// Cholesky factorization of symmetric positive-definite matrices, the
/// backbone of the kernel ridge / Gaussian-process / Bayesian-ridge solvers.
///
/// Two factorization paths share one class: a blocked right-looking
/// algorithm (panel factorization + GEMM-shaped trailing updates fanned out
/// over the shared thread pool) that the kernel-model engine uses, and the
/// original scalar left-looking column algorithm kept as the reference.
/// For orders up to the panel width the two perform identical arithmetic,
/// so small-matrix results are bit-for-bit unchanged.

#include <vector>

#include "ccpred/exec/engine_mode.hpp"
#include "ccpred/linalg/matrix.hpp"

namespace ccpred::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
///
/// Factorizes once, then solves any number of right-hand sides in O(n^2) —
/// or a whole right-hand-side matrix per blocked sweep.
class Cholesky {
 public:
  /// Factorization algorithm selection — the executor layer's shared
  /// reference-vs-fast convention. kFast is the blocked right-looking
  /// algorithm (panels + parallel trailing updates); kReference the scalar
  /// left-looking column algorithm (the original path).
  using Method = exec::EngineMode;

  /// Factorizes `a` (must be square, symmetric, positive definite).
  /// Taken by value: the blocked path factorizes in place, so moving in a
  /// matrix the caller no longer needs skips a copy.
  /// Throws ccpred::Error if a non-positive pivot is encountered.
  explicit Cholesky(Matrix a, Method method = Method::kFast);

  std::size_t order() const { return l_.rows(); }

  /// The factor L (lower triangular; upper part is zero).
  const Matrix& factor() const { return l_; }

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A X = B for all columns of B in one blocked sweep.
  Matrix solve(const Matrix& b) const;

  /// Solves L y = b (forward substitution).
  std::vector<double> solve_lower(const std::vector<double>& b) const;

  /// Solves L^T x = y (backward substitution).
  std::vector<double> solve_upper(const std::vector<double>& y) const;

  /// Solves L Y = B for every column of B (blocked multi-RHS forward
  /// substitution; column stripes run in parallel).
  Matrix solve_lower(const Matrix& b) const;

  /// Solves L^T X = Y for every column of Y (blocked multi-RHS backward
  /// substitution; column stripes run in parallel).
  Matrix solve_upper(const Matrix& y) const;

  /// Appends q rows/columns to the factored matrix in O(n^2 q) without
  /// refactorizing: given the new rows' covariance against the existing
  /// points (`cross`, q x n) and among themselves (`diag`, q x q), extends
  /// L for [[A, cross^T], [cross, diag]]. Throws ccpred::Error if the
  /// extended matrix is not positive definite.
  void extend(const Matrix& cross, const Matrix& diag);

  /// log(det A) = 2 * sum(log L_ii); used by GP marginal likelihood.
  double log_determinant() const;

  /// A^{-1} via one blocked multi-RHS solve of the identity (used by
  /// Bayesian ridge).
  Matrix inverse() const;

 private:
  Matrix l_;
};

}  // namespace ccpred::linalg
