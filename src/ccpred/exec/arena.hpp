#pragma once

/// \file arena.hpp
/// Per-task bump allocator for hot-loop scratch memory.
///
/// Campaign generation, sweep rounds and histogram tree fits used to
/// allocate dozens of short-lived vectors per call; an Arena turns that
/// into one cache-line-aligned block allocation reused across calls.
/// Allocation is a pointer bump, so it is deterministic and effectively
/// free; reset() rewinds the pointer, and the next identical allocation
/// sequence hands back the same pointers. Requests that do not fit in the
/// buffer fall back to individually heap-allocated blocks (freed on reset),
/// so callers never need to size the arena exactly — an undersized arena is
/// only slower, never wrong.
///
/// Arenas are single-owner: one task (or one TaskScope chunk) uses one
/// arena at a time. Nothing is destroyed on reset, so only trivially
/// destructible element types may live in arena storage.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "ccpred/common/aligned.hpp"

namespace ccpred::exec {

class Arena {
 public:
  /// Default buffer: big enough for a typical tree-fit or batch-grouping
  /// scratch set without being wasteful per worker.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit Arena(std::size_t capacity_bytes = kDefaultCapacity);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two, at least
  /// kCacheLineAlign by default so SIMD kernels can assume aligned loads).
  /// Zero-size requests return a valid, aligned, non-null pointer without
  /// consuming space. Requests past the buffer's end fall back to the heap.
  void* allocate(std::size_t bytes, std::size_t align = kCacheLineAlign);

  /// Typed array allocation; T must be trivially destructible (nothing runs
  /// destructors). Contents are uninitialized.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage never runs destructors");
    const std::size_t align =
        alignof(T) > kCacheLineAlign ? alignof(T) : kCacheLineAlign;
    return static_cast<T*>(allocate(n * sizeof(T), align));
  }

  /// Rewinds the bump pointer to the start and frees heap-fallback blocks.
  /// Pointers from before the reset are invalid; an identical allocation
  /// sequence after reset() returns the same in-buffer pointers.
  void reset();

  std::size_t capacity() const { return buffer_.size(); }
  std::size_t used() const { return offset_; }
  /// Cumulative count of allocations that did not fit the buffer.
  std::uint64_t heap_fallbacks() const { return heap_fallbacks_; }

 private:
  AlignedVector<unsigned char> buffer_;
  std::size_t offset_ = 0;
  std::vector<std::pair<void*, std::size_t>> overflow_;  // (ptr, align)
  std::uint64_t heap_fallbacks_ = 0;
};

}  // namespace ccpred::exec
