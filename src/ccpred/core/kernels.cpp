#include "ccpred/core/kernels.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"

namespace ccpred::ml {

double Kernel::operator()(const double* x, const double* z,
                          std::size_t d) const {
  switch (type) {
    case KernelType::kRbf: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        const double diff = x[i] - z[i];
        s += diff * diff;
      }
      return std::exp(-gamma * s);
    }
    case KernelType::kPolynomial: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) s += x[i] * z[i];
      return std::pow(gamma * s + coef0, degree);
    }
    case KernelType::kLinear: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) s += x[i] * z[i];
      return s;
    }
  }
  throw Error("unknown kernel type");
}

linalg::Matrix Kernel::gram(const linalg::Matrix& a,
                            const linalg::Matrix& b) const {
  CCPRED_CHECK_MSG(a.cols() == b.cols(), "kernel feature dims differ");
  linalg::Matrix k(a.rows(), b.rows());
  const std::size_t d = a.cols();
  parallel_for(0, a.rows(), [&](std::size_t i) {
    const double* ai = a.row_ptr(i);
    double* ki = k.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      ki[j] = (*this)(ai, b.row_ptr(j), d);
    }
  });
  return k;
}

linalg::Matrix Kernel::gram_symmetric(const linalg::Matrix& a) const {
  const std::size_t n = a.rows();
  linalg::Matrix k(n, n);
  const std::size_t d = a.cols();
  // Upper-triangle row i holds n - i entries, so a flat split over rows
  // gives the worker owning row 0 n entries and the one owning row n-1 a
  // single one. Pairing row p with its mirror n-1-p makes every index
  // carry ~n+1 entries, so the static chunking stays balanced.
  const std::size_t half = (n + 1) / 2;
  parallel_for(0, half, [&](std::size_t p) {
    const double* ap = a.row_ptr(p);
    for (std::size_t j = p; j < n; ++j) {
      k(p, j) = (*this)(ap, a.row_ptr(j), d);
    }
    const std::size_t q = n - 1 - p;
    if (q == p) return;
    const double* aq = a.row_ptr(q);
    for (std::size_t j = q; j < n; ++j) {
      k(q, j) = (*this)(aq, a.row_ptr(j), d);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) k(i, j) = k(j, i);
  }
  return k;
}

std::string Kernel::name() const {
  switch (type) {
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "poly";
    case KernelType::kLinear:
      return "linear";
  }
  return "unknown";
}

namespace {

double row_sq_dist(const double* x, const double* z, std::size_t d) {
  double s = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double diff = x[i] - z[i];
    s += diff * diff;
  }
  return s;
}

}  // namespace

linalg::Matrix squared_distances(const linalg::Matrix& a) {
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  linalg::Matrix k(n, n);
  // Mirror-paired rows, same balancing as Kernel::gram_symmetric.
  const std::size_t half = (n + 1) / 2;
  parallel_for(0, half, [&](std::size_t p) {
    const double* ap = a.row_ptr(p);
    for (std::size_t j = p; j < n; ++j) {
      k(p, j) = row_sq_dist(ap, a.row_ptr(j), d);
    }
    const std::size_t q = n - 1 - p;
    if (q == p) return;
    const double* aq = a.row_ptr(q);
    for (std::size_t j = q; j < n; ++j) {
      k(q, j) = row_sq_dist(aq, a.row_ptr(j), d);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) k(i, j) = k(j, i);
  }
  return k;
}

linalg::Matrix squared_distances(const linalg::Matrix& a,
                                 const linalg::Matrix& b) {
  CCPRED_CHECK_MSG(a.cols() == b.cols(), "kernel feature dims differ");
  const std::size_t d = a.cols();
  linalg::Matrix k(a.rows(), b.rows());
  parallel_for(0, a.rows(), [&](std::size_t i) {
    const double* ai = a.row_ptr(i);
    double* ki = k.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      ki[j] = row_sq_dist(ai, b.row_ptr(j), d);
    }
  });
  return k;
}

linalg::Matrix rbf_from_squared_distances(const linalg::Matrix& d2,
                                          double gamma) {
  linalg::Matrix k(d2.rows(), d2.cols());
  const double* src = d2.data();
  double* dst = k.data();
  const std::size_t total = d2.size();
  for (std::size_t i = 0; i < total; ++i) dst[i] = std::exp(-gamma * src[i]);
  return k;
}

linalg::Matrix rbf_from_squared_distances_symmetric(const linalg::Matrix& d2,
                                                    double gamma) {
  CCPRED_CHECK_MSG(d2.rows() == d2.cols(),
                   "symmetric RBF map needs a square distance matrix");
  const std::size_t n = d2.rows();
  linalg::Matrix k(n, n);
  // exp() only the upper triangle and mirror: half the transcendental
  // cost of the dense map. Mirror-paired rows keep the split balanced.
  const std::size_t half = (n + 1) / 2;
  parallel_for(0, half, [&](std::size_t p) {
    const double* dp = d2.row_ptr(p);
    double* kp = k.row_ptr(p);
    for (std::size_t j = p; j < n; ++j) kp[j] = std::exp(-gamma * dp[j]);
    const std::size_t q = n - 1 - p;
    if (q == p) return;
    const double* dq = d2.row_ptr(q);
    double* kq = k.row_ptr(q);
    for (std::size_t j = q; j < n; ++j) kq[j] = std::exp(-gamma * dq[j]);
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) k(i, j) = k(j, i);
  }
  return k;
}

KernelType kernel_type_from_name(const std::string& name) {
  if (name == "rbf") return KernelType::kRbf;
  if (name == "poly" || name == "polynomial") return KernelType::kPolynomial;
  if (name == "linear") return KernelType::kLinear;
  throw Error("unknown kernel name: " + name);
}

}  // namespace ccpred::ml
