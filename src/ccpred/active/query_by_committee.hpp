#pragma once

/// \file query_by_committee.hpp
/// Query by committee (QC, Algorithm 2): train a committee of models on
/// the labeled data (diversified by seed and subsampling), and query the
/// unlabeled experiments where the committee's predictions disagree the
/// most (largest variance). The paper pairs QC with gradient boosting.

#include <memory>

#include "ccpred/active/strategy.hpp"

namespace ccpred::al {

/// Committee-variance query selection.
class QueryByCommittee : public QueryStrategy {
 public:
  /// `prototype` is cloned per committee member (each gets its own RNG
  /// stream through a bootstrap resample of the labeled rows).
  explicit QueryByCommittee(const ml::Regressor& prototype,
                            int n_committees = 5);

  const std::string& name() const override;
  std::vector<std::size_t> select(const Pool& pool,
                                  const ml::Regressor& fitted_model,
                                  std::size_t query_size, Rng& rng) override;

  int committee_size() const { return n_committees_; }

 private:
  const ml::Regressor& prototype_;
  int n_committees_;
};

}  // namespace ccpred::al
