#pragma once

/// \file thread_pool.hpp
/// A fixed-size worker pool plus a deterministic parallel_for.
///
/// ccpred parallelizes embarrassingly parallel loops: forest/committee
/// member training, cross-validation folds, hyper-parameter candidates and
/// dataset generation. Work is partitioned statically by index so results
/// are bitwise identical regardless of worker count or scheduling, as long
/// as each index derives its randomness from its own Rng stream.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ccpred {

/// RAII thread pool; joins all workers on destruction.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end) across the pool, blocking until all
/// iterations finish. The index range is split into contiguous chunks, one
/// per worker. The first exception thrown by any iteration is rethrown.
///
/// Safe to call from non-worker threads only (no nested parallel_for on the
/// same pool — nesting would deadlock a fixed-size pool; nested calls instead
/// run serially, detected via a thread-local depth flag).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

}  // namespace ccpred
