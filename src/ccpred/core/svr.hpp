#pragma once

/// \file svr.hpp
/// Epsilon-insensitive support vector regression (paper §3.1 "SVR") with
/// an RBF kernel. The dual is solved by cyclic coordinate descent on the
/// box-constrained beta = (alpha - alpha*) variables; the bias is absorbed
/// into the kernel (k~ = k + 1), which removes the equality constraint and
/// makes each coordinate update a closed-form soft-threshold step.

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/kernels.hpp"
#include "ccpred/core/regressor.hpp"
#include "ccpred/data/scaler.hpp"

namespace ccpred::ml {

/// Parameters: "C" (box constraint), "epsilon" (insensitive tube width, in
/// standardized target units), "gamma" (RBF width), "max_sweeps", "tol".
class SupportVectorRegression : public Regressor {
 public:
  explicit SupportVectorRegression(double c = 10.0, double epsilon = 0.05,
                                   double gamma = 0.5);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return fitted_; }

  /// Number of support vectors (|beta_i| > 0) after fitting.
  std::size_t support_vector_count() const;
  /// Coordinate-descent sweeps actually performed in the last fit.
  int sweeps_used() const { return sweeps_used_; }

 private:
  double c_;
  double epsilon_;
  Kernel kernel_;
  int max_sweeps_ = 200;
  double tol_ = 1e-4;

  bool fitted_ = false;
  int sweeps_used_ = 0;
  data::StandardScaler scaler_;
  data::TargetScaler y_scaler_;
  linalg::Matrix x_train_;
  std::vector<double> beta_;
};

}  // namespace ccpred::ml
