#include "ccpred/active/uncertainty_sampling.hpp"

#include <algorithm>
#include <numeric>

#include "ccpred/common/error.hpp"

namespace ccpred::al {

const std::string& UncertaintySampling::name() const {
  static const std::string n = "US";
  return n;
}

std::vector<std::size_t> UncertaintySampling::select(
    const Pool& pool, const ml::Regressor& fitted_model,
    std::size_t query_size, Rng& /*rng*/) {
  const auto* uncertain =
      dynamic_cast<const ml::UncertaintyRegressor*>(&fitted_model);
  CCPRED_CHECK_MSG(uncertain != nullptr,
                   "uncertainty sampling needs a model with predictive std "
                   "(GP or Bayesian ridge)");

  std::vector<double> mean;
  std::vector<double> std;
  uncertain->predict_with_std(pool.unlabeled_features(), mean, std);

  std::vector<std::size_t> order(std.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t k = std::min(query_size, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return std[a] > std[b];
                    });
  order.resize(k);
  return order;
}

}  // namespace ccpred::al
