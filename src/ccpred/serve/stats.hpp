#pragma once

/// \file stats.hpp
/// The serving subsystem's observable state: one plain snapshot struct
/// filled by Server::stats() and rendered by the line protocol's `stats`
/// response. Kept dependency-free so both server.cpp and protocol.cpp can
/// include it.

#include <cstddef>
#include <cstdint>

namespace ccpred::serve {

/// Number of protocol verbs (must match the Op enum in protocol.hpp, which
/// indexes the per-verb latency array below).
inline constexpr std::size_t kNumOps = 6;

/// Latency quantiles of one protocol verb.
struct VerbLatency {
  std::uint64_t count = 0;  ///< requests of this verb handled
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;  ///< exact worst observation, not bucket-quantized
};

/// Observable state of the online learning loop (zero when disabled).
struct OnlineStats {
  std::uint64_t reports = 0;       ///< report requests ingested
  std::uint64_t measurements = 0;  ///< individual wall times received
  std::uint64_t duplicates = 0;    ///< byte-exact repeats dropped
  std::uint64_t rejected = 0;      ///< invalid wall times dropped
  std::size_t buffered = 0;        ///< rows buffered across streams
  double rolling_mape = 0.0;       ///< worst stream's rolling MAPE
  std::uint64_t drift_events = 0;
  std::uint64_t incremental_updates = 0;  ///< GP surrogate update() calls
  std::uint64_t refits = 0;               ///< background candidates trained
  std::uint64_t shadow_evals = 0;
  std::uint64_t promotions = 0;
  std::uint64_t promotions_rejected = 0;
  std::uint64_t cache_invalidated = 0;  ///< sweeps dropped by promotions
};

/// Point-in-time snapshot of a running Server.
struct ServerStats {
  std::uint64_t requests = 0;        ///< requests handled (incl. errors)
  std::uint64_t errors = 0;          ///< requests answered with ok=false
  std::uint64_t sweeps_computed = 0; ///< full enumerate+predict sweeps run
  std::uint64_t coalesced = 0;       ///< requests that joined an in-flight sweep
  std::uint64_t cache_hits = 0;      ///< sweep-cache hits
  std::uint64_t cache_misses = 0;    ///< sweep-cache misses
  std::uint64_t cache_evictions = 0; ///< sweep-cache LRU evictions
  double cache_hit_rate = 0.0;       ///< hits / (hits + misses), 0 if unused
  std::size_t cache_size = 0;        ///< cached sweeps right now
  std::size_t queue_depth = 0;       ///< submitted but unfinished requests
  std::uint64_t deadline_exceeded = 0;  ///< requests answered code="deadline"
  std::uint64_t shed = 0;               ///< requests rejected code="overloaded"
  std::uint64_t stale_served = 0;       ///< ok answers from a stale model
  std::uint64_t reload_failures = 0;    ///< failed artifact load attempts
  std::uint64_t retries = 0;            ///< client retries recorded (serverd)
  std::uint64_t models_loaded = 0;   ///< registry artifact (re)loads
  std::uint64_t models_trained = 0;  ///< train-and-cache fallbacks taken
  double latency_p50_ms = 0.0;       ///< median request latency
  double latency_p95_ms = 0.0;       ///< tail request latency
  double latency_mean_ms = 0.0;      ///< mean request latency
  VerbLatency verb_latency[kNumOps];  ///< per-verb quantiles, Op order
  /// Dynamic micro-batching (BatchScheduler; all zero when disabled).
  std::uint64_t batched_requests = 0;  ///< requests dispatched in flushes >= 2
  std::uint64_t batch_flushes = 0;     ///< flushes of 2+ coalesced requests
  std::uint64_t batch_bypass = 0;      ///< size-1 dispatches (empty-queue path)
  double batch_size_p50 = 0.0;         ///< median dispatch size (incl. bypass)
  double batch_size_p95 = 0.0;         ///< tail dispatch size
  /// Connections the event loop closed for exceeding a buffer cap (fed by
  /// the daemon through Server::set_overflow_source).
  std::uint64_t overflow_closed = 0;
  bool online_enabled = false;        ///< online learning loop active
  OnlineStats online;
};

}  // namespace ccpred::serve
