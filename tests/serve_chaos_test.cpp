// Chaos stress test for the serving layer: N client threads fire a mixed
// STQ/BQ/budget/job/stats workload at a Server while a seeded FaultInjector
// trips artifact-read failures, sweep slowdowns, worker stalls and cache
// shard contention, and a publisher thread keeps bumping the artifact's
// mtime to force hot-reload attempts mid-run. The properties under test:
//
//  * no crash, and every request is answered exactly once;
//  * every non-faulted (ok) answer is bit-identical to a fault-free
//    serial run of the same request — faults change timing, never values;
//  * every faulted answer is structured: code is one of
//    "overloaded" | "deadline" | "internal";
//  * the stats counters add up exactly (requests + shed == issued,
//    errors == non-shed failures, deadline/stale counts match what the
//    clients observed, queue_depth drains to zero).
//
// The whole fault schedule is a pure function of the seed, so a failing
// seed reproduces. CCPRED_CHAOS_FAST=1 shrinks the workload for
// sanitizer CI jobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"
#include "test_util.hpp"

namespace ccpred::serve {
namespace {

namespace fs = std::filesystem;

bool fast_mode() { return std::getenv("CCPRED_CHAOS_FAST") != nullptr; }
int per_thread_requests() { return fast_mode() ? 12 : 40; }
constexpr int kClientThreads = 4;

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ccpred_chaos_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// One small fitted GB, shared by every server in the file (loads of the
/// same bytes yield bit-identical models, so republishing it mid-run
/// changes versions but never answers).
const ml::GradientBoostingRegressor& campaign_gb() {
  static const auto* model = [] {
    const auto split = test::small_campaign(250);
    auto* m = new ml::GradientBoostingRegressor(15);
    m->fit(split.train.features(), split.train.targets());
    return m;
  }();
  return *model;
}

/// The deterministic mixed workload: request i is the same object in the
/// baseline run and in every chaos run.
Request make_request(int i) {
  static const std::vector<std::pair<int, int>> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}};
  const auto& [o, v] = problems[static_cast<std::size_t>(i) % problems.size()];
  Request r;
  r.o = o;
  r.v = v;
  r.id = std::to_string(i);
  switch (i % 8) {
    case 0:
    case 1: r.op = Op::kStq; break;
    case 2: r.op = Op::kBq; break;
    case 3:
      r.op = Op::kBudget;
      r.max_node_hours = 100.0;  // generous: feasible for every problem
      break;
    case 4:
      r.op = Op::kJob;
      r.nodes = 64;
      r.tile = 80;
      break;
    case 5:
      r.op = Op::kStq;
      r.deadline_ms = 1;  // expires in the queue or mid-sweep
      break;
    case 6: r.op = Op::kStats; break;
    default: r.op = Op::kStq;
  }
  return r;
}

/// Registry + server over a pre-published artifact.
struct ChaosFixture {
  ChaosFixture(const std::string& name, ServeOptions opt)
      : dir(scratch_dir(name)), registry(dir) {
    ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
    server = std::make_unique<Server>(registry, opt);
  }

  std::string dir;
  ModelRegistry registry;
  std::unique_ptr<Server> server;
};

/// Fault-free serial reference answers, computed once.
const std::vector<Response>& baseline() {
  static const auto* answers = [] {
    ServeOptions opt;
    opt.threads = 1;
    ChaosFixture f("baseline", opt);
    auto* out = new std::vector<Response>();
    const int total = kClientThreads * per_thread_requests();
    for (int i = 0; i < total; ++i) {
      Request req = make_request(i);
      req.deadline_ms = 0;  // deadlines change timing, never values
      out->push_back(f.server->handle(req));
    }
    return out;
  }();
  return *answers;
}

/// ok answers must be bit-identical to the fault-free serial reference.
void expect_matches_baseline(const Response& got, int i) {
  const Response& want = baseline()[static_cast<std::size_t>(i)];
  ASSERT_TRUE(want.ok) << "baseline request " << i << ": " << want.error;
  if (want.has_recommendation) {
    EXPECT_EQ(got.nodes, want.nodes) << "request " << i;
    EXPECT_EQ(got.tile, want.tile) << "request " << i;
    EXPECT_EQ(got.time_s, want.time_s) << "request " << i;
    EXPECT_EQ(got.node_hours, want.node_hours) << "request " << i;
  }
  if (want.has_job) {
    EXPECT_EQ(got.iterations, want.iterations) << "request " << i;
    EXPECT_EQ(got.total_s, want.total_s) << "request " << i;
    EXPECT_EQ(got.node_hours, want.node_hours) << "request " << i;
  }
}

/// Runs the whole workload against `server` from kClientThreads threads,
/// submitting in bursts so the bounded queue actually sheds. Returns the
/// responses indexed by request number.
std::vector<Response> run_clients(Server& server) {
  const int per_thread = per_thread_requests();
  std::vector<Response> responses(
      static_cast<std::size_t>(kClientThreads * per_thread));
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      constexpr int kBurst = 8;
      for (int base = 0; base < per_thread; base += kBurst) {
        std::vector<std::pair<int, std::future<Response>>> burst;
        for (int j = base; j < std::min(base + kBurst, per_thread); ++j) {
          const int i = t * per_thread + j;
          burst.emplace_back(i, server.submit(make_request(i)));
        }
        for (auto& [i, fut] : burst) {
          responses[static_cast<std::size_t>(i)] = fut.get();
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  return responses;
}

void run_chaos_at_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  FaultOptions fopt;
  fopt.seed = seed;
  fopt.artifact_read_failure = 0.5;
  fopt.sweep_delay = 0.5;
  fopt.sweep_delay_ms = 10.0;
  fopt.worker_stall = 0.3;
  fopt.worker_stall_ms = 5.0;
  fopt.cache_shard_hold = 0.3;
  fopt.cache_shard_hold_ms = 2.0;
  FaultInjector fault(fopt);

  ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  opt.max_queue_depth = 6;
  opt.fault_injector = &fault;
  ChaosFixture f("seed_" + std::to_string(seed), opt);
  // The registry is external to the server (shared across servers in the
  // daemon), so its injection point is armed separately.
  f.registry.set_fault_injector(&fault);
  const auto artifact = f.registry.artifact_path("aurora", "gb");

  // Publisher: republish the same bytes with a bumped mtime, forcing
  // hot-reload attempts that the injector fails half the time — the
  // degraded path must keep serving identical (stale) answers.
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    int bumps = 0;
    const int max_bumps = fast_mode() ? 4 : 10;
    while (!done.load() && bumps < max_bumps) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      fs::last_write_time(artifact, fs::last_write_time(artifact) +
                                        std::chrono::seconds(2));
      ++bumps;
    }
  });

  const auto responses = run_clients(*f.server);
  done.store(true);
  publisher.join();

  // Classify what the clients saw.
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t internal = 0;
  std::uint64_t stale = 0;
  for (int i = 0; i < static_cast<int>(responses.size()); ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    if (r.ok) {
      if (r.stale) ++stale;
      expect_matches_baseline(r, i);
    } else if (r.code == "overloaded") {
      ++shed;
    } else if (r.code == "deadline") {
      ++deadline;
    } else {
      // Injected artifact-read failures surface as structured internal
      // errors while the registry has no last-good model yet.
      EXPECT_EQ(r.code, "internal") << "request " << i << ": " << r.error;
      ++internal;
    }
    EXPECT_FALSE(!r.ok && r.error.empty()) << "request " << i;
  }

  // The counters must add up exactly against what the clients observed.
  const auto total = static_cast<std::uint64_t>(responses.size());
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->stats().queue_depth != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.requests + stats.shed, total);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.errors, deadline + internal);
  EXPECT_EQ(stats.deadline_exceeded, deadline);
  EXPECT_EQ(stats.stale_served, stale);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Every injection point was exercised; the delay points fired for sure
  // (hundreds of deterministic draws at p >= 0.3).
  for (const FaultPoint p :
       {FaultPoint::kArtifactRead, FaultPoint::kSweepCompute,
        FaultPoint::kWorkerStall, FaultPoint::kCacheShard}) {
    EXPECT_GT(fault.arrivals(p), 0u) << fault_point_name(p);
  }
  EXPECT_GT(fault.injected(FaultPoint::kWorkerStall), 0u);
  EXPECT_GT(fault.injected(FaultPoint::kCacheShard), 0u);
  EXPECT_EQ(stats.reload_failures,
            fault.injected(FaultPoint::kArtifactRead));
}

TEST(ServeChaosTest, NoFaultConcurrentRunMatchesSerialBaseline) {
  ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  ChaosFixture f("nofault", opt);
  const auto responses = run_clients(*f.server);
  for (int i = 0; i < static_cast<int>(responses.size()); ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    // deadline_ms=1 requests may legitimately expire even without faults.
    if (!r.ok) {
      EXPECT_EQ(r.code, "deadline") << "request " << i << ": " << r.error;
      continue;
    }
    EXPECT_FALSE(r.stale) << "request " << i;
    expect_matches_baseline(r, i);
  }
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.requests, responses.size());
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.stale_served, 0u);
  EXPECT_EQ(stats.reload_failures, 0u);
}

TEST(ServeChaosTest, Seed1) { run_chaos_at_seed(1); }
TEST(ServeChaosTest, Seed7) { run_chaos_at_seed(7); }
TEST(ServeChaosTest, Seed42) { run_chaos_at_seed(42); }

}  // namespace
}  // namespace ccpred::serve
