#pragma once

/// \file batch_scheduler.hpp
/// Deadline-aware dynamic micro-batching across connections.
///
/// The event loop already batches records that share a binary frame, but
/// independent clients send single-record traffic, so under bursty load the
/// SIMD batch kernels ran at batch size 1 and per-request dispatch overhead
/// (pool hand-off, model-handle stat(), cache probe) dominated. The
/// BatchScheduler sits between Server::submit_with and the worker pool and
/// coalesces concurrent requests — whatever connection, protocol, or fleet
/// shard they arrived on — into micro-batches that Server::handle_batch
/// dispatches as a group.
///
/// Policy, in order of precedence:
///
///  * bypass — a request arriving at an idle scheduler (empty queue,
///    nothing in flight) is dispatched alone immediately: zero added
///    latency at low load. While any dispatch is in flight, arrivals
///    coalesce instead — a free slot alone must not bypass, or a
///    closed-loop client stream degenerates into size-1 dispatches;
///  * completion pump — whenever a dispatch finishes and frees a slot, the
///    queue is flushed at once (work-conserving: batch size adapts to the
///    arrival rate during service time, the classic continuous-batching
///    shape);
///  * bounded hold — no request waits in the queue past `max_hold_us`; the
///    flusher thread force-flushes even when every slot is busy (the pool
///    queues the batch), so hold time is a hard bound, not advisory;
///  * earliest-deadline-first — a request carrying `deadline_ms` is never
///    held past `deadline - max_hold`; when a flush is size-capped the
///    tightest deadlines board first. A deadline can still expire under
///    true overload, but never because of batch hold.
///
/// Answers are bit-identical to per-request dispatch: handle_batch groups
/// by (machine, kind), acquires one model handle per group, dedups
/// identical (O, V) keys into the same single-flight sweeps the serial
/// path uses, and derives STQ/BQ/budget answers with the same code.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ccpred/serve/protocol.hpp"

namespace ccpred::serve {

class Server;

/// Scheduler knobs (ServeOptions::batch). Disabled by default: the serial
/// path's exact shed/counter semantics stay the baseline, and serverd /
/// benches opt in explicitly.
struct BatchOptions {
  bool enabled = false;
  std::size_t max_batch = 64;     ///< flush size cap per dispatch
  std::uint32_t max_hold_us = 200;  ///< hard bound on queue hold time
  /// Concurrent dispatches targeted by bypass and the completion pump;
  /// 0 = the worker pool size. Hold/deadline flushes may exceed it (the
  /// pool queues), so it shapes batching, it does not gate liveness.
  std::size_t max_inflight = 0;
};

/// Point-in-time scheduler counters (folded into ServerStats).
struct BatchCounters {
  std::uint64_t batched_requests = 0;  ///< requests in flushes of size >= 2
  std::uint64_t batch_flushes = 0;     ///< dispatches of size >= 2
  std::uint64_t batch_bypass = 0;      ///< size-1 dispatches
  double size_p50 = 0.0;               ///< median dispatch size
  double size_p95 = 0.0;               ///< tail dispatch size
};

/// See file comment. Owned by Server (the last member, so it drains first
/// while the pools are still alive); thread-safe.
class BatchScheduler {
 public:
  BatchScheduler(Server& server, BatchOptions options);

  /// Flushes anything still queued and waits for in-flight dispatches; the
  /// Server contract (drain outstanding submits before destruction) makes
  /// this a no-op in practice.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Queues one request for batched dispatch; `done` runs on a worker
  /// thread (or synchronously when the request is shed). The deadline
  /// clock starts here, so hold time counts against it.
  void submit(Request request, std::function<void(Response)> done);

  BatchCounters counters() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    std::function<void(Response)> done;
    Clock::time_point deadline;  ///< absolute; max() when none
    Clock::time_point enqueued;
  };

  void flusher_loop();

  /// Latest instant this request may sit in the queue: its hold window,
  /// cut short so a deadline-carrying request keeps at least one hold
  /// window of compute time (the EDF rule).
  Clock::time_point trigger_for(const Pending& p) const;

  /// Pops the next flush (EDF-capped at max_batch), counts it, marks it
  /// in flight and posts it to the server's worker pool. Caller holds
  /// mutex_ with pending_ non-empty.
  void flush_locked();

  void dispatch(std::deque<Pending> batch);  ///< size >= 2
  void dispatch_one(Pending p);              ///< bypass / one-deep flush
  void on_batch_done();
  void record_dispatch(std::size_t size);

  Server& server_;
  const BatchOptions options_;
  const std::size_t max_inflight_;
  const std::chrono::microseconds hold_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  /// Queued requests carrying a deadline. When zero — the common case —
  /// a size-capped flush takes the FIFO head in O(max_batch) instead of
  /// EDF-sorting the whole queue under the lock.
  std::size_t deadline_count_ = 0;
  std::size_t inflight_ = 0;
  bool stop_ = false;
  /// Instant the flusher is currently sleeping until (max() = waiting
  /// indefinitely on an empty queue). submit() only pays a cv wake when a
  /// new trigger lands earlier; written under mutex_, and the flusher
  /// holds mutex_ except while actually waiting, so readers never see a
  /// stale earlier value that would lose a wake.
  Clock::time_point armed_ = Clock::time_point::max();

  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> batch_flushes_{0};
  std::atomic<std::uint64_t> batch_bypass_{0};
  /// Dispatch-size histogram: slot s counts dispatches of exactly s
  /// requests (s in [1, max_batch]), the source of size_p50/p95.
  std::unique_ptr<std::atomic<std::uint64_t>[]> size_hist_;

  std::thread flusher_;  ///< last member: joined before anything else dies
};

}  // namespace ccpred::serve
