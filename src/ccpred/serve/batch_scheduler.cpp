#include "ccpred/serve/batch_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ccpred/serve/server.hpp"

namespace ccpred::serve {

BatchScheduler::BatchScheduler(Server& server, BatchOptions options)
    : server_(server),
      options_(options),
      max_inflight_(options.max_inflight > 0 ? options.max_inflight
                                             : server.pool_.size()),
      hold_(std::chrono::microseconds(options.max_hold_us)),
      size_hist_(std::make_unique<std::atomic<std::uint64_t>[]>(
          options_.max_batch + 1)),
      flusher_([this] { flusher_loop(); }) {}

BatchScheduler::~BatchScheduler() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
    while (!pending_.empty()) flush_locked();
    while (inflight_ > 0) cv_.wait(lock);
  }
  cv_.notify_all();
  flusher_.join();
}

BatchScheduler::Clock::time_point BatchScheduler::trigger_for(
    const Pending& p) const {
  const Clock::time_point held = p.enqueued + hold_;
  if (p.deadline == Clock::time_point::max()) return held;
  return std::min(held, p.deadline - hold_);
}

void BatchScheduler::submit(Request request,
                            std::function<void(Response)> done) {
  const Clock::time_point deadline = Server::deadline_for(request);
  const Clock::time_point now = Clock::now();
  // Construct outside the lock: the mutex is the whole scheduler's
  // serialization point, so only the queue ops belong inside it.
  Pending p{std::move(request), std::move(done), deadline, now};

  std::unique_lock<std::mutex> lock(mutex_);
  if (pending_.empty() && inflight_ == 0) {
    // Idle server: dispatch alone, zero added latency. Anything stricter
    // than "truly idle" here (e.g. any free slot) lets a closed-loop
    // client stream degenerate into size-1 dispatches — while work is in
    // flight, arrivals coalesce and the completion pump or the hold
    // window flushes them as one batch.
    server_.queue_depth_.fetch_add(1, std::memory_order_relaxed);
    record_dispatch(1);
    ++inflight_;
    lock.unlock();
    dispatch_one(std::move(p));
    return;
  }
  if (server_.options_.max_queue_depth > 0 &&
      pending_.size() >= server_.options_.max_queue_depth) {
    // Same admission bound the serial path enforces through try_post.
    lock.unlock();
    server_.shed_.fetch_add(1, std::memory_order_relaxed);
    p.done(error_response(
        "server overloaded: queue depth limit " +
            std::to_string(server_.options_.max_queue_depth) + " reached",
        op_name(p.request.op), p.request.id, "overloaded"));
    return;
  }
  server_.queue_depth_.fetch_add(1, std::memory_order_relaxed);
  if (deadline != Clock::time_point::max()) ++deadline_count_;
  pending_.push_back(std::move(p));
  if (pending_.size() >= options_.max_batch && inflight_ < max_inflight_) {
    flush_locked();
    return;
  }
  // Wake the flusher only when this request's trigger lands before the
  // instant it is already sleeping until — unconditional notifies cost a
  // futex wake per enqueue under load.
  if (trigger_for(pending_.back()) < armed_) cv_.notify_all();
}

void BatchScheduler::flusher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (pending_.empty()) {
      armed_ = Clock::time_point::max();
      cv_.wait(lock);
      continue;
    }
    Clock::time_point earliest = trigger_for(pending_.front());
    for (const Pending& p : pending_) {
      earliest = std::min(earliest, trigger_for(p));
    }
    if (Clock::now() >= earliest) {
      // Hold (or a deadline's EDF cut) expired: flush even when every
      // slot is busy — the pool queues the batch, keeping hold time a
      // hard bound rather than a hint.
      flush_locked();
      continue;
    }
    armed_ = earliest;
    cv_.wait_until(lock, earliest);
  }
}

void BatchScheduler::flush_locked() {
  std::deque<Pending> batch;
  if (pending_.size() <= options_.max_batch) {
    batch.swap(pending_);  // full drain: O(1), no per-element moves
    deadline_count_ = 0;
  } else if (deadline_count_ == 0) {
    // Nothing queued carries a deadline, so EDF reduces to FIFO: take the
    // head and leave the (possibly deep) tail untouched instead of
    // sorting the whole queue under the lock.
    for (std::size_t i = 0; i < options_.max_batch; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  } else {
    // Size-capped flush: the tightest deadlines board first (EDF), the
    // rest keep their relative order for the next flush.
    std::vector<Pending> all;
    all.reserve(pending_.size());
    for (Pending& p : pending_) all.push_back(std::move(p));
    pending_.clear();
    std::stable_sort(all.begin(), all.end(),
                     [](const Pending& a, const Pending& b) {
                       return a.deadline < b.deadline;
                     });
    deadline_count_ = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (i < options_.max_batch) {
        batch.push_back(std::move(all[i]));
      } else {
        if (all[i].deadline != Clock::time_point::max()) ++deadline_count_;
        pending_.push_back(std::move(all[i]));
      }
    }
  }
  record_dispatch(batch.size());
  ++inflight_;
  if (batch.size() == 1) {
    dispatch_one(std::move(batch.front()));
  } else {
    dispatch(std::move(batch));
  }
}

void BatchScheduler::dispatch_one(Pending p) {
  // Size-1 dispatch (bypass or a one-deep flush): post the request
  // directly — no batch deque, no shared_ptr — so a lone request pays the
  // same allocations as unbatched submit_with. The serial path gives the
  // same answer without the grouping machinery. Same `this`-lifetime rule
  // as dispatch(): nothing after on_batch_done touches the scheduler.
  Server* srv = &server_;
  server_.pool_.post([this, srv, p = std::move(p)]() mutable {
    if (srv->fault_ != nullptr) {
      srv->fault_->maybe_delay(FaultPoint::kWorkerStall);
    }
    Response r = srv->handle_until(p.request, p.deadline);
    on_batch_done();
    p.done(std::move(r));
    srv->queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  });
}

void BatchScheduler::dispatch(std::deque<Pending> batch) {
  // ONE pool hand-off for the whole flush — the per-request hand-off this
  // layer exists to amortize.
  //
  // The slot is freed (on_batch_done) as soon as the answers are computed,
  // BEFORE completions are delivered: a closed-loop client's next request
  // can race the delivery loop, and seeing a phantom in-flight slot would
  // queue it behind a hold window instead of bypassing. on_batch_done is
  // the last touch of `this` — once the slot count hits zero the
  // destructor may run — so everything after it goes through `srv`, whose
  // pool joins this task before the Server's own fields die.
  auto shared = std::make_shared<std::deque<Pending>>(std::move(batch));
  Server* srv = &server_;
  server_.pool_.post([this, srv, shared] {
    if (srv->fault_ != nullptr) {
      srv->fault_->maybe_delay(FaultPoint::kWorkerStall);
    }
    std::vector<Request> requests;
    std::vector<Clock::time_point> deadlines;
    requests.reserve(shared->size());
    deadlines.reserve(shared->size());
    for (Pending& p : *shared) {
      requests.push_back(std::move(p.request));
      deadlines.push_back(p.deadline);
    }
    std::vector<Response> out = srv->handle_batch(requests, deadlines);
    on_batch_done();
    for (std::size_t i = 0; i < shared->size(); ++i) {
      (*shared)[i].done(std::move(out[i]));
      srv->queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
  });
}

void BatchScheduler::on_batch_done() {
  std::unique_lock<std::mutex> lock(mutex_);
  --inflight_;
  // Work-conserving pump: a freed slot immediately flushes whatever
  // queued while the last batch ran.
  while (!pending_.empty() && inflight_ < max_inflight_) flush_locked();
  // Only the destructor waits on inflight_; don't pay a futex wake on
  // every completed dispatch during normal operation.
  if (stop_) cv_.notify_all();
}

void BatchScheduler::record_dispatch(std::size_t size) {
  if (size >= 2) {
    batch_flushes_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(size, std::memory_order_relaxed);
  } else {
    batch_bypass_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t slot = std::min(size, options_.max_batch);
  size_hist_[slot].fetch_add(1, std::memory_order_relaxed);
}

BatchCounters BatchScheduler::counters() const {
  BatchCounters c;
  c.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  c.batch_flushes = batch_flushes_.load(std::memory_order_relaxed);
  c.batch_bypass = batch_bypass_.load(std::memory_order_relaxed);
  std::uint64_t total = 0;
  for (std::size_t s = 1; s <= options_.max_batch; ++s) {
    total += size_hist_[s].load(std::memory_order_relaxed);
  }
  if (total == 0) return c;
  const auto quantile = [&](double q) {
    const auto rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t s = 1; s <= options_.max_batch; ++s) {
      seen += size_hist_[s].load(std::memory_order_relaxed);
      if (seen >= rank) return static_cast<double>(s);
    }
    return static_cast<double>(options_.max_batch);
  };
  c.size_p50 = quantile(0.50);
  c.size_p95 = quantile(0.95);
  return c;
}

}  // namespace ccpred::serve
