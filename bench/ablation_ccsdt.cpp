/// CCSD(T) workload ablation: the framework beyond CCSD. Runs the full
/// pipeline (campaign -> GB -> STQ/BQ evaluation) on the septic-scaling
/// perturbative-triples kernel, showing the methodology is workload-
/// agnostic — the generalization the paper's introduction motivates.

#include <cstdio>

#include "bench_util.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"
#include "ccpred/guidance/optimal.hpp"
#include "ccpred/guidance/report.hpp"
#include "ccpred/sim/contraction.hpp"

int main() {
  using namespace ccpred;
  const sim::CcsdSimulator triples(sim::MachineModel::aurora(),
                                   sim::triples_contractions());

  data::GeneratorOptions opt;
  opt.seed = 2025;
  opt.target_total = bench::fast_mode() ? 400 : 1600;
  const auto dataset = data::generate_dataset(
      triples, data::aurora_problems(), opt);
  Rng rng(41);
  auto split = data::stratified_split_fraction(dataset, 0.25, rng);
  data::ensure_config_coverage(dataset, split);
  const auto tt = data::apply_split(dataset, split);

  auto gb = ml::make_paper_gb();
  gb->fit(tt.train.features(), tt.train.targets());
  const auto y_pred = gb->predict(tt.test.features());
  const auto scores = ml::score_all(tt.test.targets(), y_pred);

  std::printf("== CCSD(T) triples workload (aurora machine model) ==\n");
  std::printf("campaign: %zu rows over %zu problems; GB test scores: "
              "R^2=%.3f MAE=%.2fs MAPE=%.3f\n",
              dataset.size(), dataset.problems().size(), scores.r2,
              scores.mae, scores.mape);

  for (auto obj : {guide::Objective::kShortestTime,
                   guide::Objective::kNodeHours}) {
    const auto outcomes = guide::evaluate_optima(tt.test, y_pred, obj);
    const auto losses = guide::compute_losses(outcomes);
    std::printf("%s: mismatches %zu/%zu, true-loss R^2=%.3f MAPE=%.3f\n",
                obj == guide::Objective::kShortestTime ? "STQ" : "BQ",
                guide::mismatch_count(outcomes), outcomes.size(), losses.r2,
                losses.mape);
  }

  // Workload contrast at one configuration.
  const sim::CcsdSimulator ccsd(sim::MachineModel::aurora());
  const sim::RunConfig cfg{134, 951, 200, 90};
  std::printf("\nworkload contrast O=134 V=951, 200 nodes, tile 90: "
              "CCSD iteration %.1fs vs (T) %.1fs (flops ratio %.1fx)\n",
              ccsd.iteration_time(cfg), triples.iteration_time(cfg),
              sim::triples_flops(134, 951) /
                  sim::ccsd_iteration_flops(134, 951));
  return 0;
}
