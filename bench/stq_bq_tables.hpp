#pragma once

/// \file stq_bq_tables.hpp
/// Shared driver for Tables 3-6: train the paper's GB configuration on one
/// machine's train split, predict the test split, and print the per-problem
/// optimal-configuration table (true vs predicted, paper parenthesis
/// notation) plus the headline scores.

#include <string>

#include "ccpred/guidance/optimal.hpp"

namespace ccpred::bench {

/// Runs one table. `objective` selects STQ (Tables 3/4) or BQ (Tables 5/6).
int run_optimal_table(const std::string& machine,
                      guide::Objective objective,
                      const std::string& table_name);

}  // namespace ccpred::bench
