#include "ccpred/exec/arena.hpp"

#include <cstdlib>
#include <new>

#include "ccpred/common/error.hpp"

namespace ccpred::exec {

namespace {

bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

Arena::Arena(std::size_t capacity_bytes) : buffer_(capacity_bytes) {}

Arena::~Arena() { reset(); }

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  CCPRED_CHECK_MSG(is_pow2(align), "Arena alignment must be a power of two");
  if (align < kCacheLineAlign) align = kCacheLineAlign;

  const std::size_t aligned_off = (offset_ + align - 1) & ~(align - 1);
  // buffer_.data() is kCacheLineAlign-aligned, and align is a multiple of
  // it only when align <= kCacheLineAlign; for larger alignments align the
  // absolute address instead of the offset.
  if (align <= kCacheLineAlign && aligned_off <= buffer_.size() &&
      bytes <= buffer_.size() - aligned_off) {
    void* p = buffer_.data() + aligned_off;
    offset_ = aligned_off + bytes;
    return p;
  }
  if (align > kCacheLineAlign && !buffer_.empty()) {
    const auto base = reinterpret_cast<std::uintptr_t>(buffer_.data());
    const std::uintptr_t want = (base + offset_ + align - 1) & ~(align - 1);
    const std::size_t off = static_cast<std::size_t>(want - base);
    if (off <= buffer_.size() && bytes <= buffer_.size() - off) {
      offset_ = off + bytes;
      return reinterpret_cast<void*>(want);
    }
  }

  // Heap fallback: the request does not fit. Zero-size requests still get a
  // distinct valid pointer so callers never branch on n == 0.
  ++heap_fallbacks_;
  const std::size_t n = bytes == 0 ? align : bytes;
  void* p = ::operator new(((n + align - 1) / align) * align,
                           std::align_val_t{align});
  overflow_.emplace_back(p, align);
  return p;
}

void Arena::reset() {
  offset_ = 0;
  for (auto& [ptr, align] : overflow_) {
    ::operator delete(ptr, std::align_val_t{align});
  }
  overflow_.clear();
}

}  // namespace ccpred::exec
