#include "ccpred/active/loop.hpp"

#include <algorithm>
#include <functional>

#include "ccpred/common/error.hpp"

namespace ccpred::al {

ActiveLearningResult run_active_learning(
    const data::Dataset& train, const data::Dataset& test,
    const ml::Regressor& prototype, QueryStrategy& strategy,
    const ActiveLearningOptions& options) {
  CCPRED_CHECK_MSG(options.n_queries >= 1, "need at least one round");
  CCPRED_CHECK_MSG(!train.empty(), "empty train pool");
  CCPRED_CHECK_MSG(!options.goal || !test.empty(),
                   "goal evaluation needs a test set");

  Rng rng(options.seed);
  Pool pool(train, options.n_initial, rng);

  const linalg::Matrix x_train_full = train.features();
  const auto& y_train_full = train.targets();
  const linalg::Matrix x_test = test.empty() ? linalg::Matrix() : test.features();

  ActiveLearningResult result;
  result.strategy = strategy.name();
  result.model = prototype.name();

  std::unique_ptr<ml::Regressor> model;
  linalg::Matrix pending_x;          // rows labeled since the last fit
  std::vector<double> pending_y;

  // The test set's true objective sweep never changes across rounds —
  // compute it once and reuse it in every goal evaluation.
  std::vector<guide::ProblemSweep> true_sweeps;
  if (options.goal) {
    true_sweeps =
        guide::sweep_optimal_values(test, test.targets(), *options.goal);
  }

  for (int round = 0; round < options.n_queries; ++round) {
    const bool cadence_refit = options.refit_cadence > 0 &&
                               round % options.refit_cadence == 0;
    const bool can_update = options.incremental_refit && model != nullptr &&
                            model->supports_incremental_update() &&
                            !cadence_refit && pending_x.rows() > 0;
    if (can_update) {
      // Reuse the previous factorization: hyper-parameters are unchanged,
      // so the model only absorbs the newly labeled rows in O(n^2 q).
      model->update(pending_x, pending_y);
    } else {
      model = prototype.clone();
      model->fit(pool.labeled_features(), pool.labeled_targets());
    }
    pending_x = linalg::Matrix();
    pending_y.clear();

    RoundRecord record;
    record.labeled_count = pool.labeled().size();
    record.train_scores =
        ml::score_all(y_train_full, model->predict(x_train_full));

    if (options.goal) {
      // True-loss goal evaluation: locate predicted optima on the test set
      // and score them at their true targets (§3.4).
      const auto y_pred = model->predict(x_test);
      const auto outcomes =
          guide::evaluate_optima(test, y_pred, *options.goal, true_sweeps);
      record.goal_losses = guide::compute_losses(outcomes);
    }
    result.rounds.push_back(record);

    if (pool.unlabeled().empty()) break;
    auto queries = strategy.select(pool, *model, options.query_size, rng);
    if (queries.empty()) break;
    if (options.incremental_refit && model->supports_incremental_update()) {
      // Capture the about-to-be-labeled rows in the order label_positions
      // appends them (descending position), so an incremental update sees
      // the same row order a from-scratch refit would.
      std::vector<std::size_t> order = queries;
      std::sort(order.begin(), order.end(), std::greater<>());
      std::vector<std::size_t> rows;
      rows.reserve(order.size());
      for (auto p : order) rows.push_back(pool.unlabeled()[p]);
      const auto batch = pool.dataset().select(rows);
      pending_x = batch.features();
      pending_y = batch.targets();
    }
    pool.label_positions(std::move(queries));
  }
  return result;
}

}  // namespace ccpred::al
