#include "ccpred/core/gaussian_process.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/blas.hpp"

namespace ccpred::ml {

GaussianProcessRegression::GaussianProcessRegression(double gamma,
                                                     double noise,
                                                     bool optimize,
                                                     bool log_target,
                                                     bool log_features)
    : noise_(noise),
      optimize_(optimize),
      log_target_(log_target),
      log_features_(log_features) {
  CCPRED_CHECK_MSG(gamma > 0.0, "GP gamma must be > 0");
  CCPRED_CHECK_MSG(noise >= 0.0, "GP noise must be >= 0");
  kernel_.type = KernelType::kRbf;
  kernel_.gamma = gamma;
}

void GaussianProcessRegression::fit_with_gamma(double gamma) {
  kernel_.gamma = gamma;
  linalg::Matrix k = kernel_.gram_symmetric(x_train_);
  k.add_diagonal(noise_ + 1e-10);
  chol_ = std::make_unique<linalg::Cholesky>(k);
  alpha_ = chol_->solve(yz_);
  // log p(y | X) = -1/2 y^T K^{-1} y - 1/2 log|K| - n/2 log(2 pi)
  const double n = static_cast<double>(yz_.size());
  lml_ = -0.5 * linalg::dot(yz_, alpha_) - 0.5 * chol_->log_determinant() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

linalg::Matrix GaussianProcessRegression::maybe_log(
    const linalg::Matrix& x) const {
  if (!log_features_) return x;
  linalg::Matrix out = x;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      CCPRED_CHECK_MSG(out(i, c) > 0.0,
                       "log_features GP needs positive features");
      out(i, c) = std::log(out(i, c));
    }
  }
  return out;
}

void GaussianProcessRegression::fit(const linalg::Matrix& x,
                                    const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  x_train_ = scaler_.fit_transform(maybe_log(x));
  if (log_target_) {
    std::vector<double> logged(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      CCPRED_CHECK_MSG(y[i] > 0.0, "log_target GP needs positive targets");
      logged[i] = std::log(y[i]);
    }
    yz_ = y_scaler_.fit_transform(logged);
  } else {
    yz_ = y_scaler_.fit_transform(y);
  }

  if (!optimize_) {
    fit_with_gamma(kernel_.gamma);
    return;
  }
  // Type-II maximum likelihood over a log-spaced (gamma, noise) grid:
  // robust, derivative-free, and each candidate is one O(n^3)
  // factorization — the same cost the final fit pays anyway.
  const double gamma_candidates[] = {0.03, 0.1, 0.3, 1.0, 3.0};
  const double noise_candidates[] = {1e-3, 1e-2, 1e-1};
  double best_gamma = kernel_.gamma;
  double best_noise = noise_;
  double best_lml = -std::numeric_limits<double>::infinity();
  for (double nz : noise_candidates) {
    noise_ = nz;
    for (double g : gamma_candidates) {
      fit_with_gamma(g);
      if (lml_ > best_lml) {
        best_lml = lml_;
        best_gamma = g;
        best_noise = nz;
      }
    }
  }
  noise_ = best_noise;
  fit_with_gamma(best_gamma);
}

std::vector<double> GaussianProcessRegression::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "GaussianProcessRegression::predict before fit");
  const linalg::Matrix z = scaler_.transform(maybe_log(x));
  const linalg::Matrix ks = kernel_.gram(z, x_train_);
  auto out = linalg::gemv(ks, alpha_);
  for (auto& v : out) {
    v = y_scaler_.inverse_one(v);
    if (log_target_) v = std::exp(v);
  }
  return out;
}

void GaussianProcessRegression::predict_with_std(const linalg::Matrix& x,
                                                 std::vector<double>& mean,
                                                 std::vector<double>& std) const {
  CCPRED_CHECK_MSG(is_fitted(), "GP predict_with_std before fit");
  const linalg::Matrix z = scaler_.transform(maybe_log(x));
  const linalg::Matrix ks = kernel_.gram(z, x_train_);
  mean = linalg::gemv(ks, alpha_);
  std.assign(x.rows(), 0.0);
  // var(x*) = k(x*,x*) - k*^T K^{-1} k*; k(x,x) = 1 for RBF.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto v = chol_->solve_lower(ks.row(i));
    double quad = 0.0;
    for (double w : v) quad += w * w;
    const double var = std::max(0.0, 1.0 + noise_ - quad);
    std[i] = std::sqrt(var) * y_scaler_.stddev();
    mean[i] = y_scaler_.inverse_one(mean[i]);
    if (log_target_) {
      // Delta method back to seconds: y = exp(f), std_y ~ exp(mu) std_f.
      mean[i] = std::exp(mean[i]);
      std[i] *= mean[i];
    }
  }
}

std::unique_ptr<Regressor> GaussianProcessRegression::clone() const {
  return std::make_unique<GaussianProcessRegression>(
      kernel_.gamma, noise_, optimize_, log_target_, log_features_);
}

const std::string& GaussianProcessRegression::name() const {
  static const std::string n = "GP";
  return n;
}

void GaussianProcessRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "gamma") {
      CCPRED_CHECK_MSG(value > 0.0, "gamma must be > 0");
      kernel_.gamma = value;
    } else if (key == "noise") {
      CCPRED_CHECK_MSG(value >= 0.0, "noise must be >= 0");
      noise_ = value;
    } else if (key == "optimize") {
      optimize_ = value != 0.0;
    } else if (key == "log_target") {
      log_target_ = value != 0.0;
    } else if (key == "log_features") {
      log_features_ = value != 0.0;
    } else {
      throw Error("GaussianProcessRegression: unknown parameter '" + key +
                  "'");
    }
  }
}

}  // namespace ccpred::ml
