/// GB hyper-parameter ablation: sensitivity of the winning model to its
/// three key knobs (estimator count via staged predictions, tree depth,
/// learning rate) on the Aurora dataset — the design-choice evidence behind
/// the paper's production configuration (750 trees, depth 10, lr 0.1).

#include <cstdio>

#include "bench_util.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/metrics.hpp"

int main() {
  using namespace ccpred;
  const auto data = bench::load_paper_data("aurora");
  const auto x_train = data.split.train.features();
  const auto& y_train = data.split.train.targets();
  const auto x_test = data.split.test.features();
  const auto& y_test = data.split.test.targets();

  // 1. Estimator-count curve from one staged model.
  {
    ml::GradientBoostingRegressor gb(750, 0.1,
                                     ml::TreeOptions{.max_depth = 10});
    gb.fit(x_train, y_train);
    TextTable table({"stages", "R2", "MAPE"},
                    "GB estimator-count ablation (depth 10, lr 0.1)");
    for (std::size_t stages : {25u, 50u, 100u, 250u, 500u, 750u}) {
      const auto scores =
          ml::score_all(y_test, gb.predict_staged(x_test, stages));
      table.add_row({std::to_string(stages), TextTable::cell(scores.r2, 4),
                     TextTable::cell(scores.mape, 4)});
    }
    table.print();
    std::printf("\n");
  }

  // 2. Depth and learning-rate grid.
  TextTable table({"max_depth", "lr", "R2", "MAPE", "fit_s"},
                  "GB depth/learning-rate ablation (750 estimators)");
  const int n_estimators = bench::fast_mode() ? 150 : 750;
  for (int depth : {4, 6, 10, 14}) {
    for (double lr : {0.05, 0.1, 0.3}) {
      ml::GradientBoostingRegressor gb(n_estimators, lr,
                                       ml::TreeOptions{.max_depth = depth});
      Stopwatch watch;
      gb.fit(x_train, y_train);
      const double fit_s = watch.elapsed_s();
      const auto scores = ml::score_all(y_test, gb.predict(x_test));
      table.add_row({std::to_string(depth), TextTable::cell(lr, 2),
                     TextTable::cell(scores.r2, 4),
                     TextTable::cell(scores.mape, 4),
                     TextTable::cell(fit_s, 2)});
    }
  }
  table.print();
  std::printf("\npaper production config: 750 estimators, depth 10, lr 0.1\n");
  return 0;
}
