#pragma once

/// \file sim_engine.hpp
/// Fast simulation engine: a memoized, batch-oriented front end to
/// CcsdSimulator.
///
/// Every reproduction artifact — campaign generation, STQ/BQ true-optima
/// sweeps, active-learning labeling — hits the same (O, V, nodes, tile)
/// grid thousands of times. The engine removes the redundancy without
/// changing a single bit of the results:
///
///  * SimCache — a sharded, thread-safe memo table keyed on
///    (machine, O, V, nodes, tile, noise-seed), an instantiation of the
///    executor layer's ShardedMemoCache. Seed 0 stores the noise-free
///    iteration time; measurement keys carry a per-(config, repeat)
///    stream seed.
///  * simulate_batch — dedupes a config list, groups it by (O, V, tile) so
///    the tiling/task-graph decomposition is built once per group instead
///    of once per point, and fans the groups over the shared ThreadPool.
///    Grouping scratch lives in a reused per-thread Arena, not the heap.
///  * measurement_stream_seed — a per-config RNG stream derivation, so a
///    config's noise draws do not depend on which other configs are
///    simulated, in which order, or on how many threads ran them. Serial,
///    parallel and cached paths are bit-identical by construction.
///
/// SimEngineMode::kReference preserves the original serial from-scratch
/// path (no cache, no dedup, no graph reuse) as the ground truth the bench
/// gates compare against with operator==.

#include <cstdint>
#include <mutex>
#include <vector>

#include "ccpred/exec/engine_mode.hpp"
#include "ccpred/exec/sharded_cache.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"

namespace ccpred::sim {

/// Engine execution strategy — the executor layer's shared convention.
using SimEngineMode = exec::EngineMode;

/// Engine tuning knobs.
struct SimEngineOptions {
  SimEngineMode mode = SimEngineMode::kFast;
  /// Memoize results in the engine's SimCache (fast mode only).
  bool use_cache = true;
  /// Fan batch groups over ThreadPool::global() (fast mode only).
  bool parallel = true;
  /// Batches with fewer uncached groups than this run serially — the pool
  /// handoff costs more than it saves on tiny batches.
  std::size_t min_parallel_batch = 4;
};

/// Deterministic per-(campaign-seed, config) RNG stream seed. Mixing uses
/// the splitmix64 finalizer so nearby configs land in unrelated streams.
/// Every engine path (serial, parallel, cached) draws a config's noise from
/// this stream, which is what makes them bit-identical.
std::uint64_t measurement_stream_seed(std::uint64_t campaign_seed,
                                      const RunConfig& cfg);

/// Sharded, thread-safe memo table for simulated times — a thin facade over
/// exec::ShardedMemoCache that keeps the engine-facing Key/Stats vocabulary.
///
/// Keys carry a machine tag so one cache may serve several machines'
/// engines; seed 0 marks the noise-free iteration time, any other value a
/// specific measurement stream draw. The shard count derives from
/// exec::kDefaultShards (overridable for the property tests).
class SimCache {
 public:
  struct Key {
    std::uint64_t machine = 0;  ///< machine_tag(name)
    int o = 0;
    int v = 0;
    int nodes = 0;
    int tile = 0;
    std::uint64_t seed = 0;  ///< 0 = noise-free

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  explicit SimCache(std::size_t shards = exec::kDefaultShards)
      : cache_(shards) {}

  /// FNV-1a tag of a machine name (stable within and across processes).
  static std::uint64_t machine_tag(const std::string& name);

  /// Returns true and fills `*value` on a hit; counts the miss otherwise.
  bool lookup(const Key& key, double* value) const {
    return cache_.lookup(key, value);
  }

  /// Inserts (first writer wins on a race; values are identical anyway).
  void insert(const Key& key, double value) { cache_.insert(key, value); }

  /// Single-flight memoized compute; see ShardedMemoCache::get_or_compute.
  template <typename Fn>
  double get_or_compute(const Key& key, Fn&& fn) {
    return cache_.get_or_compute(key, std::forward<Fn>(fn));
  }

  Stats stats() const {
    const exec::MemoCacheStats st = cache_.stats();
    return Stats{st.hits, st.misses, st.entries};
  }

  void clear() { cache_.clear(); }

  std::size_t shard_count() const { return cache_.shard_count(); }

 private:
  mutable exec::ShardedMemoCache<Key, double, KeyHash> cache_;
};

/// Work counters for one engine (monotonic; read for bench reporting).
struct SimEngineStats {
  std::uint64_t graph_builds = 0;  ///< task-graph decompositions built
  std::uint64_t evaluations = 0;   ///< breakdowns evaluated (cache misses)
};

/// Memoized, batch-oriented simulator front end for one machine.
///
/// The engine never changes results: fast-mode outputs are bit-identical
/// to reference-mode outputs for every API below (enforced by
/// bench_sim_engine and the sim_engine tests).
class SimEngine {
 public:
  explicit SimEngine(const CcsdSimulator& simulator,
                     SimEngineOptions options = {});

  const CcsdSimulator& simulator() const { return *simulator_; }
  const SimEngineOptions& options() const { return options_; }
  SimCache& cache() { return cache_; }
  const SimCache& cache() const { return cache_; }
  SimEngineStats stats() const;

  /// Noise-free wall time of one iteration, memoized in fast mode.
  double iteration_time(const RunConfig& cfg);

  /// Noise-free times for a config list. Fast mode dedupes, reuses one
  /// task graph per (O, V, tile) group across its node counts, serves
  /// repeats from the cache and fans groups over the shared ThreadPool;
  /// reference mode simulates each entry serially from scratch.
  std::vector<double> simulate_batch(const std::vector<RunConfig>& configs);

  /// The rep-th simulated measurement of `cfg` under `campaign_seed`:
  /// iteration_time(cfg) times the rep-th noise factor of the config's
  /// measurement stream. Independent of evaluation order across configs.
  double measured_time(const RunConfig& cfg, std::uint64_t campaign_seed,
                       int rep = 0);

  /// The first `reps` measurements of `cfg` (the rep axis drawn
  /// sequentially from the config's stream).
  std::vector<double> measured_series(const RunConfig& cfg,
                                      std::uint64_t campaign_seed, int reps);

 private:
  SimCache::Key key_for(const RunConfig& cfg, std::uint64_t seed = 0) const;
  bool fast() const { return options_.mode == SimEngineMode::kFast; }

  const CcsdSimulator* simulator_;
  SimEngineOptions options_;
  std::uint64_t machine_tag_ = 0;
  SimCache cache_;
  mutable std::mutex stats_mutex_;
  SimEngineStats stats_;
};

}  // namespace ccpred::sim
