/// Active-learning campaign planner: you just got access to a brand-new
/// machine with no historical data, and every experiment costs allocation.
/// This example shows how uncertainty sampling decides which CCSD runs to
/// measure next, and how much data it saves over random sampling.
///
/// Usage: active_learning_campaign [machine]   (default frontier)

#include <cstdio>
#include <string>

#include "ccpred/active/loop.hpp"
#include "ccpred/active/random_sampling.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"

int main(int argc, char** argv) {
  using namespace ccpred;
  const std::string machine = argc > 1 ? argv[1] : "frontier";

  sim::CcsdSimulator simulator(machine == "aurora"
                                   ? sim::MachineModel::aurora()
                                   : sim::MachineModel::frontier());
  std::printf("simulating the candidate-experiment pool on %s...\n",
              machine.c_str());
  data::GeneratorOptions options;
  options.seed = 5;
  options.target_total = 1200;
  const auto dataset = data::generate_dataset(
      simulator, data::problems_for(machine), options);
  Rng rng(3);
  auto split = data::stratified_split_fraction(dataset, 0.25, rng);
  data::ensure_config_coverage(dataset, split);
  const auto tt = data::apply_split(dataset, split);

  // The GP models log wall time — the natural scale for multiplicative
  // run-to-run noise — and reports the predictive std that drives US.
  const ml::GaussianProcessRegression gp(/*gamma=*/0.5, /*noise=*/1e-4,
                                         /*optimize=*/true,
                                         /*log_target=*/true);

  al::ActiveLearningOptions loop_options;
  loop_options.n_initial = 40;
  loop_options.query_size = 40;
  loop_options.n_queries = 12;
  loop_options.seed = 17;
  loop_options.goal = guide::Objective::kShortestTime;

  TextTable table({"labeled", "RS MAPE", "US MAPE", "RS STQ-MAPE",
                   "US STQ-MAPE"},
                  "Random vs uncertainty sampling (" + machine + ")");
  al::RandomSampling rs;
  al::UncertaintySampling us;
  const auto rs_curve =
      al::run_active_learning(tt.train, tt.test, gp, rs, loop_options);
  const auto us_curve =
      al::run_active_learning(tt.train, tt.test, gp, us, loop_options);
  for (std::size_t i = 0;
       i < std::min(rs_curve.rounds.size(), us_curve.rounds.size()); ++i) {
    table.add_row({std::to_string(rs_curve.rounds[i].labeled_count),
                   TextTable::cell(rs_curve.rounds[i].train_scores.mape, 3),
                   TextTable::cell(us_curve.rounds[i].train_scores.mape, 3),
                   TextTable::cell(rs_curve.rounds[i].goal_losses->mape, 3),
                   TextTable::cell(us_curve.rounds[i].goal_losses->mape, 3)});
  }
  table.print();
  std::printf("\nread: how many labeled experiments each strategy needs "
              "before the model answers STQ accurately.\n");
  return 0;
}
