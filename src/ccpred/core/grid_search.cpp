#include "ccpred/core/grid_search.hpp"

#include <limits>

#include "ccpred/common/error.hpp"
#include "ccpred/common/stopwatch.hpp"

namespace ccpred::ml {
namespace detail {

/// Shared by grid/random search: evaluate a candidate list sequentially
/// (each CV already parallelizes folds), pick the best, optionally refit.
SearchResult evaluate_candidates(const Regressor& prototype,
                                 const std::vector<ParamMap>& candidates,
                                 const linalg::Matrix& x,
                                 const std::vector<double>& y,
                                 const SearchOptions& options) {
  CCPRED_CHECK_MSG(!candidates.empty(), "no candidates to search");
  Stopwatch watch;
  SearchResult result;
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& params : candidates) {
    auto model = prototype.clone();
    model->set_params(params);
    Rng cv_rng(options.seed);  // same folds for every candidate
    const CvResult cv = cross_validate(*model, x, y, options.cv_folds, cv_rng);
    const double value = scoring_value(cv.mean, options.scoring);
    result.trials.push_back(
        SearchTrial{.params = params, .cv_scores = cv.mean, .value = value});
    if (value > best) {
      best = value;
      result.best_params = params;
      result.best_cv_scores = cv.mean;
    }
  }
  if (options.refit) {
    result.best_model = prototype.clone();
    result.best_model->set_params(result.best_params);
    result.best_model->fit(x, y);
  }
  result.elapsed_s = watch.elapsed_s();
  return result;
}

}  // namespace detail

SearchResult grid_search(const Regressor& prototype, const ParamGrid& grid,
                         const linalg::Matrix& x, const std::vector<double>& y,
                         const SearchOptions& options) {
  return detail::evaluate_candidates(prototype, expand_grid(grid), x, y,
                                     options);
}

}  // namespace ccpred::ml
