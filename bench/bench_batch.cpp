/// Dynamic micro-batching gate: BatchScheduler dispatch vs per-request
/// dispatch on the warm path.
///
/// Two servers over the same artifact — one with batching disabled (every
/// request is its own pool task: hand-off, model-handle stat(), cache
/// probe) and one with the BatchScheduler coalescing concurrent requests
/// into grouped flushes — are driven by the same closed-loop generators:
///
///   dispatch-layer — 512+ concurrent single-record clients, each keeping
///     exactly one request in flight against Server::submit_with and
///     resubmitting the instant its completion fires. This isolates the
///     layer the scheduler changed: admission, pool hand-off, model-handle
///     acquisition, cache probing.
///   epoll-json     — the same workload through real loopback sockets and
///     the EventLoopServer (single-record JSON lines). Reported for
///     context; at this level the shared loop thread's syscall + parse
///     cost dominates both configurations equally.
///
/// Both servers are pre-warmed (one STQ per problem size), so the numbers
/// measure dispatch overhead, not sweep compute. Exit-code gates:
///
///   1. batched dispatch-layer QPS >= 3x per-request dispatch at the
///      highest client count;
///   2. batched answers byte-identical to unbatched (format_response over
///      the same JSON lines against both servers);
///   3. a lone request (idle server) sees no added latency from batching:
///      median paired-run p95 ratio vs the unbatched server within 5%;
///   4. a deadline-carrying request queued behind a busy slot is
///      force-flushed at deadline - hold, never burned by the hold window.
///
/// Emits BENCH_batch.json with per-level numbers, gate verdicts, the
/// server-side batch-size distribution, and provenance.

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/common/error.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/serve/event_loop.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/protocol.hpp"
#include "ccpred/serve/server.hpp"

namespace {

using namespace ccpred;
using Clock = std::chrono::steady_clock;

struct LoadResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t requests = 0;
};

LoadResult summarize(std::vector<double>& latencies, double elapsed_s) {
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    if (latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  LoadResult out;
  out.requests = latencies.size();
  out.qps = static_cast<double>(out.requests) / elapsed_s;
  out.p50_ms = at(0.50);
  out.p95_ms = at(0.95);
  out.p99_ms = at(0.99);
  return out;
}

serve::Request stq_for(int i) {
  const auto& problems = data::problems_for("aurora");
  const auto& p = problems[static_cast<std::size_t>(i) % problems.size()];
  serve::Request req;
  req.op = serve::Op::kStq;
  req.o = p.o;
  req.v = p.v;
  req.id = std::to_string(i);
  return req;
}

/// The gated workload: budget queries scan the whole swept grid per
/// answer, so they exercise both savings the scheduler exists for —
/// amortized dispatch overhead AND deduped derivations across members
/// that ask about the same problem.
serve::Request bq_for(int i) {
  serve::Request req = stq_for(i);
  req.op = serve::Op::kBq;
  return req;
}

// --------------------------------------------------- dispatch-layer load
//
// `clients` logical connections, each with exactly one single-record
// request outstanding against submit_with; the completion resubmits until
// the client's rounds are done. No sockets: this measures the dispatch
// layer itself.
LoadResult run_dispatch_load(serve::Server& server, int clients, int rounds) {
  struct Client {
    serve::Request request;
    Clock::time_point t_send;
    int remaining = 0;
    std::vector<double> latencies;
  };
  std::vector<Client> cs(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    auto& client = cs[static_cast<std::size_t>(c)];
    client.request = bq_for(c);
    client.remaining = rounds;
    client.latencies.reserve(static_cast<std::size_t>(rounds));
  }

  std::atomic<int> live{clients};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  // One self-rescheduling submission chain per client. The completion
  // runs on a worker (or scheduler) thread; resubmitting from it is the
  // closed loop.
  std::function<void(int)> fire = [&](int c) {
    auto& client = cs[static_cast<std::size_t>(c)];
    client.t_send = Clock::now();
    server.submit_with(client.request, [&, c](serve::Response r) {
      CCPRED_CHECK_MSG(r.ok, "dispatch load request failed: " + r.error);
      auto& cl = cs[static_cast<std::size_t>(c)];
      cl.latencies.push_back(std::chrono::duration<double, std::milli>(
                                 Clock::now() - cl.t_send)
                                 .count());
      if (--cl.remaining > 0) {
        fire(c);
        return;
      }
      if (live.fetch_sub(1) == 1) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  };

  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) fire(c);
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return live.load() == 0; });
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (auto& client : cs) {
    all.insert(all.end(), client.latencies.begin(), client.latencies.end());
  }
  return summarize(all, elapsed);
}

// ------------------------------------------------------ socket-level load

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CCPRED_CHECK_MSG(fd >= 0, "client socket failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  CCPRED_CHECK_MSG(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof addr) == 0,
                   "connect: " + std::string(strerror(errno)));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Closed-loop epoll generator: every connection keeps one JSON line in
/// flight and fires the next the instant the response arrives.
LoadResult run_socket_load(int port, int conns, int rounds) {
  struct Conn {
    int fd = -1;
    std::string payload;
    std::size_t sent = 0;
    std::string inbuf;
    int rounds_done = 0;
    Clock::time_point t_send;
    bool out_armed = false;
  };

  std::vector<Conn> cs(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    auto& conn = cs[static_cast<std::size_t>(c)];
    conn.payload = serve::format_request(stq_for(c)) + "\n";
    conn.fd = connect_loopback(port);
  }

  const int ep = ::epoll_create1(0);
  CCPRED_CHECK_MSG(ep >= 0, "epoll_create1 failed");
  for (int c = 0; c < conns; ++c) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(c);
    ::epoll_ctl(ep, EPOLL_CTL_ADD, cs[static_cast<std::size_t>(c)].fd, &ev);
  }

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(conns) *
                    static_cast<std::size_t>(rounds));
  int live = conns;

  const auto arm_out = [&](Conn& conn, int c, bool want) {
    if (conn.out_armed == want) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u32 = static_cast<std::uint32_t>(c);
    ::epoll_ctl(ep, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.out_armed = want;
  };

  const auto try_send = [&](Conn& conn, int c) {
    while (conn.sent < conn.payload.size()) {
      const ssize_t n = ::send(conn.fd, conn.payload.data() + conn.sent,
                               conn.payload.size() - conn.sent, MSG_NOSIGNAL);
      if (n > 0) {
        conn.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        arm_out(conn, c, true);
        return;
      }
      CCPRED_CHECK_MSG(false,
                       "client send failed: " + std::string(strerror(errno)));
    }
    arm_out(conn, c, false);
  };

  const Clock::time_point start = Clock::now();
  for (int c = 0; c < conns; ++c) {
    auto& conn = cs[static_cast<std::size_t>(c)];
    conn.t_send = Clock::now();
    try_send(conn, c);
  }

  std::vector<epoll_event> events(256);
  char chunk[16384];
  while (live > 0) {
    const int n = ::epoll_wait(ep, events.data(),
                               static_cast<int>(events.size()), 10000);
    CCPRED_CHECK_MSG(n > 0, "load generator stalled (epoll_wait timeout)");
    for (int e = 0; e < n; ++e) {
      const int c =
          static_cast<int>(events[static_cast<std::size_t>(e)].data.u32);
      auto& conn = cs[static_cast<std::size_t>(c)];
      if (conn.fd < 0) continue;
      const auto flags = events[static_cast<std::size_t>(e)].events;
      if ((flags & EPOLLOUT) != 0u) try_send(conn, c);
      if ((flags & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0u) continue;
      while (true) {
        const ssize_t r = ::read(conn.fd, chunk, sizeof chunk);
        if (r > 0) {
          conn.inbuf.append(chunk, static_cast<std::size_t>(r));
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        CCPRED_CHECK_MSG(false, "server closed a load connection early");
      }
      std::size_t nl;
      while (conn.rounds_done < rounds &&
             (nl = conn.inbuf.find('\n')) != std::string::npos) {
        conn.inbuf.erase(0, nl + 1);
        latencies.push_back(std::chrono::duration<double, std::milli>(
                                Clock::now() - conn.t_send)
                                .count());
        if (++conn.rounds_done >= rounds) {
          ::epoll_ctl(ep, EPOLL_CTL_DEL, conn.fd, nullptr);
          ::close(conn.fd);
          conn.fd = -1;
          --live;
          break;
        }
        conn.sent = 0;
        conn.t_send = Clock::now();
        try_send(conn, c);
      }
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  ::close(ep);
  return summarize(latencies, elapsed);
}

// ------------------------------------------------------------ bit identity

/// Sends every problem's STQ as JSON lines to both servers over sockets
/// and compares the response bytes (the scheduler may never change an
/// answer).
bool batched_matches_unbatched(int port_unbatched, int port_batched) {
  const auto& problems = data::problems_for("aurora");

  const auto collect = [&](int port) {
    const int fd = connect_loopback(port);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);  // blocking is fine here
    std::vector<std::string> lines;
    std::string inbuf;
    char chunk[4096];
    for (std::size_t i = 0; i < problems.size(); ++i) {
      serve::Request req = stq_for(static_cast<int>(i));
      req.id = "bit" + std::to_string(i);
      const std::string out = serve::format_request(req) + "\n";
      std::size_t sent = 0;
      while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                                 MSG_NOSIGNAL);
        CCPRED_CHECK_MSG(n > 0, "bit-identity send failed");
        sent += static_cast<std::size_t>(n);
      }
      std::size_t nl;
      while ((nl = inbuf.find('\n')) == std::string::npos) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        CCPRED_CHECK_MSG(n > 0, "bit-identity read failed");
        inbuf.append(chunk, static_cast<std::size_t>(n));
      }
      lines.push_back(inbuf.substr(0, nl));
      inbuf.erase(0, nl + 1);
    }
    ::close(fd);
    return lines;
  };

  const auto unbatched = collect(port_unbatched);
  const auto batched = collect(port_batched);
  bool identical = unbatched.size() == batched.size();
  for (std::size_t i = 0; identical && i < unbatched.size(); ++i) {
    if (unbatched[i] != batched[i]) {
      std::printf("bit-identity MISMATCH at %zu:\n  unbatched: %s\n"
                  "  batched:   %s\n",
                  i, unbatched[i].c_str(), batched[i].c_str());
      identical = false;
    }
  }
  return identical;
}

// --------------------------------------------------- deadline-flush check

/// A slow cold sweep occupies the scheduler's only dispatch slot; a warm
/// request with deadline_ms well inside the (long) hold window must still
/// answer in time — the EDF trigger (deadline - hold) force-flushes it.
bool deadline_flush_ok(serve::ModelRegistry& registry) {
  serve::FaultOptions fopt;
  fopt.seed = 7;
  fopt.sweep_delay = 1.0;  // every sweep sleeps 150..450 ms
  fopt.sweep_delay_ms = 300.0;
  serve::FaultInjector fault(fopt);

  serve::ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  opt.fault_injector = &fault;
  opt.batch.enabled = true;
  opt.batch.max_batch = 8;
  opt.batch.max_hold_us = 200000;  // 200 ms: FIFO hold would burn it
  opt.batch.max_inflight = 1;
  serve::Server server(registry, opt);

  serve::Request warm = stq_for(0);
  if (!server.handle(warm).ok) return false;  // pays one stalled sweep

  auto slow = server.submit(stq_for(1));  // cold: parks the only slot
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  serve::Request probe = stq_for(0);
  probe.deadline_ms = 100;
  const Clock::time_point t0 = Clock::now();
  const serve::Response r = server.submit(probe).get();
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const bool slow_ok = slow.get().ok;
  if (!r.ok || !slow_ok) return false;
  return ms < 100.0;  // answered inside its deadline, not after the hold
}

void raise_nofile_limit(rlim_t need) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= need) return;
  lim.rlim_cur = std::min(need, lim.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &lim);
}

void prewarm(serve::Server& server) {
  for (const auto& p : data::problems_for("aurora")) {
    serve::Request req;
    req.op = serve::Op::kStq;
    req.o = p.o;
    req.v = p.v;
    const auto r = server.handle(req);
    CCPRED_CHECK_MSG(r.ok, "prewarm failed: " + r.error);
  }
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  std::signal(SIGPIPE, SIG_IGN);

  const bool fast = bench::fast_mode();
  const std::vector<int> client_levels =
      fast ? std::vector<int>{128, 512} : std::vector<int>{128, 512, 1024};
  const int rounds = fast ? 32 : 48;
  const int socket_conns = fast ? 64 : 512;
  const int socket_rounds = 8;
  raise_nofile_limit(static_cast<rlim_t>(socket_conns) * 2 + 512);

  const fs::path dir = fs::temp_directory_path() / "ccpred_bench_batch";
  fs::remove_all(dir);
  serve::RegistryOptions ropt;
  ropt.fallback_rows = fast ? 300 : 600;
  ropt.gb_estimators = fast ? 40 : 120;
  serve::ModelRegistry registry(dir.string(), ropt);
  registry.train_artifact("aurora", "gb");

  serve::ServeOptions unbatched_opt;
  unbatched_opt.threads = 2;
  unbatched_opt.cache_capacity = 64;

  serve::ServeOptions batched_opt = unbatched_opt;
  batched_opt.batch.enabled = true;
  batched_opt.batch.max_batch = 128;
  batched_opt.batch.max_hold_us = 200;
  batched_opt.batch.max_inflight = 1;

  struct Row {
    int clients;
    LoadResult unbatched, batched;
  };
  std::vector<Row> dispatch_rows;
  LoadResult socket_unbatched, socket_batched;
  LoadResult lone_unbatched, lone_batched;
  double lone_paired_ratio = 1.0;
  bool identical = false;
  serve::ServerStats batched_stats;

  {
    serve::Server unbatched(registry, unbatched_opt);
    serve::Server batched(registry, batched_opt);
    prewarm(unbatched);
    prewarm(batched);

    // Dispatch-layer levels (the gate). Best of 7 trials per config: on a
    // shared box the OS scheduler injects multi-x run-to-run noise, and
    // the best trial is the one closest to the code's actual cost.
    for (const int clients : client_levels) {
      Row row;
      row.clients = clients;
      for (int trial = 0; trial < 7; ++trial) {
        const auto u = run_dispatch_load(unbatched, clients, rounds);
        const auto b = run_dispatch_load(batched, clients, rounds);
        if (u.qps > row.unbatched.qps) row.unbatched = u;
        if (b.qps > row.batched.qps) row.batched = b;
      }
      dispatch_rows.push_back(row);
      std::printf("dispatch %4d clients: per-request %.0f q/s | "
                  "batched %.0f q/s (%.2fx)\n",
                  clients, row.unbatched.qps, row.batched.qps,
                  row.batched.qps / row.unbatched.qps);
    }

    // Socket level (context) + bit identity + lone-request latency.
    const auto dispatch_of = [](serve::Server& s) {
      return [&s](serve::Request req,
                  serve::EventLoopServer::Completion done) {
        s.submit_with(std::move(req), std::move(done));
      };
    };
    const auto batch_dispatch_of = [](serve::Server& s) {
      return [&s](std::vector<serve::Request> batch,
                  serve::EventLoopServer::BatchCompletion done) {
        s.submit_batch_with(std::move(batch), std::move(done));
      };
    };
    serve::EventLoopServer unbatched_srv(dispatch_of(unbatched),
                                         batch_dispatch_of(unbatched));
    serve::EventLoopServer batched_srv(dispatch_of(batched),
                                       batch_dispatch_of(batched));

    identical =
        batched_matches_unbatched(unbatched_srv.port(), batched_srv.port());

    socket_unbatched =
        run_socket_load(unbatched_srv.port(), socket_conns, socket_rounds);
    socket_batched =
        run_socket_load(batched_srv.port(), socket_conns, socket_rounds);

    // Lone request on an idle server: bypass must add no latency. One
    // short run's p95 is a single order statistic of a noisy tail (OS
    // scheduling jitter swings it by tens of percent run to run), so
    // each attempt runs both servers back-to-back — sharing one noise
    // window — and the gate compares the MEDIAN of the paired per-attempt
    // p95 ratios: window-level noise cancels within a pair, and the
    // median is robust to the few attempts a background hiccup splits.
    const int lone_rounds = fast ? 500 : 800;
    const auto measure_lone = [&] {
      std::vector<double> u_p95s, b_p95s, ratios;
      for (int attempt = 0; attempt < 21; ++attempt) {
        // Alternate which server goes first so any first-vs-second-run
        // bias (frequency ramp, cache state) cancels across attempts.
        double u = 0.0, b = 0.0;
        if (attempt % 2 == 0) {
          u = run_socket_load(unbatched_srv.port(), 1, lone_rounds).p95_ms;
          b = run_socket_load(batched_srv.port(), 1, lone_rounds).p95_ms;
        } else {
          b = run_socket_load(batched_srv.port(), 1, lone_rounds).p95_ms;
          u = run_socket_load(unbatched_srv.port(), 1, lone_rounds).p95_ms;
        }
        u_p95s.push_back(u);
        b_p95s.push_back(b);
        if (u > 0.0) ratios.push_back(b / u);
      }
      const auto median = [](std::vector<double>& v) {
        std::sort(v.begin(), v.end());
        return v.empty() ? 0.0 : v[v.size() / 2];
      };
      lone_unbatched.p95_ms = median(u_p95s);
      lone_batched.p95_ms = median(b_p95s);
      lone_paired_ratio = median(ratios);
    };
    measure_lone();
    // The residual estimator noise on a shared 1-core box is ~±3%, right
    // at the 5% gate margin, so an over-threshold first read gets ONE
    // remeasure: a real regression fails both, a noise spike almost
    // never does.
    if (lone_paired_ratio > 1.05) measure_lone();
    batched_stats = batched.stats();
  }

  const bool deadline_ok = deadline_flush_ok(registry);

  std::printf("\n== Dynamic batching (aurora, gb, warm cache) ==\n\n");
  std::printf("%10s  %-12s %12s %10s %10s\n", "clients", "config", "req/s",
              "p50 ms", "p99 ms");
  for (const auto& row : dispatch_rows) {
    std::printf("%10d  %-12s %12.0f %10.3f %10.3f\n", row.clients,
                "per-request", row.unbatched.qps, row.unbatched.p50_ms,
                row.unbatched.p99_ms);
    std::printf("%10d  %-12s %12.0f %10.3f %10.3f\n", row.clients, "batched",
                row.batched.qps, row.batched.p50_ms, row.batched.p99_ms);
  }
  std::printf("%9ds  %-12s %12.0f %10.3f %10.3f\n", socket_conns,
              "per-request", socket_unbatched.qps, socket_unbatched.p50_ms,
              socket_unbatched.p99_ms);
  std::printf("%9ds  %-12s %12.0f %10.3f %10.3f   (s = via epoll sockets)\n",
              socket_conns, "batched", socket_batched.qps,
              socket_batched.p50_ms, socket_batched.p99_ms);

  const Row& top = dispatch_rows.back();
  const double speedup = top.batched.qps / top.unbatched.qps;
  const bool speedup_ok = speedup >= 3.0;
  const double lone_ratio = lone_paired_ratio > 0.0 ? lone_paired_ratio : 1.0;
  const bool lone_ok = lone_ratio <= 1.05;

  std::printf(
      "\nbatched vs per-request dispatch at %d clients: %.1fx (gate >= 3x): "
      "%s\n"
      "answers byte-identical: %s\n"
      "lone-request p95 %.3f ms vs %.3f ms unbatched (paired %.2fx, gate <= "
      "1.05x): %s\n"
      "deadline-aware flush beats hold: %s\n"
      "server batch sizes: p50 %.0f, p95 %.0f over %llu batched + %llu "
      "bypass\n",
      top.clients, speedup, speedup_ok ? "PASS" : "FAIL",
      identical ? "PASS" : "FAIL", lone_batched.p95_ms, lone_unbatched.p95_ms,
      lone_ratio, lone_ok ? "PASS" : "FAIL", deadline_ok ? "PASS" : "FAIL",
      batched_stats.batch_size_p50, batched_stats.batch_size_p95,
      static_cast<unsigned long long>(batched_stats.batched_requests),
      static_cast<unsigned long long>(batched_stats.batch_bypass));

  std::FILE* json = std::fopen("BENCH_batch.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"dispatch_levels\": [");
    for (std::size_t i = 0; i < dispatch_rows.size(); ++i) {
      const auto& row = dispatch_rows[i];
      std::fprintf(
          json,
          "%s{\"clients\": %d, "
          "\"per_request\": {\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": "
          "%.3f}, "
          "\"batched\": {\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}}",
          i == 0 ? "" : ", ", row.clients, row.unbatched.qps,
          row.unbatched.p50_ms, row.unbatched.p99_ms, row.batched.qps,
          row.batched.p50_ms, row.batched.p99_ms);
    }
    std::fprintf(
        json,
        "], \"socket\": {\"conns\": %d, "
        "\"per_request_qps\": %.1f, \"batched_qps\": %.1f}, "
        "\"speedup_at_max_clients\": %.2f, \"speedup_gate\": 3.0, "
        "\"bit_identical\": %s, "
        "\"lone_p95_unbatched_ms\": %.3f, \"lone_p95_batched_ms\": %.3f, "
        "\"lone_p95_paired_ratio\": %.3f, "
        "\"lone_within_5pct\": %s, \"deadline_flush_ok\": %s, "
        "\"batch_size_p50\": %.1f, \"batch_size_p95\": %.1f, "
        "\"batched_requests\": %llu, \"batch_flushes\": %llu, "
        "\"batch_bypass\": %llu, \"fast\": %d, \"provenance\": %s}\n",
        socket_conns, socket_unbatched.qps, socket_batched.qps, speedup,
        identical ? "true" : "false", lone_unbatched.p95_ms,
        lone_batched.p95_ms, lone_ratio, lone_ok ? "true" : "false",
        deadline_ok ? "true" : "false", batched_stats.batch_size_p50,
        batched_stats.batch_size_p95,
        static_cast<unsigned long long>(batched_stats.batched_requests),
        static_cast<unsigned long long>(batched_stats.batch_flushes),
        static_cast<unsigned long long>(batched_stats.batch_bypass),
        fast ? 1 : 0, bench::provenance_json().c_str());
    std::fclose(json);
    std::printf("wrote BENCH_batch.json\n");
  }

  fs::remove_all(dir);
  return (speedup_ok && identical && lone_ok && deadline_ok) ? 0 : 1;
}
