#include "ccpred/linalg/cholesky.hpp"

#include <cmath>

namespace ccpred::linalg {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  CCPRED_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  // Left-looking column algorithm; inner dot products stream through the
  // contiguous rows of L.
  for (std::size_t j = 0; j < n; ++j) {
    const double* lj = l_.row_ptr(j);
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= lj[k] * lj[k];
    CCPRED_CHECK_MSG(d > 0.0, "matrix is not positive definite (pivot "
                                  << d << " at column " << j << ")");
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      const double* li = l_.row_ptr(i);
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l_(i, j) = s * inv;
    }
  }
}

std::vector<double> Cholesky::solve_lower(const std::vector<double>& b) const {
  const std::size_t n = order();
  CCPRED_CHECK(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l_.row_ptr(i);
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

std::vector<double> Cholesky::solve_upper(const std::vector<double>& y) const {
  const std::size_t n = order();
  CCPRED_CHECK(y.size() == n);
  std::vector<double> x = y;
  for (std::size_t ii = n; ii-- > 0;) {
    x[ii] /= l_(ii, ii);
    const double xi = x[ii];
    // Column access on L == row access on L^T.
    for (std::size_t k = 0; k < ii; ++k) x[k] -= l_(ii, k) * xi;
  }
  return x;
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  return solve_upper(solve_lower(b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  CCPRED_CHECK(b.rows() == order());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const auto xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

double Cholesky::log_determinant() const {
  double s = 0.0;
  for (std::size_t i = 0; i < order(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = order();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const auto x = solve(e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = x[r];
    e[c] = 0.0;
  }
  return inv;
}

}  // namespace ccpred::linalg
