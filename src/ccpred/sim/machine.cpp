#include "ccpred/sim/machine.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::sim {

double MachineModel::gemm_efficiency(int tile) const {
  CCPRED_CHECK_MSG(tile > 0, "tile size must be positive");
  const double r = half_eff_tile / static_cast<double>(tile);
  return 1.0 / (1.0 + r * r);
}

double MachineModel::effective_bw_bytes(int nodes) const {
  CCPRED_CHECK_MSG(nodes > 0, "node count must be positive");
  const double l2 = std::log2(static_cast<double>(nodes) + 1.0);
  return node_bw_gbs * 1e9 / (1.0 + congestion * l2);
}

MachineModel MachineModel::aurora() {
  MachineModel m;
  m.name = "aurora";
  m.gpus_per_node = 6;     // 6x Intel Data Center GPU Max (PVC)
  m.gpu_tflops = 5.0;      // sustained contraction throughput
  m.half_eff_tile = 42.0;  // PVC GEMM ramps up relatively early
  m.task_overhead_s = 2.5e-3;
  m.node_bw_gbs = 25.0;  // Slingshot-11, 8 NICs shared by 6 GPUs
  m.latency_s = 20e-6;
  m.congestion = 0.22;
  m.comm_overlap = 0.65;
  m.fixed_iteration_s = 6.0;
  m.sync_log2sq_s = 0.08;
  m.node_mem_gb = 700.0;  // 6x128 GB HBM, minus runtime overheads
  m.gpu_mem_gb = 110.0;
  m.spill_penalty = 3.0;
  m.noise_sigma = 0.025;  // Aurora traces were clean (GB MAPE 0.023)
  m.spike_prob = 0.01;
  m.calibration = 2.0;
  return m;
}

MachineModel MachineModel::frontier() {
  MachineModel m;
  m.name = "frontier";
  m.gpus_per_node = 8;     // 4x MI250X, 8 GCDs
  m.gpu_tflops = 4.2;      // per-GCD sustained
  m.half_eff_tile = 55.0;  // GCDs want larger tiles before saturating
  m.task_overhead_s = 3.0e-3;
  m.node_bw_gbs = 25.0;  // Slingshot, 4 NICs per node
  m.latency_s = 25e-6;
  m.congestion = 0.30;  // heavier congestion sensitivity
  m.comm_overlap = 0.55;
  m.fixed_iteration_s = 5.0;
  m.sync_log2sq_s = 0.10;
  m.node_mem_gb = 480.0;  // 8x64 GB HBM usable
  m.gpu_mem_gb = 56.0;
  m.spill_penalty = 3.5;
  m.noise_sigma = 0.075;  // Frontier is much harder to predict (MAPE 0.073)
  m.spike_prob = 0.06;
  m.spike_min = 0.05;
  m.spike_max = 0.30;
  m.calibration = 2.0;
  return m;
}

std::vector<int> MachineModel::node_menu() const {
  // Node counts seen across the paper's Tables 3-6 for both machines.
  return {5,   10,  15,  20,  25,  30,  35,  45,  50,  65,  70,  75,
          80,  90,  95,  110, 120, 150, 185, 200, 220, 240, 260, 300,
          320, 350, 400, 500, 600, 700, 800, 900};
}

std::vector<int> MachineModel::tile_menu() const {
  // Tile sizes seen in the paper's tables (73 included: ExaChem derives it
  // from basis-set block structure for one problem).
  return {40, 50, 60, 70, 73, 80, 90, 100, 110, 120, 130, 140, 150, 160, 180};
}

}  // namespace ccpred::sim
