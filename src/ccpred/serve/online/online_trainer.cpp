#include "ccpred/serve/online/online_trainer.hpp"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <utility>

#include "ccpred/common/error.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"

namespace ccpred::serve::online {
namespace {

/// (features, targets) of a run list, in the library's column order.
std::pair<linalg::Matrix, std::vector<double>> xy_of(
    const std::vector<MeasuredRun>& runs) {
  linalg::Matrix x(runs.size(), data::kNumFeatures);
  std::vector<double> y;
  y.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    x(i, data::kFeatO) = runs[i].o;
    x(i, data::kFeatV) = runs[i].v;
    x(i, data::kFeatNodes) = runs[i].nodes;
    x(i, data::kFeatTile) = runs[i].tile;
    y.push_back(runs[i].wall_time_s);
  }
  return {std::move(x), std::move(y)};
}

}  // namespace

OnlineTrainer::OnlineTrainer(ModelRegistry& registry, SweepCache* cache,
                             OnlineOptions options, FaultInjector* fault)
    : registry_(registry),
      cache_(cache),
      options_(options),
      fault_(fault) {
  CCPRED_CHECK_MSG(options_.buffer_capacity > 0,
                   "online: buffer_capacity must be > 0");
  CCPRED_CHECK_MSG(options_.min_refit_rows > 0,
                   "online: min_refit_rows must be > 0");
  CCPRED_CHECK_MSG(options_.holdout > 0, "online: holdout must be > 0");
  CCPRED_CHECK_MSG(options_.feedback_weight > 0,
                   "online: feedback_weight must be > 0");
  CCPRED_CHECK_MSG(options_.gp_seed_rows > 0,
                   "online: gp_seed_rows must be > 0");
  CCPRED_CHECK_MSG(options_.gp_refit_cadence > 0,
                   "online: gp_refit_cadence must be > 0");
  CCPRED_CHECK_MSG(options_.min_improvement >= 0.0 &&
                       options_.min_improvement < 1.0,
                   "online: min_improvement must be in [0, 1)");
}

OnlineTrainer::Stream& OnlineTrainer::stream(const std::string& machine,
                                             const std::string& kind) {
  const std::string key = machine + "/" + kind;
  const std::lock_guard<std::mutex> lock(streams_mutex_);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_.emplace(key, std::make_unique<Stream>(options_)).first;
  }
  return *it->second;
}

void OnlineTrainer::absorb_into_gp_locked(
    Stream& s, const std::vector<MeasuredRun>& batch) {
  std::vector<MeasuredRun> added;
  for (const MeasuredRun& run : batch) {
    if (s.gp_rows.size() >= options_.gp_max_rows) break;
    s.gp_rows.push_back(run);
    added.push_back(run);
  }
  if (added.empty()) return;
  if (!s.gp.is_fitted()) {
    if (s.gp_rows.size() >= options_.gp_seed_rows) {
      const auto [x, y] = xy_of(s.gp_rows);
      s.gp.fit(x, y);
    }
    return;
  }
  // Hot path: O(n^2 q) Cholesky extension instead of an O(n^3) refit.
  const auto [x, y] = xy_of(added);
  s.gp.update(x, y);
  incremental_updates_.fetch_add(1, std::memory_order_relaxed);
  if (++s.gp_batches % options_.gp_refit_cadence == 0) {
    // Cadence full refit re-anchors the frozen scalers/hyper-parameters,
    // exactly like the AL loop's refit_cadence.
    const auto [ax, ay] = xy_of(s.gp_rows);
    s.gp.fit(ax, ay);
  }
}

ReportOutcome OnlineTrainer::ingest(const std::string& machine,
                                    const std::string& kind,
                                    const sim::RunConfig& cfg,
                                    const std::vector<double>& wall_times) {
  if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kReportIngest);
  reports_.fetch_add(1, std::memory_order_relaxed);
  measurements_.fetch_add(wall_times.size(), std::memory_order_relaxed);

  // Score the reported configuration with the model that is serving right
  // now — the drift signal compares what users were told to what they got.
  const ModelHandle handle = registry_.get(machine, kind);
  const double predicted =
      handle.model->predict_one({static_cast<double>(cfg.o),
                                 static_cast<double>(cfg.v),
                                 static_cast<double>(cfg.nodes),
                                 static_cast<double>(cfg.tile)});

  ReportOutcome out;
  out.model_version = handle.version;
  Stream& s = stream(machine, kind);
  bool do_refit = false;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<MeasuredRun> accepted;
    for (const double wall : wall_times) {
      MeasuredRun run{cfg.o,     cfg.v,     cfg.nodes,      cfg.tile,
                      wall,      predicted, handle.version, 0};
      switch (s.buffer.add(run)) {
        case AddResult::kAccepted:
          s.drift.observe(predicted, wall);
          accepted.push_back(run);
          ++out.accepted;
          break;
        case AddResult::kDuplicate:
          ++out.duplicates;
          duplicates_.fetch_add(1, std::memory_order_relaxed);
          break;
        case AddResult::kRejected:
          ++out.rejected;
          rejected_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    absorb_into_gp_locked(s, accepted);
    out.buffered = s.buffer.size();
    out.rolling_mape = s.drift.rolling_mape();
    out.drifting = s.drift.drifting();
    if (out.drifting && !s.was_drifting) {
      drift_events_.fetch_add(1, std::memory_order_relaxed);
    }
    s.was_drifting = out.drifting;

    const std::uint64_t total = s.buffer.accepted();
    bool want = false;
    if (total >= options_.min_refit_rows) {
      if (out.drifting) {
        want = true;
      } else if (options_.refit_interval > 0 &&
                 total - s.accepted_at_last_refit >= options_.refit_interval) {
        want = true;
      }
    }
    if (want && !s.refit_inflight) {
      s.refit_inflight = true;
      s.accepted_at_last_refit = total;
      out.refit_scheduled = true;
      do_refit = true;
    }
  }

  if (do_refit) {
    if (options_.synchronous) {
      run_refit(machine, kind);
    } else {
      {
        const std::lock_guard<std::mutex> lock(idle_mutex_);
        ++refits_inflight_;
      }
      refit_pool_.post([this, machine, kind] {
        run_refit(machine, kind);  // never throws
        {
          const std::lock_guard<std::mutex> lock(idle_mutex_);
          --refits_inflight_;
        }
        idle_cv_.notify_all();
      });
    }
  }
  return out;
}

const data::Dataset& OnlineTrainer::campaign(const std::string& machine) {
  const std::lock_guard<std::mutex> lock(campaigns_mutex_);
  auto it = campaigns_.find(machine);
  if (it == campaigns_.end()) {
    const auto simulator = simulator_for(machine);
    data::GeneratorOptions gen;
    gen.seed = registry_.options().fallback_seed;
    gen.target_total = registry_.options().fallback_rows;
    it = campaigns_
             .emplace(machine,
                      data::generate_dataset(
                          simulator,
                          data::problems_for(simulator.machine().name), gen))
             .first;
  }
  return it->second;
}

void OnlineTrainer::run_refit(const std::string& machine,
                              const std::string& kind) {
  Stream& s = stream(machine, kind);
  try {
    if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kRefitStall);
    const std::vector<MeasuredRun> rows = s.buffer.snapshot();
    const std::size_t holdout_n = std::min(options_.holdout, rows.size() / 2);
    if (rows.size() >= options_.min_refit_rows && holdout_n > 0) {
      // The newest rows judge; everything older trains. The candidate
      // never sees its own holdout, so a win means generalization to the
      // current regime, not memorization.
      const std::vector<MeasuredRun> holdout(
          rows.end() - static_cast<std::ptrdiff_t>(holdout_n), rows.end());
      const std::vector<MeasuredRun> train(
          rows.begin(), rows.end() - static_cast<std::ptrdiff_t>(holdout_n));

      std::size_t n = train.size() * options_.feedback_weight;
      const data::Dataset* camp = nullptr;
      linalg::Matrix campaign_x;
      if (options_.use_campaign) {
        camp = &campaign(machine);
        campaign_x = camp->features();
        n += camp->size();
      }
      linalg::Matrix x(n, data::kNumFeatures);
      std::vector<double> y;
      y.reserve(n);
      std::size_t r = 0;
      if (camp != nullptr) {
        for (std::size_t i = 0; i < camp->size(); ++i, ++r) {
          for (std::size_t c = 0; c < data::kNumFeatures; ++c) {
            x(r, c) = campaign_x(i, c);
          }
          y.push_back(camp->targets()[i]);
        }
      }
      for (const MeasuredRun& run : train) {
        for (std::size_t w = 0; w < options_.feedback_weight; ++w, ++r) {
          x(r, data::kFeatO) = run.o;
          x(r, data::kFeatV) = run.v;
          x(r, data::kFeatNodes) = run.nodes;
          x(r, data::kFeatTile) = run.tile;
          y.push_back(run.wall_time_s);
        }
      }

      const RegistryOptions& reg = registry_.options();
      std::unique_ptr<ml::Regressor> candidate;
      std::function<void(const std::string&)> save;
      if (kind == "gb") {
        auto gb =
            std::make_unique<ml::GradientBoostingRegressor>(reg.gb_estimators);
        save = [model = gb.get()](const std::string& p) {
          ml::save_gb(*model, p);
        };
        candidate = std::move(gb);
      } else {
        auto rf =
            std::make_unique<ml::RandomForestRegressor>(reg.rf_estimators);
        save = [model = rf.get()](const std::string& p) {
          ml::save_rf(*model, p);
        };
        candidate = std::move(rf);
      }
      candidate->fit(x, y);
      refits_.fetch_add(1, std::memory_order_relaxed);

      const ModelHandle incumbent = registry_.get(machine, kind);
      const ShadowVerdict verdict = ShadowEvaluator::judge(
          *candidate, *incumbent.model, holdout, options_.min_improvement);
      shadow_evals_.fetch_add(1, std::memory_order_relaxed);

      if (verdict.promote) {
        if (fault_ != nullptr) {
          fault_->maybe_delay(FaultPoint::kPromotionRace);
        }
        const std::lock_guard<std::mutex> publish(promote_mutex_);
        const std::string path = registry_.artifact_path(machine, kind);
        const std::string tmp = path + ".promote";
        save(tmp);
        std::filesystem::rename(tmp, path);  // atomic swap, same directory
        registry_.note_published(machine, kind);
        // Load the promoted artifact now, so the very next request serves
        // it (and pays no reload latency), then drop the sweeps computed
        // under the replaced version.
        registry_.get(machine, kind);
        if (cache_ != nullptr) {
          cache_invalidated_.fetch_add(cache_->invalidate(machine, kind),
                                       std::memory_order_relaxed);
        }
        {
          const std::lock_guard<std::mutex> lock(s.mutex);
          s.drift.reset();
          s.was_drifting = false;
        }
        promotions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        promotions_rejected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } catch (...) {
    // A failed refit or promotion leaves the incumbent serving; feedback
    // keeps accumulating and the next trigger tries again.
  }
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.refit_inflight = false;
}

OnlineCounters OnlineTrainer::counters() const {
  OnlineCounters c;
  c.reports = reports_.load(std::memory_order_relaxed);
  c.measurements = measurements_.load(std::memory_order_relaxed);
  c.duplicates = duplicates_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.drift_events = drift_events_.load(std::memory_order_relaxed);
  c.incremental_updates =
      incremental_updates_.load(std::memory_order_relaxed);
  c.refits = refits_.load(std::memory_order_relaxed);
  c.shadow_evals = shadow_evals_.load(std::memory_order_relaxed);
  c.promotions = promotions_.load(std::memory_order_relaxed);
  c.promotions_rejected =
      promotions_rejected_.load(std::memory_order_relaxed);
  c.cache_invalidated = cache_invalidated_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(streams_mutex_);
  for (const auto& [key, s] : streams_) {
    c.buffered += s->buffer.size();
    const std::lock_guard<std::mutex> stream_lock(s->mutex);
    c.rolling_mape = std::max(c.rolling_mape, s->drift.rolling_mape());
  }
  return c;
}

void OnlineTrainer::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return refits_inflight_ == 0; });
}

}  // namespace ccpred::serve::online
