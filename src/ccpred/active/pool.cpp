#include "ccpred/active/pool.hpp"

#include <algorithm>

#include "ccpred/common/error.hpp"

namespace ccpred::al {

Pool::Pool(const data::Dataset& dataset, std::size_t n_initial, Rng& rng)
    : dataset_(&dataset) {
  CCPRED_CHECK_MSG(n_initial >= 1, "need at least one initial label");
  CCPRED_CHECK_MSG(n_initial <= dataset.size(),
                   "n_initial exceeds dataset size");
  const auto picked = rng.sample_without_replacement(dataset.size(), n_initial);
  std::vector<bool> is_labeled(dataset.size(), false);
  for (auto i : picked) is_labeled[i] = true;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    (is_labeled[i] ? labeled_ : unlabeled_).push_back(i);
  }
}

void Pool::label_positions(std::vector<std::size_t> positions) {
  std::sort(positions.begin(), positions.end());
  CCPRED_CHECK_MSG(
      std::adjacent_find(positions.begin(), positions.end()) ==
          positions.end(),
      "duplicate query positions");
  CCPRED_CHECK_MSG(positions.empty() || positions.back() < unlabeled_.size(),
                   "query position out of range");
  // Remove from the back so earlier positions stay valid.
  for (auto it = positions.rbegin(); it != positions.rend(); ++it) {
    labeled_.push_back(unlabeled_[*it]);
    unlabeled_.erase(unlabeled_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
}

linalg::Matrix Pool::labeled_features() const {
  return dataset_->select(labeled_).features();
}

std::vector<double> Pool::labeled_targets() const {
  return dataset_->select(labeled_).targets();
}

linalg::Matrix Pool::unlabeled_features() const {
  return dataset_->select(unlabeled_).features();
}

}  // namespace ccpred::al
