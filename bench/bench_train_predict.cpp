/// Tree-ensemble engine bench: histogram training vs the exact reference,
/// compiled SoA batch inference vs the per-row tree walk, and the
/// dispatched bin-code kernel across SIMD modes.
///
/// Trains GB and RF on the paper's Aurora campaign both ways and times a
/// sweep-shaped batch prediction through both inference paths, asserting
/// the compiled path is bit-identical to the walk. Emits the measurements
/// to BENCH_tree_engine.json next to the binary's working directory.
/// Set CCPRED_BENCH_FAST=1 (environment variable) for a reduced workload.
///
/// Gates (exit nonzero on failure):
///   - GB fit: histogram >= 10x faster than exact
///   - RF fit: histogram >= 10x faster than exact
///     (both raised from the pre-SIMD 3x when the direct small-node mode,
///     per-feature range threading and fused train predictions roughly
///     doubled the histogram engine; the structural gains are dispatch-
///     mode-independent, so a CCPRED_SIMD=scalar run passes the same bar)
///   - batch predict: compiled >= 5x faster than walk, bit-identical
///   - bin-code assignment: AVX2 table >= 2x the scalar table with
///     bit-identical codes (gated only when the host has AVX2+FMA)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/simd/simd.hpp"

namespace {

/// Best-of-`reps` wall time for one call of `fn` (first call may include
/// cold caches; the minimum is the stable figure).
template <typename Fn>
double best_time_s(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    ccpred::Stopwatch watch;
    fn();
    best = std::min(best, watch.elapsed_s());
  }
  return best;
}

}  // namespace

int main() {
  using namespace ccpred;

  const bool fast = bench::fast_mode();
  // Full campaign rows even in fast mode: the histogram-vs-exact fit ratio
  // is not scale-free in n (histogram fits carry an O(total_bins) per-node
  // floor), so the 10x gates calibrated at full size sit knife-edge on a
  // quartered campaign. Fast mode keeps its reduced stage counts instead.
  const auto data = bench::load_paper_data("aurora", 2025, /*full_rows=*/true);
  const linalg::Matrix x = data.full.features();
  const std::vector<double>& y = data.full.targets();
  const std::size_t n = x.rows();
  const std::size_t threads = ThreadPool::global().size();

  const int gb_stages = fast ? 60 : 200;
  const int rf_trees = fast ? 40 : 100;
  ml::TreeOptions exact_opt;
  exact_opt.max_depth = 10;
  ml::TreeOptions hist_opt = exact_opt;
  hist_opt.split_mode = ml::SplitMode::kHistogram;
  hist_opt.max_bins = 255;

  std::printf("== Tree-ensemble engine (aurora campaign, n=%zu, %zu threads%s) ==\n\n",
              n, threads, fast ? ", fast mode" : "");

  // ---- training: exact reference vs histogram + parallel paths ----
  // Fits take best-of-2 in both modes: the 10x gates leave ~2x headroom on
  // a quiet host, and one timer outlier (or a cold first call) should not
  // fail the run.
  const int fit_reps = 2;
  ml::GradientBoostingRegressor gb_exact(gb_stages, 0.1, exact_opt);
  const double gb_exact_s = best_time_s(fit_reps, [&] { gb_exact.fit(x, y); });
  ml::GradientBoostingRegressor gb_hist(gb_stages, 0.1, hist_opt);
  const double gb_hist_s = best_time_s(fit_reps, [&] { gb_hist.fit(x, y); });
  const double gb_fit_speedup = gb_exact_s / gb_hist_s;

  ml::RandomForestRegressor rf_exact(rf_trees, exact_opt);
  const double rf_exact_s = best_time_s(fit_reps, [&] { rf_exact.fit(x, y); });
  ml::RandomForestRegressor rf_hist(rf_trees, hist_opt);
  const double rf_hist_s = best_time_s(fit_reps, [&] { rf_hist.fit(x, y); });
  const double rf_fit_speedup = rf_exact_s / rf_hist_s;

  // ---- inference: compiled SoA batch vs per-row tree walk ----
  // A sweep-shaped query batch: every campaign row is a (O, V, nodes, tile)
  // point, just like the advisor's enumerate-and-predict sweep.
  const int predict_reps = fast ? 5 : 10;
  const double walk_s = best_time_s(predict_reps, [&] { gb_hist.predict_walk(x); });
  const double compiled_s = best_time_s(predict_reps, [&] { gb_hist.predict(x); });
  const double predict_speedup = walk_s / compiled_s;

  const auto walk_out = gb_hist.predict_walk(x);
  const auto compiled_out = gb_hist.predict(x);
  bool bit_identical = walk_out.size() == compiled_out.size();
  for (std::size_t i = 0; bit_identical && i < walk_out.size(); ++i) {
    bit_identical = walk_out[i] == compiled_out[i];
  }

  const double rf_walk_s = best_time_s(predict_reps, [&] { rf_hist.predict_walk(x); });
  const double rf_compiled_s = best_time_s(predict_reps, [&] { rf_hist.predict(x); });
  const double rf_predict_speedup = rf_walk_s / rf_compiled_s;

  // ---- bin-code assignment kernel: scalar vs AVX2 dispatch tables ----
  // The quantile-binning front door of every histogram fit. The scalar
  // table keeps the shipped per-value binary search; the AVX2 table counts
  // edges held in registers. Codes are integer counts, so the tables must
  // agree bit-for-bit.
  const ml::FeatureBins fb = ml::FeatureBins::build(x, hist_opt.max_bins);
  std::vector<std::vector<double>> edges(x.cols());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (int b = 0; b + 1 < fb.bin_count(f); ++b) {
      edges[f].push_back(fb.upper_edge(f, b));
    }
  }
  std::vector<std::uint16_t> codes_scalar(n * x.cols());
  std::vector<std::uint16_t> codes_avx2(n * x.cols());
  const auto run_codes = [&](simd::Mode mode, std::uint16_t* out) {
    const auto& table = simd::ops_for(mode);
    for (std::size_t f = 0; f < x.cols(); ++f) {
      table.bin_codes(x.row_ptr(0) + f, n, x.cols(), edges[f].data(),
                      static_cast<int>(edges[f].size()), out + f, x.cols());
    }
  };
  const int code_reps = fast ? 100 : 300;
  const double codes_scalar_s = best_time_s(
      code_reps, [&] { run_codes(simd::Mode::kScalar, codes_scalar.data()); });
  const double codes_avx2_s = best_time_s(
      code_reps, [&] { run_codes(simd::Mode::kAvx2, codes_avx2.data()); });
  const double codes_speedup = codes_scalar_s / codes_avx2_s;
  const bool codes_identical =
      std::memcmp(codes_scalar.data(), codes_avx2.data(),
                  codes_scalar.size() * sizeof(std::uint16_t)) == 0;
  const bool codes_gated = simd::avx2_available();

  TextTable table({"model", "path", "seconds", "speedup"},
                  "Histogram training and compiled inference");
  table.add_row({"GB fit", "exact", TextTable::cell(gb_exact_s, 3), "1.0x"});
  table.add_row({"GB fit", "histogram", TextTable::cell(gb_hist_s, 3),
                 TextTable::cell(gb_fit_speedup, 1) + "x"});
  table.add_row({"RF fit", "exact", TextTable::cell(rf_exact_s, 3), "1.0x"});
  table.add_row({"RF fit", "histogram", TextTable::cell(rf_hist_s, 3),
                 TextTable::cell(rf_fit_speedup, 1) + "x"});
  table.add_row({"GB predict", "walk", TextTable::cell(walk_s, 4), "1.0x"});
  table.add_row({"GB predict", "compiled", TextTable::cell(compiled_s, 4),
                 TextTable::cell(predict_speedup, 1) + "x"});
  table.add_row({"RF predict", "walk", TextTable::cell(rf_walk_s, 4), "1.0x"});
  table.add_row({"RF predict", "compiled", TextTable::cell(rf_compiled_s, 4),
                 TextTable::cell(rf_predict_speedup, 1) + "x"});
  table.add_row({"bin codes", "scalar", TextTable::cell(codes_scalar_s, 6),
                 "1.0x"});
  table.add_row({"bin codes", "avx2", TextTable::cell(codes_avx2_s, 6),
                 TextTable::cell(codes_speedup, 1) + "x"});
  table.print();

  const bool gb_fit_ok = gb_fit_speedup >= 10.0;
  const bool rf_fit_ok = rf_fit_speedup >= 10.0;
  const bool predict_ok = predict_speedup >= 5.0;
  const bool codes_ok =
      !codes_gated || (codes_speedup >= 2.0 && codes_identical);
  std::printf(
      "\nbit-identical compiled vs walk: %s\n"
      "GB fit speedup %.1fx (target >= 10x): %s\n"
      "RF fit speedup %.1fx (target >= 10x): %s\n"
      "GB batch-predict speedup %.1fx (target >= 5x): %s\n"
      "bin-codes avx2 vs scalar %.1fx, identical %s (target >= 2x): %s\n",
      bit_identical ? "yes" : "NO", gb_fit_speedup,
      gb_fit_ok ? "PASS" : "FAIL", rf_fit_speedup, rf_fit_ok ? "PASS" : "FAIL",
      predict_speedup, predict_ok ? "PASS" : "FAIL", codes_speedup,
      codes_identical ? "yes" : "NO",
      codes_gated ? (codes_ok ? "PASS" : "FAIL") : "not gated (no AVX2)");

  std::FILE* json = std::fopen("BENCH_tree_engine.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"machine\": \"aurora\",\n"
        "  \"fast_mode\": %s,\n"
        "  \"threads\": %zu,\n"
        "  \"n_rows\": %zu,\n"
        "  \"gb\": {\"stages\": %d, \"exact_fit_s\": %.6f, "
        "\"hist_fit_s\": %.6f, \"fit_speedup\": %.3f},\n"
        "  \"rf\": {\"trees\": %d, \"exact_fit_s\": %.6f, "
        "\"hist_fit_s\": %.6f, \"fit_speedup\": %.3f},\n"
        "  \"predict\": {\"rows\": %zu, \"gb_walk_s\": %.6f, "
        "\"gb_compiled_s\": %.6f, \"gb_speedup\": %.3f, "
        "\"rf_walk_s\": %.6f, \"rf_compiled_s\": %.6f, "
        "\"rf_speedup\": %.3f, \"bit_identical\": %s},\n"
        "  \"bin_codes\": {\"scalar_s\": %.6f, \"avx2_s\": %.6f, "
        "\"speedup\": %.3f, \"identical\": %s, \"gated\": %s},\n"
        "  \"provenance\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        fast ? "true" : "false", threads, n, gb_stages, gb_exact_s, gb_hist_s,
        gb_fit_speedup, rf_trees, rf_exact_s, rf_hist_s, rf_fit_speedup, n,
        walk_s, compiled_s, predict_speedup, rf_walk_s, rf_compiled_s,
        rf_predict_speedup, bit_identical ? "true" : "false", codes_scalar_s,
        codes_avx2_s, codes_speedup, codes_identical ? "true" : "false",
        codes_gated ? "true" : "false",
        bench::provenance_json().c_str(),
        gb_fit_ok && rf_fit_ok && predict_ok && bit_identical && codes_ok
            ? "true"
            : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_tree_engine.json\n");
  }

  return gb_fit_ok && rf_fit_ok && predict_ok && bit_identical && codes_ok
             ? 0
             : 1;
}
