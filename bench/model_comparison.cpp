#include "model_comparison.hpp"

#include <cstdio>

#include "bench_util.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/core/bayes_search.hpp"
#include "ccpred/core/grid_search.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/core/random_search.hpp"

namespace ccpred::bench {
namespace {

struct Cell {
  ml::Scores test;       ///< held-out test metrics of the refit best model
  double search_s = 0.0; ///< optimization wall time
};

Cell run_one(const ml::ZooEntry& entry, const std::string& strategy,
             const data::TrainTest& split) {
  const linalg::Matrix x_train = split.train.features();
  const auto& y_train = split.train.targets();

  ml::SearchOptions opt;
  opt.cv_folds = 3;
  opt.scoring = ml::Scoring::kR2;
  const int n_iter = fast_mode() ? 4 : 6;

  ml::SearchResult result;
  const auto prototype = entry.make();
  if (strategy == "grid") {
    result = ml::grid_search(*prototype, entry.grid, x_train, y_train, opt);
  } else if (strategy == "random") {
    result = ml::random_search(*prototype, ml::space_from_grid(entry.grid),
                               n_iter, x_train, y_train, opt);
  } else {
    ml::BayesSearchOptions bopt;
    bopt.base = opt;
    bopt.n_initial = 3;
    result = ml::bayes_search(*prototype, ml::space_from_grid(entry.grid),
                              n_iter, x_train, y_train, bopt);
  }

  Cell cell;
  cell.search_s = result.elapsed_s;
  cell.test = ml::score_all(split.test.targets(),
                            result.best_model->predict(split.test.features()));
  return cell;
}

}  // namespace

int run_model_comparison(const std::string& machine) {
  const auto data = load_paper_data(machine);
  const std::vector<std::string> strategies = {"grid", "random", "bayes"};

  TextTable r2({"Model", "Grid", "Random", "Bayes"},
               "R^2 score (" + machine + ")");
  TextTable mae({"Model", "Grid", "Random", "Bayes"},
                "MAE (" + machine + ")");
  TextTable mape({"Model", "Grid", "Random", "Bayes"},
                 "MAPE (" + machine + ")");
  TextTable opt_time({"Model", "Grid", "Random", "Bayes"},
                     "Optimization run time, s (" + machine + ")");

  std::string best_model;
  double best_r2 = -1e300;
  for (const auto& entry : ml::model_zoo()) {
    std::vector<std::string> row_r2 = {entry.key};
    std::vector<std::string> row_mae = {entry.key};
    std::vector<std::string> row_mape = {entry.key};
    std::vector<std::string> row_time = {entry.key};
    for (const auto& strategy : strategies) {
      const Cell cell = run_one(entry, strategy, data.split);
      row_r2.push_back(TextTable::cell(cell.test.r2, 4));
      row_mae.push_back(TextTable::cell(cell.test.mae, 2));
      row_mape.push_back(TextTable::cell(cell.test.mape, 4));
      row_time.push_back(TextTable::cell(cell.search_s, 2));
      if (cell.test.r2 > best_r2) {
        best_r2 = cell.test.r2;
        best_model = entry.key;
      }
    }
    r2.add_row(row_r2);
    mae.add_row(row_mae);
    mape.add_row(row_mape);
    opt_time.add_row(row_time);
  }

  r2.print();
  std::printf("\n");
  mae.print();
  std::printf("\n");
  mape.print();
  std::printf("\n");
  opt_time.print();
  std::printf(
      "\nbest overall model by test R^2: %s (paper: GB best overall on both "
      "machines)\n",
      best_model.c_str());
  return 0;
}

}  // namespace ccpred::bench
