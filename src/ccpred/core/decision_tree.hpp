#pragma once

/// \file decision_tree.hpp
/// CART regression tree (paper §3.1 "DT"): axis-aligned variance-reduction
/// splits. The shared base learner of the random-forest, gradient-boosting
/// and AdaBoost ensembles.
///
/// Two split-finding modes (TreeOptions::split_mode):
///  - kExact (default/reference): per-node sorted scans over the raw
///    feature values; every midpoint between adjacent distinct values is a
///    candidate threshold.
///  - kHistogram: features are quantile-binned once per fit (FeatureBins),
///    each node accumulates per-bin (count, sum) gradient histograms and
///    scans bin boundaries; the sibling histogram is derived by subtracting
///    the scanned child from the parent ("histogram subtraction" trick), so
///    each level costs one pass over the smaller halves only. Thresholds
///    are real feature values, so the fitted tree predicts through the same
///    TreeNode structure and serializes identically to exact mode.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::exec {
class Arena;
}

namespace ccpred::ml {

/// Split-finding strategy for tree training.
enum class SplitMode {
  kExact = 0,      ///< exact sorted scans (reference)
  kHistogram = 1,  ///< quantile-binned histogram splits (fast)
};

/// Hyper-parameters of a CART regression tree.
struct TreeOptions {
  int max_depth = 10;          ///< 0 means unlimited (capped at 64)
  int min_samples_split = 2;   ///< don't split nodes smaller than this
  int min_samples_leaf = 1;    ///< each child must keep at least this many
  int max_features = 0;        ///< features tried per split; 0 = all
  std::uint64_t seed = 1;      ///< feature-subsampling stream
  SplitMode split_mode = SplitMode::kExact;
  int max_bins = 255;          ///< histogram mode: max quantile bins/feature
};

/// Flattened tree node; children referenced by index into the node array.
struct TreeNode {
  int feature = -1;        ///< split feature, -1 for leaves
  double threshold = 0.0;  ///< go left if x[feature] <= threshold
  double value = 0.0;      ///< leaf prediction (mean of samples)
  int left = -1;
  int right = -1;

  bool is_leaf() const { return feature < 0; }
};

/// Quantile-binned view of a feature matrix, computed once per ensemble fit
/// and shared by every member tree (the expensive part of histogram
/// training — one sort per feature — is paid once, not per tree).
///
/// Bin semantics: feature f has bin_count(f) bins separated by
/// bin_count(f) - 1 ascending edges; code(r, f) <= b  ⇔  x(r, f) <=
/// upper_edge(f, b), so a histogram split "code <= b" is exactly the raw
/// threshold upper_edge(f, b). Edges are midpoints between distinct data
/// values, so when a feature has at most max_bins distinct values (the
/// menu-structured paper features always do) the candidate-threshold set
/// equals exact mode's.
class FeatureBins {
 public:
  /// Bins every column of `x` into at most `max_bins` quantile bins.
  static FeatureBins build(const linalg::Matrix& x, int max_bins);

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return d_; }

  int bin_count(std::size_t f) const {
    return offsets_[f + 1] - offsets_[f];
  }
  /// Start of feature f's bin range in a flattened histogram.
  int offset(std::size_t f) const { return offsets_[f]; }
  /// Total bins across all features (flattened histogram length).
  int total_bins() const { return offsets_.back(); }

  /// Bin index of x(r, f), in [0, bin_count(f)).
  std::uint16_t code(std::size_t r, std::size_t f) const {
    return codes_[r * d_ + f];
  }
  /// Pointer to row r's codes (d consecutive values).
  const std::uint16_t* row_codes(std::size_t r) const {
    return codes_.data() + r * d_;
  }

  /// Raw-value threshold of the split "code(., f) <= bin";
  /// requires bin in [0, bin_count(f) - 1).
  double upper_edge(std::size_t f, int bin) const {
    return edges_[f][static_cast<std::size_t>(bin)];
  }

 private:
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::vector<int> offsets_;                ///< d + 1 prefix sums
  std::vector<std::vector<double>> edges_;  ///< per feature, bin_count - 1
  std::vector<std::uint16_t> codes_;        ///< n * d, row-major
};

/// CART regressor. Parameters: "max_depth", "min_samples_split",
/// "min_samples_leaf", "max_features", "split_mode" (0 exact /
/// 1 histogram), "max_bins".
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {});

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;

  /// Fits on a subset of rows (used by the ensembles to avoid copying the
  /// feature matrix for every bootstrap resample). Dispatches on
  /// options().split_mode; histogram mode bins `x` first.
  void fit_rows(const linalg::Matrix& x, const std::vector<double>& y,
                const std::vector<std::size_t>& rows);

  /// Histogram-mode fit on a pre-binned matrix (the ensembles bin once and
  /// share the FeatureBins across members/stages). Ignores split_mode.
  /// When `train_pred` is non-null it receives, for every index in `rows`,
  /// the fitted tree's prediction for that row (train_pred[r] = leaf mean;
  /// other entries are untouched). These are read off the training
  /// partition, so they equal predict_row on the same row bit-for-bit —
  /// gradient boosting uses them to update residuals without re-walking
  /// the tree per row per stage.
  /// All fit scratch (row partitions, flattened histograms, scan buffers)
  /// bump-allocates from `arena` when one is passed — the ensembles hand in
  /// a reused per-task arena so repeated fits stop calling malloc. The
  /// arena is reset by this call: it must not hold the caller's live
  /// allocations. When null, a reused thread-local arena is used.
  void fit_binned(const FeatureBins& bins, const std::vector<double>& y,
                  const std::vector<std::size_t>& rows,
                  double* train_pred = nullptr,
                  exec::Arena* arena = nullptr);

  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return !nodes_.empty(); }

  /// Prediction for one row given as a raw pointer (hot path in ensembles).
  double predict_row(const double* row) const;

  /// Number of nodes in the fitted tree.
  std::size_t node_count() const { return nodes_.size(); }

  /// Impurity-based feature importances: per-feature sum of the variance
  /// reduction its splits achieved, normalized to sum to 1 (all zeros for
  /// a single-leaf tree). Requires fit().
  std::vector<double> feature_importances() const;

  /// Fitted tree structure (flattened nodes) — used by serialization and
  /// the compiled-ensemble flattener.
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Reconstructs a fitted tree from its parts (serialization loader).
  /// `raw_importance` holds the unnormalized per-feature gain sums.
  static DecisionTreeRegressor from_parts(TreeOptions options,
                                          std::vector<TreeNode> nodes,
                                          std::vector<double> raw_importance);

  /// Unnormalized per-feature gain sums (serialization writer).
  const std::vector<double>& raw_importance() const { return importance_; }
  /// Depth of the fitted tree.
  int depth() const;
  const TreeOptions& options() const { return options_; }

 private:
  struct BuildContext;
  int build(BuildContext& ctx, std::vector<std::size_t>& rows, int depth);

  struct Histogram;
  struct HistContext;
  /// Builds the subtree over arena rows [lo, hi). `sum` is the node's
  /// target total (threaded down from the parent's split scan instead of
  /// re-summed per node) and `hist` its gradient histogram — or nullptr
  /// once the subtree is small enough that per-feature scans rebuilt from
  /// the rows beat maintaining full-width histograms (the "direct" mode;
  /// identical bin sums in the same order, so the fitted tree is
  /// unchanged).
  int build_hist(HistContext& ctx, std::size_t lo, std::size_t hi, double sum,
                 Histogram* hist, int depth);

  TreeOptions options_;
  std::vector<TreeNode> nodes_;
  std::vector<double> importance_;  ///< raw per-feature gain sums
};

}  // namespace ccpred::ml
