# CTest script: the serving daemon end to end. Pre-trains a small artifact,
# replays a scripted session of 100+ mixed requests, and checks:
#  * every request gets an ok response (no retraining stalls, no errors),
#  * answers are deterministic across runs (stats lines excluded — they
#    carry latency measurements),
#  * the sweep cache reports hits (the session repeats problem sizes;
#    checked with batching off, where repeats re-probe the cache),
#  * the dynamic micro-batcher (daemon default) answers the same session
#    byte-identically while sharing sweeps instead of recomputing them.

set(dir "${WORKDIR}/serverd_smoke_artifacts")
file(REMOVE_RECURSE "${dir}")

# Small fallback model so the test stays fast: 60 boosting stages on a
# 300-row campaign still yields a deterministic, fully functional server.
execute_process(COMMAND "${SERVERD}" train --artifacts "${dir}"
                        --machine aurora --rows 300 --estimators 60
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "train failed: ${out} ${err}")
endif()
if(NOT EXISTS "${dir}/aurora-gb.model")
  message(FATAL_ERROR "train did not publish aurora-gb.model")
endif()

# Build the scripted session: 9 problem sizes x 12 rounds of mixed
# STQ/BQ/budget plus one stats probe per round = 120 requests.
set(session "${WORKDIR}/serverd_smoke_session.txt")
set(lines "")
set(problems "44\;260" "81\;835" "85\;698" "99\;718" "116\;575"
             "134\;523" "134\;951" "146\;591" "180\;720")
foreach(round RANGE 1 12)
  foreach(p IN LISTS problems)
    list(GET p 0 o)
    list(GET p 1 v)
    math(EXPR pick "(${round} + ${o}) % 3")
    if(pick EQUAL 0)
      string(APPEND lines "{\"op\":\"stq\",\"o\":${o},\"v\":${v}}\n")
    elseif(pick EQUAL 1)
      string(APPEND lines "{\"op\":\"bq\",\"o\":${o},\"v\":${v}}\n")
    else()
      string(APPEND lines
             "{\"op\":\"budget\",\"o\":${o},\"v\":${v},\"max_node_hours\":100.0}\n")
    endif()
  endforeach()
  string(APPEND lines "{\"op\":\"stats\"}\n")
endforeach()
file(WRITE "${session}" "${lines}")

# Per-request dispatch (--batch-max 0): repeats of a problem size must hit
# the sweep cache, and two replays must answer identically.
foreach(run 1 2)
  execute_process(COMMAND "${SERVERD}" serve --artifacts "${dir}"
                          --threads 4 --rows 300 --estimators 60
                          --batch-max 0
                  INPUT_FILE "${session}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve run ${run} failed: ${err}")
  endif()
  # Every line must be ok:true.
  string(REGEX MATCHALL "\"ok\":false" failures "${out}")
  if(failures)
    message(FATAL_ERROR "run ${run} had failed responses: ${out}")
  endif()
  string(REGEX MATCHALL "\"ok\":true" oks "${out}")
  list(LENGTH oks n_ok)
  if(NOT n_ok EQUAL 120)
    message(FATAL_ERROR "run ${run}: expected 120 ok responses, got ${n_ok}")
  endif()
  # Answers only: stats lines carry timing measurements, and cache_hit
  # depends on request interleaving — both are observability, not answers.
  string(REGEX REPLACE "[^\n]*\"op\":\"stats\"[^\n]*\n" "" answers "${out}")
  string(REGEX REPLACE "\"cache_hit\":(true|false)" "" answers "${answers}")
  set(answers_${run} "${answers}")
  # The session repeats each problem size 12x: the cache must be hitting.
  if(NOT out MATCHES "\"cache_hits\":[1-9]")
    message(FATAL_ERROR "run ${run}: no sweep-cache hits reported")
  endif()
endforeach()

if(NOT answers_1 STREQUAL answers_2)
  message(FATAL_ERROR "serving is not deterministic across runs")
endif()

# Dynamic batching (the daemon default) must not change a single answer
# byte. The whole stdin burst coalesces into a few large flushes, so the
# session's repeated problem sizes are answered from shared single-flight
# sweeps — exactly 9 sweeps for 9 problem sizes — rather than via repeat
# cache probes.
execute_process(COMMAND "${SERVERD}" serve --artifacts "${dir}"
                        --threads 4 --rows 300 --estimators 60
                INPUT_FILE "${session}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batched serve failed: ${err}")
endif()
string(REGEX MATCHALL "\"ok\":true" oks "${out}")
list(LENGTH oks n_ok)
if(NOT n_ok EQUAL 120)
  message(FATAL_ERROR "batched run: expected 120 ok responses, got ${n_ok}")
endif()
string(REGEX REPLACE "[^\n]*\"op\":\"stats\"[^\n]*\n" "" answers_b "${out}")
string(REGEX REPLACE "\"cache_hit\":(true|false)" "" answers_b "${answers_b}")
if(NOT answers_b STREQUAL answers_1)
  message(FATAL_ERROR "batched answers differ from per-request answers")
endif()
if(NOT err MATCHES "\\(0 errors\\), 9 sweeps")
  message(FATAL_ERROR "batched run did not share sweeps: ${err}")
endif()

# The artifact must have been loaded, never retrained, during serving.
execute_process(COMMAND "${SERVERD}" serve --artifacts "${dir}"
                        --serial 1
                INPUT_FILE "${session}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial serve failed: ${err}")
endif()
if(NOT out MATCHES "\"models_trained\":0")
  message(FATAL_ERROR "server retrained despite a published artifact: ${out}")
endif()

file(REMOVE_RECURSE "${dir}")
file(REMOVE "${session}")
message(STATUS "serverd session OK")
