#pragma once

/// \file random_forest.hpp
/// Random forest regression (paper §3.1 "RF"): bagged CART trees with
/// optional per-split feature subsampling; members train in parallel on
/// the thread pool with per-tree RNG streams, so results are independent
/// of scheduling.
///
/// With TreeOptions::split_mode == kHistogram the features are
/// quantile-binned once per fit and every member trains on the shared
/// FeatureBins. fit() also compiles the forest into a CompiledEnsemble, so
/// predict() serves flattened SoA batch inference (bit-identical to the
/// reference tree walk, see predict_walk).

#include <memory>
#include <string>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

class CompiledEnsemble;

/// Parameters: "n_estimators", "max_depth", "min_samples_split",
/// "min_samples_leaf", "max_features" (0 = all), "bootstrap" (0/1),
/// "split_mode" (0 exact / 1 histogram), "max_bins".
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(int n_estimators = 100,
                                 TreeOptions tree_options = {},
                                 bool bootstrap = true,
                                 std::uint64_t seed = 42);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;

  /// Compiled batch inference (CompiledEnsemble); bit-identical to
  /// predict_walk.
  std::vector<double> predict(const linalg::Matrix& x) const override;

  /// Reference tree-walk prediction path — kept as the verification
  /// baseline for the compiled engine (tests assert bitwise equality).
  std::vector<double> predict_walk(const linalg::Matrix& x) const;

  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return !trees_.empty(); }

  std::size_t tree_count() const { return trees_.size(); }

  /// Mean impurity-based feature importances over the ensemble,
  /// normalized to sum to 1.
  std::vector<double> feature_importances() const;
  const DecisionTreeRegressor& tree(std::size_t i) const { return trees_[i]; }
  const std::vector<DecisionTreeRegressor>& trees() const { return trees_; }

  /// The flattened inference engine (built on fit/load). Requires fit().
  const CompiledEnsemble& compiled() const;

  /// Reconstructs a fitted forest from its member trees (serialization
  /// loader); the result predicts bit-identically to the original.
  static RandomForestRegressor from_parts(
      std::vector<DecisionTreeRegressor> trees);

 private:
  int n_estimators_;
  TreeOptions tree_options_;
  bool bootstrap_;
  std::uint64_t seed_;
  std::vector<DecisionTreeRegressor> trees_;
  /// Built eagerly whenever trees_ changes (fit / from_parts), so the
  /// serving registry compiles exactly once per loaded artifact and
  /// concurrent predict() needs no synchronization. Immutable once set.
  std::shared_ptr<const CompiledEnsemble> compiled_;
};

}  // namespace ccpred::ml
