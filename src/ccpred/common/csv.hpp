#pragma once

/// \file csv.hpp
/// Minimal CSV table I/O for persisting generated datasets and experiment
/// results. Numeric-only payloads with a single header row — exactly the
/// shape of the paper's trace files (O, V, nodes, tilesize, time).

#include <string>
#include <vector>

namespace ccpred {

/// An in-memory CSV table: one header row and numeric data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  /// Column index for `name`; throws if absent.
  std::size_t column(const std::string& name) const;

  std::size_t num_rows() const { return rows.size(); }
  std::size_t num_cols() const { return header.size(); }
};

/// Parses CSV text. Every row must have exactly as many fields as the
/// header; all data fields must parse as doubles.
CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file; throws ccpred::Error if unreadable.
CsvTable read_csv(const std::string& path);

/// Serializes a table to CSV text (6 significant digits by default).
std::string to_csv(const CsvTable& table, int precision = 10);

/// Writes a table to `path`; throws ccpred::Error on I/O failure.
void write_csv(const CsvTable& table, const std::string& path,
               int precision = 10);

}  // namespace ccpred
