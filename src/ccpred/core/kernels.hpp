#pragma once

/// \file kernels.hpp
/// Kernel functions shared by kernel ridge regression, Gaussian processes
/// and support vector regression.

#include <string>
#include <vector>

#include "ccpred/linalg/matrix.hpp"

namespace ccpred::ml {

/// Supported kernel families.
enum class KernelType {
  kRbf,         ///< exp(-gamma * ||x - z||^2)
  kPolynomial,  ///< (gamma * <x, z> + coef0)^degree
  kLinear,      ///< <x, z>
};

/// Parsed kernel with its parameters.
struct Kernel {
  KernelType type = KernelType::kRbf;
  double gamma = 1.0;   ///< RBF width / polynomial scale
  double coef0 = 1.0;   ///< polynomial offset
  int degree = 3;       ///< polynomial degree

  /// k(x, z) for two equal-length feature rows.
  double operator()(const double* x, const double* z, std::size_t d) const;

  /// Gram matrix K(A, B): rows of A vs rows of B (column counts must match).
  linalg::Matrix gram(const linalg::Matrix& a, const linalg::Matrix& b) const;

  /// Symmetric Gram matrix K(A, A) (exploits symmetry).
  linalg::Matrix gram_symmetric(const linalg::Matrix& a) const;

  /// Human-readable name ("rbf", "poly", "linear").
  std::string name() const;
};

/// Parses "rbf" / "poly" / "linear".
KernelType kernel_type_from_name(const std::string& name);

/// Pairwise squared Euclidean distances ||a_i - a_j||^2 (symmetric,
/// zero diagonal). Entries use the same summation order as the RBF kernel,
/// so exp(-gamma * d) reproduces Kernel::gram_symmetric bit for bit — the
/// kernel-model engine computes this once per fit and derives the Gram
/// matrix of every (gamma, noise) grid candidate from it elementwise.
linalg::Matrix squared_distances(const linalg::Matrix& a);

/// Rectangular squared distances ||a_i - b_j||^2 (rows of a vs rows of b).
linalg::Matrix squared_distances(const linalg::Matrix& a,
                                 const linalg::Matrix& b);

/// K = exp(-gamma * d2) elementwise: the RBF Gram matrix from a cached
/// squared-distance matrix.
linalg::Matrix rbf_from_squared_distances(const linalg::Matrix& d2,
                                          double gamma);

/// Same map for a symmetric d2 (pairwise distances of one row set):
/// exponentiates one triangle and mirrors, halving the exp() cost.
linalg::Matrix rbf_from_squared_distances_symmetric(const linalg::Matrix& d2,
                                                    double gamma);

}  // namespace ccpred::ml
