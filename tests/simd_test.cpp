/// Contracts of the runtime-dispatched SIMD kernel tables (simd.hpp).
///
/// Every kernel family is exercised across ragged and boundary sizes —
/// below, at and above the vector width, plus the sizes where a kernel
/// changes strategy (the hist partial-histogram threshold, the bin-code
/// 64-edge register limit) — comparing the scalar and AVX2 tables
/// directly via ops_for(). Families documented bit-identical are compared
/// with ==/memcmp; the transcendental and FMA-fused families against
/// their documented tolerances. A full histogram-GB fit is compared
/// bit-for-bit across dispatch modes, and the cache-line alignment of the
/// hot containers (linalg::Matrix, AlignedVector) is pinned along with
/// serialization stability over the aligned storage.
///
/// On hosts without AVX2+FMA, ops_for(kAvx2) is the scalar table, so the
/// cross-mode comparisons degrade to tautologies rather than failures.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "ccpred/common/aligned.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/exec/arena.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/linalg/matrix.hpp"
#include "ccpred/simd/simd.hpp"

namespace {

using namespace ccpred;
using simd::Mode;

/// Ragged sizes around the 4-lane vector width and unroll boundaries.
const std::vector<std::size_t> kRaggedSizes = {0,  1,  2,  3,  4,  5,  7, 8,
                                               9,  15, 16, 17, 31, 32, 33,
                                               63, 64, 65, 100, 257};

std::mt19937_64 seeded_rng(std::uint64_t salt) {
  return std::mt19937_64(0x5eed2026ull ^ salt);
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t salt,
                                   double lo = -10.0, double hi = 10.0) {
  auto rng = seeded_rng(salt);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

TEST(SimdDispatch, ModeReportingIsConsistent) {
  const Mode active = simd::active_mode();
  EXPECT_TRUE(active == Mode::kScalar || active == Mode::kAvx2);
  EXPECT_STREQ(simd::mode_name(Mode::kScalar), "scalar");
  EXPECT_STREQ(simd::mode_name(Mode::kAvx2), "avx2");
  // ops() is the table active_mode() names.
  EXPECT_EQ(&simd::ops(), &simd::ops_for(active));
  if (!simd::avx2_available()) {
    // Without AVX2+FMA the avx2 table degrades to the scalar one and the
    // active mode can only be scalar.
    EXPECT_EQ(active, Mode::kScalar);
    EXPECT_EQ(&simd::ops_for(Mode::kAvx2), &simd::ops_for(Mode::kScalar));
  }
}

TEST(SimdDispatch, SetModeForTestingSwapsActiveTable) {
  const Mode before = simd::active_mode();
  simd::set_mode_for_testing(Mode::kScalar);
  EXPECT_EQ(simd::active_mode(), Mode::kScalar);
  EXPECT_EQ(&simd::ops(), &simd::ops_for(Mode::kScalar));
  simd::set_mode_for_testing(before);
  EXPECT_EQ(simd::active_mode(), before);
}

TEST(SimdKernels, RbfExpMapAgreesAcrossModesAndWithLibm) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  const double gamma = 0.37;
  for (const std::size_t n : kRaggedSizes) {
    auto dist2 = random_doubles(n, 101 + n, 0.0, 60.0);
    // Salt in the regimes that stress a polynomial exp: exact zero,
    // denormal-producing magnitudes, and full underflow.
    if (n > 0) dist2[0] = 0.0;
    if (n > 2) dist2[2] = 1e4;    // exp underflows to +0
    if (n > 4) dist2[4] = 1905.0; // result lands near the denormal range
    std::vector<double> out_s(n, -1.0), out_v(n, -2.0);
    sc.rbf_exp_map(dist2.data(), out_s.data(), n, gamma);
    vx.rbf_exp_map(dist2.data(), out_v.data(), n, gamma);
    for (std::size_t i = 0; i < n; ++i) {
      // The scalar table replicates the shipped std::exp path exactly.
      EXPECT_EQ(out_s[i], std::exp(-gamma * dist2[i])) << "n=" << n;
      const double ref = out_s[i];
      const double tol = 1e-12 * std::max(std::abs(ref), 1e-300);
      EXPECT_NEAR(out_v[i], ref, tol) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, SqdistRowBitIdenticalAcrossModes) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  for (const std::size_t d : {1u, 2u, 3u, 4u, 5u, 8u}) {
    for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 9u, 17u, 33u}) {
      const auto xt = random_doubles(d * n, 202 + d * 100 + n);
      const auto row = random_doubles(d, 203 + d);
      // Sub-ranges exercise unaligned starts and empty spans.
      const std::size_t ranges[][2] = {
          {0, n}, {1, n}, {0, n - 1}, {n / 2, n / 2}, {n / 3, (2 * n) / 3}};
      for (const auto& jr : ranges) {
        const std::size_t j0 = std::min(jr[0], n), j1 = std::min(jr[1], n);
        if (j0 > j1) continue;
        std::vector<double> out_s(n, -1.0), out_v(n, -1.0);
        sc.sqdist_row(xt.data(), n, d, row.data(), j0, j1, out_s.data());
        vx.sqdist_row(xt.data(), n, d, row.data(), j0, j1, out_v.data());
        EXPECT_TRUE(bitwise_equal(out_s, out_v))
            << "d=" << d << " n=" << n << " j0=" << j0 << " j1=" << j1;
      }
    }
  }
}

TEST(SimdKernels, EnsembleStepBitIdenticalAcrossModes) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  // A flattened depth-2 tree: root 0 splits f0, nodes 1/2 split f1/f2,
  // nodes 3..6 are self-absorbing leaves (+inf threshold, left = self).
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<simd::TravNode> nodes = {
      {0.5, 0, 1},  {-0.25, 1, 3}, {0.75, 2, 5}, {inf, 0, 3},
      {inf, 0, 4},  {inf, 0, 5},   {inf, 0, 6}};
  const std::size_t n_cols = 3;
  for (const std::size_t bn : kRaggedSizes) {
    const auto x = random_doubles(bn * n_cols, 303 + bn, -1.0, 1.0);
    std::vector<std::int32_t> idx_s(bn, 0), idx_v(bn, 0);
    for (int level = 0; level < 3; ++level) {  // depth + one absorb step
      sc.ensemble_step(nodes.data(), x.data(), bn, n_cols, idx_s.data());
      vx.ensemble_step(nodes.data(), x.data(), bn, n_cols, idx_v.data());
      ASSERT_EQ(idx_s, idx_v) << "bn=" << bn << " level=" << level;
    }
    // After enough levels every row must rest on a leaf.
    for (const auto i : idx_s) {
      EXPECT_GE(i, 3);
      EXPECT_LE(i, 6);
    }
  }
}

TEST(SimdKernels, HistAccumulateBitIdenticalAcrossPartialThreshold) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  // d=3 features with ragged bin counts; total_bins=16 puts the 4-way
  // partial-histogram switchover at n = 8 * 16 = 128.
  const std::size_t d = 3;
  const int bin_counts[3] = {4, 7, 5};
  const int offsets[4] = {0, 4, 11, 16};
  const std::size_t total_bins = 16;
  for (const std::size_t n :
       {1u, 2u, 5u, 100u, 127u, 128u, 129u, 300u, 1000u}) {
    auto rng = seeded_rng(404 + n);
    std::vector<std::uint16_t> codes(n * d);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t f = 0; f < d; ++f) {
        codes[r * d + f] = static_cast<std::uint16_t>(
            rng() % static_cast<std::uint64_t>(bin_counts[f]));
      }
    }
    std::vector<std::uint32_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = static_cast<std::uint32_t>(i);
    std::shuffle(rows.begin(), rows.end(), rng);
    const auto y = random_doubles(n, 405 + n);

    std::vector<double> sum_s(total_bins, 0.0), sum_v(total_bins, 0.0);
    std::vector<std::uint32_t> cnt_s(total_bins, 0), cnt_v(total_bins, 0);
    sc.hist_accumulate(codes.data(), d, offsets, rows.data(), n, y.data(),
                       sum_s.data(), cnt_s.data(), total_bins);
    vx.hist_accumulate(codes.data(), d, offsets, rows.data(), n, y.data(),
                       sum_v.data(), cnt_v.data(), total_bins);
    EXPECT_TRUE(bitwise_equal(sum_s, sum_v)) << "n=" << n;
    EXPECT_EQ(cnt_s, cnt_v) << "n=" << n;
    // Counts are order-independent; pin them against a direct tally.
    std::vector<std::uint32_t> cnt_ref(total_bins, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t f = 0; f < d; ++f) {
        cnt_ref[offsets[f] + codes[rows[i] * d + f]] += 1;
      }
    }
    EXPECT_EQ(cnt_s, cnt_ref) << "n=" << n;
  }
}

TEST(SimdKernels, HistSubtractBitIdenticalAndExact) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  for (const std::size_t m : kRaggedSizes) {
    const auto osum = random_doubles(m, 505 + m);
    auto base = random_doubles(m, 506 + m, 50.0, 100.0);
    std::vector<std::uint32_t> ocnt(m), bcnt(m);
    auto rng = seeded_rng(507 + m);
    for (std::size_t i = 0; i < m; ++i) {
      ocnt[i] = static_cast<std::uint32_t>(rng() % 50);
      bcnt[i] = 100 + static_cast<std::uint32_t>(rng() % 50);
    }
    auto sum_s = base, sum_v = base;
    auto cnt_s = bcnt, cnt_v = bcnt;
    sc.hist_subtract(sum_s.data(), cnt_s.data(), osum.data(), ocnt.data(), m);
    vx.hist_subtract(sum_v.data(), cnt_v.data(), osum.data(), ocnt.data(), m);
    EXPECT_TRUE(bitwise_equal(sum_s, sum_v)) << "m=" << m;
    EXPECT_EQ(cnt_s, cnt_v) << "m=" << m;
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(sum_s[i], base[i] - osum[i]) << "m=" << m;
      EXPECT_EQ(cnt_s[i], bcnt[i] - ocnt[i]) << "m=" << m;
    }
  }
}

TEST(SimdKernels, SplitScanAgreesAcrossModes) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  for (const int m : {1, 2, 3, 5, 13, 30, 64}) {
    for (const std::size_t min_leaf : {1u, 2u, 5u}) {
      auto rng = seeded_rng(606 + m * 10 + min_leaf);
      std::vector<double> sum(m);
      std::vector<std::uint32_t> cnt(m);
      std::size_t n = 0;
      double total = 0.0;
      for (int i = 0; i < m; ++i) {
        // Every third bin empty: empty bins must carry exactly +0.0 sums.
        cnt[i] = (i % 3 == 2) ? 0u : static_cast<std::uint32_t>(1 + rng() % 9);
        sum[i] = cnt[i] == 0
                     ? 0.0
                     : std::uniform_real_distribution<double>(-5, 5)(rng);
        n += cnt[i];
        total += sum[i];
      }
      double gain_s = 0.0, gain_v = 0.0, lsum_s = -1, lsum_v = -1;
      int bin_s = -1, bin_v = -1;
      std::size_t lcnt_s = 0, lcnt_v = 0;
      const bool imp_s = sc.split_scan(sum.data(), cnt.data(), m, total, n,
                                       min_leaf, &gain_s, &bin_s, &lsum_s,
                                       &lcnt_s);
      const bool imp_v = vx.split_scan(sum.data(), cnt.data(), m, total, n,
                                       min_leaf, &gain_v, &bin_v, &lsum_v,
                                       &lcnt_v);
      EXPECT_EQ(imp_s, imp_v) << "m=" << m;
      EXPECT_EQ(gain_s, gain_v) << "m=" << m;
      EXPECT_EQ(bin_s, bin_v) << "m=" << m;
      if (imp_s) {
        EXPECT_EQ(lsum_s, lsum_v) << "m=" << m;
        EXPECT_EQ(lcnt_s, lcnt_v) << "m=" << m;
      }
    }
  }
}

TEST(SimdKernels, BinCodesMatchLowerBoundIncludingTiesAndFallback) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  // 65 and 100 edges exceed the AVX2 16-register ladder and take the
  // documented scalar fallback; 63/64 sit right at the limit.
  for (const int m : {0, 1, 2, 3, 4, 5, 31, 32, 33, 63, 64, 65, 100}) {
    std::vector<double> edges(m);
    for (int i = 0; i < m; ++i) edges[i] = 0.5 * i - 3.0;
    for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 9u, 30u}) {
      auto x = random_doubles(n, 707 + m * 100 + n, -5.0, 0.5 * m);
      // Force ties: values exactly equal to an edge must code as "not
      // strictly greater", identically in both modes.
      if (m > 0 && n > 1) x[1] = edges[0];
      if (m > 2 && n > 3) x[3] = edges[m / 2];
      if (m > 0 && n > 5) x[5] = edges[m - 1];
      for (const std::size_t stride : {1u, 4u}) {
        std::vector<double> xs(n * stride, 1e9);
        for (std::size_t r = 0; r < n; ++r) xs[r * stride] = x[r];
        std::vector<std::uint16_t> out_s(n * stride, 9999),
            out_v(n * stride, 9999);
        sc.bin_codes(xs.data(), n, stride, edges.data(), m, out_s.data(),
                     stride);
        vx.bin_codes(xs.data(), n, stride, edges.data(), m, out_v.data(),
                     stride);
        for (std::size_t r = 0; r < n; ++r) {
          const auto ref = static_cast<std::uint16_t>(
              std::lower_bound(edges.begin(), edges.end(), x[r]) -
              edges.begin());
          EXPECT_EQ(out_s[r * stride], ref)
              << "m=" << m << " n=" << n << " r=" << r;
          EXPECT_EQ(out_v[r * stride], ref)
              << "m=" << m << " n=" << n << " r=" << r;
        }
      }
    }
  }
}

TEST(SimdKernels, CholeskyUpdatesWithinReferenceTolerance) {
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  for (const std::size_t len : kRaggedSizes) {
    const auto a = random_doubles(4, 808, -2.0, 2.0);
    const auto b = random_doubles(4, 809, -2.0, 2.0);
    const auto y0 = random_doubles(len, 810 + len);
    const auto y1 = random_doubles(len, 811 + len);
    const auto y2 = random_doubles(len, 812 + len);
    const auto y3 = random_doubles(len, 813 + len);
    const auto base_a = random_doubles(len, 814 + len);
    const auto base_b = random_doubles(len, 815 + len);

    auto ya_s = base_a, yb_s = base_b, ya_v = base_a, yb_v = base_b;
    sc.update2x4(ya_s.data(), yb_s.data(), a.data(), b.data(), y0.data(),
                 y1.data(), y2.data(), y3.data(), len);
    vx.update2x4(ya_v.data(), yb_v.data(), a.data(), b.data(), y0.data(),
                 y1.data(), y2.data(), y3.data(), len);
    auto yr_s = base_a, yr_v = base_a;
    sc.update1x4(yr_s.data(), a.data(), y0.data(), y1.data(), y2.data(),
                 y3.data(), len);
    vx.update1x4(yr_v.data(), a.data(), y0.data(), y1.data(), y2.data(),
                 y3.data(), len);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(ya_v[i], ya_s[i], 1e-9) << "len=" << len;
      EXPECT_NEAR(yb_v[i], yb_s[i], 1e-9) << "len=" << len;
      EXPECT_NEAR(yr_v[i], yr_s[i], 1e-9) << "len=" << len;
    }
  }
}

TEST(SimdModel, HistogramGbFitBitIdenticalAcrossModes) {
  if (!simd::avx2_available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  // The histogram engine touches bin_codes, hist_accumulate/subtract,
  // split_scan and ensemble_step — every one contracted bit-identical —
  // so a whole fit+predict must agree across dispatch modes bit-for-bit.
  const std::size_t n = 400, d = 4;
  linalg::Matrix x(n, d);
  auto rng = seeded_rng(909);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) x(r, c) = dist(rng);
    y[r] = std::sin(x(r, 0)) + 0.5 * x(r, 1) * x(r, 2) + 0.1 * dist(rng);
  }
  ml::TreeOptions opt;
  opt.max_depth = 6;
  opt.split_mode = ml::SplitMode::kHistogram;
  opt.max_bins = 32;

  const Mode before = simd::active_mode();
  simd::set_mode_for_testing(Mode::kScalar);
  ml::GradientBoostingRegressor gb_s(25, 0.1, opt);
  gb_s.fit(x, y);
  const auto pred_s = gb_s.predict(x);

  simd::set_mode_for_testing(Mode::kAvx2);
  ml::GradientBoostingRegressor gb_v(25, 0.1, opt);
  gb_v.fit(x, y);
  const auto pred_v = gb_v.predict(x);
  simd::set_mode_for_testing(before);

  EXPECT_TRUE(bitwise_equal(pred_s, pred_v));
  // The fitted stage structure must match too, not just the predictions.
  EXPECT_EQ(ml::serialize_gb(gb_s), ml::serialize_gb(gb_v));
}

TEST(AlignedStorage, MatrixDataIsCacheLineAligned) {
  const auto aligned = [](const double* p) {
    return reinterpret_cast<std::uintptr_t>(p) % kCacheLineAlign == 0;
  };
  linalg::Matrix m(5, 7, 1.5);
  EXPECT_TRUE(aligned(m.data()));

  // Growth through append_rows (including a reallocation) stays aligned.
  linalg::Matrix grown(1, 7, 0.0);
  for (int i = 0; i < 50; ++i) grown.append_rows(m);
  EXPECT_TRUE(aligned(grown.data()));
  EXPECT_EQ(grown.rows(), 1u + 50u * 5u);

  // Moves and copies land on aligned storage as well.
  linalg::Matrix moved(std::move(grown));
  EXPECT_TRUE(aligned(moved.data()));
  linalg::Matrix copied = moved;
  EXPECT_TRUE(aligned(copied.data()));
  EXPECT_TRUE(aligned(linalg::Matrix::identity(9).data()));
}

TEST(AlignedStorage, AlignedVectorStaysAlignedAcrossGrowth) {
  // The allocator behind Matrix and CompiledEnsemble's SoA arrays: every
  // allocation it hands out is 64-byte aligned, across reallocations.
  AlignedVector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(static_cast<double>(i));
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineAlign,
              0u);
  }
  AlignedVector<simd::TravNode> nodes(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(nodes.data()) % kCacheLineAlign,
            0u);
}

TEST(AlignedStorage, ArenaBuffersSatisfyKernelAlignment) {
  // The executor layer's Arena feeds SIMD kernels directly (histogram
  // scratch in fit_binned, batch buffers in simulate_batch): every
  // allocation must be at least cache-line aligned, and kernels must agree
  // bit-for-bit across modes on arena-backed memory. exec_test checks the
  // same property from the arena side; this pins it at the kernel level.
  exec::Arena arena;
  const auto& sc = simd::ops_for(Mode::kScalar);
  const auto& vx = simd::ops_for(Mode::kAvx2);
  for (const std::size_t n : kRaggedSizes) {
    double* x = arena.alloc_array<double>(n);
    std::uint16_t* out_s = arena.alloc_array<std::uint16_t>(n);
    std::uint16_t* out_v = arena.alloc_array<std::uint16_t>(n);
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(x) % kCacheLineAlign, 0u);
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(out_s) % kCacheLineAlign, 0u);
    for (std::size_t r = 0; r < n; ++r) {
      x[r] = 0.25 * static_cast<double>(r) - 2.0;
    }
    std::vector<double> edges = {-3.0, -1.0, 0.0, 0.5, 2.5};
    sc.bin_codes(x, n, 1, edges.data(), static_cast<int>(edges.size()),
                 out_s, 1);
    vx.bin_codes(x, n, 1, edges.data(), static_cast<int>(edges.size()),
                 out_v, 1);
    for (std::size_t r = 0; r < n; ++r) {
      ASSERT_EQ(out_s[r], out_v[r]) << "n=" << n << " r=" << r;
    }
    arena.reset();
  }
}

TEST(AlignedStorage, SerializationBytesUnchangedByAlignedStorage) {
  // Regression for the aligned-allocator change: serialization reads only
  // values, so bytes must be stable through a round trip and the restored
  // model must predict bit-identically.
  const std::size_t n = 200, d = 4;
  linalg::Matrix x(n, d);
  auto rng = seeded_rng(1010);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) x(r, c) = dist(rng);
    y[r] = x(r, 0) * 3.0 - x(r, 3) + dist(rng);
  }
  ml::TreeOptions opt;
  opt.max_depth = 5;
  opt.split_mode = ml::SplitMode::kHistogram;
  opt.max_bins = 24;
  ml::GradientBoostingRegressor gb(15, 0.1, opt);
  gb.fit(x, y);

  const std::string text = ml::serialize_gb(gb);
  const auto restored = ml::deserialize_gb(text);
  EXPECT_EQ(ml::serialize_gb(restored), text);
  EXPECT_TRUE(bitwise_equal(gb.predict(x), restored.predict(x)));
}
