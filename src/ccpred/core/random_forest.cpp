#include "ccpred/core/random_forest.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/core/compiled_ensemble.hpp"
#include "ccpred/exec/task_scope.hpp"

namespace ccpred::ml {

RandomForestRegressor::RandomForestRegressor(int n_estimators,
                                             TreeOptions tree_options,
                                             bool bootstrap,
                                             std::uint64_t seed)
    : n_estimators_(n_estimators),
      tree_options_(tree_options),
      bootstrap_(bootstrap),
      seed_(seed) {
  CCPRED_CHECK_MSG(n_estimators > 0, "n_estimators must be > 0");
}

void RandomForestRegressor::fit(const linalg::Matrix& x,
                                const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");

  trees_.clear();
  compiled_.reset();
  const auto n = static_cast<std::size_t>(n_estimators_);
  trees_.reserve(n);
  // Pre-derive per-tree seeds so parallel training is deterministic.
  Rng seeder(seed_);
  std::vector<std::uint64_t> tree_seeds(n);
  for (auto& s : tree_seeds) s = seeder.next();

  for (std::size_t t = 0; t < n; ++t) {
    TreeOptions opt = tree_options_;
    opt.seed = tree_seeds[t] ^ 0x5bf03635ULL;
    trees_.emplace_back(opt);
  }

  // Histogram mode: bin the features once, shared read-only by all members.
  const bool histogram = tree_options_.split_mode == SplitMode::kHistogram;
  FeatureBins bins;
  std::vector<std::size_t> all_rows;
  if (histogram) {
    bins = FeatureBins::build(x, tree_options_.max_bins);
    if (!bootstrap_) {
      all_rows.resize(x.rows());
      for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
    }
  }

  // Structured fan-out with a per-chunk arena: every member tree's fit
  // scratch bump-allocates from its chunk's reused arena instead of the
  // heap. Per-tree randomness derives only from tree_seeds[t], so the
  // result is independent of chunking and iteration order (the determinism
  // suite shuffles this loop and asserts bit-identical forests).
  exec::TaskScope scope;
  scope.parallel_for(0, n, [&](std::size_t t, exec::Arena& arena) {
    Rng rng(tree_seeds[t]);
    if (histogram) {
      trees_[t].fit_binned(
          bins, y, bootstrap_ ? rng.bootstrap_indices(x.rows()) : all_rows,
          nullptr, &arena);
    } else if (bootstrap_) {
      trees_[t].fit_rows(x, y, rng.bootstrap_indices(x.rows()));
    } else {
      trees_[t].fit(x, y);
    }
  });
  compiled_ =
      std::make_shared<const CompiledEnsemble>(CompiledEnsemble::compile(*this));
}

const CompiledEnsemble& RandomForestRegressor::compiled() const {
  CCPRED_CHECK_MSG(is_fitted() && compiled_ != nullptr,
                   "RandomForestRegressor::compiled before fit");
  return *compiled_;
}

std::vector<double> RandomForestRegressor::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "RandomForestRegressor::predict before fit");
  return compiled_->predict_batch(x);
}

std::vector<double> RandomForestRegressor::predict_walk(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "RandomForestRegressor::predict before fit");
  std::vector<double> out(x.rows(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_ptr(i);
    double s = 0.0;
    for (const auto& tree : trees_) s += tree.predict_row(row);
    out[i] = s / static_cast<double>(trees_.size());
  }
  return out;
}

std::vector<double> RandomForestRegressor::feature_importances() const {
  CCPRED_CHECK_MSG(is_fitted(), "feature_importances before fit");
  std::vector<double> out;
  for (const auto& tree : trees_) {
    const auto imp = tree.feature_importances();
    if (out.empty()) out.assign(imp.size(), 0.0);
    for (std::size_t c = 0; c < imp.size(); ++c) out[c] += imp[c];
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (auto& v : out) v /= total;
  }
  return out;
}

RandomForestRegressor RandomForestRegressor::from_parts(
    std::vector<DecisionTreeRegressor> trees) {
  CCPRED_CHECK_MSG(!trees.empty(), "from_parts needs at least one tree");
  RandomForestRegressor forest(static_cast<int>(trees.size()));
  forest.trees_ = std::move(trees);
  forest.compiled_ = std::make_shared<const CompiledEnsemble>(
      CompiledEnsemble::compile(forest));
  return forest;
}

std::unique_ptr<Regressor> RandomForestRegressor::clone() const {
  return std::make_unique<RandomForestRegressor>(n_estimators_, tree_options_,
                                                 bootstrap_, seed_);
}

const std::string& RandomForestRegressor::name() const {
  static const std::string n = "RF";
  return n;
}

void RandomForestRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    const int iv = static_cast<int>(std::lround(value));
    if (key == "n_estimators") {
      CCPRED_CHECK_MSG(iv > 0, "n_estimators must be > 0");
      n_estimators_ = iv;
    } else if (key == "bootstrap") {
      bootstrap_ = value != 0.0;
    } else if (key == "max_depth" || key == "min_samples_split" ||
               key == "min_samples_leaf" || key == "max_features" ||
               key == "split_mode" || key == "max_bins") {
      DecisionTreeRegressor probe(tree_options_);
      probe.set_params({{key, value}});
      tree_options_ = probe.options();
    } else {
      throw Error("RandomForestRegressor: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
