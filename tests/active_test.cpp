// Tests for the active-learning subsystem: pool bookkeeping, the three
// query strategies and the Algorithm 1/2 loop.

#include <gtest/gtest.h>

#include <set>

#include "ccpred/active/loop.hpp"
#include "ccpred/active/pool.hpp"
#include "ccpred/active/expected_model_change.hpp"
#include "ccpred/active/query_by_committee.hpp"
#include "ccpred/active/random_sampling.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/core/bayesian_ridge.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "test_util.hpp"

namespace ccpred::al {
namespace {

data::Dataset small_pool_data(std::size_t n = 120) {
  data::Dataset d;
  Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    const int nodes = static_cast<int>(rng.uniform_int(5, 200));
    const int tile = static_cast<int>(rng.uniform_int(40, 160));
    d.add({100, 800, nodes, tile}, 10.0 + 5000.0 / nodes + 0.1 * tile);
  }
  return d;
}

// ---------- pool ----------

TEST(PoolTest, InitialSplitSizes) {
  const auto d = small_pool_data();
  Rng rng(2);
  const Pool pool(d, 30, rng);
  EXPECT_EQ(pool.labeled().size(), 30u);
  EXPECT_EQ(pool.unlabeled().size(), 90u);
}

TEST(PoolTest, LabeledAndUnlabeledDisjoint) {
  const auto d = small_pool_data();
  Rng rng(3);
  const Pool pool(d, 40, rng);
  std::set<std::size_t> all(pool.labeled().begin(), pool.labeled().end());
  for (auto i : pool.unlabeled()) EXPECT_TRUE(all.insert(i).second);
  EXPECT_EQ(all.size(), d.size());
}

TEST(PoolTest, LabelPositionsMovesRows) {
  const auto d = small_pool_data();
  Rng rng(4);
  Pool pool(d, 10, rng);
  const auto moved_row = pool.unlabeled()[5];
  pool.label_positions({5, 0, 7});
  EXPECT_EQ(pool.labeled().size(), 13u);
  EXPECT_EQ(pool.unlabeled().size(), 107u);
  EXPECT_NE(std::find(pool.labeled().begin(), pool.labeled().end(),
                      moved_row),
            pool.labeled().end());
}

TEST(PoolTest, InvalidPositionsThrow) {
  const auto d = small_pool_data();
  Rng rng(5);
  Pool pool(d, 10, rng);
  EXPECT_THROW(pool.label_positions({3, 3}), Error);
  EXPECT_THROW(pool.label_positions({1000}), Error);
  EXPECT_THROW(Pool(d, 0, rng), Error);
  EXPECT_THROW(Pool(d, d.size() + 1, rng), Error);
}

TEST(PoolTest, MaterializedViewsMatchIndices) {
  const auto d = small_pool_data();
  Rng rng(6);
  const Pool pool(d, 25, rng);
  const auto x = pool.labeled_features();
  const auto y = pool.labeled_targets();
  ASSERT_EQ(x.rows(), 25u);
  ASSERT_EQ(y.size(), 25u);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(y[i], d.target(pool.labeled()[i]));
    EXPECT_DOUBLE_EQ(x(i, data::kFeatNodes),
                     d.config(pool.labeled()[i]).nodes);
  }
}

// ---------- strategies ----------

TEST(RandomSamplingTest, UniquePositionsInRange) {
  const auto d = small_pool_data();
  Rng rng(7);
  Pool pool(d, 20, rng);
  ml::DecisionTreeRegressor model;
  model.fit(pool.labeled_features(), pool.labeled_targets());
  RandomSampling rs;
  const auto sel = rs.select(pool, model, 15, rng);
  EXPECT_EQ(sel.size(), 15u);
  std::set<std::size_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 15u);
  for (auto p : sel) EXPECT_LT(p, pool.unlabeled().size());
}

TEST(RandomSamplingTest, ClampsToPoolSize) {
  const auto d = small_pool_data(30);
  Rng rng(8);
  Pool pool(d, 25, rng);
  ml::DecisionTreeRegressor model;
  model.fit(pool.labeled_features(), pool.labeled_targets());
  RandomSampling rs;
  EXPECT_EQ(rs.select(pool, model, 50, rng).size(), 5u);
}

TEST(UncertaintySamplingTest, RequiresUncertaintyModel) {
  const auto d = small_pool_data();
  Rng rng(9);
  Pool pool(d, 20, rng);
  ml::GradientBoostingRegressor gb(20);
  gb.fit(pool.labeled_features(), pool.labeled_targets());
  UncertaintySampling us;
  EXPECT_THROW(us.select(pool, gb, 5, rng), Error);
}

TEST(UncertaintySamplingTest, PicksHighestStdPositions) {
  const auto d = small_pool_data();
  Rng rng(10);
  Pool pool(d, 30, rng);
  ml::GaussianProcessRegression gp(0.5, 1e-4, false);
  gp.fit(pool.labeled_features(), pool.labeled_targets());
  UncertaintySampling us;
  const auto sel = us.select(pool, gp, 10, rng);
  ASSERT_EQ(sel.size(), 10u);
  // Verify the selected positions really have the largest stds.
  std::vector<double> mean;
  std::vector<double> std;
  gp.predict_with_std(pool.unlabeled_features(), mean, std);
  std::set<std::size_t> chosen(sel.begin(), sel.end());
  double min_chosen = 1e300;
  for (auto p : sel) min_chosen = std::min(min_chosen, std[p]);
  for (std::size_t p = 0; p < std.size(); ++p) {
    if (!chosen.count(p)) EXPECT_LE(std[p], min_chosen + 1e-12);
  }
}

TEST(QueryByCommitteeTest, SelectsUniquePositions) {
  const auto d = small_pool_data();
  Rng rng(11);
  Pool pool(d, 30, rng);
  const ml::GradientBoostingRegressor proto(30, 0.1,
                                            ml::TreeOptions{.max_depth = 4});
  ml::GradientBoostingRegressor fitted = proto;
  fitted.fit(pool.labeled_features(), pool.labeled_targets());
  QueryByCommittee qc(proto, 4);
  const auto sel = qc.select(pool, fitted, 12, rng);
  EXPECT_EQ(sel.size(), 12u);
  std::set<std::size_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 12u);
  EXPECT_EQ(qc.committee_size(), 4);
}

TEST(QueryByCommitteeTest, NeedsAtLeastTwoMembers) {
  const ml::DecisionTreeRegressor proto;
  EXPECT_THROW(QueryByCommittee(proto, 1), Error);
}

TEST(StrategyNamesMatchPaper, Abbreviations) {
  const ml::DecisionTreeRegressor proto;
  EXPECT_EQ(RandomSampling().name(), "RS");
  EXPECT_EQ(UncertaintySampling().name(), "US");
  EXPECT_EQ(QueryByCommittee(proto, 3).name(), "QC");
  EXPECT_EQ(ExpectedModelChange().name(), "EMC");
}

TEST(ExpectedModelChangeTest, RequiresUncertaintyModel) {
  const auto d = small_pool_data();
  Rng rng(21);
  Pool pool(d, 20, rng);
  ml::GradientBoostingRegressor gb(20);
  gb.fit(pool.labeled_features(), pool.labeled_targets());
  ExpectedModelChange emc;
  EXPECT_THROW(emc.select(pool, gb, 5, rng), Error);
}

TEST(ExpectedModelChangeTest, SelectsUniquePositionsInRange) {
  const auto d = small_pool_data();
  Rng rng(22);
  Pool pool(d, 30, rng);
  ml::GaussianProcessRegression gp(0.5, 1e-4, false);
  gp.fit(pool.labeled_features(), pool.labeled_targets());
  ExpectedModelChange emc;
  const auto sel = emc.select(pool, gp, 10, rng);
  ASSERT_EQ(sel.size(), 10u);
  std::set<std::size_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (auto p : sel) EXPECT_LT(p, pool.unlabeled().size());
}

TEST(ExpectedModelChangeTest, PrefersHighLeverageOverPlainUncertainty) {
  // Two unlabeled points with equal predictive std: EMC must rank the one
  // farther from the labeled centroid first. Build a labeled cloud around
  // the origin and two symmetric-but-different-radius probes.
  data::Dataset d;
  Rng noise(23);
  for (int i = 0; i < 60; ++i) {
    d.add({100, 800, 100 + (i % 5), 100}, 50.0 + noise.uniform(-1.0, 1.0));
  }
  d.add({100, 800, 104, 100}, 50.0);   // near centroid
  d.add({100, 800, 400, 100}, 50.0);   // far from centroid (high leverage)
  Rng rng(24);
  Pool pool(d, 1, rng);
  // Label every cloud row so only the two probes can remain unlabeled.
  std::vector<std::size_t> cloud_positions;
  for (std::size_t i = 0; i < pool.unlabeled().size(); ++i) {
    if (pool.unlabeled()[i] < 60) cloud_positions.push_back(i);
  }
  pool.label_positions(cloud_positions);
  // (If the single random initial label hit a probe, skip the assertion.)
  if (pool.unlabeled().size() == 2) {
    ml::BayesianRidgeRegression br;
    br.fit(pool.labeled_features(), pool.labeled_targets());
    ExpectedModelChange emc;
    const auto sel = emc.select(pool, br, 1, rng);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(d.config(pool.unlabeled()[sel[0]]).nodes, 400);
  }
}

TEST(ExpectedModelChangeTest, WorksInsideTheLoop) {
  const auto d = small_pool_data(200);
  Rng rng(25);
  data::Dataset test;
  for (int i = 0; i < 30; ++i) {
    test.add({100, 800, 10 + 5 * i, 100}, 10.0 + 5000.0 / (10 + 5 * i));
  }
  ExpectedModelChange emc;
  const ml::GaussianProcessRegression gp(0.5, 1e-4, false);
  ActiveLearningOptions opt;
  opt.n_initial = 20;
  opt.query_size = 20;
  opt.n_queries = 4;
  const auto result = run_active_learning(d, test, gp, emc, opt);
  EXPECT_EQ(result.rounds.size(), 4u);
  EXPECT_EQ(result.strategy, "EMC");
}

// ---------- loop ----------

class LoopTest : public ::testing::Test {
 protected:
  void SetUp() override { tt_ = test::small_campaign(400); }
  std::optional<data::TrainTest> tt_;
};

TEST_F(LoopTest, RecordsOneRoundPerQuery) {
  RandomSampling rs;
  const ml::DecisionTreeRegressor proto(ml::TreeOptions{.max_depth = 8});
  ActiveLearningOptions opt;
  opt.n_initial = 30;
  opt.query_size = 30;
  opt.n_queries = 5;
  const auto result =
      run_active_learning(tt_->train, tt_->test, proto, rs, opt);
  ASSERT_EQ(result.rounds.size(), 5u);
  for (std::size_t r = 0; r < result.rounds.size(); ++r) {
    EXPECT_EQ(result.rounds[r].labeled_count, 30 + 30 * r);
    EXPECT_FALSE(result.rounds[r].goal_losses.has_value());
  }
  EXPECT_EQ(result.strategy, "RS");
  EXPECT_EQ(result.model, "DT");
}

TEST_F(LoopTest, GoalRoundsCarryLosses) {
  RandomSampling rs;
  const ml::DecisionTreeRegressor proto(ml::TreeOptions{.max_depth = 8});
  ActiveLearningOptions opt;
  opt.n_initial = 40;
  opt.query_size = 40;
  opt.n_queries = 3;
  opt.goal = guide::Objective::kShortestTime;
  const auto result =
      run_active_learning(tt_->train, tt_->test, proto, rs, opt);
  for (const auto& round : result.rounds) {
    ASSERT_TRUE(round.goal_losses.has_value());
    EXPECT_GE(round.goal_losses->mape, 0.0);
  }
}

TEST_F(LoopTest, DeterministicGivenSeed) {
  RandomSampling rs;
  const ml::DecisionTreeRegressor proto(ml::TreeOptions{.max_depth = 6});
  ActiveLearningOptions opt;
  opt.n_initial = 30;
  opt.query_size = 20;
  opt.n_queries = 4;
  const auto a = run_active_learning(tt_->train, tt_->test, proto, rs, opt);
  const auto b = run_active_learning(tt_->train, tt_->test, proto, rs, opt);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.rounds[r].train_scores.r2, b.rounds[r].train_scores.r2);
  }
}

TEST_F(LoopTest, StopsWhenPoolExhausted) {
  RandomSampling rs;
  const ml::DecisionTreeRegressor proto(ml::TreeOptions{.max_depth = 4});
  ActiveLearningOptions opt;
  opt.n_initial = 250;
  opt.query_size = 100;
  opt.n_queries = 50;  // would need 5000 rows; pool has ~300
  const auto result =
      run_active_learning(tt_->train, tt_->test, proto, rs, opt);
  EXPECT_LT(result.rounds.size(), 50u);
  EXPECT_LE(result.rounds.back().labeled_count, tt_->train.size());
}

TEST_F(LoopTest, LearningImprovesTrainFit) {
  RandomSampling rs;
  const ml::GradientBoostingRegressor proto(
      80, 0.1, ml::TreeOptions{.max_depth = 6});
  ActiveLearningOptions opt;
  opt.n_initial = 30;
  opt.query_size = 60;
  opt.n_queries = 4;
  const auto result =
      run_active_learning(tt_->train, tt_->test, proto, rs, opt);
  EXPECT_GT(result.rounds.back().train_scores.r2,
            result.rounds.front().train_scores.r2);
}

TEST_F(LoopTest, InvalidOptionsThrow) {
  RandomSampling rs;
  const ml::DecisionTreeRegressor proto;
  ActiveLearningOptions opt;
  opt.n_queries = 0;
  EXPECT_THROW(run_active_learning(tt_->train, tt_->test, proto, rs, opt),
               Error);
  ActiveLearningOptions goal_opt;
  goal_opt.goal = guide::Objective::kNodeHours;
  EXPECT_THROW(
      run_active_learning(tt_->train, data::Dataset(), proto, rs, goal_opt),
      Error);
}

}  // namespace
}  // namespace ccpred::al
