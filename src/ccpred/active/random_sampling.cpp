#include "ccpred/active/random_sampling.hpp"

#include <algorithm>

namespace ccpred::al {

const std::string& RandomSampling::name() const {
  static const std::string n = "RS";
  return n;
}

std::vector<std::size_t> RandomSampling::select(
    const Pool& pool, const ml::Regressor& /*fitted_model*/,
    std::size_t query_size, Rng& rng) {
  const std::size_t k = std::min(query_size, pool.unlabeled().size());
  return rng.sample_without_replacement(pool.unlabeled().size(), k);
}

}  // namespace ccpred::al
