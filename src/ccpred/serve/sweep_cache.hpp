#pragma once

/// \file sweep_cache.hpp
/// Sharded LRU cache of completed advisor sweeps. A sweep for
/// (machine, model-version, O, V) answers every STQ/BQ/budget question
/// about that problem size, so caching it turns repeat questions — the
/// common case for a guidance service — into a hash lookup. Keys include
/// the model version: a hot-reloaded model invalidates by construction.
///
/// The sharded machinery itself is the executor layer's ShardedMemoCache;
/// this facade keeps the serving vocabulary (SweepKey, invalidate,
/// FaultInjector arming) and derives its default shard count from
/// exec::kDefaultShards instead of a private constant.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ccpred/common/lru_cache.hpp"
#include "ccpred/exec/sharded_cache.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/serve/fault_injector.hpp"

namespace ccpred::serve {

/// Identity of one cached sweep.
struct SweepKey {
  std::string machine;
  std::string kind;             ///< model kind ("gb" | "rf")
  std::uint64_t model_version = 0;
  int o = 0;
  int v = 0;

  friend bool operator==(const SweepKey&, const SweepKey&) = default;
};

struct SweepKeyHash {
  std::size_t operator()(const SweepKey& k) const {
    std::size_t h = std::hash<std::string>()(k.machine);
    h = h * 1000003u ^ std::hash<std::string>()(k.kind);
    h = h * 1000003u ^ std::hash<std::uint64_t>()(k.model_version);
    h = h * 1000003u ^ std::hash<int>()(k.o);
    h = h * 1000003u ^ std::hash<int>()(k.v);
    return h;
  }
};

/// Immutable cached sweep (the kShortestTime recommendation, whose `sweep`
/// holds every feasible point — other objectives re-derive from it).
using SweepPtr = std::shared_ptr<const guide::Recommendation>;

/// Thread-safe sharded LRU over exec::ShardedMemoCache: each shard is an
/// LruCache under its own mutex; keys are distributed by hash, so
/// concurrent lookups for different problems rarely contend.
class SweepCache {
 public:
  /// `capacity` is total across shards (each shard gets its even share,
  /// at least 1). The shard count is clamped to the capacity so every
  /// shard holds at least one sweep.
  explicit SweepCache(std::size_t capacity,
                      std::size_t shards = exec::kDefaultShards);

  /// Returns the cached sweep or nullptr; refreshes LRU recency on hit.
  SweepPtr get(const SweepKey& key);

  /// Batch probe for the serving layer's batch lane: one get() per key,
  /// results aligned with `keys` (nullptr on miss). Returns the hit count.
  std::size_t get_batch(const std::vector<SweepKey>& keys,
                        std::vector<SweepPtr>* out);

  /// Inserts (or refreshes) a sweep.
  void put(const SweepKey& key, SweepPtr sweep);

  /// Drops every cached sweep for (machine, kind) across all shards —
  /// called after an online-model promotion so sweeps computed under the
  /// replaced version stop occupying cache slots. Returns the number of
  /// entries dropped (not counted as evictions).
  std::size_t invalidate(const std::string& machine, const std::string& kind);

  /// Counters aggregated over all shards.
  CacheCounters counters() const;

  /// Cached sweeps right now.
  std::size_t size() const;

  std::size_t shard_count() const { return cache_.shard_count(); }

  /// Arms the kCacheShard injection point: get()/put() hold the shard
  /// mutex for the injected extra time, simulating shard contention.
  /// The injector must outlive the cache; pass nullptr to disarm.
  void set_fault_injector(FaultInjector* fault);

 private:
  exec::ShardedMemoCache<SweepKey, SweepPtr, SweepKeyHash> cache_;
};

}  // namespace ccpred::serve
