#pragma once

/// \file solve.hpp
/// High-level solver entry points combining the factorizations.

#include <vector>

#include "ccpred/linalg/cholesky.hpp"
#include "ccpred/linalg/matrix.hpp"

namespace ccpred::linalg {

/// Solves the ridge system (A^T A + lambda I) x = A^T b via Cholesky on the
/// regularized Gram matrix. lambda must be >= 0; with lambda == 0 this is
/// the normal-equations least-squares solution.
std::vector<double> ridge_solve(const Matrix& a, const std::vector<double>& b,
                                double lambda);

/// Solves the SPD system K x = b, adding `jitter` to the diagonal if the
/// initial factorization fails (retry doubling jitter up to `max_tries`).
/// Returns the solution; throws if it never becomes positive definite.
std::vector<double> spd_solve_with_jitter(Matrix k, const std::vector<double>& b,
                                          double jitter = 1e-10,
                                          int max_tries = 8);

/// Factors the SPD matrix under the same jitter-retry policy as
/// spd_solve_with_jitter and returns the factorization, so callers that
/// refit repeatedly (kernel ridge grid search, GP updates) can keep the
/// factor instead of discarding it after one solve.
Cholesky spd_factor_with_jitter(Matrix k, double jitter = 1e-10,
                                int max_tries = 8);

}  // namespace ccpred::linalg
