#pragma once

/// \file compiled_ensemble.hpp
/// Flattened tree-ensemble inference engine.
///
/// A fitted GB/RF model stores each member tree as its own node vector;
/// the reference predict path pointer-chases tree-by-tree per row, which
/// streams the whole ensemble's scattered working set once per row.
/// CompiledEnsemble flattens all trees into contiguous SoA arrays
/// (feature / threshold / left / right / value, child indices rebased to
/// the flat array) and predicts row-blocks tree-major: for each tree, all
/// rows of the block descend while that tree's nodes are hot in cache.
///
/// Predictions are bit-identical to the tree-walk path: per row, leaf
/// values accumulate in the same tree order with the same comparisons, and
/// the final transform replicates the walk's expression exactly
/// (GB: bias + rate * sum; RF: sum / tree_count).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ccpred/common/aligned.hpp"
#include "ccpred/linalg/matrix.hpp"
#include "ccpred/simd/simd.hpp"

namespace ccpred::ml {

class GradientBoostingRegressor;
class RandomForestRegressor;
class DecisionTreeRegressor;

class CompiledEnsemble {
 public:
  /// Flattens a fitted gradient-boosting model
  /// (out = base_prediction + learning_rate * sum of stage leaves).
  static CompiledEnsemble compile(const GradientBoostingRegressor& model);

  /// Flattens a fitted random forest (out = sum of tree leaves / trees).
  static CompiledEnsemble compile(const RandomForestRegressor& model);

  /// Batch prediction over every row of `x` (cols = trained feature count).
  std::vector<double> predict_batch(const linalg::Matrix& x) const;

  /// Raw-pointer variant: `x` is row-major n_rows x n_cols, `out` has room
  /// for n_rows values.
  void predict_batch(const double* x, std::size_t n_rows, std::size_t n_cols,
                     double* out) const;

  /// Single-row prediction (same result as predict_batch on one row).
  double predict_row(const double* row) const;

  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return feature_.size(); }

 private:
  static CompiledEnsemble flatten(const std::vector<DecisionTreeRegressor>& trees);

  /// One traversal node, packed to 16 bytes (4 per cache line) so each
  /// descent step costs three loads: the node pair, and one row value.
  /// Breadth-first numbering makes siblings adjacent, so only the left
  /// child is stored and right = left + 1. Leaves are self-absorbing
  /// (threshold +inf, left = self), so the batch kernel runs a fixed
  /// per-tree step count with no per-row termination branch — the
  /// independent chases across a row block overlap in the memory pipeline
  /// (or, in the AVX2 dispatch mode, gather four rows per instruction).
  /// The +inf leaf compare goes wrong only for NaN feature values;
  /// predict_batch pre-scans for NaN and falls back to predict_row (which
  /// terminates on feature_ and is NaN-exact) for such batches. The layout
  /// is simd::TravNode so the level step dispatches without conversion.
  using TravNode = simd::TravNode;

  // Nodes of all trees, renumbered breadth-first per tree so siblings are
  // adjacent and the heavily-shared top levels pack densely. Cache-line
  // aligned: the AVX2 level step gathers from nodes_, and alignment keeps
  // each 16-byte node inside one line.
  AlignedVector<TravNode> nodes_;
  std::vector<std::int32_t> feature_;  ///< -1 for leaves (predict_row stop)
  AlignedVector<double> value_;        ///< leaf payload (0 for internal)
  std::vector<std::int32_t> roots_;    ///< root node index per tree
  std::vector<std::int32_t> depths_;   ///< descent steps per tree

  // Final transform: mean_ ? acc / tree_count : bias_ + scale_ * acc.
  double bias_ = 0.0;
  double scale_ = 1.0;
  bool mean_ = false;
};

}  // namespace ccpred::ml
