#pragma once

/// \file cross_validation.hpp
/// K-fold cross validation, the scoring backbone of all three
/// hyper-parameter search strategies.

#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// Objective maximized during model selection.
enum class Scoring {
  kR2,       ///< coefficient of determination (higher better)
  kNegMae,   ///< negative mean absolute error
  kNegMape,  ///< negative mean absolute percentage error
};

/// Scalar value of a Scores bundle under a Scoring (always maximize).
double scoring_value(const Scores& scores, Scoring scoring);

/// Row-index folds for k-fold CV (shuffled once with `rng`). Every row
/// appears in exactly one validation fold; folds differ in size by <= 1.
std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, int folds,
                                                    Rng& rng);

/// Result of one cross-validation run: per-fold and mean metrics.
struct CvResult {
  std::vector<Scores> fold_scores;
  Scores mean;
};

/// K-fold cross-validation of `prototype` (cloned per fold) on (x, y).
/// Folds train in parallel on the thread pool.
CvResult cross_validate(const Regressor& prototype, const linalg::Matrix& x,
                        const std::vector<double>& y, int folds, Rng& rng);

}  // namespace ccpred::ml
