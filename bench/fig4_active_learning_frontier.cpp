/// Reproduces paper Figure 4: Frontier active-learning curves.

#include "al_figures.hpp"

int main() { return ccpred::bench::run_al_curves("frontier"); }
