#pragma once

/// \file test_util.hpp
/// Shared fixtures for the ccpred test suite: synthetic regression data
/// and a small, fast CCSD campaign.

#include <cmath>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/split.hpp"
#include "ccpred/linalg/matrix.hpp"

namespace ccpred::test {

/// Synthetic regression problem y = f(x) + noise on d uniform features.
struct Synthetic {
  linalg::Matrix x;
  std::vector<double> y;
};

/// Linear target: y = 3 x0 - 2 x1 + 0.5 x2 + 1 (+ gaussian noise).
inline Synthetic make_linear(std::size_t n, double noise_std = 0.0,
                             std::uint64_t seed = 1) {
  Rng rng(seed);
  Synthetic s{linalg::Matrix(n, 3), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) s.x(i, c) = rng.uniform(-2.0, 2.0);
    s.y[i] = 3.0 * s.x(i, 0) - 2.0 * s.x(i, 1) + 0.5 * s.x(i, 2) + 1.0 +
             rng.normal(0.0, noise_std);
  }
  return s;
}

/// Smooth nonlinear target: y = sin(2 x0) + x1^2 - x0 x2 (+ noise).
inline Synthetic make_nonlinear(std::size_t n, double noise_std = 0.0,
                                std::uint64_t seed = 2) {
  Rng rng(seed);
  Synthetic s{linalg::Matrix(n, 3), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) s.x(i, c) = rng.uniform(-2.0, 2.0);
    s.y[i] = std::sin(2.0 * s.x(i, 0)) + s.x(i, 1) * s.x(i, 1) -
             s.x(i, 0) * s.x(i, 2) + rng.normal(0.0, noise_std);
  }
  return s;
}

/// A small CCSD campaign (fast to generate, ~n rows) on Aurora with its
/// 75/25 coverage split.
inline data::TrainTest small_campaign(std::size_t n = 400,
                                      std::uint64_t seed = 3) {
  static const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const std::vector<data::Problem> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}, {180, 720}};
  data::GeneratorOptions opt;
  opt.seed = seed;
  opt.target_total = n;
  const auto ds = data::generate_dataset(simulator, problems, opt);
  Rng rng(seed ^ 0xabc);
  auto split = data::stratified_split_fraction(ds, 0.25, rng);
  data::ensure_config_coverage(ds, split);
  return data::apply_split(ds, split);
}

}  // namespace ccpred::test
