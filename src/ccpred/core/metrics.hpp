#pragma once

/// \file metrics.hpp
/// The paper's evaluation metrics (§3.2): coefficient of determination
/// (R^2), mean absolute error (MAE) and mean absolute percentage error
/// (MAPE, reported as a fraction, e.g. 0.023 — matching the paper's usage).

#include <vector>

namespace ccpred::ml {

/// R^2 = 1 - SS_res / SS_tot. Returns 1 when predictions are exact even if
/// the targets are constant; can be negative for models worse than the mean.
double r2_score(const std::vector<double>& y_true,
                const std::vector<double>& y_pred);

/// Mean absolute error (same units as the target).
double mean_absolute_error(const std::vector<double>& y_true,
                           const std::vector<double>& y_pred);

/// Mean absolute percentage error as a *fraction* (0.1 == 10%).
/// Requires all |y_true| > 0 (wall times always are).
double mean_absolute_percentage_error(const std::vector<double>& y_true,
                                      const std::vector<double>& y_pred);

/// Root mean squared error.
double root_mean_squared_error(const std::vector<double>& y_true,
                               const std::vector<double>& y_pred);

/// Bundle of all paper metrics for one evaluation.
struct Scores {
  double r2 = 0.0;
  double mae = 0.0;
  double mape = 0.0;
  double rmse = 0.0;
};

/// Computes all metrics at once.
Scores score_all(const std::vector<double>& y_true,
                 const std::vector<double>& y_pred);

}  // namespace ccpred::ml
