#pragma once

/// \file param_space.hpp
/// Hyper-parameter search spaces: discrete grids (GridSearchCV-style) and
/// continuous ranges (for randomized and Bayesian search).

#include <map>
#include <string>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// Discrete candidate values per parameter.
using ParamGrid = std::map<std::string, std::vector<double>>;

/// Cartesian expansion of a grid into concrete assignments
/// (deterministic order: parameters alphabetical, first key slowest).
std::vector<ParamMap> expand_grid(const ParamGrid& grid);

/// A continuous (or integer) parameter range.
struct ParamRange {
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;  ///< sample uniformly in log10-space
  bool integer = false;    ///< round samples to whole numbers
};

/// Continuous search space for randomized / Bayesian search.
using ParamSpace = std::map<std::string, ParamRange>;

/// Draws one assignment uniformly from the space.
ParamMap sample_params(const ParamSpace& space, Rng& rng);

/// Maps an assignment into [0,1]^d (log-scaled dims in log space); used by
/// Bayesian search to give the surrogate GP a well-conditioned domain.
std::vector<double> encode_params(const ParamSpace& space,
                                  const ParamMap& params);

/// Inverse of encode_params (rounding integer dims).
ParamMap decode_params(const ParamSpace& space,
                       const std::vector<double>& unit);

/// The grid's outer product size.
std::size_t grid_size(const ParamGrid& grid);

/// Derives a continuous space spanning the grid's min/max per parameter
/// (log-scaled when the grid spans >= 2 decades, integer when all values
/// are whole). Lets callers define one grid per model and reuse it for all
/// three strategies.
ParamSpace space_from_grid(const ParamGrid& grid);

}  // namespace ccpred::ml
