#pragma once

/// \file server.hpp
/// The recommendation server: a thread-safe request handler over a model
/// registry, a sharded sweep cache, and a worker pool. Four properties
/// matter for a guidance service and are tested explicitly:
///
///  * determinism — any interleaving of requests produces the same answers
///    as serial execution against the same artifacts (sweeps are pure
///    functions of (machine, model-version, O, V));
///  * single-flight sweeps — concurrent requests for the same uncached
///    (machine, O, V) run ONE enumerate+predict sweep; the rest block on
///    its future (`coalesced` counts them);
///  * cheap repeats — a cached sweep answers STQ, BQ and budget questions
///    without touching the model at all;
///  * graceful failure — a request with `deadline_ms` gets a structured
///    `code="deadline"` answer instead of an open-ended wait (the sweep
///    still completes on the sweep pool and warms the cache), submit()
///    sheds with `code="overloaded"` once `max_queue_depth` saturates,
///    and a failed model hot-reload degrades to stale answers rather
///    than errors.
///
/// Sweeps run on a dedicated sweep pool, not the request worker pool, so
/// a request thread can abandon a slow sweep at its deadline without
/// orphaning the computation — and waiting requests can never deadlock
/// the workers that would run their sweep.
///
/// Outstanding submit() futures must be drained before the server is
/// destroyed.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ccpred/common/latency_histogram.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/serve/batch_scheduler.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/online/online_trainer.hpp"
#include "ccpred/serve/protocol.hpp"
#include "ccpred/serve/stats.hpp"
#include "ccpred/serve/sweep_cache.hpp"

namespace ccpred::serve {

/// Server construction knobs.
struct ServeOptions {
  std::size_t threads = 0;        ///< worker pool size; 0 = hardware
  std::size_t cache_capacity = 256;  ///< sweeps kept across all shards
  std::size_t cache_shards = exec::kDefaultShards;
  std::size_t max_queue_depth = 0;  ///< submit() sheds beyond this; 0 = off
  std::string default_machine = "aurora";  ///< when a request omits it
  std::string default_model = "gb";        ///< when a request omits it
  FaultInjector* fault_injector = nullptr;  ///< optional; must outlive server
  /// Online learning loop (report verb). Disabled by default — a report
  /// against a disabled loop answers code="bad_request".
  online::OnlineOptions online;
  /// Dynamic micro-batching across connections (see batch_scheduler.hpp).
  /// When enabled, submit()/submit_with()/submit_batch_with() route
  /// through the BatchScheduler; handle() stays serial. Answers are
  /// bit-identical either way.
  BatchOptions batch;
};

/// See file comment. The registry must outlive the server.
class Server {
 public:
  explicit Server(ModelRegistry& registry, ServeOptions options = {});

  /// Handles one request synchronously. Thread-safe; never throws —
  /// failures come back as ok=false responses.
  Response handle(const Request& request);

  /// Enqueues a request onto the worker pool. When `max_queue_depth` is
  /// set and the pool's backlog is full, the future resolves immediately
  /// to ok=false, code="overloaded" (load shedding). The request's
  /// deadline clock starts here, so time spent queued counts against it.
  std::future<Response> submit(Request request);

  /// submit() for callers that already sit on an event loop: instead of a
  /// future, `done` is invoked with the response — from a worker thread on
  /// the normal path, or synchronously from this call when the request is
  /// shed. `done` must be safe to run on either.
  void submit_with(Request request, std::function<void(Response)> done);

  /// One pool task for a whole wire frame: the batch is admitted (or shed)
  /// as a unit and handled sequentially on one worker, so a 16-request
  /// frame pays the queue hand-off once instead of 16 times. Deadlines
  /// still apply per request.
  void submit_batch_with(std::vector<Request> batch,
                         std::function<void(std::vector<Response>)> done);

  /// Handles a whole batch synchronously through the grouped batch lane:
  /// members are grouped by (machine, kind, verb), each group acquires its
  /// model handle once, batch-probes the sweep cache, and dedups identical
  /// (O, V) keys into one single-flight sweep. Answers are bit-identical
  /// to calling handle() per request. Deadline clocks start here.
  std::vector<Response> dispatch_batch(const std::vector<Request>& batch);

  /// Point-in-time statistics snapshot.
  ServerStats stats() const;

  /// Folds `n` client-side retries into the stats (the daemon's backoff
  /// loop reports its retries here so `stats` can surface them).
  void record_retries(std::uint64_t n) {
    retries_.fetch_add(n, std::memory_order_relaxed);
  }

  /// The daemon reports its event loop's overflow-closed connections
  /// through this callback so `stats` can surface them beside the server
  /// counters (mirrors record_retries). Install before serving traffic;
  /// the callback must stay valid for the server's lifetime.
  void set_overflow_source(std::function<std::uint64_t()> source);

  const ServeOptions& options() const { return options_; }
  const SweepCache& cache() const { return cache_; }

  /// The online learning loop, or nullptr when disabled (test hook:
  /// wait_idle() between reporting and asserting on promotions).
  online::OnlineTrainer* online() { return online_.get(); }

 private:
  /// The scheduler reaches into the pools, admission counters and
  /// handle_batch; it is a serve-layer sibling, not an external client.
  friend class BatchScheduler;

  using Clock = std::chrono::steady_clock;

  /// handle() with an absolute deadline (Clock::time_point::max() = none).
  Response handle_until(const Request& request, Clock::time_point deadline);

  Response dispatch(const Request& request, Clock::time_point deadline);

  /// dispatch_batch() with per-request absolute deadlines: the batch lane
  /// shared by dispatch_batch and the BatchScheduler's flushes.
  std::vector<Response> handle_batch(
      const std::vector<Request>& batch,
      const std::vector<Clock::time_point>& deadlines);

  /// Answers one (machine, kind) group of STQ/BQ/budget members inside a
  /// batch: one model handle, one cache probe per unique (O, V) key, one
  /// single-flight sweep per cold key (all cold keys of the group share
  /// ONE batched recommend).
  void answer_group(const std::string& machine, const std::string& kind,
                    const std::vector<std::size_t>& members,
                    const std::vector<Request>& batch,
                    const std::vector<Clock::time_point>& deadlines,
                    const Stopwatch& timer, std::vector<Response>* out);

  /// Absolute deadline for a request whose clock starts now.
  static Clock::time_point deadline_for(const Request& request) {
    return request.deadline_ms > 0
               ? Clock::now() + std::chrono::milliseconds(request.deadline_ms)
               : Clock::time_point::max();
  }

  /// How one in-flight sweep resolves. Errors travel as strings, not
  /// exception_ptrs: releasing an exception_ptr on a thread other than the
  /// one that set it runs refcounting inside (uninstrumented) libstdc++,
  /// which ThreadSanitizer reports as a race between the sweep worker and
  /// the waiting request thread.
  struct SweepResult {
    SweepPtr sweep;     ///< null on failure
    std::string error;  ///< why, when sweep is null
  };

  /// The sweep for (machine, kind, o, v): cache -> in-flight future ->
  /// compute on the sweep pool. Sets `cache_hit` and `stale`; returns the
  /// model version used. On deadline expiry sets `timed_out` and returns
  /// nullptr — the sweep keeps running and populates the cache.
  SweepPtr sweep_for(const std::string& machine, const std::string& kind,
                     int o, int v, Clock::time_point deadline,
                     std::uint64_t* model_version, bool* cache_hit,
                     bool* stale, bool* timed_out);

  /// Lazily-built simulator per machine (stable address for Advisor refs).
  const sim::CcsdSimulator& simulator(const std::string& machine);

  ModelRegistry& registry_;
  ServeOptions options_;
  FaultInjector* fault_;  ///< == options_.fault_injector
  SweepCache cache_;
  LatencyHistogram latency_;
  LatencyHistogram op_latency_[kNumOps];  ///< per-verb, indexed by Op

  /// Constructed only when options_.online.enabled. Declared after cache_
  /// (its refits invalidate cache shards) and before the pools, so its own
  /// refit worker drains while everything it touches is still alive.
  std::unique_ptr<online::OnlineTrainer> online_;

  std::mutex simulators_mutex_;
  std::map<std::string, sim::CcsdSimulator> simulators_;

  std::mutex inflight_mutex_;
  std::unordered_map<SweepKey, std::shared_future<SweepResult>, SweepKeyHash>
      inflight_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> sweeps_computed_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> stale_served_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::size_t> queue_depth_{0};

  mutable std::mutex overflow_mutex_;
  std::function<std::uint64_t()> overflow_source_;  ///< may be empty

  // The pools are among the last members so their destructors run first:
  // they drain and join while every field their tasks touch is still
  // alive. sweep_pool_ follows pool_ — request workers block on sweep
  // futures, so sweeps must drain before the request pool joins.
  ThreadPool pool_;
  ThreadPool sweep_pool_;

  /// Very last member: destroyed FIRST, so the scheduler stops its flusher
  /// and drains its queue while the pools it posts to are still alive.
  /// Null unless options_.batch.enabled.
  std::unique_ptr<BatchScheduler> batcher_;
};

}  // namespace ccpred::serve
