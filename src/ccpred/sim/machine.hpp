#pragma once

/// \file machine.hpp
/// Parametric model of a leadership-class supercomputer node architecture.
///
/// The paper's training data comes from CCSD runs on ALCF Aurora (6 Intel
/// PVC GPUs per node) and OLCF Frontier (4 MI250X = 8 GCDs per node). We
/// cannot run either machine, so MachineModel captures the handful of
/// architectural parameters that shape the runtime response surface
/// t(O, V, nodes, tile): per-GPU throughput, GEMM efficiency vs. tile size,
/// interconnect bandwidth/latency with congestion, task overheads, memory
/// capacity, and the run-to-run measurement-noise profile.

#include <cstdint>
#include <string>
#include <vector>

namespace ccpred::sim {

/// Architecture + noise parameters for one simulated machine.
struct MachineModel {
  std::string name;

  // --- Compute ---
  int gpus_per_node = 6;
  /// Sustained dense-tensor-contraction rate of one GPU at asymptotically
  /// large tiles, in TFLOP/s (double precision, library-level sustained —
  /// far below vendor peak).
  double gpu_tflops = 6.0;
  /// Tile size at which GEMM efficiency reaches 50% of gpu_tflops;
  /// efficiency follows eff(T) = 1 / (1 + (half_eff_tile / T)^2).
  double half_eff_tile = 45.0;
  /// Fixed per-task cost (runtime scheduling, kernel launch, bookkeeping),
  /// in seconds.
  double task_overhead_s = 2.0e-3;

  // --- Interconnect ---
  /// Injection bandwidth per node, GB/s.
  double node_bw_gbs = 25.0;
  /// Per-message latency, seconds.
  double latency_s = 20.0e-6;
  /// Congestion factor: effective bandwidth = node_bw / (1 + c*log2(nodes)).
  double congestion = 0.12;
  /// Fraction of communication hidden behind computation (0..1).
  double comm_overlap = 0.6;

  // --- Synchronization / fixed costs ---
  /// Fixed per-iteration serial cost (residual norms, amplitude updates,
  /// DIIS bookkeeping), seconds.
  double fixed_iteration_s = 2.0;
  /// Coefficient of the log^2(nodes) synchronization/collectives term.
  double sync_log2sq_s = 0.15;

  // --- Memory ---
  /// Usable memory per node for tensor storage, GB.
  double node_mem_gb = 512.0;
  /// Usable memory per GPU for tile buffers, GB.
  double gpu_mem_gb = 64.0;
  /// Slowdown multiplier applied when tile buffers spill past GPU memory.
  double spill_penalty = 3.0;

  // --- Measurement noise ---
  /// Log-scale standard deviation of run-to-run multiplicative noise.
  double noise_sigma = 0.03;
  /// Probability that a run is hit by a network/filesystem contention spike.
  double spike_prob = 0.0;
  /// Spike slowdown range (uniform multiplicative extra slowdown).
  double spike_min = 0.05;
  double spike_max = 0.25;

  /// Global calibration multiplier applied to compute+comm work so the
  /// simulated magnitudes land in the paper's tens-to-hundreds-of-seconds
  /// regime (the real application runs ~30 contractions; we simulate the
  /// representative classes).
  double calibration = 1.0;

  /// Total GPU workers for a job of `nodes` nodes.
  int workers(int nodes) const { return nodes * gpus_per_node; }

  /// Achieved fraction of gpu_tflops for square tiles of size `tile`.
  double gemm_efficiency(int tile) const;

  /// Effective per-node bandwidth (bytes/s) at a given node count,
  /// after congestion.
  double effective_bw_bytes(int nodes) const;

  /// Preconfigured model of ALCF Aurora (low-noise, smaller sweet-spot
  /// tiles).
  static MachineModel aurora();

  /// Preconfigured model of OLCF Frontier (heavier-tailed noise, larger
  /// sweet-spot tiles; the paper found Frontier notably harder to predict).
  static MachineModel frontier();

  /// Node counts available in each machine's batch-queue sweep
  /// (superset; per-problem grids subset this — see data/generator).
  std::vector<int> node_menu() const;

  /// Tile sizes swept on this machine.
  std::vector<int> tile_menu() const;
};

}  // namespace ccpred::sim
