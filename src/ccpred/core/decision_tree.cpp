#include "ccpred/core/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "ccpred/common/error.hpp"
#include "ccpred/exec/arena.hpp"
#include "ccpred/simd/simd.hpp"

namespace ccpred::ml {

DecisionTreeRegressor::DecisionTreeRegressor(TreeOptions options)
    : options_(options) {
  CCPRED_CHECK_MSG(options_.max_depth >= 0, "max_depth must be >= 0");
  CCPRED_CHECK_MSG(options_.min_samples_split >= 2,
                   "min_samples_split must be >= 2");
  CCPRED_CHECK_MSG(options_.min_samples_leaf >= 1,
                   "min_samples_leaf must be >= 1");
  CCPRED_CHECK_MSG(options_.max_bins >= 2 && options_.max_bins <= 60000,
                   "max_bins must be in [2, 60000]");
}

// ---------------------------------------------------------------------------
// Quantile binning (histogram mode)
// ---------------------------------------------------------------------------

FeatureBins FeatureBins::build(const linalg::Matrix& x, int max_bins) {
  CCPRED_CHECK_MSG(max_bins >= 2 && max_bins <= 60000,
                   "max_bins must be in [2, 60000]");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot bin an empty matrix");
  FeatureBins fb;
  fb.n_ = x.rows();
  fb.d_ = x.cols();
  fb.edges_.resize(fb.d_);
  fb.offsets_.assign(fb.d_ + 1, 0);

  std::vector<double> col(fb.n_);
  std::vector<double> distinct;
  for (std::size_t f = 0; f < fb.d_; ++f) {
    for (std::size_t r = 0; r < fb.n_; ++r) col[r] = x(r, f);
    std::sort(col.begin(), col.end());
    distinct.clear();
    for (double v : col) {
      if (distinct.empty() || v != distinct.back()) distinct.push_back(v);
    }
    auto& edges = fb.edges_[f];
    edges.clear();
    const std::size_t m = distinct.size();
    if (m <= static_cast<std::size_t>(max_bins)) {
      // One bin per distinct value: the candidate-threshold set is exactly
      // the exact-mode midpoints, so histogram splits lose nothing.
      for (std::size_t i = 0; i + 1 < m; ++i) {
        edges.push_back(0.5 * (distinct[i] + distinct[i + 1]));
      }
    } else {
      // Quantile cuts over the sorted values (duplicates keep their mass),
      // snapped to the midpoint below the cut value so every edge separates
      // two distinct data values.
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t rank =
            static_cast<std::size_t>(b) * fb.n_ / static_cast<std::size_t>(max_bins);
        const double v = col[rank];
        const auto it = std::lower_bound(distinct.begin(), distinct.end(), v);
        const std::size_t idx =
            static_cast<std::size_t>(it - distinct.begin());
        if (idx == 0) continue;
        const double edge = 0.5 * (distinct[idx - 1] + distinct[idx]);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
    fb.offsets_[f + 1] =
        fb.offsets_[f] + static_cast<int>(edges.size()) + 1;
  }

  fb.codes_.resize(fb.n_ * fb.d_);
  // First edge >= x: code(r, f) <= b  ⇔  x(r, f) <= edges[b]. Dispatched
  // per feature column (the AVX2 table counts edges in registers; codes
  // are integer counts, identical to the binary search in every mode).
  const auto& ops = simd::ops();
  for (std::size_t f = 0; f < fb.d_; ++f) {
    const auto& edges = fb.edges_[f];
    ops.bin_codes(x.row_ptr(0) + f, fb.n_, x.cols(), edges.data(),
                  static_cast<int>(edges.size()), fb.codes_.data() + f,
                  fb.d_);
  }
  return fb;
}

// ---------------------------------------------------------------------------
// Exact split finding (reference path)
// ---------------------------------------------------------------------------

struct DecisionTreeRegressor::BuildContext {
  const linalg::Matrix* x = nullptr;
  const std::vector<double>* y = nullptr;
  std::vector<double> importance;
  int effective_max_depth = 64;
  int max_features = 0;
  Rng rng{1};
  // Scratch reused across nodes to avoid per-node allocation.
  std::vector<std::pair<double, double>> sorted;  // (feature value, target)
};

namespace {

/// Best split of `rows` on `feature`: returns (sse_reduction, threshold,
/// left_count) or sse_reduction <= 0 if no valid split exists.
struct SplitCandidate {
  double gain = -1.0;
  double threshold = 0.0;
  std::size_t left_count = 0;
};

SplitCandidate best_split_on_feature(
    const linalg::Matrix& x, const std::vector<double>& y,
    const std::vector<std::size_t>& rows, std::size_t feature,
    int min_samples_leaf, std::vector<std::pair<double, double>>& sorted) {
  const std::size_t n = rows.size();
  sorted.clear();
  sorted.reserve(n);
  for (auto r : rows) sorted.emplace_back(x(r, feature), y[r]);
  std::sort(sorted.begin(), sorted.end());

  double total = 0.0;
  for (const auto& [v, t] : sorted) total += t;

  SplitCandidate best;
  double left_sum = 0.0;
  const auto min_leaf = static_cast<std::size_t>(min_samples_leaf);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += sorted[i].second;
    if (sorted[i].first == sorted[i + 1].first) continue;  // tied values
    const std::size_t nl = i + 1;
    const std::size_t nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) continue;
    // Variance-reduction gain: sum_l^2/n_l + sum_r^2/n_r - total^2/n
    const double right_sum = total - left_sum;
    const double gain = left_sum * left_sum / static_cast<double>(nl) +
                        right_sum * right_sum / static_cast<double>(nr) -
                        total * total / static_cast<double>(n);
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      best.left_count = nl;
    }
  }
  return best;
}

/// Candidate features for one node: all, or a random subset for forests.
std::vector<std::size_t> candidate_features(std::size_t d, int max_features,
                                            Rng& rng) {
  if (max_features > 0 && static_cast<std::size_t>(max_features) < d) {
    return rng.sample_without_replacement(
        d, static_cast<std::size_t>(max_features));
  }
  std::vector<std::size_t> features(d);
  for (std::size_t f = 0; f < d; ++f) features[f] = f;
  return features;
}

}  // namespace

int DecisionTreeRegressor::build(BuildContext& ctx,
                                 std::vector<std::size_t>& rows, int depth) {
  const auto& x = *ctx.x;
  const auto& y = *ctx.y;
  const std::size_t n = rows.size();

  double sum = 0.0;
  for (auto r : rows) sum += y[r];
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{.value = mean});

  if (depth >= ctx.effective_max_depth ||
      n < static_cast<std::size_t>(options_.min_samples_split)) {
    return node_index;
  }

  const std::vector<std::size_t> features =
      candidate_features(x.cols(), ctx.max_features, ctx.rng);

  SplitCandidate best;
  std::size_t best_feature = 0;
  for (auto f : features) {
    const auto cand = best_split_on_feature(x, y, rows, f,
                                            options_.min_samples_leaf,
                                            ctx.sorted);
    if (cand.gain > best.gain) {
      best = cand;
      best_feature = f;
    }
  }
  if (best.gain <= 1e-12) return node_index;  // pure or unsplittable node
  ctx.importance[best_feature] += best.gain;

  // Partition rows in place.
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  left_rows.reserve(best.left_count);
  right_rows.reserve(n - best.left_count);
  for (auto r : rows) {
    (x(r, best_feature) <= best.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  // Ties at the threshold can defeat the sorted-scan counts; guard anyway.
  if (left_rows.empty() || right_rows.empty()) return node_index;

  rows.clear();
  rows.shrink_to_fit();

  const int left = build(ctx, left_rows, depth + 1);
  const int right = build(ctx, right_rows, depth + 1);
  nodes_[node_index].feature = static_cast<int>(best_feature);
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

// ---------------------------------------------------------------------------
// Histogram split finding
// ---------------------------------------------------------------------------

/// Per-node gradient histogram: (count, target-sum) per bin, flattened over
/// all features via FeatureBins offsets. Filling and subtraction dispatch
/// through simd::ops(). Storage lives in the fit's Arena (total_bins wide),
/// so acquiring one is a pointer bump, never a malloc.
struct DecisionTreeRegressor::Histogram {
  double* sum = nullptr;
  std::uint32_t* count = nullptr;
};

struct DecisionTreeRegressor::HistContext {
  const FeatureBins* bins = nullptr;
  const std::vector<double>* y = nullptr;
  std::vector<double> importance;
  int effective_max_depth = 64;
  int max_features = 0;
  Rng rng{1};

  /// Bump allocator owning every fit-scratch buffer below. Reset at fit
  /// entry; reused across fits (the ensembles pass one arena per task), so
  /// repeated fits re-hand out the same cache-line-aligned memory.
  exec::Arena* mem = nullptr;
  int total_bins = 0;

  // Per-fit scratch, bump-allocated once (the old per-node row vectors and
  // histogram allocations were ~half the fit wall time):
  std::uint32_t* rows = nullptr;     ///< row indices, partitioned in place
  std::size_t n_rows = 0;
  std::uint32_t* scratch = nullptr;  ///< right-half staging for partition
  int* offsets = nullptr;            ///< per-feature flat bin offsets
  std::size_t* all_features = nullptr;  ///< 0..d-1, reused when not sampling
  const simd::Ops* ops = nullptr;
  double* train_pred = nullptr;      ///< optional per-row leaf values

  // Direct-mode per-feature scan buffers: full flattened width, zeroed once
  // per fit; each direct node re-zeroes only the bins its rows touched.
  double* fsum = nullptr;
  std::uint32_t* fcount = nullptr;

  // Inclusive per-feature code bounds of the current hist-mode node,
  // threaded down the recursion: a split on f at bin b bounds the left
  // child's codes on f by b and the right child's by [b + 1, old hi]; other
  // features inherit the parent's (outer) bounds. Bins outside the bounds
  // hold exactly +0.0 in subtracted histograms, so range-restricted scans
  // see the values the full scan would.
  int* fr_lo = nullptr;
  int* fr_hi = nullptr;

  // Direct-mode per-feature code bounds of the current node (exact, from
  // the fused scatter pass).
  std::uint16_t* dmin = nullptr;
  std::uint16_t* dmax = nullptr;

  /// Histogram freelist; at most depth + 1 are live at once, so the arena
  /// hands out at most that many total_bins-wide buffer pairs per fit.
  std::vector<Histogram> pool;

  Histogram acquire() {
    Histogram h;
    if (!pool.empty()) {
      h = pool.back();
      pool.pop_back();
    } else {
      const auto tb = static_cast<std::size_t>(total_bins);
      h.sum = mem->alloc_array<double>(tb);
      h.count = mem->alloc_array<std::uint32_t>(tb);
    }
    const auto tb = static_cast<std::size_t>(total_bins);
    std::fill(h.sum, h.sum + tb, 0.0);
    std::fill(h.count, h.count + tb, 0u);
    return h;
  }
  void release(Histogram h) { pool.push_back(h); }
};

int DecisionTreeRegressor::build_hist(HistContext& ctx, std::size_t lo,
                                      std::size_t hi, double sum,
                                      Histogram* hist, int depth) {
  const FeatureBins& bins = *ctx.bins;
  const std::size_t n = hi - lo;
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{.value = mean});

  // The arena range of a leaf is exactly its training rows, so the leaf
  // mean doubles as those rows' predictions (bin split "code <= b" equals
  // the raw split "x <= upper_edge", so routing matches predict_row).
  const auto emit_leaf = [&] {
    if (ctx.train_pred != nullptr) {
      const std::uint32_t* r = ctx.rows + lo;
      for (std::size_t i = 0; i < n; ++i) ctx.train_pred[r[i]] = mean;
    }
  };

  if (depth >= ctx.effective_max_depth ||
      n < static_cast<std::size_t>(options_.min_samples_split)) {
    emit_leaf();
    return node_index;
  }

  // Scan each candidate feature's bins left to right; a boundary after bin
  // b corresponds to the exact split x <= upper_edge(f, b). The dispatched
  // scan threads the running best through every feature, preserving the
  // original first-strictly-greater selection order, and records the left
  // prefix (sum, count) at each boundary so the winning split's child
  // stats are read off the buffers instead of re-summed.
  double best_gain = -1.0;
  std::size_t best_feature = 0;
  int best_bin = -1;
  double best_left_sum = 0.0;
  std::size_t best_left_count = 0;
  const auto min_leaf = static_cast<std::size_t>(options_.min_samples_leaf);
  const auto& ops = *ctx.ops;
  const std::vector<double>& y = *ctx.y;

  if (n == 2 && hist == nullptr && ctx.max_features == 0) {
    // Two-row nodes are roughly half of a fully-grown tree; their split is
    // decided directly from the two rows' codes with the scan's exact
    // arithmetic and selection order (only the boundary at the smaller code
    // is valid, its left prefix is that row's target, nl = nr = 1 so the
    // /nl and /nr divides are identities).
    const std::uint32_t ra = ctx.rows[lo];
    const std::uint32_t rb = ctx.rows[lo + 1];
    if (min_leaf <= 1) {
      const double tt_n = sum * sum / 2.0;
      for (std::size_t f = 0; f < bins.cols(); ++f) {
        const std::uint16_t ca = bins.code(ra, f);
        const std::uint16_t cb = bins.code(rb, f);
        if (ca == cb) continue;
        const double ls = ca < cb ? y[ra] : y[rb];
        const double rs = sum - ls;
        const double gain = ls * ls + rs * rs - tt_n;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_bin = ca < cb ? ca : cb;
          best_left_sum = ls;
          best_left_count = 1;
        }
      }
    }
    if (best_bin < 0 || best_gain <= 1e-12) {
      emit_leaf();
      return node_index;
    }
    ctx.importance[best_feature] += best_gain;
    const std::uint16_t ca = bins.code(ra, best_feature);
    const std::uint16_t cb = bins.code(rb, best_feature);
    if (cb < ca) {  // stable partition: the left (smaller-code) row first
      ctx.rows[lo] = rb;
      ctx.rows[lo + 1] = ra;
    }
    // Emit the two single-row leaves inline: a 1-row recursion would push
    // the same node (mean = child_sum / 1.0 == child_sum bitwise) and
    // immediately return, so this skips two calls per two-row node.
    const double right_sum = sum - best_left_sum;
    const int left = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{.value = best_left_sum});
    const int right = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{.value = right_sum});
    if (ctx.train_pred != nullptr) {
      ctx.train_pred[ctx.rows[lo]] = best_left_sum;
      ctx.train_pred[ctx.rows[lo + 1]] = right_sum;
    }
    nodes_[node_index].feature = static_cast<int>(best_feature);
    nodes_[node_index].threshold = bins.upper_edge(best_feature, best_bin);
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  // Direct mode: one fused pass rebuilds every feature's histogram slice
  // from the rows (a single contiguous row_codes load per row instead of
  // d strided passes), tracking exact per-feature code bounds as it goes.
  // Each feature's bins still fill in row order — the same per-bin
  // accumulation order as hist_accumulate — so the scans below see
  // bit-identical sums.
  const std::size_t d = bins.cols();
  if (hist == nullptr) {
    const std::uint32_t* rw = ctx.rows + lo;
    const std::uint16_t* first = bins.row_codes(rw[0]);
    for (std::size_t f = 0; f < d; ++f) {
      ctx.dmin[f] = first[f];
      ctx.dmax[f] = first[f];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = rw[i];
      const std::uint16_t* rc = bins.row_codes(r);
      const double target = y[r];
      for (std::size_t f = 0; f < d; ++f) {
        const std::uint16_t b = rc[f];
        const auto idx = static_cast<std::size_t>(ctx.offsets[f]) + b;
        ctx.fsum[idx] += target;
        ctx.fcount[idx] += 1;
        ctx.dmin[f] = b < ctx.dmin[f] ? b : ctx.dmin[f];
        ctx.dmax[f] = b > ctx.dmax[f] ? b : ctx.dmax[f];
      }
    }
  }

  // All features when not subsampling (no per-node vector), else a fresh
  // random subset (candidate_features only draws from the rng when it
  // actually samples, so the stream matches the old per-node call).
  std::vector<std::size_t> sampled;
  const bool use_all =
      ctx.max_features <= 0 ||
      static_cast<std::size_t>(ctx.max_features) >= bins.cols();
  if (!use_all) {
    sampled = candidate_features(bins.cols(), ctx.max_features, ctx.rng);
  }
  const std::size_t* features = use_all ? ctx.all_features : sampled.data();
  const std::size_t n_features = use_all ? bins.cols() : sampled.size();
  for (std::size_t fi = 0; fi < n_features; ++fi) {
    const std::size_t f = features[fi];
    const int off = ctx.offsets[f];
    const int m = bins.bin_count(f) - 1;  // candidate boundaries
    if (m <= 0) continue;
    int bin = -1;
    double ls = 0.0;
    std::size_t lc = 0;
    bool found = false;
    if (hist != nullptr) {
      const int b0 = ctx.fr_lo[f];
      const int mend = ctx.fr_hi[f] < m ? ctx.fr_hi[f] : m;
      if (mend > b0 &&
          ops.split_scan(hist->sum + off + b0,
                         hist->count + off + b0, mend - b0, sum, n,
                         min_leaf, &best_gain, &bin, &ls, &lc)) {
        bin += b0;
        found = true;
      }
    } else {
      // Direct mode: the fused pass above already rebuilt this feature's
      // slice and its exact code bounds. Only boundaries in [cmin, cmax)
      // can win: bins below cmin hold exactly +0.0 (the left prefix starts
      // identical), later ones leave the right side empty. Constant
      // features (cmin == cmax) skip the scan outright — the full scan
      // would find no valid boundary either.
      const std::uint16_t cmin = ctx.dmin[f];
      const std::uint16_t cmax = ctx.dmax[f];
      if (cmax > cmin) {
        double* s = ctx.fsum + off;
        std::uint32_t* c = ctx.fcount + off;
        const int mend = cmax < m ? static_cast<int>(cmax) : m;
        if (ops.split_scan(s + cmin, c + cmin, mend - cmin, sum, n, min_leaf,
                           &best_gain, &bin, &ls, &lc)) {
          bin += cmin;
          found = true;
        }
      }
    }
    if (found) {
      best_feature = f;
      best_bin = bin;
      best_left_sum = ls;
      best_left_count = lc;
    }
  }
  // Direct-mode buffers are re-zeroed by touched-bin row passes (a full
  // clear would reintroduce the O(total_bins) per-node cost this path
  // exists to avoid): standalone here on the leaf return, fused into the
  // partition pass below on the split path.
  const auto rezero_touched = [&](const std::uint16_t* rc) {
    for (std::size_t f = 0; f < d; ++f) {
      const auto idx = static_cast<std::size_t>(ctx.offsets[f]) + rc[f];
      ctx.fsum[idx] = 0.0;
      ctx.fcount[idx] = 0;
    }
  };
  if (best_bin < 0 || best_gain <= 1e-12) {
    if (hist == nullptr) {
      const std::uint32_t* rw = ctx.rows + lo;
      for (std::size_t i = 0; i < n; ++i) rezero_touched(bins.row_codes(rw[i]));
    }
    emit_leaf();
    return node_index;
  }
  ctx.importance[best_feature] += best_gain;
  const double threshold = bins.upper_edge(best_feature, best_bin);

  // Stable two-cursor partition of the node's arena range: left rows
  // compact in place, right rows stage in scratch and copy back — the
  // children keep the parent's relative row order (same histogram
  // accumulation order as the old per-node vectors) with no per-node
  // allocation.
  std::uint32_t* rows = ctx.rows + lo;
  std::uint32_t* scr = ctx.scratch;
  std::size_t nl = 0;
  std::size_t nr = 0;
  if (hist == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = rows[i];
      const std::uint16_t* rc = bins.row_codes(r);
      rezero_touched(rc);
      if (rc[best_feature] <= best_bin) {
        rows[nl++] = r;
      } else {
        scr[nr++] = r;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = rows[i];
      if (bins.code(r, best_feature) <= best_bin) {
        rows[nl++] = r;
      } else {
        scr[nr++] = r;
      }
    }
  }
  std::copy(scr, scr + nr, rows + nl);
  if (nl == 0 || nr == 0) {
    emit_leaf();
    return node_index;
  }

  // Child target totals from the scan prefix at the winning boundary (the
  // old code re-summed y over each child's rows).
  const double left_sum = best_left_sum;
  const double right_sum = sum - left_sum;
  CCPRED_CHECK_MSG(nl == best_left_count,
                   "histogram counts disagree with the code partition");

  int left;
  int right;
  if (hist == nullptr ||
      std::max(nl, nr) * bins.cols() <
          2 * static_cast<std::size_t>(bins.total_bins())) {
    // Both children are small relative to the flattened histogram width:
    // maintaining full histograms would spend O(total_bins) on zeroing and
    // subtraction per node for a handful of rows. Descend in direct mode
    // (per-feature scans rebuilt from the rows). Once direct, children stay
    // direct — their row counts only shrink.
    left = build_hist(ctx, lo, lo + nl, left_sum, nullptr, depth + 1);
    right = build_hist(ctx, lo + nl, hi, right_sum, nullptr, depth + 1);
  } else {
    // Sibling-subtraction trick: scan only the smaller child's rows; the
    // larger child's histogram is parent - smaller, reusing parent storage.
    const bool left_is_small = nl <= nr;
    const auto tb = static_cast<std::size_t>(ctx.total_bins);
    Histogram small = ctx.acquire();
    ops.hist_accumulate(bins.row_codes(0), bins.cols(), ctx.offsets,
                        left_is_small ? rows : rows + nl,
                        left_is_small ? nl : nr, ctx.y->data(),
                        small.sum, small.count, tb);
    ops.hist_subtract(hist->sum, hist->count, small.sum, small.count, tb);
    Histogram* left_hist = left_is_small ? &small : hist;
    Histogram* right_hist = left_is_small ? hist : &small;

    const int save_lo = ctx.fr_lo[best_feature];
    const int save_hi = ctx.fr_hi[best_feature];
    ctx.fr_hi[best_feature] = best_bin;
    left = build_hist(ctx, lo, lo + nl, left_sum, left_hist, depth + 1);
    ctx.fr_hi[best_feature] = save_hi;
    ctx.fr_lo[best_feature] = best_bin + 1;
    right = build_hist(ctx, lo + nl, hi, right_sum, right_hist, depth + 1);
    ctx.fr_lo[best_feature] = save_lo;
    ctx.release(small);
  }
  nodes_[node_index].feature = static_cast<int>(best_feature);
  nodes_[node_index].threshold = threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void DecisionTreeRegressor::fit_binned(const FeatureBins& bins,
                                       const std::vector<double>& y,
                                       const std::vector<std::size_t>& rows,
                                       double* train_pred,
                                       exec::Arena* arena) {
  CCPRED_CHECK_MSG(bins.rows() == y.size(), "bins/y row mismatch");
  CCPRED_CHECK_MSG(!rows.empty(), "cannot fit tree on zero rows");
  for (auto r : rows) {
    CCPRED_CHECK_MSG(r < bins.rows(), "row index out of range");
  }
  CCPRED_CHECK_MSG(bins.rows() <= 0xffffffffu,
                   "histogram mode indexes rows as 32-bit");

  // All fit scratch bump-allocates from one arena — the caller's (the
  // ensembles pass a reused per-task arena) or a reused thread-local one —
  // so repeated fits stop touching the heap.
  exec::Arena* mem = arena;
  if (mem == nullptr) {
    thread_local exec::Arena fallback;
    mem = &fallback;
  }
  mem->reset();

  nodes_.clear();
  HistContext ctx;
  ctx.bins = &bins;
  ctx.y = &y;
  ctx.importance.assign(bins.cols(), 0.0);
  ctx.effective_max_depth =
      options_.max_depth == 0 ? 64 : options_.max_depth;
  ctx.max_features = options_.max_features;
  ctx.rng = Rng(options_.seed);
  ctx.ops = &simd::ops();
  ctx.train_pred = train_pred;
  ctx.mem = mem;
  ctx.total_bins = bins.total_bins();

  const std::size_t d = bins.cols();
  const auto total_bins = static_cast<std::size_t>(bins.total_bins());
  ctx.n_rows = rows.size();
  ctx.rows = mem->alloc_array<std::uint32_t>(ctx.n_rows);
  for (std::size_t i = 0; i < ctx.n_rows; ++i) {
    ctx.rows[i] = static_cast<std::uint32_t>(rows[i]);
  }
  ctx.scratch = mem->alloc_array<std::uint32_t>(ctx.n_rows);
  ctx.offsets = mem->alloc_array<int>(d);
  ctx.all_features = mem->alloc_array<std::size_t>(d);
  ctx.fr_lo = mem->alloc_array<int>(d);
  ctx.fr_hi = mem->alloc_array<int>(d);
  for (std::size_t f = 0; f < d; ++f) {
    ctx.offsets[f] = bins.offset(f);
    ctx.all_features[f] = f;
    ctx.fr_lo[f] = 0;
    ctx.fr_hi[f] = bins.bin_count(f) - 1;
  }

  ctx.fsum = mem->alloc_array<double>(total_bins);
  ctx.fcount = mem->alloc_array<std::uint32_t>(total_bins);
  std::fill(ctx.fsum, ctx.fsum + total_bins, 0.0);
  std::fill(ctx.fcount, ctx.fcount + total_bins, 0u);
  ctx.dmin = mem->alloc_array<std::uint16_t>(d);
  ctx.dmax = mem->alloc_array<std::uint16_t>(d);
  std::fill(ctx.dmin, ctx.dmin + d, static_cast<std::uint16_t>(0));
  std::fill(ctx.dmax, ctx.dmax + d, static_cast<std::uint16_t>(0));

  double root_sum = 0.0;
  for (std::size_t i = 0; i < ctx.n_rows; ++i) root_sum += y[ctx.rows[i]];
  if (ctx.n_rows * d < 2 * total_bins) {
    // Fit is small relative to the histogram width: direct mode throughout.
    build_hist(ctx, 0, ctx.n_rows, root_sum, nullptr, 0);
  } else {
    Histogram root = ctx.acquire();
    ctx.ops->hist_accumulate(bins.row_codes(0), d, ctx.offsets, ctx.rows,
                             ctx.n_rows, y.data(), root.sum, root.count,
                             total_bins);
    build_hist(ctx, 0, ctx.n_rows, root_sum, &root, 0);
  }
  importance_ = std::move(ctx.importance);
}

// ---------------------------------------------------------------------------
// Shared entry points
// ---------------------------------------------------------------------------

void DecisionTreeRegressor::fit(const linalg::Matrix& x,
                                const std::vector<double>& y) {
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  fit_rows(x, y, rows);
}

void DecisionTreeRegressor::fit_rows(const linalg::Matrix& x,
                                     const std::vector<double>& y,
                                     const std::vector<std::size_t>& rows) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(!rows.empty(), "cannot fit tree on zero rows");
  for (auto r : rows) CCPRED_CHECK_MSG(r < x.rows(), "row index out of range");

  if (options_.split_mode == SplitMode::kHistogram) {
    // Standalone histogram fit: bin here. Ensembles bin once and call
    // fit_binned directly.
    const FeatureBins bins = FeatureBins::build(x, options_.max_bins);
    fit_binned(bins, y, rows);
    return;
  }

  nodes_.clear();
  BuildContext ctx;
  ctx.x = &x;
  ctx.y = &y;
  ctx.importance.assign(x.cols(), 0.0);
  ctx.effective_max_depth =
      options_.max_depth == 0 ? 64 : options_.max_depth;
  ctx.max_features = options_.max_features;
  ctx.rng = Rng(options_.seed);

  std::vector<std::size_t> root_rows = rows;
  build(ctx, root_rows, 0);
  importance_ = std::move(ctx.importance);
}

std::vector<double> DecisionTreeRegressor::feature_importances() const {
  CCPRED_CHECK_MSG(is_fitted(), "feature_importances before fit");
  std::vector<double> out = importance_;
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (auto& v : out) v /= total;
  }
  return out;
}

DecisionTreeRegressor DecisionTreeRegressor::from_parts(
    TreeOptions options, std::vector<TreeNode> nodes,
    std::vector<double> raw_importance) {
  CCPRED_CHECK_MSG(!nodes.empty(), "a fitted tree needs at least one node");
  for (const auto& node : nodes) {
    if (node.is_leaf()) continue;
    CCPRED_CHECK_MSG(node.left >= 0 &&
                         node.left < static_cast<int>(nodes.size()) &&
                         node.right >= 0 &&
                         node.right < static_cast<int>(nodes.size()),
                     "tree child index out of range");
  }
  DecisionTreeRegressor tree(options);
  tree.nodes_ = std::move(nodes);
  tree.importance_ = std::move(raw_importance);
  return tree;
}

double DecisionTreeRegressor::predict_row(const double* row) const {
  int i = 0;
  while (!nodes_[i].is_leaf()) {
    i = row[nodes_[i].feature] <= nodes_[i].threshold ? nodes_[i].left
                                                      : nodes_[i].right;
  }
  return nodes_[i].value;
}

std::vector<double> DecisionTreeRegressor::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(is_fitted(), "DecisionTreeRegressor::predict before fit");
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict_row(x.row_ptr(i));
  return out;
}

std::unique_ptr<Regressor> DecisionTreeRegressor::clone() const {
  return std::make_unique<DecisionTreeRegressor>(options_);
}

const std::string& DecisionTreeRegressor::name() const {
  static const std::string n = "DT";
  return n;
}

int DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flattened representation.
  std::vector<std::pair<int, int>> stack = {{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[i].is_leaf()) {
      stack.push_back({nodes_[i].left, d + 1});
      stack.push_back({nodes_[i].right, d + 1});
    }
  }
  return max_depth;
}

void DecisionTreeRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    const int iv = static_cast<int>(std::lround(value));
    if (key == "max_depth") {
      CCPRED_CHECK_MSG(iv >= 0, "max_depth must be >= 0");
      options_.max_depth = iv;
    } else if (key == "min_samples_split") {
      CCPRED_CHECK_MSG(iv >= 2, "min_samples_split must be >= 2");
      options_.min_samples_split = iv;
    } else if (key == "min_samples_leaf") {
      CCPRED_CHECK_MSG(iv >= 1, "min_samples_leaf must be >= 1");
      options_.min_samples_leaf = iv;
    } else if (key == "max_features") {
      CCPRED_CHECK_MSG(iv >= 0, "max_features must be >= 0");
      options_.max_features = iv;
    } else if (key == "split_mode") {
      CCPRED_CHECK_MSG(iv == 0 || iv == 1,
                       "split_mode must be 0 (exact) or 1 (histogram)");
      options_.split_mode = iv == 0 ? SplitMode::kExact : SplitMode::kHistogram;
    } else if (key == "max_bins") {
      CCPRED_CHECK_MSG(iv >= 2 && iv <= 60000,
                       "max_bins must be in [2, 60000]");
      options_.max_bins = iv;
    } else {
      throw Error("DecisionTreeRegressor: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
