#include "ccpred/data/generator.hpp"

#include <algorithm>
#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/exec/task_scope.hpp"
#include "ccpred/sim/contraction.hpp"

namespace ccpred::data {
namespace {

/// Work-based cap on the node counts worth sweeping for a problem: jobs
/// saturate once per-GPU work gets small, so the campaign stops there.
int max_useful_nodes(const sim::CcsdSimulator& simulator, const Problem& p) {
  const double flops = sim::ccsd_iteration_flops(p.o, p.v);
  // ~2e13 flops of CCSD work per node keeps iterations in the tens of
  // seconds; sweeping past flops / 1e14 per node is wasted allocation.
  const double cap = flops / 1.0e14;
  const int lo = 90;
  const int hi = 900;
  const int min_feasible = simulator.min_nodes(p.o, p.v);
  return std::max(min_feasible,
                  std::clamp(static_cast<int>(cap), lo, hi));
}

/// Work-based floor: below this node count an iteration would run for tens
/// of minutes, which no measurement campaign pays for. The floor is capped
/// at `n_max`: for very large problems the raw work floor can exceed the
/// sweep ceiling, and an uncapped floor would invert the range into an
/// empty grid.
int min_useful_nodes(const sim::CcsdSimulator& simulator, const Problem& p,
                     int n_max) {
  const double flops = sim::ccsd_iteration_flops(p.o, p.v);
  const int floor_nodes = std::max(5, static_cast<int>(flops / 1.2e16));
  return std::max(simulator.min_nodes(p.o, p.v), std::min(floor_nodes, n_max));
}

}  // namespace

std::vector<int> node_grid(const sim::CcsdSimulator& simulator,
                           const Problem& p) {
  const int n_max = max_useful_nodes(simulator, p);
  const int n_min = min_useful_nodes(simulator, p, n_max);
  std::vector<int> grid;
  for (int n : simulator.machine().node_menu()) {
    if (n >= n_min && n <= n_max) grid.push_back(n);
  }
  CCPRED_CHECK_MSG(!grid.empty(), "empty node grid for O=" << p.o
                                      << " V=" << p.v);
  return grid;
}

namespace {

/// Evenly-spaced subset of `values` with at most `k` entries, always
/// keeping the first and last.
std::vector<int> evenly_spaced(const std::vector<int>& values, std::size_t k) {
  if (values.size() <= k) return values;
  std::vector<int> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t idx = i * (values.size() - 1) / (k - 1);
    out.push_back(values[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Dataset generate_dataset(const sim::CcsdSimulator& simulator,
                         const std::vector<Problem>& problems,
                         const GeneratorOptions& options) {
  CCPRED_CHECK_MSG(!problems.empty(), "need at least one problem");
  CCPRED_CHECK_MSG(options.shared_engine == nullptr ||
                       &options.shared_engine->simulator() == &simulator,
                   "shared engine must wrap the campaign's simulator");

  // Per problem, the campaign sweeps a modest grid of node counts and tile
  // sizes (batch queues are expensive) and measures configurations
  // repeatedly across the sweep — so the same (nodes, tile) point appears
  // multiple times with independent run-to-run noise, exactly like a real
  // trace collection.
  std::vector<std::vector<sim::RunConfig>> per_problem(problems.size());
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    const auto& p = problems[pi];
    const auto nodes = evenly_spaced(node_grid(simulator, p),
                                     options.max_node_values);
    // Rotate which tiles each problem sweeps so the union covers the full
    // menu while each individual campaign stays small.
    const auto& menu = simulator.machine().tile_menu();
    std::vector<int> tiles;
    const std::size_t k = std::min(options.max_tile_values, menu.size());
    for (std::size_t i = 0; i < k; ++i) {
      tiles.push_back(menu[(pi + i * menu.size() / k) % menu.size()]);
    }
    std::sort(tiles.begin(), tiles.end());
    for (int n : nodes) {
      for (int t : tiles) {
        const sim::RunConfig cfg{.o = p.o, .v = p.v, .nodes = n, .tile = t};
        if (simulator.feasible(cfg)) per_problem[pi].push_back(cfg);
      }
    }
    CCPRED_CHECK_MSG(!per_problem[pi].empty(),
                     "no feasible configurations for O=" << p.o
                         << " V=" << p.v);
  }

  // Rows per problem: equal shares of the target (largest-remainder), or
  // one measurement per configuration when no target is set.
  std::vector<std::size_t> quota(problems.size());
  if (options.target_total == 0) {
    for (std::size_t pi = 0; pi < problems.size(); ++pi) {
      quota[pi] = per_problem[pi].size();
    }
  } else {
    const std::size_t base = options.target_total / problems.size();
    std::size_t rem = options.target_total % problems.size();
    for (std::size_t pi = 0; pi < problems.size(); ++pi) {
      quota[pi] = base + (pi < rem ? 1 : 0);
    }
  }

  // Label every configuration's repeat series through the engine. Each
  // configuration draws from its own measurement stream (seeded on
  // (campaign seed, config)), so the values do not depend on engine mode,
  // evaluation order or thread count.
  sim::SimEngine local_engine(simulator,
                              sim::SimEngineOptions{.mode = options.engine_mode});
  sim::SimEngine& engine =
      options.shared_engine ? *options.shared_engine : local_engine;

  struct Item {
    std::size_t problem = 0;
    std::size_t config = 0;
    int reps = 0;
  };
  std::vector<Item> items;
  std::vector<std::vector<std::vector<double>>> series(problems.size());
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    const std::size_t n = per_problem[pi].size();
    series[pi].resize(n);
    // Round-robin repeat counts: row k of the problem goes to config k % n,
    // so config ci gets ceil/floor(quota / n) repeats.
    const std::size_t base = quota[pi] / n;
    const std::size_t rem = quota[pi] % n;
    for (std::size_t ci = 0; ci < n; ++ci) {
      const int reps = static_cast<int>(base + (ci < rem ? 1 : 0));
      if (reps > 0) items.push_back(Item{pi, ci, reps});
    }
  }

  const bool fast = engine.options().mode == sim::SimEngineMode::kFast;
  if (fast) {
    // Warm the noise-free cache in one batch (task-graph reuse across node
    // counts), then draw the per-config noise series in parallel.
    std::vector<sim::RunConfig> all;
    all.reserve(items.size());
    for (const auto& it : items) all.push_back(per_problem[it.problem][it.config]);
    engine.simulate_batch(all);
    const auto label = [&](std::size_t i) {
      const auto& it = items[i];
      series[it.problem][it.config] = engine.measured_series(
          per_problem[it.problem][it.config], options.seed, it.reps);
    };
    // Each item draws only from its own config's measurement stream, so
    // the fan-out is order-independent (the determinism suite shuffles it).
    if (engine.options().parallel &&
        items.size() >= engine.options().min_parallel_batch) {
      exec::TaskScope scope;
      scope.parallel_for(0, items.size(), label);
    } else {
      for (std::size_t i = 0; i < items.size(); ++i) label(i);
    }
  } else {
    // Reference: one from-scratch simulation per ROW (the legacy campaign
    // cost profile), serially. Values are bit-identical to the fast path
    // because every row draws from the same per-config stream.
    for (const auto& it : items) {
      auto& s = series[it.problem][it.config];
      s.resize(static_cast<std::size_t>(it.reps));
      for (int r = 0; r < it.reps; ++r) {
        s[static_cast<std::size_t>(r)] = engine.measured_time(
            per_problem[it.problem][it.config], options.seed, r);
      }
    }
  }

  // Emit rows round-robin so repeat counts differ by at most one across a
  // problem's configurations (the balanced campaign protocol).
  Dataset out;
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    const auto& configs = per_problem[pi];
    for (std::size_t k = 0; k < quota[pi]; ++k) {
      const std::size_t ci = k % configs.size();
      out.add(configs[ci], series[pi][ci][k / configs.size()]);
    }
  }
  return out;
}

Dataset paper_dataset(const sim::CcsdSimulator& simulator,
                      std::uint64_t seed) {
  GeneratorOptions opt;
  opt.seed = seed;
  opt.target_total = paper_total_rows(simulator.machine().name);
  return generate_dataset(simulator, problems_for(simulator.machine().name),
                          opt);
}

std::size_t paper_total_rows(const std::string& machine_name) {
  if (machine_name == "aurora") return 2329;
  if (machine_name == "frontier") return 2454;
  throw Error("unknown machine name: " + machine_name);
}

std::size_t paper_test_rows(const std::string& machine_name) {
  if (machine_name == "aurora") return 583;
  if (machine_name == "frontier") return 614;
  throw Error("unknown machine name: " + machine_name);
}

}  // namespace ccpred::data
