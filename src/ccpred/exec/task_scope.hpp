#pragma once

/// \file task_scope.hpp
/// Structured fork/join over the shared ThreadPool.
///
/// TaskScope is the executor layer's scheduling front end: it wraps
/// TaskGroup with the conventions every ccpred engine already follows
/// informally, so campaign generation, sweep rounds and forest fits stop
/// re-implementing them —
///
///  * structured concurrency: tasks forked through a scope are joined by
///    the same scope (wait() or destruction), and the first task exception
///    is rethrown at the join point;
///  * deterministic data-parallel loops: parallel_for partitions indices
///    statically, so as long as iteration i derives its randomness from
///    task_seed(base, i) the result is bitwise identical at any worker
///    count — including the serial fallback used when already inside a
///    parallel region;
///  * per-chunk Arena scratch: the arena overload hands each worker chunk
///    a bump allocator that is reused (reset, not reallocated) across
///    calls, removing per-iteration malloc from hot loops;
///  * shuffle injection for tests: set_shuffle_for_testing(seed) runs
///    loops in a seed-derived random order. Correct engines are iteration-
///    order independent, so the determinism suite shuffles with seeds
///    1/7/42 and asserts bit-identical outputs.
///
/// A scope is single-owner: one thread forks and the same thread joins.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ccpred/common/thread_pool.hpp"
#include "ccpred/exec/arena.hpp"

namespace ccpred::exec {

class TaskScope {
 public:
  /// Binds the scope to `pool` (nullptr means the process-global pool).
  explicit TaskScope(ThreadPool* pool = nullptr);

  /// Joins outstanding forked tasks; a still-pending exception is dropped
  /// (destructors must not throw) — call wait() to observe it.
  ~TaskScope() = default;

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

  /// Forks one task into the scope.
  void fork(std::function<void()> task);

  /// Joins every task forked so far; rethrows the first task exception.
  /// The scope is reusable afterwards.
  void wait();

  /// Runs body(i) for i in [begin, end) across the pool and joins before
  /// returning. Statically chunked like ccpred::parallel_for; serializes
  /// when nested inside another parallel region. Honors the test-only
  /// shuffle knob.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Arena overload: body(i, arena) runs with a per-chunk bump allocator.
  /// Arenas are owned by the scope and reused across calls; each chunk's
  /// arena is reset before the chunk starts, so allocations made in one
  /// call do not survive into the next.
  void parallel_for(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, Arena&)>& body);

  ThreadPool& pool() { return *pool_; }

  /// Derives the RNG stream seed for task `index` of a loop seeded with
  /// `base`. Distinct indices land in distinct splitmix64 streams, so a
  /// task's randomness depends only on (base, index) — never on which
  /// worker ran it or in what order.
  static std::uint64_t task_seed(std::uint64_t base, std::uint64_t index);

  /// Test hook: a non-zero seed makes every subsequent parallel_for visit
  /// its indices in a seed-derived random order (in both the pooled and
  /// serial paths); 0 restores natural order. Process-global, not
  /// thread-safe against in-flight loops — set it between runs.
  static void set_shuffle_for_testing(std::uint64_t seed);

 private:
  /// Visiting order for [begin, end): natural, or a Fisher–Yates
  /// permutation when the shuffle knob is armed.
  static std::vector<std::size_t> iteration_order(std::size_t begin,
                                                  std::size_t end);

  /// Shared loop driver; `arena` is null unless `with_arenas`.
  void run_loop(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t, Arena*)>& body,
                bool with_arenas);

  ThreadPool* pool_;
  TaskGroup group_;
  /// One arena per worker chunk, grown on demand and reused across calls.
  std::vector<std::unique_ptr<Arena>> arenas_;
};

}  // namespace ccpred::exec
