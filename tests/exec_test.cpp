/// \file exec_test.cpp
/// Executor-layer lockdown: differential/property tests for
/// exec::ShardedMemoCache against a single-map reference model (serial and
/// 8-thread, TSAN-clean), single-flight semantics, TaskScope structure
/// (coverage, exception propagation, per-chunk arenas, seed derivation),
/// the shuffle-injection determinism suite for every engine rewired onto
/// the layer (campaign generation, STQ/BQ sweeps, RF fits), Arena edge
/// cases, and the kDefaultShards derivation shared by SimCache and
/// SweepCache — including behavior at non-default shard counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <latch>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/exec/arena.hpp"
#include "ccpred/exec/engine_mode.hpp"
#include "ccpred/exec/sharded_cache.hpp"
#include "ccpred/exec/task_scope.hpp"
#include "ccpred/guidance/optimal.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/serve/sweep_cache.hpp"
#include "ccpred/sim/sim_engine.hpp"
#include "ccpred/simd/simd.hpp"

namespace ccpred {
namespace {

using exec::Arena;
using exec::ShardedMemoCache;
using exec::TaskScope;

/// Restores the no-shuffle default even when a test assertion fails.
struct ShuffleGuard {
  explicit ShuffleGuard(std::uint64_t seed) {
    TaskScope::set_shuffle_for_testing(seed);
  }
  ~ShuffleGuard() { TaskScope::set_shuffle_for_testing(0); }
};

// ---------------------------------------------------------------------------
// ShardedMemoCache vs single-map reference model
// ---------------------------------------------------------------------------

/// Serial differential test: a randomized interleaving of every cache
/// operation must leave the sharded cache observably identical to a plain
/// unordered_map driven by the same semantics (insert = first writer wins,
/// put = overwrite, get_or_compute = memoize).
TEST(ShardedMemoCacheTest, DifferentialAgainstReferenceModel) {
  ShardedMemoCache<std::uint64_t, double> cache(4);
  std::unordered_map<std::uint64_t, double> model;

  std::uint64_t state = 42;
  const auto next = [&state] { return exec::splitmix64(state += 1); };

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = next() % 257;  // small key space forces hits
    const double value = static_cast<double>(step);
    switch (next() % 5) {
      case 0: {  // insert: first writer wins
        cache.insert(key, value);
        model.emplace(key, value);
        break;
      }
      case 1: {  // put: overwrite
        cache.put(key, value);
        model[key] = value;
        break;
      }
      case 2: {  // lookup
        double got = 0.0;
        const bool hit = cache.lookup(key, &got);
        const auto it = model.find(key);
        ASSERT_EQ(hit, it != model.end()) << "key " << key;
        if (hit) {
          ASSERT_EQ(got, it->second) << "key " << key;
        }
        break;
      }
      case 3: {  // get_or_compute: memoize
        const double got = cache.get_or_compute(key, [&] { return value; });
        const auto [it, inserted] = model.emplace(key, value);
        ASSERT_EQ(got, it->second) << "key " << key;
        (void)inserted;
        break;
      }
      default: {  // erase_if on a key-range predicate
        const std::uint64_t cut = next() % 257;
        const auto pred = [cut](const std::uint64_t& k) {
          return k % 17 == cut % 17;
        };
        const std::size_t dropped = cache.erase_if(pred);
        std::size_t expected = 0;
        for (auto it = model.begin(); it != model.end();) {
          if (pred(it->first)) {
            it = model.erase(it);
            ++expected;
          } else {
            ++it;
          }
        }
        ASSERT_EQ(dropped, expected);
        break;
      }
    }
    ASSERT_EQ(cache.size(), model.size());
  }

  // Full sweep: every surviving key agrees; no phantom entries.
  for (const auto& [key, value] : model) {
    double got = 0.0;
    ASSERT_TRUE(cache.lookup(key, &got));
    ASSERT_EQ(got, value);
  }
}

/// 8-thread differential test (run under TSAN in CI). Values are derived
/// from keys, so every interleaving must converge to the same map; the
/// reference model is checked post-join.
TEST(ShardedMemoCacheTest, EightThreadMixedWorkloadConverges) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 101;
  const auto value_of = [](std::uint64_t k) {
    return static_cast<double>(exec::splitmix64(k));
  };

  ShardedMemoCache<std::uint64_t, double> cache(exec::kDefaultShards);
  std::atomic<std::uint64_t> mismatches{0};
  std::latch start(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      std::uint64_t state = 1000 + static_cast<std::uint64_t>(t);
      for (int step = 0; step < 4000; ++step) {
        const std::uint64_t key = exec::splitmix64(state += 1) % kKeys;
        switch (exec::splitmix64(state += 1) % 3) {
          case 0:
            cache.insert(key, value_of(key));
            break;
          case 1: {
            double got = 0.0;
            if (cache.lookup(key, &got) && got != value_of(key)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          default: {
            const double got =
                cache.get_or_compute(key, [&] { return value_of(key); });
            if (got != value_of(key)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(cache.size(), static_cast<std::size_t>(kKeys));
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    double got = 0.0;
    if (cache.lookup(k, &got)) {
      EXPECT_EQ(got, value_of(k));
    }
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, cache.size());
  EXPECT_GT(st.hits, 0u);
}

/// Single-flight: concurrent get_or_compute for one cold key runs the
/// compute exactly once; every other caller either coalesces onto the
/// in-flight computation or hits the freshly inserted entry.
TEST(ShardedMemoCacheTest, SingleFlightComputesOnce) {
  constexpr int kThreads = 8;
  ShardedMemoCache<int, double> cache;
  std::atomic<int> invocations{0};
  std::latch start(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<double> results(kThreads, 0.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      results[t] = cache.get_or_compute(7, [&] {
        invocations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        return 3.5;
      });
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(invocations.load(), 1);
  for (double r : results) EXPECT_EQ(r, 3.5);
  const auto st = cache.stats();
  // One miss computed; the other callers were hits or coalesced waiters.
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits + st.coalesced, static_cast<std::uint64_t>(kThreads - 1));
}

/// A throwing compute must not wedge the in-flight slot: the exception
/// propagates to the computing caller and the key stays computable.
TEST(ShardedMemoCacheTest, GetOrComputeSurvivesThrowingCompute) {
  ShardedMemoCache<int, double> cache;
  EXPECT_THROW(cache.get_or_compute(
                   1, []() -> double { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get_or_compute(1, [] { return 2.0; }), 2.0);
  double got = 0.0;
  EXPECT_TRUE(cache.lookup(1, &got));
  EXPECT_EQ(got, 2.0);
}

/// Observable behavior must not depend on the shard count: the same
/// operation sequence against 1, 5 and 16 shards yields identical results.
TEST(ShardedMemoCacheTest, ShardCountIsNotObservable) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{5},
                                   exec::kDefaultShards}) {
    ShardedMemoCache<std::uint64_t, double> cache(shards);
    ASSERT_EQ(cache.shard_count(), shards);
    for (std::uint64_t k = 0; k < 64; ++k) {
      cache.insert(k, static_cast<double>(k) * 1.5);
    }
    cache.erase_if([](const std::uint64_t& k) { return k % 3 == 0; });
    std::size_t present = 0;
    for (std::uint64_t k = 0; k < 64; ++k) {
      double got = 0.0;
      if (cache.lookup(k, &got)) {
        ASSERT_NE(k % 3, 0u);
        ASSERT_EQ(got, static_cast<double>(k) * 1.5);
        ++present;
      }
    }
    ASSERT_EQ(cache.size(), present);
    ASSERT_EQ(present, 64u - 22u);  // 22 multiples of 3 in [0, 64)
  }
}

// ---------------------------------------------------------------------------
// Shared shard-count derivation (exec::kDefaultShards)
// ---------------------------------------------------------------------------

TEST(DefaultShardsTest, SimCacheAndSweepCacheDeriveFromOneConstant) {
  EXPECT_EQ(sim::SimCache().shard_count(), exec::kDefaultShards);
  EXPECT_EQ(serve::SweepCache(64).shard_count(), exec::kDefaultShards);
  // SweepCache clamps shards to capacity so every shard holds >= 1 sweep.
  EXPECT_EQ(serve::SweepCache(4).shard_count(), 4u);
  // Explicit overrides are honored.
  EXPECT_EQ(sim::SimCache(5).shard_count(), 5u);
  EXPECT_EQ(serve::SweepCache(64, 3).shard_count(), 3u);
}

TEST(DefaultShardsTest, SimCacheBehavesIdenticallyAtNonDefaultShards) {
  sim::SimCache::Key key;
  key.machine = sim::SimCache::machine_tag("aurora");
  std::vector<sim::SimCache::Key> keys;
  for (int o = 10; o < 30; ++o) {
    key.o = o;
    key.v = 4 * o;
    key.nodes = o % 7 + 1;
    key.tile = 20 + o % 3;
    keys.push_back(key);
  }
  sim::SimCache def;  // 16 shards
  sim::SimCache odd(5);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    def.insert(keys[i], static_cast<double>(i));
    odd.insert(keys[i], static_cast<double>(i));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    double a = -1.0;
    double b = -2.0;
    ASSERT_TRUE(def.lookup(keys[i], &a));
    ASSERT_TRUE(odd.lookup(keys[i], &b));
    ASSERT_EQ(a, b);
  }
  EXPECT_EQ(def.stats().entries, odd.stats().entries);
}

TEST(DefaultShardsTest, SweepCacheInvalidateAtNonDefaultShards) {
  // Per-shard capacity is the even share (72 / 3 = 24), so even if every
  // key hashed to one shard nothing could be evicted mid-test.
  serve::SweepCache cache(72, 3);
  ASSERT_EQ(cache.shard_count(), 3u);
  const auto sweep = std::make_shared<const guide::Recommendation>();
  std::size_t aurora_gb = 0;
  for (int o = 0; o < 6; ++o) {
    for (const char* machine : {"aurora", "frontier"}) {
      for (const char* kind : {"gb", "rf"}) {
        serve::SweepKey key{machine, kind, 1, 10 + o, 40 + o};
        cache.put(key, sweep);
        if (std::string(machine) == "aurora" && std::string(kind) == "gb") {
          ++aurora_gb;
        }
      }
    }
  }
  const std::size_t before = cache.size();
  ASSERT_EQ(before, 24u);
  ASSERT_EQ(aurora_gb, 6u);
  EXPECT_EQ(cache.invalidate("aurora", "gb"), aurora_gb);
  EXPECT_EQ(cache.size(), before - aurora_gb);
  EXPECT_EQ(cache.get(serve::SweepKey{"aurora", "gb", 1, 10, 40}), nullptr);
  EXPECT_NE(cache.get(serve::SweepKey{"aurora", "rf", 1, 10, 40}), nullptr);
}

// ---------------------------------------------------------------------------
// TaskScope
// ---------------------------------------------------------------------------

TEST(TaskScopeTest, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  TaskScope scope;
  scope.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(TaskScopeTest, ParallelForPropagatesExceptions) {
  TaskScope scope;
  EXPECT_THROW(scope.parallel_for(0, 64,
                                  [&](std::size_t i) {
                                    if (i == 33) {
                                      throw std::runtime_error("task 33");
                                    }
                                  }),
               std::runtime_error);
}

TEST(TaskScopeTest, ArenaOverloadHandsOutWritableArenas) {
  constexpr std::size_t kN = 64;
  std::vector<double> sums(kN, 0.0);
  TaskScope scope;
  scope.parallel_for(0, kN, [&](std::size_t i, Arena& arena) {
    double* scratch = arena.alloc_array<double>(128);
    for (int j = 0; j < 128; ++j) {
      scratch[j] = static_cast<double>(i + static_cast<std::size_t>(j));
    }
    double s = 0.0;
    for (int j = 0; j < 128; ++j) s += scratch[j];
    sums[i] = s;
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(sums[i], 128.0 * static_cast<double>(i) + 8128.0);
  }
}

TEST(TaskScopeTest, TaskSeedsAreStableAndDistinct) {
  const std::uint64_t base = 2025;
  EXPECT_EQ(TaskScope::task_seed(base, 0),
            exec::splitmix64(base + exec::kGoldenGamma));
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 256; ++i) {
    seeds.push_back(TaskScope::task_seed(base, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(TaskScopeTest, ShuffledParallelForStillCoversEveryIndex) {
  constexpr std::size_t kN = 500;
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    ShuffleGuard guard(seed);
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    TaskScope scope;
    scope.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

// ---------------------------------------------------------------------------
// Determinism suite: shuffled executor runs vs serial reference
// ---------------------------------------------------------------------------

/// Campaign generation must be bit-identical between the serial reference
/// engine and the fast engine with an adversarially shuffled task order.
TEST(ExecDeterminismTest, ShuffledCampaignMatchesReference) {
  const sim::CcsdSimulator simulator{sim::MachineModel::aurora()};
  const auto& problems = data::problems_for("aurora");

  data::GeneratorOptions ref_opt;
  ref_opt.target_total = 400;
  ref_opt.engine_mode = sim::SimEngineMode::kReference;
  const data::Dataset reference =
      data::generate_dataset(simulator, problems, ref_opt);

  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    ShuffleGuard guard(seed);
    data::GeneratorOptions fast_opt = ref_opt;
    fast_opt.engine_mode = sim::SimEngineMode::kFast;
    const data::Dataset shuffled =
        data::generate_dataset(simulator, problems, fast_opt);
    ASSERT_EQ(shuffled.size(), reference.size()) << "seed " << seed;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(shuffled.config(i), reference.config(i))
          << "seed " << seed << " row " << i;
      ASSERT_EQ(shuffled.target(i), reference.target(i))
          << "seed " << seed << " row " << i;
    }
  }
}

/// STQ/BQ objective sweeps must not depend on the shuffled fan-out order.
TEST(ExecDeterminismTest, ShuffledSweepsMatchReference) {
  const sim::CcsdSimulator simulator{sim::MachineModel::aurora()};
  data::GeneratorOptions opt;
  opt.target_total = 400;
  const data::Dataset dataset =
      data::generate_dataset(simulator, data::problems_for("aurora"), opt);
  // The parallel sweep path only engages at >= 8 problem groups.
  ASSERT_GE(dataset.problems().size(), 8u);

  for (const auto objective :
       {guide::Objective::kShortestTime, guide::Objective::kNodeHours}) {
    const auto reference =
        guide::sweep_optimal_values(dataset, dataset.targets(), objective);
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      ShuffleGuard guard(seed);
      const auto shuffled =
          guide::sweep_optimal_values(dataset, dataset.targets(), objective);
      ASSERT_EQ(shuffled.size(), reference.size());
      for (std::size_t g = 0; g < reference.size(); ++g) {
        ASSERT_EQ(shuffled[g].o, reference[g].o);
        ASSERT_EQ(shuffled[g].v, reference[g].v);
        ASSERT_EQ(shuffled[g].rows, reference[g].rows);
        ASSERT_EQ(shuffled[g].values, reference[g].values);
        ASSERT_EQ(shuffled[g].best.row, reference[g].best.row);
        ASSERT_EQ(shuffled[g].best.value, reference[g].best.value);
      }
    }
  }
}

/// Random-forest fits fan member trees over TaskScope; per-tree randomness
/// derives only from the member's seed, so a shuffled fit must produce a
/// bit-identical forest.
TEST(ExecDeterminismTest, ShuffledForestFitMatchesReference) {
  const sim::CcsdSimulator simulator{sim::MachineModel::aurora()};
  data::GeneratorOptions opt;
  opt.target_total = 300;
  const data::Dataset dataset =
      data::generate_dataset(simulator, data::problems_for("aurora"), opt);
  const linalg::Matrix x = dataset.features();
  const std::vector<double>& y = dataset.targets();

  ml::TreeOptions tree_opt;
  tree_opt.max_depth = 6;
  tree_opt.split_mode = ml::SplitMode::kHistogram;
  ml::RandomForestRegressor reference(16, tree_opt);
  reference.fit(x, y);
  const auto ref_pred = reference.predict(x);
  const auto ref_imp = reference.feature_importances();

  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    ShuffleGuard guard(seed);
    ml::RandomForestRegressor shuffled(16, tree_opt);
    shuffled.fit(x, y);
    ASSERT_EQ(shuffled.predict(x), ref_pred) << "seed " << seed;
    ASSERT_EQ(shuffled.feature_importances(), ref_imp) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Arena edge cases
// ---------------------------------------------------------------------------

TEST(ArenaTest, ZeroSizeAllocationsAreValidAndFree) {
  Arena arena(1024);
  void* a = arena.allocate(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % kCacheLineAlign, 0u);
  EXPECT_EQ(arena.used(), 0u);
  void* b = arena.allocate(0);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena.heap_fallbacks(), 0u);
}

TEST(ArenaTest, DefaultAlignmentIsCacheLine) {
  Arena arena;
  for (int i = 0; i < 10; ++i) {
    void* p = arena.allocate(24);  // deliberately not a multiple of 64
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineAlign, 0u);
  }
  double* d = arena.alloc_array<double>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % kCacheLineAlign, 0u);
}

TEST(ArenaTest, LargeAlignmentsAreHonored) {
  Arena arena(1 << 14);
  for (const std::size_t align : {std::size_t{128}, std::size_t{256},
                                  std::size_t{512}}) {
    void* p = arena.allocate(100, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
  }
  EXPECT_EQ(arena.heap_fallbacks(), 0u);
}

TEST(ArenaTest, OverCapacityFallsBackToHeap) {
  Arena arena(256);
  // Fits in the buffer: no fallback.
  void* small = arena.allocate(64);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(arena.heap_fallbacks(), 0u);
  // Does not fit: heap fallback, still aligned and fully writable.
  auto* big = static_cast<unsigned char*>(arena.allocate(4096, 128));
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 128, 0u);
  for (int i = 0; i < 4096; ++i) big[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(arena.heap_fallbacks(), 1u);
  // reset() frees the overflow block; the counter stays cumulative.
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  ASSERT_NE(arena.allocate(4096), nullptr);
  EXPECT_EQ(arena.heap_fallbacks(), 2u);
}

TEST(ArenaTest, ResetReplaysIdenticalPointerSequence) {
  Arena arena(1 << 12);
  const auto take = [&arena] {
    std::vector<void*> ptrs;
    ptrs.push_back(arena.allocate(100));
    ptrs.push_back(arena.alloc_array<double>(33));
    ptrs.push_back(arena.allocate(1, 256));
    ptrs.push_back(arena.alloc_array<std::uint32_t>(9));
    return ptrs;
  };
  const auto first = take();
  const std::size_t used = arena.used();
  arena.reset();
  const auto second = take();
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.used(), used);
}

/// Arena storage feeds SIMD kernels directly (histogram scratch, batch
/// buffers), so kernels must agree bit-for-bit between modes on
/// arena-allocated memory — this exercises the >= 64B alignment guarantee
/// end to end. (simd_test.cpp runs the same check from the kernel side.)
TEST(ArenaTest, SimdKernelsAgreeOnArenaBuffers) {
  Arena arena;
  constexpr std::size_t kBins = 777;  // odd size: exercises vector tails
  double* sum_a = arena.alloc_array<double>(kBins);
  double* sum_b = arena.alloc_array<double>(kBins);
  std::uint32_t* cnt_a = arena.alloc_array<std::uint32_t>(kBins);
  std::uint32_t* cnt_b = arena.alloc_array<std::uint32_t>(kBins);
  double* osum = arena.alloc_array<double>(kBins);
  std::uint32_t* ocnt = arena.alloc_array<std::uint32_t>(kBins);
  for (std::size_t i = 0; i < kBins; ++i) {
    const double v = static_cast<double>(exec::splitmix64(i)) / 1e18;
    sum_a[i] = sum_b[i] = 10.0 + v;
    cnt_a[i] = cnt_b[i] = static_cast<std::uint32_t>(i * 3 + 7);
    osum[i] = v;
    ocnt[i] = static_cast<std::uint32_t>(i);
  }
  simd::ops_for(simd::Mode::kScalar)
      .hist_subtract(sum_a, cnt_a, osum, ocnt, kBins);
  simd::ops_for(simd::Mode::kAvx2)
      .hist_subtract(sum_b, cnt_b, osum, ocnt, kBins);
  for (std::size_t i = 0; i < kBins; ++i) {
    ASSERT_EQ(sum_a[i], sum_b[i]) << i;
    ASSERT_EQ(cnt_a[i], cnt_b[i]) << i;
  }
}

}  // namespace
}  // namespace ccpred
