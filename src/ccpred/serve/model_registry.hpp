#pragma once

/// \file model_registry.hpp
/// Artifact-backed model store for the serving layer: train once per
/// (machine, model-kind), publish "<machine>-<kind>.model" into a
/// directory, and every server process serves from it. The registry
/// hot-reloads when the artifact's mtime changes (a newer campaign was
/// published) and falls back to train-and-cache when an artifact is
/// missing, so a fresh deployment bootstraps itself.
///
/// Degraded mode (stale-while-revalidate): when a hot reload fails — the
/// new artifact is unreadable, corrupt, or has vanished — the registry
/// keeps serving the last successfully loaded model with `stale` set on
/// the handle instead of erroring, and counts the failure. A failed
/// publish is retried only when the artifact's mtime changes again, so a
/// corrupt file costs one load attempt per publish, not one per request.
///
/// Change detection is content-aware, not mtime-only. Each entry stores a
/// 64-bit content hash of the loaded artifact:
///  * an in-process publisher (the online promotion pipeline) calls
///    note_published() after writing; the next get() rechecks the content
///    hash even when the mtime is unchanged, so republishing twice within
///    the filesystem's mtime granularity is never silently missed;
///  * a publish that changes the mtime but not the bytes (touch, identical
///    re-publish) is absorbed without a version bump, so cached sweeps
///    stay valid instead of being invalidated for nothing.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ccpred/core/regressor.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"

namespace ccpred::serve {

/// The simulator for a machine name ("aurora" | "frontier"); throws
/// ccpred::Error on anything else. Shared by the registry's fallback
/// training and the server's sweep enumeration.
sim::CcsdSimulator simulator_for(const std::string& machine);

/// Registry knobs; the defaults match the paper's production models, the
/// small values are for tests and benches.
struct RegistryOptions {
  bool hot_reload = true;          ///< stat() artifacts on every get()
  std::size_t fallback_rows = 600; ///< campaign size for train-and-cache
  std::uint64_t fallback_seed = 2025;
  int gb_estimators = 750;  ///< boosting stages for fallback-trained GB
  int rf_estimators = 100;  ///< trees for fallback-trained RF
};

/// A loaded model plus its identity. `version` increments globally on every
/// (re)load, so a sweep cached under version N can never be served from a
/// newer model. The shared_ptr keeps an in-flight sweep's model alive
/// across a concurrent hot-reload.
struct ModelHandle {
  std::shared_ptr<const ml::Regressor> model;
  std::uint64_t version = 0;
  std::string machine;
  std::string kind;  ///< "gb" | "rf"
  std::string path;  ///< artifact the model came from
  bool stale = false;  ///< last-good model served after a failed reload
};

/// Thread-safe registry of serialized models in one artifact directory.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string artifact_dir,
                         RegistryOptions options = {});

  /// The model for (machine, kind), loading / hot-reloading / fallback-
  /// training as needed. kind is "gb" or "rf". Throws ccpred::Error for
  /// unknown machines or kinds, or corrupt artifacts.
  ModelHandle get(const std::string& machine, const std::string& kind);

  /// Trains the fallback model for (machine, kind) on a fresh simulated
  /// campaign and writes the artifact (overwriting any existing one).
  /// Returns the artifact path. Used by `ccpred_serverd train` and by
  /// get()'s missing-artifact fallback.
  std::string train_artifact(const std::string& machine,
                             const std::string& kind);

  /// Artifact path for (machine, kind): "<dir>/<machine>-<kind>.model".
  std::string artifact_path(const std::string& machine,
                            const std::string& kind) const;

  const std::string& artifact_dir() const { return dir_; }
  const RegistryOptions& options() const { return options_; }

  /// Tells the registry (machine, kind) was just republished in-process.
  /// The next get() verifies the artifact's content hash even if the mtime
  /// is unchanged — the promotion pipeline calls this after every atomic
  /// artifact swap so back-to-back promotions within the filesystem's
  /// mtime granularity are still picked up.
  void note_published(const std::string& machine, const std::string& kind);

  /// Total artifact (re)loads since construction.
  std::uint64_t loads() const;
  /// Total train-and-cache fallbacks taken since construction.
  std::uint64_t trainings() const;
  /// Total failed artifact load attempts (corrupt/unreadable/injected).
  std::uint64_t reload_failures() const;
  /// Publishes whose bytes were unchanged and were absorbed without a
  /// version bump (mtime touch, identical re-publish).
  std::uint64_t hash_skips() const;

  /// Arms the kArtifactRead injection point: artifact loads throw with the
  /// injected probability. The injector must outlive the registry; pass
  /// nullptr to disarm. Not thread-safe against concurrent get() — arm
  /// before serving starts.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

 private:
  struct Entry {
    ModelHandle handle;
    std::int64_t mtime_ns = 0;  ///< artifact mtime at load, for hot reload
    std::int64_t failed_mtime_ns = 0;  ///< mtime of a publish that failed
    std::uint64_t content_hash = 0;    ///< FNV-1a of the loaded artifact
    std::uint64_t loaded_gen = 0;      ///< published_gen_ seen at load
  };

  /// Loads the artifact at `path` into a fresh handle (caller holds lock).
  /// Every load attempt hashes the bytes first via hash_artifact_locked()
  /// — which is where the fault injector is consulted — so this only
  /// parses.
  ModelHandle load_locked(const std::string& machine, const std::string& kind,
                          const std::string& path);

  /// Hashes the artifact bytes. Consults the kArtifactRead injection point
  /// (one arrival per reload attempt) and throws on a fired fault or an
  /// unreadable file — the caller's degraded path handles both the same.
  std::uint64_t hash_artifact_locked(const std::string& path) const;

  std::uint64_t published_gen_locked(const std::string& key) const;

  std::string dir_;
  RegistryOptions options_;
  FaultInjector* fault_ = nullptr;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< keyed "machine/kind"
  std::map<std::string, std::uint64_t> published_gen_;  ///< bumped per publish
  std::uint64_t next_version_ = 1;
  std::uint64_t loads_ = 0;
  std::uint64_t trainings_ = 0;
  std::uint64_t reload_failures_ = 0;
  std::uint64_t hash_skips_ = 0;
};

}  // namespace ccpred::serve
