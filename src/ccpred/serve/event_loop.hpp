#pragma once

/// \file event_loop.hpp
/// Non-blocking TCP front end for the serving layer: one epoll-driven loop
/// thread owns every connection, so a slow (or dead, or malicious) client
/// costs a buffer, never a thread. The loop speaks both protocols on the
/// same port, telling them apart from the first byte of each message
/// (wire frames open with 0xC3, JSON lines with '{'):
///
///   client bytes -> per-connection read buffer -> incremental parse
///     -> dispatch callback (hands work to the Server's pool)
///     -> worker finishes -> completion queue + eventfd wakeup
///     -> loop stitches responses back in request order -> write buffer
///
/// Responses are delivered strictly in the order requests arrived on the
/// connection (per-connection sequence numbers; out-of-order completions
/// park until their turn), because line-JSON has no request/response
/// correlation ids — clients match by position.
///
/// Edge-triggered epoll everywhere: every readiness edge is drained to
/// EAGAIN. The loop never blocks on client sockets; a client that stops
/// reading accumulates a write buffer until `max_outbuf_bytes` and is then
/// disconnected (slow-loris back-pressure).
///
/// Completion hand-off outlives the server object safely: workers push
/// into a shared sink that the destructor marks closed before any fd is
/// torn down, so a completion landing after shutdown is dropped instead of
/// touching dead state.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ccpred/serve/protocol.hpp"

namespace ccpred::serve {

struct EventLoopOptions {
  int port = 0;      ///< 0 = kernel-assigned ephemeral port (see port())
  int backlog = -1;  ///< listen(2) backlog; < 0 = SOMAXCONN
  std::size_t max_line_bytes = 1u << 20;    ///< longest unterminated line
  std::size_t max_outbuf_bytes = 16u << 20;  ///< per-connection write cap
  /// Per-connection read-buffer cap; a connection exceeding it is closed
  /// and counted in overflow_closes. 0 = derived default
  /// (max_line_bytes + two max-size wire frames).
  std::size_t max_inbuf_bytes = 0;

  /// The effective read-buffer cap after resolving the 0 default.
  std::size_t effective_inbuf_bytes() const;
};

/// Loop-side counters (request/error accounting lives in the Server).
struct EventLoopStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t requests_in = 0;    ///< individual requests, both protocols
  std::uint64_t frames_in = 0;      ///< binary frames parsed
  std::uint64_t lines_in = 0;       ///< JSON lines parsed
  std::uint64_t protocol_errors = 0;  ///< parse failures answered ok=false
  std::uint64_t overflow_closes = 0;  ///< connections dropped at a buffer cap
};

/// See file comment. The dispatch callbacks must enqueue work and return
/// quickly — they run on the loop thread. Completions may be invoked from
/// any thread (including synchronously from inside dispatch, e.g. when the
/// server sheds the request).
class EventLoopServer {
 public:
  using Completion = std::function<void(Response)>;
  using Dispatch = std::function<void(Request, Completion)>;
  using BatchCompletion = std::function<void(std::vector<Response>)>;
  using BatchDispatch = std::function<void(std::vector<Request>, BatchCompletion)>;

  /// Binds, listens and starts the loop thread. `batch_dispatch` handles a
  /// whole binary frame as one unit (one pool hand-off per frame); when
  /// null, frames fan out through `dispatch` per record. Throws
  /// ccpred::Error if the socket cannot be set up.
  explicit EventLoopServer(Dispatch dispatch,
                           BatchDispatch batch_dispatch = nullptr,
                           EventLoopOptions options = {});

  /// Stops the loop and closes every connection. In-flight completions
  /// from workers are dropped safely.
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// The bound port (useful with options.port = 0).
  int port() const { return port_; }

  EventLoopStats stats() const;

 private:
  struct Connection;
  struct Sink;

  void loop();
  void accept_ready();
  void wake_ready();
  void conn_readable(Connection* conn);
  void parse_input(Connection* conn);
  /// Queues `payload` as the response to `seq` and flushes whatever is in
  /// order. Loop thread only.
  void enqueue_response(Connection* conn, std::uint64_t seq,
                        std::string payload);
  void flush_ready(Connection* conn);
  void try_write(Connection* conn);
  /// Marks the connection dead; the loop reaps (closes + frees) it at the
  /// end of the current event batch. Deferred so that no caller up the
  /// stack is left holding a freed Connection.
  void retire(Connection* conn);
  void reap();
  /// Live connection for `conn_id`, or nullptr (unknown or retired).
  Connection* find(std::uint64_t conn_id);

  Dispatch dispatch_;
  BatchDispatch batch_dispatch_;
  EventLoopOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::shared_ptr<Sink> sink_;
  std::atomic<bool> stop_{false};

  std::uint64_t next_conn_id_ = 1;
  /// Keyed by connection id, not fd: a completion for a connection that
  /// died while its request was in flight must miss, not hit a reused fd.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::vector<std::uint64_t> retired_;  ///< awaiting reap()

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> requests_in_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> lines_in_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> overflow_closes_{0};

  std::thread loop_thread_;  ///< last member: joined before fields die
};

}  // namespace ccpred::serve
