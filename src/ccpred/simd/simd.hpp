#pragma once

/// \file simd.hpp
/// Runtime-dispatched vector kernels for the hot numeric loop families.
///
/// Layout: a function-pointer table (`Ops`) per dispatch mode. `ops()`
/// returns the active table, chosen once at first use: AVX2+FMA when the
/// CPU reports both (x86 only), scalar otherwise, overridable with
/// `CCPRED_SIMD=scalar|avx2`. `ops_for()` exposes both tables so tests and
/// benches can compare the implementations directly.
///
/// Numeric contracts (enforced by tests/simd_test.cpp):
///  - `sqdist_row`, `ensemble_step`, `hist_accumulate`, `hist_subtract`,
///    `split_scan`: bit-identical results across modes. The AVX2 variants
///    keep multiply and add separate (no FMA contraction; the TU is built
///    with -ffp-contract=off) and preserve the scalar accumulation order.
///  - `rbf_exp_map`: the AVX2 path uses a Cephes-style polynomial exp
///    (measured max relative error ~3e-16 vs libm); agreement with the
///    scalar path is gated far below the engine-wide 1e-9 tolerance.
///  - `update2x4` / `update1x4`: FMA-fused multiply-adds; agreement within
///    the Cholesky kReference 1e-9 bound, not bit-identical.
///
/// Scalar kernels replicate the exact loops the fast engines shipped with
/// (PRs 2/3), so `CCPRED_SIMD=scalar` reproduces pre-SIMD behavior.

#include <cstddef>
#include <cstdint>

namespace ccpred::simd {

enum class Mode { kScalar = 0, kAvx2 = 1 };

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// CPUID-based detection (always false off x86).
CpuFeatures detect_cpu();

/// Flat traversal node, layout-compatible with CompiledEnsemble's packed
/// SoA node (16 bytes: threshold, split feature, absolute left child).
struct TravNode {
  double threshold;
  std::int32_t tfeat;
  std::int32_t left;
};

struct Ops {
  /// out[i] = exp(-gamma * dist2[i]) for i in [0, n).
  void (*rbf_exp_map)(const double* dist2, double* out, std::size_t n,
                      double gamma);

  /// out[j] = sum_k (xt[k*n + j] - row[k])^2 for j in [j0, j1).
  /// `xt` is a d x n column-major block (feature-major); accumulation is
  /// k-ascending per j, matching the row-pair reference order.
  void (*sqdist_row)(const double* xt, std::size_t n, std::size_t d,
                     const double* row, std::size_t j0, std::size_t j1,
                     double* out);

  /// One level-synchronous descent step: for each row i of the block,
  /// idx[i] = nd.left + !(row[nd.tfeat] <= nd.threshold) with nd =
  /// nodes[idx[i]]. Leaves self-absorb (+inf threshold).
  void (*ensemble_step)(const TravNode* nodes, const double* x,
                        std::size_t bn, std::size_t n_cols, std::int32_t* idx);

  /// Gradient-histogram accumulation: for each row r in rows[0..n),
  /// sum[offsets[f] + codes[r*d+f]] += y[r] and the matching count++,
  /// features in ascending order per row, rows in array order. When
  /// n >= 8 * total_bins both modes switch to 4-way-unrolled partial
  /// histograms with a deterministic ((p0+p1)+p2)+p3 merge, so results
  /// stay bit-identical across modes at every size.
  void (*hist_accumulate)(const std::uint16_t* codes, std::size_t d,
                          const int* offsets, const std::uint32_t* rows,
                          std::size_t n, const double* y, double* sum,
                          std::uint32_t* count, std::size_t total_bins);

  /// sum[i] -= osum[i], count[i] -= ocount[i] over [0, total_bins).
  void (*hist_subtract)(double* sum, std::uint32_t* count, const double* osum,
                        const std::uint32_t* ocount, std::size_t total_bins);

  /// Best-split scan over one feature's `m` candidate boundaries
  /// (bins 0..m-1 of a histogram slice). Updates *io_best_gain / *out_bin
  /// with first-strictly-greater semantics, starting from the passed-in
  /// running best; on improvement also writes the winning boundary's left
  /// prefix (sum through bin *out_bin accumulated in ascending bin order,
  /// and its row count) to *out_left_sum / *out_left_count and returns
  /// true. All-zero count blocks are skipped in every mode (their sums are
  /// exactly +0.0), so results are mode-independent bit-for-bit. Both
  /// tables currently share the scalar implementation: the scan is a
  /// serial prefix with almost no arithmetic per bin, and the measured
  /// two-pass AVX2 variant was parity at the engine's bin counts.
  bool (*split_scan)(const double* sum, const std::uint32_t* count, int m,
                     double total, std::size_t n, std::size_t min_leaf,
                     double* io_best_gain, int* out_bin, double* out_left_sum,
                     std::size_t* out_left_count);

  /// Quantile-bin code assignment: out[r*out_stride] = index of the first
  /// edge >= x[r*stride] in the ascending `edges` array (== the number of
  /// edges strictly less than the value), for r in [0, n). The result is an
  /// integer count, so modes agree bit-for-bit by construction, including
  /// values exactly equal to an edge. The scalar path is the shipped
  /// per-value binary search; the AVX2 path holds up to 64 edges in
  /// registers and counts compare-mask lanes (falling back to the scalar
  /// search above that), which measures 2.5-3.4x at the engine's edge
  /// counts because the branchy search never auto-vectorizes.
  void (*bin_codes)(const double* x, std::size_t n, std::size_t stride,
                    const double* edges, int n_edges, std::uint16_t* out,
                    std::size_t out_stride);

  /// Fused trailing update, the shared primitive of the blocked-Cholesky
  /// SYRK and panel solves: for c in [0, len),
  ///   ya[c] -= a[0]*y0[c] + a[1]*y1[c] + a[2]*y2[c] + a[3]*y3[c]
  ///   yb[c] -= b[0]*y0[c] + ...
  void (*update2x4)(double* ya, double* yb, const double* a, const double* b,
                    const double* y0, const double* y1, const double* y2,
                    const double* y3, std::size_t len);

  /// Single-destination-row variant of update2x4.
  void (*update1x4)(double* yr, const double* a, const double* y0,
                    const double* y1, const double* y2, const double* y3,
                    std::size_t len);
};

/// Active table: detected mode or `CCPRED_SIMD` override, resolved once.
const Ops& ops();

/// Explicit table access for tests and benches. `ops_for(Mode::kAvx2)` on a
/// non-AVX2 host returns the scalar table (callers should check
/// `avx2_available()` before timing comparisons).
const Ops& ops_for(Mode mode);

/// The mode `ops()` resolved to.
Mode active_mode();

/// True when the AVX2+FMA table is actually vectorized (x86 with both
/// features compiled in and present).
bool avx2_available();

const char* mode_name(Mode mode);

/// Swap the active table (tests only; not thread-safe against concurrent
/// first-use initialization).
void set_mode_for_testing(Mode mode);

}  // namespace ccpred::simd
