// Tests for the closed-loop online learning subsystem: the feedback
// buffer, drift detector and shadow evaluator in isolation; the model
// registry's content-aware republish detection (same-mtime republish,
// identical-bytes absorption); the per-verb latency surfacing; and the
// end-to-end loop — serve, report a shifted regime, drift, refit, shadow
// eval, atomic promotion, recovery — which must be fully deterministic.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/online/drift_detector.hpp"
#include "ccpred/serve/online/feedback_buffer.hpp"
#include "ccpred/serve/online/shadow_evaluator.hpp"
#include "ccpred/serve/server.hpp"
#include "test_util.hpp"

namespace ccpred::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ccpred_online_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A small fitted GB on real campaign features, fast to train.
ml::GradientBoostingRegressor campaign_gb(int stages = 15) {
  static const auto split = test::small_campaign(250);
  ml::GradientBoostingRegressor model(stages);
  model.fit(split.train.features(), split.train.targets());
  return model;
}

// ---------------------------------------------------------- FeedbackBuffer

online::MeasuredRun run_of(int o, int v, int nodes, int tile, double wall) {
  online::MeasuredRun r;
  r.o = o;
  r.v = v;
  r.nodes = nodes;
  r.tile = tile;
  r.wall_time_s = wall;
  return r;
}

TEST(FeedbackBufferTest, AcceptsDedupsAndRejects) {
  online::FeedbackBuffer buf(8);
  EXPECT_EQ(buf.add(run_of(44, 260, 16, 60, 12.5)),
            online::AddResult::kAccepted);
  // Byte-identical measurement: a client retry, not new information.
  EXPECT_EQ(buf.add(run_of(44, 260, 16, 60, 12.5)),
            online::AddResult::kDuplicate);
  // Same configuration, different noise draw: both are real measurements.
  EXPECT_EQ(buf.add(run_of(44, 260, 16, 60, 12.5000001)),
            online::AddResult::kAccepted);
  EXPECT_EQ(buf.add(run_of(44, 260, 16, 60, 0.0)),
            online::AddResult::kRejected);
  EXPECT_EQ(buf.add(run_of(44, 260, 16, 60, -3.0)),
            online::AddResult::kRejected);
  EXPECT_EQ(buf.add(run_of(44, 260, 16, 60,
                           std::numeric_limits<double>::quiet_NaN())),
            online::AddResult::kRejected);
  EXPECT_EQ(buf.add(run_of(44, 260, 16, 60,
                           std::numeric_limits<double>::infinity())),
            online::AddResult::kRejected);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.accepted(), 2u);
}

TEST(FeedbackBufferTest, EvictionFreesTheDedupKey) {
  online::FeedbackBuffer buf(2);
  buf.add(run_of(1, 2, 3, 4, 1.0));
  buf.add(run_of(1, 2, 3, 4, 2.0));
  buf.add(run_of(1, 2, 3, 4, 3.0));  // evicts the 1.0 row
  EXPECT_EQ(buf.size(), 2u);
  // The evicted row's key must be gone too: re-adding it is a fresh
  // measurement, and it in turn evicts the 2.0 row.
  EXPECT_EQ(buf.add(run_of(1, 2, 3, 4, 1.0)), online::AddResult::kAccepted);
  const auto rows = buf.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].wall_time_s, 3.0);
  EXPECT_DOUBLE_EQ(rows[1].wall_time_s, 1.0);
  // But a still-resident row stays a duplicate.
  EXPECT_EQ(buf.add(run_of(1, 2, 3, 4, 3.0)), online::AddResult::kDuplicate);
  EXPECT_EQ(buf.accepted(), 4u);  // monotonic across evictions
}

TEST(FeedbackBufferTest, SnapshotAndRecentAreChronological) {
  online::FeedbackBuffer buf(16);
  for (int i = 1; i <= 5; ++i) buf.add(run_of(1, 2, 3, 4, i));
  const auto all = buf.snapshot();
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(all[i].wall_time_s, i + 1.0);
    EXPECT_EQ(all[i].seq, static_cast<std::uint64_t>(i));
  }
  const auto last2 = buf.recent(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_DOUBLE_EQ(last2[0].wall_time_s, 4.0);
  EXPECT_DOUBLE_EQ(last2[1].wall_time_s, 5.0);
  EXPECT_EQ(buf.recent(99).size(), 5u);
}

// ----------------------------------------------------------- DriftDetector

TEST(DriftDetectorTest, ColdWindowNeverTrips) {
  online::DriftOptions opt;
  opt.window = 8;
  opt.min_samples = 4;
  opt.mape_threshold = 0.25;
  online::DriftDetector d(opt);
  EXPECT_FALSE(d.drifting());
  EXPECT_DOUBLE_EQ(d.rolling_mape(), 0.0);
  // Three wildly wrong pairs: MAPE is huge but the window is not warm.
  for (int i = 0; i < 3; ++i) d.observe(10.0, 100.0);
  EXPECT_FALSE(d.drifting());
  EXPECT_EQ(d.samples(), 3u);
}

TEST(DriftDetectorTest, TripsRecoversAndResets) {
  online::DriftOptions opt;
  opt.window = 8;
  opt.min_samples = 4;
  opt.mape_threshold = 0.25;
  online::DriftDetector d(opt);
  // |10 - 16| / 16 = 0.375 per pair.
  for (int i = 0; i < 4; ++i) d.observe(10.0, 16.0);
  EXPECT_TRUE(d.drifting());
  EXPECT_NEAR(d.rolling_mape(), 0.375, 1e-12);
  EXPECT_NEAR(d.mean_residual(), -6.0, 1e-12);  // model under-predicts

  // Accurate pairs roll the bad ones out of the window.
  for (int i = 0; i < 8; ++i) d.observe(16.0, 16.0);
  EXPECT_FALSE(d.drifting());
  EXPECT_DOUBLE_EQ(d.rolling_mape(), 0.0);
  EXPECT_EQ(d.samples(), 8u);  // capped at the window
  EXPECT_EQ(d.observed(), 12u);

  d.reset();
  EXPECT_EQ(d.samples(), 0u);
  EXPECT_EQ(d.observed(), 12u);  // monotonic across resets
  EXPECT_FALSE(d.drifting());
}

TEST(DriftDetectorTest, IgnoresUnusablePairs) {
  online::DriftDetector d(online::DriftOptions{});
  d.observe(std::numeric_limits<double>::quiet_NaN(), 10.0);
  d.observe(10.0, std::numeric_limits<double>::infinity());
  d.observe(10.0, 0.0);
  d.observe(10.0, -1.0);
  EXPECT_EQ(d.samples(), 0u);
  EXPECT_EQ(d.observed(), 0u);
}

// --------------------------------------------------------- ShadowEvaluator

/// Fixed-output model: predicts `value` everywhere.
class ConstantModel : public ml::Regressor {
 public:
  explicit ConstantModel(double value) : value_(value) {}
  void fit(const linalg::Matrix&, const std::vector<double>&) override {}
  std::vector<double> predict(const linalg::Matrix& x) const override {
    return std::vector<double>(x.rows(), value_);
  }
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<ConstantModel>(value_);
  }
  const std::string& name() const override {
    static const std::string n = "CONST";
    return n;
  }
  void set_params(const ml::ParamMap&) override {}
  bool is_fitted() const override { return true; }

 private:
  double value_;
};

TEST(ShadowEvaluatorTest, BetterCandidatePromotesWorseDoesNot) {
  std::vector<online::MeasuredRun> holdout;
  for (int i = 0; i < 4; ++i) holdout.push_back(run_of(44, 260, 16, 60, 20.0));
  const ConstantModel truth(20.0);
  const ConstantModel off_by_half(10.0);

  EXPECT_DOUBLE_EQ(online::ShadowEvaluator::mape(truth, holdout), 0.0);
  EXPECT_DOUBLE_EQ(online::ShadowEvaluator::mape(off_by_half, holdout), 0.5);

  const auto win = online::ShadowEvaluator::judge(truth, off_by_half, holdout,
                                                  /*min_improvement=*/0.0);
  EXPECT_TRUE(win.promote);
  EXPECT_DOUBLE_EQ(win.candidate_mape, 0.0);
  EXPECT_DOUBLE_EQ(win.incumbent_mape, 0.5);
  EXPECT_EQ(win.holdout_size, 4u);

  const auto lose = online::ShadowEvaluator::judge(off_by_half, truth, holdout,
                                                   /*min_improvement=*/0.0);
  EXPECT_FALSE(lose.promote);

  // A tie is not a win: promotion churn needs strict improvement.
  const auto tie = online::ShadowEvaluator::judge(
      off_by_half, ConstantModel(30.0), holdout, /*min_improvement=*/0.0);
  EXPECT_DOUBLE_EQ(tie.candidate_mape, tie.incumbent_mape);
  EXPECT_FALSE(tie.promote);
}

TEST(ShadowEvaluatorTest, MinImprovementDemandsAMargin) {
  std::vector<online::MeasuredRun> holdout;
  for (int i = 0; i < 4; ++i) holdout.push_back(run_of(44, 260, 16, 60, 20.0));
  const ConstantModel candidate(18.0);  // MAPE 0.10
  const ConstantModel incumbent(17.6);  // MAPE 0.12
  // A ~17% relative improvement: enough for a 10% bar, not for 30%.
  EXPECT_TRUE(online::ShadowEvaluator::judge(candidate, incumbent, holdout, 0.1)
                  .promote);
  EXPECT_FALSE(
      online::ShadowEvaluator::judge(candidate, incumbent, holdout, 0.3)
          .promote);
}

TEST(ShadowEvaluatorTest, EmptyHoldoutNeverPromotes) {
  const ConstantModel a(1.0), b(2.0);
  const auto verdict = online::ShadowEvaluator::judge(a, b, {}, 0.0);
  EXPECT_FALSE(verdict.promote);
  EXPECT_EQ(verdict.holdout_size, 0u);
}

// --------------------------------------- ModelRegistry republish detection

TEST(ModelRegistryOnlineTest, NotePublishedCatchesSameMtimeRepublish) {
  const auto dir = scratch_dir("registry_same_mtime");
  ModelRegistry registry(dir);
  const auto path = registry.artifact_path("aurora", "gb");
  ml::save_gb(campaign_gb(10), path);
  const auto first = registry.get("aurora", "gb");
  EXPECT_EQ(first.version, 1u);

  // Republish DIFFERENT bytes but pin the mtime back to the first
  // publish's: a second promotion landing within the filesystem's mtime
  // granularity. mtime-only change detection misses it...
  const auto stamp = fs::last_write_time(path);
  ml::save_gb(campaign_gb(20), path);
  fs::last_write_time(path, stamp);
  EXPECT_EQ(registry.get("aurora", "gb").version, 1u);

  // ...until the publisher says so: note_published() forces a content-hash
  // recheck on the next get(), which sees the new bytes and reloads.
  registry.note_published("aurora", "gb");
  const auto second = registry.get("aurora", "gb");
  EXPECT_EQ(second.version, 2u);
  EXPECT_NE(second.model, first.model);
  EXPECT_FALSE(second.stale);
  EXPECT_EQ(registry.loads(), 2u);
}

TEST(ModelRegistryOnlineTest, IdenticalBytesAbsorbedWithoutVersionBump) {
  const auto dir = scratch_dir("registry_same_bytes");
  ModelRegistry registry(dir);
  const auto path = registry.artifact_path("aurora", "gb");
  ml::save_gb(campaign_gb(10), path);
  EXPECT_EQ(registry.get("aurora", "gb").version, 1u);

  // Touch: new mtime, same bytes. A version bump here would invalidate
  // every cached sweep for nothing; the hash says nothing changed.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  fs::last_write_time(path,
                      fs::last_write_time(path) + std::chrono::seconds(2));
  EXPECT_EQ(registry.get("aurora", "gb").version, 1u);
  EXPECT_EQ(registry.hash_skips(), 1u);
  EXPECT_EQ(registry.loads(), 1u);  // absorbed: hashed but not re-parsed

  // Identical-bytes republish flagged via note_published: same outcome.
  registry.note_published("aurora", "gb");
  EXPECT_EQ(registry.get("aurora", "gb").version, 1u);
  EXPECT_EQ(registry.hash_skips(), 2u);

  // And the registry still reloads when bytes DO change afterwards.
  ml::save_gb(campaign_gb(20), path);
  fs::last_write_time(path,
                      fs::last_write_time(path) + std::chrono::seconds(4));
  EXPECT_EQ(registry.get("aurora", "gb").version, 2u);
}

// ----------------------------------------------------- per-verb latencies

TEST(ServerStatsTest, PerVerbLatencyHistogramsSurfaceThroughStats) {
  const auto dir = scratch_dir("verb_latency");
  ModelRegistry registry(dir);
  ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
  ServeOptions base;
  base.threads = 1;
  base.online.enabled = true;
  base.online.synchronous = true;
  Server server(registry, base);

  Request stq;
  stq.op = Op::kStq;
  stq.o = 44;
  stq.v = 260;
  ASSERT_TRUE(server.handle(stq).ok);
  ASSERT_TRUE(server.handle(stq).ok);
  Request job = stq;
  job.op = Op::kJob;
  job.nodes = 16;
  job.tile = 60;
  ASSERT_TRUE(server.handle(job).ok);
  Request report = job;
  report.op = Op::kReport;
  report.wall_times = {12.5};
  ASSERT_TRUE(server.handle(report).ok);
  Request stats_req;
  stats_req.op = Op::kStats;
  ASSERT_TRUE(server.handle(stats_req).ok);  // records its own latency

  const auto s = server.stats();
  EXPECT_EQ(s.verb_latency[static_cast<std::size_t>(Op::kStq)].count, 2u);
  EXPECT_EQ(s.verb_latency[static_cast<std::size_t>(Op::kJob)].count, 1u);
  EXPECT_EQ(s.verb_latency[static_cast<std::size_t>(Op::kReport)].count, 1u);
  EXPECT_EQ(s.verb_latency[static_cast<std::size_t>(Op::kStats)].count, 1u);
  EXPECT_EQ(s.verb_latency[static_cast<std::size_t>(Op::kBq)].count, 0u);
  const auto& stq_lat = s.verb_latency[static_cast<std::size_t>(Op::kStq)];
  EXPECT_GT(stq_lat.p50_ms, 0.0);
  EXPECT_LE(stq_lat.p50_ms, stq_lat.p95_ms);

  // The formatted stats verb carries the same numbers; verbs never served
  // are omitted entirely.
  const auto second = server.handle(stats_req);
  ASSERT_TRUE(second.has_stats);
  const auto rec = parse_record(format_response(second));
  EXPECT_EQ(rec.at("lat_stq_count"), "2");
  EXPECT_EQ(rec.at("lat_job_count"), "1");
  EXPECT_EQ(rec.at("lat_report_count"), "1");
  EXPECT_EQ(rec.at("lat_stats_count"), "1");
  EXPECT_EQ(rec.count("lat_bq_count"), 0u);
  EXPECT_EQ(rec.count("lat_budget_count"), 0u);
  EXPECT_GT(parse_double(rec.at("lat_stq_p95_ms")), 0.0);
  // Online counters ride in the same record.
  EXPECT_EQ(rec.at("online_reports"), "1");
  EXPECT_EQ(rec.at("online_measurements"), "1");
  EXPECT_EQ(rec.at("online_buffered"), "1");
}

TEST(ServerStatsTest, OnlineFieldsAbsentWhenDisabled) {
  const auto dir = scratch_dir("online_disabled");
  ModelRegistry registry(dir);
  ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
  Server server(registry, ServeOptions{});

  Request report;
  report.op = Op::kReport;
  report.o = 44;
  report.v = 260;
  report.nodes = 16;
  report.tile = 60;
  report.wall_times = {12.5};
  const auto r = server.handle(report);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "bad_request");
  EXPECT_NE(r.error.find("disabled"), std::string::npos);

  Request stats_req;
  stats_req.op = Op::kStats;
  const auto s = server.handle(stats_req);
  ASSERT_TRUE(s.has_stats);
  const auto rec = parse_record(format_response(s));
  EXPECT_EQ(rec.count("online_reports"), 0u);
  EXPECT_EQ(rec.count("online_promotions"), 0u);
}

// ------------------------------------------------- end-to-end closed loop

/// Everything observable about one closed-loop run, for the determinism
/// comparison below. All fields are exact (no tolerances).
struct LoopResult {
  std::uint64_t version_before = 0;
  std::uint64_t version_after = 0;
  std::uint64_t promotions = 0;
  std::uint64_t refits = 0;
  std::uint64_t shadow_evals = 0;
  std::uint64_t drift_events = 0;
  std::uint64_t cache_invalidated = 0;
  std::uint64_t incremental_updates = 0;
  std::size_t reports_to_promotion = 0;
  double peak_mape = 0.0;
  double post_mape = 0.0;
  int nodes = 0;
  int tile = 0;
  double time_s = 0.0;
};

/// Serve, report a 1.6x-slower regime until promotion, then report fresh
/// measurements of the same regime and read the recovered rolling MAPE.
LoopResult run_closed_loop(const std::string& name) {
  const auto dir = scratch_dir(name);
  RegistryOptions ropt;
  ropt.fallback_rows = 160;
  // Enough boosting stages that shrinkage converges: with 0.1 learning
  // rate a short ensemble leaves a bias of a few percent of the GLOBAL
  // mean, which on these orders-of-magnitude-spanning targets would dwarf
  // the regime shift the test injects.
  ropt.gb_estimators = 200;
  ModelRegistry registry(dir, ropt);

  ServeOptions base;
  base.threads = 2;
  base.online.enabled = true;
  base.online.synchronous = true;  // refits run inline: deterministic order
  base.online.drift.window = 16;
  base.online.drift.min_samples = 8;
  base.online.drift.mape_threshold = 0.25;
  base.online.min_refit_rows = 24;
  base.online.holdout = 8;
  base.online.feedback_weight = 12;
  base.online.min_improvement = 0.0;
  Server server(registry, base);

  // Warm a sweep so the promotion has version-v1 shards to invalidate.
  Request warm;
  warm.op = Op::kStq;
  warm.o = 44;
  warm.v = 260;
  const auto before = server.handle(warm);
  EXPECT_TRUE(before.ok) << before.error;

  LoopResult out;
  out.version_before = before.model_version;

  // The reported "truth": the exact configurations the incumbent trained
  // on (the registry's fallback campaign), but 1.6x slower — an
  // unambiguous regime change, far beyond run-to-run noise.
  const sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  data::GeneratorOptions gen;
  gen.seed = ropt.fallback_seed;
  gen.target_total = ropt.fallback_rows;
  const auto campaign = data::generate_dataset(
      simulator, data::problems_for(simulator.machine().name), gen);
  const auto& x = campaign.features();

  const auto report = [&](std::size_t i, int rep) {
    Request r;
    r.op = Op::kReport;
    r.o = static_cast<int>(x(i, data::kFeatO));
    r.v = static_cast<int>(x(i, data::kFeatV));
    r.nodes = static_cast<int>(x(i, data::kFeatNodes));
    r.tile = static_cast<int>(x(i, data::kFeatTile));
    // A tiny per-repeat perturbation keeps repeat measurements byte-
    // distinct (the dedup key hashes the wall-time bits).
    r.wall_times = {campaign.targets()[i] * 1.6 * (1.0 + 1e-3 * rep)};
    return server.handle(r);
  };

  // Phase 1: report the shifted regime until the loop promotes.
  std::size_t sent = 0;
  while (server.online()->counters().promotions == 0 && sent < 80) {
    const auto resp = report(sent % campaign.size(), 0);
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_TRUE(resp.has_report);
    EXPECT_EQ(resp.accepted, 1u);
    out.peak_mape = std::max(out.peak_mape, resp.rolling_mape);
    ++sent;
  }
  out.reports_to_promotion = sent;

  // Phase 2: fresh (jittered) measurements of the same shifted regime,
  // scored by whatever is serving now.
  for (std::size_t j = 0; j < 12; ++j) {
    const auto resp = report(j % campaign.size(), 1);
    EXPECT_TRUE(resp.ok) << resp.error;
    out.post_mape = resp.rolling_mape;
  }

  const auto c = server.online()->counters();
  out.promotions = c.promotions;
  out.refits = c.refits;
  out.shadow_evals = c.shadow_evals;
  out.drift_events = c.drift_events;
  out.cache_invalidated = c.cache_invalidated;
  out.incremental_updates = c.incremental_updates;

  const auto after = server.handle(warm);
  EXPECT_TRUE(after.ok) << after.error;
  out.version_after = after.model_version;
  out.nodes = after.nodes;
  out.tile = after.tile;
  out.time_s = after.time_s;
  return out;
}

TEST(OnlineLoopTest, DriftRefitShadowEvalPromoteRecover) {
  const LoopResult r = run_closed_loop("e2e");

  // The loop closed: drift tripped, a candidate trained, shadow eval ran,
  // and the candidate won promotion.
  EXPECT_GE(r.drift_events, 1u);
  EXPECT_GE(r.refits, 1u);
  EXPECT_GE(r.shadow_evals, 1u);
  EXPECT_GE(r.promotions, 1u);
  EXPECT_LT(r.reports_to_promotion, 80u);  // did not exhaust the budget

  // The promotion republished atomically through the registry (version
  // bump, not stale) and dropped the warmed v1 sweep shard.
  EXPECT_GT(r.version_after, r.version_before);
  EXPECT_GE(r.cache_invalidated, 1u);

  // The hot path grew the GP surrogate incrementally along the way.
  EXPECT_GE(r.incremental_updates, 1u);

  // Recovery: before promotion the model under-predicted the 1.6x-slower
  // machine by ~37%; after, fresh reports of the same regime score below
  // the drift threshold again.
  EXPECT_GT(r.peak_mape, 0.25);
  EXPECT_LT(r.post_mape, 0.25);
  EXPECT_LT(r.post_mape, r.peak_mape);
}

TEST(OnlineLoopTest, ClosedLoopIsDeterministic) {
  const LoopResult a = run_closed_loop("det_a");
  const LoopResult b = run_closed_loop("det_b");
  EXPECT_EQ(a.version_before, b.version_before);
  EXPECT_EQ(a.version_after, b.version_after);
  EXPECT_EQ(a.promotions, b.promotions);
  EXPECT_EQ(a.refits, b.refits);
  EXPECT_EQ(a.shadow_evals, b.shadow_evals);
  EXPECT_EQ(a.drift_events, b.drift_events);
  EXPECT_EQ(a.cache_invalidated, b.cache_invalidated);
  EXPECT_EQ(a.incremental_updates, b.incremental_updates);
  EXPECT_EQ(a.reports_to_promotion, b.reports_to_promotion);
  EXPECT_EQ(a.peak_mape, b.peak_mape);  // bit-exact
  EXPECT_EQ(a.post_mape, b.post_mape);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.tile, b.tile);
  EXPECT_EQ(a.time_s, b.time_s);
}

TEST(OnlineLoopTest, DuplicateReportsAreCountedNotLearned) {
  const auto dir = scratch_dir("dup_reports");
  ModelRegistry registry(dir);
  ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
  ServeOptions base;
  base.online.enabled = true;
  base.online.synchronous = true;
  Server server(registry, base);

  Request r;
  r.op = Op::kReport;
  r.o = 44;
  r.v = 260;
  r.nodes = 16;
  r.tile = 60;
  r.wall_times = {12.5, 12.5, 13.0};  // one in-batch retry
  const auto first = server.handle(r);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.accepted, 2u);
  EXPECT_EQ(first.duplicates, 1u);
  EXPECT_EQ(first.buffered, 2u);

  const auto again = server.handle(r);  // full redelivery
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.accepted, 0u);
  EXPECT_EQ(again.duplicates, 3u);
  EXPECT_EQ(again.buffered, 2u);

  const auto c = server.online()->counters();
  EXPECT_EQ(c.measurements, 6u);
  EXPECT_EQ(c.duplicates, 4u);
  EXPECT_EQ(c.buffered, 2u);
}

}  // namespace
}  // namespace ccpred::serve
