#include "ccpred/serve/sweep_cache.hpp"

#include <utility>

#include "ccpred/common/error.hpp"

namespace ccpred::serve {

namespace {

std::size_t clamp_shards(std::size_t capacity, std::size_t shards) {
  CCPRED_CHECK_MSG(capacity > 0, "SweepCache capacity must be > 0");
  CCPRED_CHECK_MSG(shards > 0, "SweepCache needs at least one shard");
  return shards > capacity ? capacity : shards;
}

}  // namespace

SweepCache::SweepCache(std::size_t capacity, std::size_t shards)
    : cache_(clamp_shards(capacity, shards),
             (capacity + clamp_shards(capacity, shards) - 1) /
                 clamp_shards(capacity, shards)) {}

SweepPtr SweepCache::get(const SweepKey& key) {
  SweepPtr sweep;
  if (!cache_.lookup(key, &sweep)) return nullptr;
  return sweep;
}

std::size_t SweepCache::get_batch(const std::vector<SweepKey>& keys,
                                  std::vector<SweepPtr>* out) {
  out->clear();
  out->reserve(keys.size());
  std::size_t hits = 0;
  for (const SweepKey& key : keys) {
    out->push_back(get(key));
    if (out->back() != nullptr) ++hits;
  }
  return hits;
}

void SweepCache::put(const SweepKey& key, SweepPtr sweep) {
  cache_.put(key, std::move(sweep));
}

std::size_t SweepCache::invalidate(const std::string& machine,
                                   const std::string& kind) {
  return cache_.erase_if([&](const SweepKey& key) {
    return key.machine == machine && key.kind == kind;
  });
}

CacheCounters SweepCache::counters() const {
  const exec::MemoCacheStats st = cache_.stats();
  CacheCounters total;
  total.hits = st.hits;
  total.misses = st.misses;
  total.evictions = st.evictions;
  return total;
}

std::size_t SweepCache::size() const { return cache_.size(); }

void SweepCache::set_fault_injector(FaultInjector* fault) {
  if (fault == nullptr) {
    cache_.set_lock_hook(nullptr);
    return;
  }
  cache_.set_lock_hook(
      [fault] { fault->maybe_delay(FaultPoint::kCacheShard); });
}

}  // namespace ccpred::serve
