/// Executor-layer allocation bench: proves the exec arena/cache rewiring
/// actually removed the malloc traffic, not just the wall time.
///
/// This translation unit interposes the global allocation operators with
/// counting wrappers (atomic, thread-safe — pool workers allocate too), so
/// every `new` anywhere in the process is observed. Two workloads, each
/// run under the reference engine and the fast engine:
///
///   - campaign generation: the figure pipeline's generate_dataset, where
///     the fast path batches through the memoized SimEngine and keeps its
///     grouping scratch in a per-thread Arena
///   - STQ/BQ true-optima sweeps across evaluation rounds: the fast engine
///     serves repeat rounds from its ShardedMemoCache instead of
///     re-simulating (and re-allocating) every round
///
/// Gates (exit nonzero on failure):
///   - fast allocates >= 5x fewer times than reference on both workloads
///   - fast results bit-identical (operator==) to the reference results
///
/// Wall-time/QPS regressions are covered by bench_sim_engine and
/// bench_serve_fleet; this binary gates only allocation counts, which are
/// deterministic per build and immune to a noisy host.
///
/// Emits the measurements to BENCH_exec.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/guidance/optimal.hpp"
#include "ccpred/sim/sim_engine.hpp"

// ---------------------------------------------------------------------------
// Counting allocator interposition (whole process, all threads)
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, ((size == 0 ? 1 : size) + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

namespace {

using namespace ccpred;

/// Allocation count of one callable, as a delta of the process counter.
template <typename Fn>
std::uint64_t allocations_of(Fn&& fn) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

bool datasets_identical(const data::Dataset& a, const data::Dataset& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.config(i) == b.config(i))) return false;
    if (a.target(i) != b.target(i)) return false;
  }
  return true;
}

bool sweeps_identical(const std::vector<guide::TrueOptimaSweep>& a,
                      const std::vector<guide::TrueOptimaSweep>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].o != b[i].o || a[i].v != b[i].v) return false;
    if (a[i].points.size() != b[i].points.size()) return false;
    for (std::size_t j = 0; j < a[i].points.size(); ++j) {
      if (!(a[i].points[j].config == b[i].points[j].config)) return false;
      if (a[i].points[j].time_s != b[i].points[j].time_s) return false;
      if (a[i].points[j].value != b[i].points[j].value) return false;
    }
    if (!(a[i].best.config == b[i].best.config)) return false;
    if (a[i].best.value != b[i].best.value) return false;
  }
  return true;
}

/// The k smallest problems by O*V work proxy (cheapest sweep surfaces).
std::vector<data::Problem> smallest_problems(std::vector<data::Problem> all,
                                             std::size_t k) {
  std::sort(all.begin(), all.end(),
            [](const data::Problem& a, const data::Problem& b) {
              return static_cast<double>(a.o) * a.v <
                     static_cast<double>(b.o) * b.v;
            });
  all.resize(std::min(k, all.size()));
  return all;
}

}  // namespace

int main() {
  const bool fast_mode = bench::fast_mode();
  const auto simulator = bench::make_simulator("aurora");
  const auto& problems = data::problems_for("aurora");
  const std::size_t threads = ThreadPool::global().size();

  std::printf(
      "== Executor-layer allocation counts (aurora, %zu threads%s) ==\n\n",
      threads, fast_mode ? ", fast mode" : "");

  // ---- workload A: campaign generation ----
  const int regens = 2;
  const auto campaign_problems =
      fast_mode ? smallest_problems(problems, 6) : problems;
  data::GeneratorOptions ref_opt;
  ref_opt.seed = 2025;
  ref_opt.target_total = fast_mode ? data::paper_total_rows("aurora") / 4
                                   : data::paper_total_rows("aurora");
  ref_opt.engine_mode = sim::SimEngineMode::kReference;

  data::Dataset ref_campaign;
  const std::uint64_t campaign_ref_allocs = allocations_of([&] {
    for (int r = 0; r < regens; ++r) {
      ref_campaign =
          data::generate_dataset(simulator, campaign_problems, ref_opt);
    }
  });

  data::GeneratorOptions fast_opt = ref_opt;
  fast_opt.engine_mode = sim::SimEngineMode::kFast;
  sim::SimEngine shared_engine(simulator);
  fast_opt.shared_engine = &shared_engine;

  data::Dataset fast_campaign;
  const std::uint64_t campaign_fast_allocs = allocations_of([&] {
    for (int r = 0; r < regens; ++r) {
      fast_campaign =
          data::generate_dataset(simulator, campaign_problems, fast_opt);
    }
  });
  const double campaign_ratio =
      static_cast<double>(campaign_ref_allocs) /
      static_cast<double>(std::max<std::uint64_t>(1, campaign_fast_allocs));
  const bool campaign_identical =
      datasets_identical(ref_campaign, fast_campaign);

  // ---- workload B: STQ/BQ true-optima sweeps across rounds ----
  const int rounds = 4;
  const auto sweep_problems = smallest_problems(problems, fast_mode ? 3 : 6);

  sim::SimEngine ref_engine(simulator,
                            {.mode = sim::SimEngineMode::kReference});
  std::vector<guide::TrueOptimaSweep> ref_stq, ref_bq;
  const std::uint64_t sweep_ref_allocs = allocations_of([&] {
    for (int r = 0; r < rounds; ++r) {
      ref_stq = guide::true_optima_sweeps(ref_engine, sweep_problems,
                                          guide::Objective::kShortestTime);
      ref_bq = guide::true_optima_sweeps(ref_engine, sweep_problems,
                                         guide::Objective::kNodeHours);
    }
  });

  sim::SimEngine fast_engine(simulator);
  std::vector<guide::TrueOptimaSweep> fast_stq, fast_bq;
  const std::uint64_t sweep_fast_allocs = allocations_of([&] {
    for (int r = 0; r < rounds; ++r) {
      fast_stq = guide::true_optima_sweeps(fast_engine, sweep_problems,
                                           guide::Objective::kShortestTime);
      fast_bq = guide::true_optima_sweeps(fast_engine, sweep_problems,
                                          guide::Objective::kNodeHours);
    }
  });
  const double sweep_ratio =
      static_cast<double>(sweep_ref_allocs) /
      static_cast<double>(std::max<std::uint64_t>(1, sweep_fast_allocs));
  const bool sweep_identical =
      sweeps_identical(ref_stq, fast_stq) && sweeps_identical(ref_bq, fast_bq);

  TextTable table({"workload", "path", "allocations", "ratio"},
                  "Global operator-new counts");
  table.add_row({"campaign x2", "reference",
                 std::to_string(campaign_ref_allocs), "1.0x"});
  table.add_row({"campaign x2", "fast (arena+cache)",
                 std::to_string(campaign_fast_allocs),
                 TextTable::cell(campaign_ratio, 1) + "x"});
  table.add_row({"STQ/BQ sweep x4", "reference",
                 std::to_string(sweep_ref_allocs), "1.0x"});
  table.add_row({"STQ/BQ sweep x4", "fast (memoized)",
                 std::to_string(sweep_fast_allocs),
                 TextTable::cell(sweep_ratio, 1) + "x"});
  table.print();

  const bool campaign_ok = campaign_ratio >= 5.0;
  const bool sweep_ok = sweep_ratio >= 5.0;
  const bool identical_ok = campaign_identical && sweep_identical;
  std::printf(
      "\ncampaign rows %zu x%d regens\n"
      "campaign allocation ratio %.1fx (target >= 5x): %s\n"
      "STQ/BQ sweep allocation ratio %.1fx (target >= 5x): %s\n"
      "fast vs reference bit-identity (campaign %s, sweeps %s): %s\n",
      ref_campaign.size(), regens, campaign_ratio,
      campaign_ok ? "PASS" : "FAIL", sweep_ratio, sweep_ok ? "PASS" : "FAIL",
      campaign_identical ? "yes" : "NO", sweep_identical ? "yes" : "NO",
      identical_ok ? "PASS" : "FAIL");

  const bool pass = campaign_ok && sweep_ok && identical_ok;
  std::FILE* json = std::fopen("BENCH_exec.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"machine\": \"aurora\",\n"
        "  \"fast_mode\": %s,\n"
        "  \"threads\": %zu,\n"
        "  \"campaign\": {\"rows\": %zu, \"regens\": %d,\n"
        "    \"reference_allocations\": %llu, \"fast_allocations\": %llu,\n"
        "    \"ratio\": %.3f, \"identical\": %s},\n"
        "  \"sweeps\": {\"problems\": %zu, \"rounds\": %d,\n"
        "    \"reference_allocations\": %llu, \"fast_allocations\": %llu,\n"
        "    \"ratio\": %.3f, \"identical\": %s},\n"
        "  \"pass\": %s,\n"
        "  \"provenance\": %s\n"
        "}\n",
        fast_mode ? "true" : "false", threads, ref_campaign.size(), regens,
        static_cast<unsigned long long>(campaign_ref_allocs),
        static_cast<unsigned long long>(campaign_fast_allocs), campaign_ratio,
        campaign_identical ? "true" : "false", sweep_problems.size(), rounds,
        static_cast<unsigned long long>(sweep_ref_allocs),
        static_cast<unsigned long long>(sweep_fast_allocs), sweep_ratio,
        sweep_identical ? "true" : "false", pass ? "true" : "false",
        bench::provenance_json().c_str());
    std::fclose(json);
    std::printf("\nwrote BENCH_exec.json\n");
  }
  return pass ? 0 : 1;
}
