#pragma once

/// \file importance.hpp
/// Model-agnostic permutation feature importance: how much a metric
/// degrades when one feature column is shuffled — which runtime parameter
/// (O, V, nodes, tile) the predictor actually relies on.

#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// Permutation-importance options.
struct PermutationOptions {
  int n_repeats = 5;          ///< shuffles averaged per feature
  std::uint64_t seed = 123;
};

/// Per-feature importance: mean increase of (1 - R^2) — equivalently mean
/// R^2 drop — when that feature column of `x` is randomly permuted.
/// `model` must be fitted; `x`/`y` are typically a held-out set.
/// Importances can be slightly negative for irrelevant features.
std::vector<double> permutation_importance(const Regressor& model,
                                           const linalg::Matrix& x,
                                           const std::vector<double>& y,
                                           const PermutationOptions& options =
                                               {});

}  // namespace ccpred::ml
