#include "ccpred/linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ccpred/common/thread_pool.hpp"
#include "ccpred/linalg/blas.hpp"
#include "ccpred/simd/simd.hpp"

namespace ccpred::linalg {

namespace {

/// Panel width of the blocked factorization. Orders up to kPanel take the
/// scalar diagonal-block path only, which performs the exact arithmetic of
/// the reference algorithm — small factorizations are bit-for-bit stable.
constexpr std::size_t kPanel = 64;

/// Row-stripe granularity for parallel panel solves / trailing updates.
constexpr std::size_t kRowStripe = 64;

/// Column-stripe granularity for parallel multi-RHS triangular solves.
/// Each stripe's working set (panel rows x stripe) stays L2-resident.
constexpr std::size_t kColStripe = 128;

/// The original scalar left-looking column algorithm (the reference path).
void factor_reference(Matrix& l, const Matrix& a) {
  const std::size_t n = a.rows();
  // Left-looking column algorithm; inner dot products stream through the
  // contiguous rows of L.
  for (std::size_t j = 0; j < n; ++j) {
    const double* lj = l.row_ptr(j);
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= lj[k] * lj[k];
    CCPRED_CHECK_MSG(d > 0.0, "matrix is not positive definite (pivot "
                                  << d << " at column " << j << ")");
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      const double* li = l.row_ptr(i);
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s * inv;
    }
  }
}

/// Blocked right-looking factorization, in place on `l` (initially a copy
/// of A). Per panel: scalar diagonal-block factorization, row-wise panel
/// solve, then a GEMM-shaped trailing update through a transposed panel
/// buffer whose inner loops are contiguous (vectorizable) — unlike the
/// reference's serial dot-product recurrences. Panel solve and trailing
/// update fan out over the shared pool in row stripes.
void factor_blocked(Matrix& l) {
  const std::size_t n = l.rows();
  std::vector<double> panel(kPanel * n);
  for (std::size_t k = 0; k < n; k += kPanel) {
    const std::size_t kb = std::min(kPanel, n - k);
    const std::size_t k1 = k + kb;
    // Diagonal block: left-looking restricted to the panel columns (their
    // trailing updates from previous panels are already applied).
    for (std::size_t j = k; j < k1; ++j) {
      double* lj = l.row_ptr(j);
      double d = lj[j];
      for (std::size_t t = k; t < j; ++t) d -= lj[t] * lj[t];
      CCPRED_CHECK_MSG(d > 0.0, "matrix is not positive definite (pivot "
                                    << d << " at column " << j << ")");
      const double ljj = std::sqrt(d);
      lj[j] = ljj;
      const double inv = 1.0 / ljj;
      for (std::size_t i = j + 1; i < k1; ++i) {
        double* li = l.row_ptr(i);
        double s = li[j];
        for (std::size_t t = k; t < j; ++t) s -= li[t] * lj[t];
        li[j] = s * inv;
      }
    }
    if (k1 >= n) break;
    const std::size_t stripes = (n - k1 + kRowStripe - 1) / kRowStripe;
    // Transposed diagonal block (tkk[j][jj] = L(jj, k + j)) so the panel
    // solve's inner updates run contiguously.
    std::vector<double> tkk(kb * kb, 0.0);
    for (std::size_t j = 0; j < kb; ++j) {
      for (std::size_t jj = j + 1; jj < kb; ++jj) {
        tkk[j * kb + jj] = l(k + jj, k + j);
      }
    }
    // Panel solve: L[i, k:k1] = A[i, k:k1] L_kk^{-T}, right-looking per row
    // (divide by the pivot, then push the column's contribution forward).
    parallel_for(0, stripes, [&](std::size_t s) {
      const std::size_t i0 = k1 + s * kRowStripe;
      const std::size_t i1 = std::min(n, i0 + kRowStripe);
      for (std::size_t i = i0; i < i1; ++i) {
        double* li = l.row_ptr(i) + k;
        for (std::size_t j = 0; j < kb; ++j) {
          const double c = li[j] / l(k + j, k + j);
          li[j] = c;
          const double* tj = tkk.data() + j * kb;
          for (std::size_t jj = j + 1; jj < kb; ++jj) li[jj] -= c * tj[jj];
        }
      }
    });
    // Transpose the sub-diagonal panel so the trailing update streams
    // contiguously: panel[t][j] = L(j, k + t).
    for (std::size_t t = 0; t < kb; ++t) {
      double* pt = panel.data() + t * n;
      for (std::size_t j = k1; j < n; ++j) pt[j] = l(j, k + t);
    }
    // Trailing update A22 -= P P^T (SYRK), lower triangle only. Four panel
    // rows per pass so each li[j] load/store is amortized over 8 flops;
    // the 2x4 register block is the simd::update2x4 primitive (FMA when
    // the AVX2 mode is active — covered by the kReference agreement bound,
    // not bit-identity). Each row's terms are still accumulated in the
    // same order, so the result is deterministic for a given mode.
    const auto& ops = simd::ops();
    parallel_for(0, stripes, [&](std::size_t s) {
      const std::size_t i0 = k1 + s * kRowStripe;
      const std::size_t i1 = std::min(n, i0 + kRowStripe);
      std::size_t i = i0;
      for (; i + 2 <= i1; i += 2) {
        double* la = l.row_ptr(i);
        double* lb = l.row_ptr(i + 1);
        const std::size_t len = i - k1 + 1;
        std::size_t t = 0;
        for (; t + 4 <= kb; t += 4) {
          const double* p0 = panel.data() + t * n;
          const double* p1 = p0 + n;
          const double* p2 = p1 + n;
          const double* p3 = p2 + n;
          const double* av = la + k + t;
          const double* bv = lb + k + t;
          ops.update2x4(la + k1, lb + k1, av, bv, p0 + k1, p1 + k1, p2 + k1,
                        p3 + k1, len);
          lb[i + 1] -= bv[0] * p0[i + 1] + bv[1] * p1[i + 1] +
                       bv[2] * p2[i + 1] + bv[3] * p3[i + 1];
        }
        for (; t < kb; ++t) {
          const double ca = la[k + t];
          const double cb = lb[k + t];
          const double* pt = panel.data() + t * n;
          for (std::size_t j = k1; j <= i; ++j) {
            la[j] -= ca * pt[j];
            lb[j] -= cb * pt[j];
          }
          lb[i + 1] -= cb * pt[i + 1];
        }
      }
      for (; i < i1; ++i) {
        double* li = l.row_ptr(i);
        const std::size_t len = i - k1 + 1;
        std::size_t t = 0;
        for (; t + 4 <= kb; t += 4) {
          const double* p0 = panel.data() + t * n;
          const double* p1 = p0 + n;
          const double* p2 = p1 + n;
          const double* p3 = p2 + n;
          ops.update1x4(li + k1, li + k + t, p0 + k1, p1 + k1, p2 + k1,
                        p3 + k1, len);
        }
        for (; t < kb; ++t) {
          const double c = li[k + t];
          const double* pt = panel.data() + t * n;
          for (std::size_t j = k1; j <= i; ++j) li[j] -= c * pt[j];
        }
      }
    });
  }
  // The factorization only wrote the lower triangle; clear A's upper part.
  for (std::size_t i = 0; i < n; ++i) {
    double* li = l.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) li[j] = 0.0;
  }
}

/// Blocked forward substitution L Y = B on the column range [c0, c1) of
/// `y`, in place. Inner loops run contiguously over the columns.
void solve_lower_cols(const Matrix& l, Matrix& y, std::size_t c0,
                      std::size_t c1) {
  const std::size_t n = l.rows();
  for (std::size_t k = 0; k < n; k += kPanel) {
    const std::size_t k1 = std::min(n, k + kPanel);
    // In-block forward solve.
    for (std::size_t i = k; i < k1; ++i) {
      double* yi = y.row_ptr(i);
      const double* li = l.row_ptr(i);
      for (std::size_t t = k; t < i; ++t) {
        const double lit = li[t];
        if (lit == 0.0) continue;
        const double* yt = y.row_ptr(t);
        for (std::size_t c = c0; c < c1; ++c) yi[c] -= lit * yt[c];
      }
      const double lii = li[i];
      for (std::size_t c = c0; c < c1; ++c) yi[c] /= lii;
    }
    // Trailing rows absorb the solved block; four block rows and two
    // trailing rows per pass amortize every load/store over 16 flops.
    std::size_t r = k1;
    for (; r + 2 <= n; r += 2) {
      double* ya = y.row_ptr(r);
      double* yb = y.row_ptr(r + 1);
      const double* la = l.row_ptr(r);
      const double* lb = l.row_ptr(r + 1);
      std::size_t t = k;
      for (; t + 4 <= k1; t += 4) {
        const double a0 = la[t];
        const double a1 = la[t + 1];
        const double a2 = la[t + 2];
        const double a3 = la[t + 3];
        const double b0 = lb[t];
        const double b1 = lb[t + 1];
        const double b2 = lb[t + 2];
        const double b3 = lb[t + 3];
        const double* y0 = y.row_ptr(t);
        const double* y1 = y.row_ptr(t + 1);
        const double* y2 = y.row_ptr(t + 2);
        const double* y3 = y.row_ptr(t + 3);
        for (std::size_t c = c0; c < c1; ++c) {
          const double q0 = y0[c];
          const double q1 = y1[c];
          const double q2 = y2[c];
          const double q3 = y3[c];
          ya[c] -= a0 * q0 + a1 * q1 + a2 * q2 + a3 * q3;
          yb[c] -= b0 * q0 + b1 * q1 + b2 * q2 + b3 * q3;
        }
      }
      for (; t < k1; ++t) {
        const double at = la[t];
        const double bt = lb[t];
        const double* yt = y.row_ptr(t);
        for (std::size_t c = c0; c < c1; ++c) {
          ya[c] -= at * yt[c];
          yb[c] -= bt * yt[c];
        }
      }
    }
    for (; r < n; ++r) {
      double* yr = y.row_ptr(r);
      const double* lr = l.row_ptr(r);
      std::size_t t = k;
      for (; t + 4 <= k1; t += 4) {
        const double a0 = lr[t];
        const double a1 = lr[t + 1];
        const double a2 = lr[t + 2];
        const double a3 = lr[t + 3];
        const double* y0 = y.row_ptr(t);
        const double* y1 = y.row_ptr(t + 1);
        const double* y2 = y.row_ptr(t + 2);
        const double* y3 = y.row_ptr(t + 3);
        for (std::size_t c = c0; c < c1; ++c) {
          yr[c] -= a0 * y0[c] + a1 * y1[c] + a2 * y2[c] + a3 * y3[c];
        }
      }
      for (; t < k1; ++t) {
        const double lrt = lr[t];
        const double* yt = y.row_ptr(t);
        for (std::size_t c = c0; c < c1; ++c) yr[c] -= lrt * yt[c];
      }
    }
  }
}

/// Blocked backward substitution L^T X = Y on the column range [c0, c1) of
/// `y`, in place.
void solve_upper_cols(const Matrix& l, Matrix& y, std::size_t c0,
                      std::size_t c1) {
  const std::size_t n = l.rows();
  const std::size_t blocks = (n + kPanel - 1) / kPanel;
  for (std::size_t b = blocks; b-- > 0;) {
    const std::size_t k = b * kPanel;
    const std::size_t k1 = std::min(n, k + kPanel);
    // Already-solved trailing rows contribute L(r, i) to block row i; four
    // trailing rows and two block rows per pass amortize each load/store
    // over 16 flops.
    std::size_t i = k;
    for (; i + 2 <= k1; i += 2) {
      double* ya = y.row_ptr(i);
      double* yb = y.row_ptr(i + 1);
      std::size_t r = k1;
      for (; r + 4 <= n; r += 4) {
        const double a0 = l(r, i);
        const double a1 = l(r + 1, i);
        const double a2 = l(r + 2, i);
        const double a3 = l(r + 3, i);
        const double b0 = l(r, i + 1);
        const double b1 = l(r + 1, i + 1);
        const double b2 = l(r + 2, i + 1);
        const double b3 = l(r + 3, i + 1);
        const double* y0 = y.row_ptr(r);
        const double* y1 = y.row_ptr(r + 1);
        const double* y2 = y.row_ptr(r + 2);
        const double* y3 = y.row_ptr(r + 3);
        for (std::size_t c = c0; c < c1; ++c) {
          const double q0 = y0[c];
          const double q1 = y1[c];
          const double q2 = y2[c];
          const double q3 = y3[c];
          ya[c] -= a0 * q0 + a1 * q1 + a2 * q2 + a3 * q3;
          yb[c] -= b0 * q0 + b1 * q1 + b2 * q2 + b3 * q3;
        }
      }
      for (; r < n; ++r) {
        const double ar = l(r, i);
        const double br = l(r, i + 1);
        const double* yr = y.row_ptr(r);
        for (std::size_t c = c0; c < c1; ++c) {
          ya[c] -= ar * yr[c];
          yb[c] -= br * yr[c];
        }
      }
    }
    for (; i < k1; ++i) {
      double* yi = y.row_ptr(i);
      std::size_t r = k1;
      for (; r + 4 <= n; r += 4) {
        const double a0 = l(r, i);
        const double a1 = l(r + 1, i);
        const double a2 = l(r + 2, i);
        const double a3 = l(r + 3, i);
        const double* y0 = y.row_ptr(r);
        const double* y1 = y.row_ptr(r + 1);
        const double* y2 = y.row_ptr(r + 2);
        const double* y3 = y.row_ptr(r + 3);
        for (std::size_t c = c0; c < c1; ++c) {
          yi[c] -= a0 * y0[c] + a1 * y1[c] + a2 * y2[c] + a3 * y3[c];
        }
      }
      for (; r < n; ++r) {
        const double lri = l(r, i);
        const double* yr = y.row_ptr(r);
        for (std::size_t c = c0; c < c1; ++c) yi[c] -= lri * yr[c];
      }
    }
    // In-block backward solve.
    for (std::size_t ii = k1; ii-- > k;) {
      double* yi = y.row_ptr(ii);
      for (std::size_t t = ii + 1; t < k1; ++t) {
        const double lti = l(t, ii);
        if (lti == 0.0) continue;
        const double* yt = y.row_ptr(t);
        for (std::size_t c = c0; c < c1; ++c) yi[c] -= lti * yt[c];
      }
      const double lii = l(ii, ii);
      for (std::size_t c = c0; c < c1; ++c) yi[c] /= lii;
    }
  }
}

/// Runs a column-striped triangular solve over all columns of `y` in
/// parallel (stripes are independent, so results are deterministic).
template <typename Solver>
void for_each_col_stripe(Matrix& y, const Solver& solver) {
  const std::size_t m = y.cols();
  const std::size_t stripes = (m + kColStripe - 1) / kColStripe;
  parallel_for(0, stripes, [&](std::size_t s) {
    const std::size_t c0 = s * kColStripe;
    solver(c0, std::min(m, c0 + kColStripe));
  });
}

}  // namespace

Cholesky::Cholesky(Matrix a, Method method) {
  CCPRED_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  if (method == Method::kFast) {
    l_ = std::move(a);
    factor_blocked(l_);
  } else {
    l_ = Matrix(a.rows(), a.cols());
    factor_reference(l_, a);
  }
}

std::vector<double> Cholesky::solve_lower(const std::vector<double>& b) const {
  const std::size_t n = order();
  CCPRED_CHECK(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l_.row_ptr(i);
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

std::vector<double> Cholesky::solve_upper(const std::vector<double>& y) const {
  const std::size_t n = order();
  CCPRED_CHECK(y.size() == n);
  std::vector<double> x = y;
  for (std::size_t ii = n; ii-- > 0;) {
    x[ii] /= l_(ii, ii);
    const double xi = x[ii];
    // Column access on L == row access on L^T.
    for (std::size_t k = 0; k < ii; ++k) x[k] -= l_(ii, k) * xi;
  }
  return x;
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  return solve_upper(solve_lower(b));
}

Matrix Cholesky::solve_lower(const Matrix& b) const {
  CCPRED_CHECK(b.rows() == order());
  Matrix y = b;
  for_each_col_stripe(y, [&](std::size_t c0, std::size_t c1) {
    solve_lower_cols(l_, y, c0, c1);
  });
  return y;
}

Matrix Cholesky::solve_upper(const Matrix& y) const {
  CCPRED_CHECK(y.rows() == order());
  Matrix x = y;
  for_each_col_stripe(x, [&](std::size_t c0, std::size_t c1) {
    solve_upper_cols(l_, x, c0, c1);
  });
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  CCPRED_CHECK(b.rows() == order());
  Matrix x = b;
  for_each_col_stripe(x, [&](std::size_t c0, std::size_t c1) {
    solve_lower_cols(l_, x, c0, c1);
    solve_upper_cols(l_, x, c0, c1);
  });
  return x;
}

void Cholesky::extend(const Matrix& cross, const Matrix& diag) {
  const std::size_t n = order();
  const std::size_t q = cross.rows();
  CCPRED_CHECK_MSG(q > 0, "Cholesky::extend needs at least one new row");
  CCPRED_CHECK_MSG(cross.cols() == n,
                   "Cholesky::extend cross block must be q x n, got "
                       << q << "x" << cross.cols() << " for order " << n);
  CCPRED_CHECK_MSG(diag.rows() == q && diag.cols() == q,
                   "Cholesky::extend diagonal block must be q x q");
  // L21^T = L^{-1} B^T via one blocked multi-RHS forward solve: O(n^2 q).
  const Matrix y = solve_lower(cross.transposed());
  // Schur complement S = C - L21 L21^T = C - Y^T Y; its factor is L22.
  Matrix s = diag;
  s -= syrk_at_a(y);
  // Throws the standard non-PD error if the extension is not SPD.
  const Cholesky s_chol(std::move(s));
  Matrix nl(n + q, n + q);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = l_.row_ptr(i);
    std::copy(src, src + n, nl.row_ptr(i));
  }
  const Matrix& l22 = s_chol.factor();
  for (std::size_t r = 0; r < q; ++r) {
    double* dst = nl.row_ptr(n + r);
    for (std::size_t j = 0; j < n; ++j) dst[j] = y(j, r);
    for (std::size_t c = 0; c <= r; ++c) dst[n + c] = l22(r, c);
  }
  l_ = std::move(nl);
}

double Cholesky::log_determinant() const {
  double s = 0.0;
  for (std::size_t i = 0; i < order(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const {
  return solve(Matrix::identity(order()));
}

}  // namespace ccpred::linalg
