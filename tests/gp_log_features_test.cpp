// Tests for the GP's log_features option: kernel distances computed on
// log-transformed features, the natural metric for the power-law runtime
// surface (see DESIGN.md §6).

#include <gtest/gtest.h>

#include <cmath>

#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/metrics.hpp"
#include "test_util.hpp"

namespace ccpred::ml {
namespace {

TEST(GpLogFeaturesTest, LearnsPowerLawQuickly) {
  // y = c * x0^-1 * x1^2 — exactly log-linear; the log-feature GP should
  // generalize from few samples.
  Rng rng(1);
  linalg::Matrix x(60, 2);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.uniform(1.0, 100.0);
    x(i, 1) = rng.uniform(1.0, 50.0);
    y[i] = 500.0 / x(i, 0) * x(i, 1) * x(i, 1);
  }
  GaussianProcessRegression plain(0.5, 1e-4, true, true, false);
  GaussianProcessRegression logged(0.5, 1e-4, true, true, true);
  plain.fit(x, y);
  logged.fit(x, y);

  linalg::Matrix probe(40, 2);
  std::vector<double> truth(40);
  Rng prng(2);
  for (std::size_t i = 0; i < 40; ++i) {
    probe(i, 0) = prng.uniform(1.0, 100.0);
    probe(i, 1) = prng.uniform(1.0, 50.0);
    truth[i] = 500.0 / probe(i, 0) * probe(i, 1) * probe(i, 1);
  }
  const double mape_plain =
      mean_absolute_percentage_error(truth, plain.predict(probe));
  const double mape_logged =
      mean_absolute_percentage_error(truth, logged.predict(probe));
  EXPECT_LT(mape_logged, mape_plain);
  EXPECT_LT(mape_logged, 0.1);
}

TEST(GpLogFeaturesTest, RuntimeSurfaceAccuracy) {
  // On the CCSD surface the log-feature GP should fit well with few rows.
  const auto tt = test::small_campaign(300, 3);
  GaussianProcessRegression gp(0.5, 1e-4, true, true, true);
  gp.fit(tt.train.features(), tt.train.targets());
  const auto scores =
      score_all(tt.test.targets(), gp.predict(tt.test.features()));
  EXPECT_GT(scores.r2, 0.9);
}

TEST(GpLogFeaturesTest, RejectsNonPositiveFeatures) {
  linalg::Matrix x = {{1.0, 2.0}, {0.0, 3.0}};
  const std::vector<double> y = {1.0, 2.0};
  GaussianProcessRegression gp(0.5, 1e-4, false, false, true);
  EXPECT_THROW(gp.fit(x, y), Error);
}

TEST(GpLogFeaturesTest, CloneAndParamsPreserveFlag) {
  const auto tt = test::small_campaign(200, 4);
  GaussianProcessRegression gp(0.5, 1e-4, false, true, true);
  gp.fit(tt.train.features(), tt.train.targets());
  auto copy = gp.clone();
  copy->fit(tt.train.features(), tt.train.targets());
  const auto p1 = gp.predict(tt.test.features());
  const auto p2 = copy->predict(tt.test.features());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);

  GaussianProcessRegression configured;
  EXPECT_NO_THROW(configured.set_params({{"log_features", 1.0},
                                         {"log_target", 1.0}}));
}

TEST(GpLogFeaturesTest, StdStaysPositiveAndFinite) {
  const auto tt = test::small_campaign(200, 5);
  GaussianProcessRegression gp(0.5, 1e-4, true, true, true);
  gp.fit(tt.train.features(), tt.train.targets());
  std::vector<double> mean;
  std::vector<double> std;
  gp.predict_with_std(tt.test.features(), mean, std);
  for (std::size_t i = 0; i < std.size(); ++i) {
    EXPECT_GE(std[i], 0.0);
    EXPECT_TRUE(std::isfinite(std[i]));
    EXPECT_GT(mean[i], 0.0);  // log-target predictions are positive
  }
}

}  // namespace
}  // namespace ccpred::ml
