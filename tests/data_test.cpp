// Unit tests for the dataset layer: container, problem lists, campaign
// generator, splits and scalers.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "ccpred/data/dataset.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/data/scaler.hpp"
#include "ccpred/data/split.hpp"

namespace ccpred::data {
namespace {

Dataset tiny_dataset() {
  Dataset d;
  d.add({10, 100, 4, 40}, 50.0);
  d.add({10, 100, 8, 40}, 30.0);
  d.add({20, 200, 4, 50}, 200.0);
  d.add({20, 200, 16, 50}, 80.0);
  return d;
}

// ---------- Dataset ----------

TEST(DatasetTest, AddAndAccess) {
  const auto d = tiny_dataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.config(1).nodes, 8);
  EXPECT_DOUBLE_EQ(d.target(2), 200.0);
  EXPECT_THROW(d.config(4), Error);
}

TEST(DatasetTest, RejectsInvalidRows) {
  Dataset d;
  EXPECT_THROW(d.add({10, 100, 4, 40}, 0.0), Error);
  EXPECT_THROW(d.add({10, 100, 4, 40}, -1.0), Error);
  EXPECT_THROW(d.add({0, 100, 4, 40}, 1.0), Error);
}

TEST(DatasetTest, FeaturesMatrixLayout) {
  const auto d = tiny_dataset();
  const auto x = d.features();
  EXPECT_EQ(x.rows(), 4u);
  EXPECT_EQ(x.cols(), kNumFeatures);
  EXPECT_DOUBLE_EQ(x(0, kFeatO), 10.0);
  EXPECT_DOUBLE_EQ(x(1, kFeatNodes), 8.0);
  EXPECT_DOUBLE_EQ(x(3, kFeatTile), 50.0);
}

TEST(DatasetTest, NodeHours) {
  const auto d = tiny_dataset();
  EXPECT_NEAR(d.node_hours(0), 4.0 * 50.0 / 3600.0, 1e-12);
}

TEST(DatasetTest, SelectPreservesOrder) {
  const auto d = tiny_dataset();
  const auto s = d.select({3, 0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.config(0).nodes, 16);
  EXPECT_DOUBLE_EQ(s.target(1), 50.0);
}

TEST(DatasetTest, GroupByProblem) {
  const auto groups = tiny_dataset().group_by_problem();
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at({10, 100}).size(), 2u);
  EXPECT_EQ(groups.at({20, 200}), (std::vector<std::size_t>{2, 3}));
  const auto problems = tiny_dataset().problems();
  EXPECT_EQ(problems.front(), (std::pair{10, 100}));
}

TEST(DatasetTest, CsvRoundTrip) {
  const auto d = tiny_dataset();
  const auto back = Dataset::from_csv(d.to_csv());
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.config(i), d.config(i));
    EXPECT_DOUBLE_EQ(back.target(i), d.target(i));
  }
}

// ---------- problems ----------

TEST(ProblemsTest, PaperProblemCounts) {
  EXPECT_EQ(aurora_problems().size(), 22u);    // Table 3 rows
  EXPECT_EQ(frontier_problems().size(), 20u);  // Table 4 rows
}

TEST(ProblemsTest, LookupByMachine) {
  EXPECT_EQ(&problems_for("aurora"), &aurora_problems());
  EXPECT_EQ(&problems_for("frontier"), &frontier_problems());
  EXPECT_THROW(problems_for("summit"), Error);
}

TEST(ProblemsTest, KnownEntries) {
  EXPECT_EQ(aurora_problems().front(), (Problem{44, 260}));
  EXPECT_EQ(aurora_problems().back(), (Problem{345, 791}));
  EXPECT_EQ(frontier_problems().front(), (Problem{49, 663}));
}

// ---------- generator ----------

class GeneratorTest : public ::testing::Test {
 protected:
  sim::CcsdSimulator simulator_{sim::MachineModel::aurora()};
};

TEST_F(GeneratorTest, PaperTotalsMatchTable1) {
  EXPECT_EQ(paper_total_rows("aurora"), 2329u);
  EXPECT_EQ(paper_test_rows("aurora"), 583u);
  EXPECT_EQ(paper_total_rows("frontier"), 2454u);
  EXPECT_EQ(paper_test_rows("frontier"), 614u);
  EXPECT_THROW(paper_total_rows("summit"), Error);
}

TEST_F(GeneratorTest, HitsTargetTotalExactly) {
  GeneratorOptions opt;
  opt.target_total = 333;
  const auto ds = generate_dataset(simulator_, aurora_problems(), opt);
  EXPECT_EQ(ds.size(), 333u);
}

TEST_F(GeneratorTest, CoversAllProblems) {
  GeneratorOptions opt;
  opt.target_total = 440;
  const auto ds = generate_dataset(simulator_, aurora_problems(), opt);
  EXPECT_EQ(ds.problems().size(), aurora_problems().size());
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  GeneratorOptions opt;
  opt.target_total = 200;
  const std::vector<Problem> probs = {{85, 698}, {134, 951}};
  const auto a = generate_dataset(simulator_, probs, opt);
  const auto b = generate_dataset(simulator_, probs, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.config(i), b.config(i));
    EXPECT_DOUBLE_EQ(a.target(i), b.target(i));
  }
}

TEST_F(GeneratorTest, DifferentSeedsGiveDifferentNoise) {
  GeneratorOptions a_opt;
  a_opt.target_total = 100;
  GeneratorOptions b_opt = a_opt;
  b_opt.seed = a_opt.seed + 1;
  const std::vector<Problem> probs = {{85, 698}};
  const auto a = generate_dataset(simulator_, probs, a_opt);
  const auto b = generate_dataset(simulator_, probs, b_opt);
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    identical += (a.target(i) == b.target(i));
  }
  EXPECT_LT(identical, 5);
}

TEST_F(GeneratorTest, AllRowsFeasible) {
  GeneratorOptions opt;
  opt.target_total = 300;
  const auto ds = generate_dataset(simulator_, aurora_problems(), opt);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(simulator_.feasible(ds.config(i)));
  }
}

TEST_F(GeneratorTest, RepeatMeasurementsHaveIndependentNoise) {
  GeneratorOptions opt;
  opt.target_total = 200;  // >> configs of one problem -> repeats
  const std::vector<Problem> probs = {{85, 698}};
  const auto ds = generate_dataset(simulator_, probs, opt);
  std::map<std::tuple<int, int>, std::set<double>> times;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    times[{ds.config(i).nodes, ds.config(i).tile}].insert(ds.target(i));
  }
  // At least one configuration measured more than once, with distinct
  // noisy values.
  bool found_repeat = false;
  for (const auto& [key, vals] : times) {
    if (vals.size() > 1) found_repeat = true;
  }
  EXPECT_TRUE(found_repeat);
}

TEST_F(GeneratorTest, NodeGridRespectsBounds) {
  const auto grid = node_grid(simulator_, {280, 1040});
  EXPECT_FALSE(grid.empty());
  EXPECT_GE(grid.front(), simulator_.min_nodes(280, 1040));
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  // Small problems don't sweep the full machine.
  const auto small = node_grid(simulator_, {44, 260});
  EXPECT_LE(small.back(), 110);
}

TEST_F(GeneratorTest, NodeGridNeverInvertsForExtremeProblems) {
  // Regression: the work floor (flops / 1.2e16) of a huge problem can
  // exceed the sweep cap (clamped at 900); the floor must be clamped to
  // the cap instead of inverting the range into an empty grid.
  for (const Problem p : {Problem{600, 3000}, Problem{800, 4000}}) {
    const auto grid = node_grid(simulator_, p);
    ASSERT_FALSE(grid.empty()) << "O=" << p.o << " V=" << p.v;
    EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
    EXPECT_GE(grid.front(), simulator_.min_nodes(p.o, p.v));
  }
  // Tiny problems keep their small sweep (floor below cap: unaffected).
  const auto tiny = node_grid(simulator_, {44, 260});
  ASSERT_FALSE(tiny.empty());
  EXPECT_GE(tiny.front(), 5);
  EXPECT_LE(tiny.back(), 110);
}

TEST_F(GeneratorTest, PaperDatasetSizes) {
  const auto ds = paper_dataset(simulator_);
  EXPECT_EQ(ds.size(), 2329u);
  EXPECT_EQ(ds.problems().size(), 22u);
}

// ---------- split ----------

TEST(SplitTest, ExactTestCount) {
  GeneratorOptions opt;
  opt.target_total = 400;
  sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const auto ds = generate_dataset(simulator, aurora_problems(), opt);
  Rng rng(5);
  const auto split = stratified_split(ds, 100, rng);
  EXPECT_EQ(split.test.size(), 100u);
  EXPECT_EQ(split.train.size(), 300u);
}

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  GeneratorOptions opt;
  opt.target_total = 300;
  sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const auto ds = generate_dataset(simulator, aurora_problems(), opt);
  Rng rng(6);
  const auto split = stratified_split(ds, 75, rng);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  for (auto i : split.test) {
    EXPECT_TRUE(all.insert(i).second) << "row in both sets";
  }
  EXPECT_EQ(all.size(), ds.size());
}

TEST(SplitTest, StratifiedByProblem) {
  GeneratorOptions opt;
  opt.target_total = 400;
  sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  const auto ds = generate_dataset(simulator, aurora_problems(), opt);
  Rng rng(7);
  const auto tt = apply_split(ds, stratified_split(ds, 100, rng));
  // Every problem appears in both sets.
  EXPECT_EQ(tt.train.problems().size(), ds.problems().size());
  EXPECT_EQ(tt.test.problems().size(), ds.problems().size());
}

TEST(SplitTest, FractionHelper) {
  Dataset d;
  for (int i = 0; i < 40; ++i) d.add({10, 100, 4 + i, 40}, 10.0 + i);
  Rng rng(8);
  const auto split = stratified_split_fraction(d, 0.25, rng);
  EXPECT_EQ(split.test.size(), 10u);
}

TEST(SplitTest, InvalidCountsThrow) {
  const auto d = tiny_dataset();
  Rng rng(9);
  EXPECT_THROW(stratified_split(d, 0, rng), Error);
  EXPECT_THROW(stratified_split(d, 4, rng), Error);
  EXPECT_THROW(stratified_split_fraction(d, 1.5, rng), Error);
}

TEST(SplitTest, CoverageGuaranteesTrainCopy) {
  // Dataset where each config appears twice: after coverage, every test
  // config must also exist in train.
  Dataset d;
  for (int c = 0; c < 12; ++c) {
    for (int rep = 0; rep < 2; ++rep) {
      d.add({10, 100, 5 + c, 40}, 10.0 + c + 0.1 * rep);
    }
  }
  Rng rng(10);
  auto split = stratified_split(d, 8, rng);
  ensure_config_coverage(d, split);
  std::set<int> train_nodes;
  for (auto i : split.train) train_nodes.insert(d.config(i).nodes);
  for (auto i : split.test) {
    EXPECT_TRUE(train_nodes.count(d.config(i).nodes))
        << "uncovered config nodes=" << d.config(i).nodes;
  }
  EXPECT_EQ(split.test.size(), 8u);  // sizes preserved
}

// ---------- scalers ----------

TEST(ScalerTest, StandardizesColumns) {
  linalg::Matrix x = {{1, 10}, {2, 20}, {3, 30}};
  StandardScaler scaler;
  const auto z = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 3; ++i) mean += z(i, c);
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
    double var = 0.0;
    for (std::size_t i = 0; i < 3; ++i) var += z(i, c) * z(i, c);
    EXPECT_NEAR(var / 3.0, 1.0, 1e-12);
  }
}

TEST(ScalerTest, InverseRecovers) {
  linalg::Matrix x = {{1.5, -4}, {2.5, 8}, {0.5, 2}};
  StandardScaler scaler;
  const auto back = scaler.inverse_transform(scaler.fit_transform(x));
  EXPECT_LT(back.max_abs_diff(x), 1e-12);
}

TEST(ScalerTest, ConstantColumnIsSafe) {
  linalg::Matrix x = {{5, 1}, {5, 2}};
  StandardScaler scaler;
  const auto z = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z(1, 0), 0.0);
}

TEST(ScalerTest, UsageErrorsThrow) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(linalg::Matrix(1, 1)), Error);
  scaler.fit(linalg::Matrix(2, 2, 1.0));
  EXPECT_THROW(scaler.transform(linalg::Matrix(1, 3)), Error);
  EXPECT_THROW(scaler.fit(linalg::Matrix()), Error);
}

TEST(TargetScalerTest, RoundTripAndMoments) {
  TargetScaler scaler;
  const std::vector<double> y = {2, 4, 6, 8};
  const auto z = scaler.fit_transform(y);
  double mean = 0.0;
  for (double v : z) mean += v;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  const auto back = scaler.inverse_transform(z);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(back[i], y[i], 1e-12);
  EXPECT_DOUBLE_EQ(scaler.mean(), 5.0);
}

TEST(TargetScalerTest, EmptyThrows) {
  TargetScaler scaler;
  EXPECT_THROW(scaler.fit({}), Error);
  EXPECT_THROW(scaler.transform({1.0}), Error);
}

}  // namespace
}  // namespace ccpred::data
