#include "ccpred/linalg/qr.hpp"

#include <cmath>

namespace ccpred::linalg {

QR::QR(const Matrix& a) : qr_(a), rdiag_(a.cols()) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  CCPRED_CHECK_MSG(m >= n, "QR requires rows >= cols");
  for (std::size_t k = 0; k < n; ++k) {
    // Norm of the k-th column below the diagonal.
    double nrm = 0.0;
    for (std::size_t i = k; i < m; ++i) nrm = std::hypot(nrm, qr_(i, k));
    CCPRED_CHECK_MSG(nrm > 1e-300, "rank-deficient matrix at column " << k);
    if (qr_(k, k) < 0) nrm = -nrm;
    for (std::size_t i = k; i < m; ++i) qr_(i, k) /= nrm;
    qr_(k, k) += 1.0;
    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s = -s / qr_(k, k);
      for (std::size_t i = k; i < m; ++i) qr_(i, j) += s * qr_(i, k);
    }
    rdiag_[k] = -nrm;
  }
}

std::vector<double> QR::solve(const std::vector<double>& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  CCPRED_CHECK(b.size() == m);
  std::vector<double> y = b;
  // Apply Q^T to b.
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * y[i];
    s = -s / qr_(k, k);
    for (std::size_t i = k; i < m; ++i) y[i] += s * qr_(i, k);
  }
  // Back-substitute R x = y.
  std::vector<double> x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n; ++j) s -= qr_(kk, j) * x[j];
    x[kk] = s / rdiag_[kk];
  }
  return x;
}

std::vector<double> lstsq(const Matrix& a, const std::vector<double>& b) {
  return QR(a).solve(b);
}

}  // namespace ccpred::linalg
