#include "ccpred/sim/sim_engine.hpp"

#include <map>
#include <tuple>
#include <utility>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/sim/noise.hpp"

namespace ccpred::sim {
namespace {

/// splitmix64 finalizer: a strong 64-bit mix, the same one Rng's seeding
/// uses, so stream seeds inherit its avalanche properties.
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/// Cache seed of the rep-th measurement of a stream. Never 0 (0 is the
/// noise-free key).
std::uint64_t rep_seed(std::uint64_t stream, int rep) {
  const std::uint64_t h =
      mix64(stream + kGolden * (static_cast<std::uint64_t>(rep) + 1));
  return h == 0 ? 1 : h;
}

}  // namespace

std::uint64_t measurement_stream_seed(std::uint64_t campaign_seed,
                                      const RunConfig& cfg) {
  std::uint64_t h = campaign_seed ^ 0x6a09e667f3bcc909ULL;
  h = mix64(h + kGolden * static_cast<std::uint64_t>(cfg.o));
  h = mix64(h + kGolden * static_cast<std::uint64_t>(cfg.v));
  h = mix64(h + kGolden * static_cast<std::uint64_t>(cfg.nodes));
  h = mix64(h + kGolden * static_cast<std::uint64_t>(cfg.tile));
  return h;
}

std::uint64_t SimCache::machine_tag(const std::string& name) {
  // FNV-1a: stable across processes, unlike std::hash.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t SimCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = k.machine;
  h = mix64(h + kGolden * static_cast<std::uint64_t>(k.o));
  h = mix64(h + kGolden * static_cast<std::uint64_t>(k.v));
  h = mix64(h + kGolden * static_cast<std::uint64_t>(k.nodes));
  h = mix64(h + kGolden * static_cast<std::uint64_t>(k.tile));
  h = mix64(h + k.seed);
  return static_cast<std::size_t>(h);
}

SimCache::Shard& SimCache::shard_for(const Key& key) const {
  // A different mix than KeyHash so shard choice and bucket choice are
  // uncorrelated.
  const std::uint64_t h = mix64(KeyHash{}(key) + kGolden);
  return shards_[h % kShards];
}

bool SimCache::lookup(const Key& key, double* value) const {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    ++s.misses;
    return false;
  }
  ++s.hits;
  *value = it->second;
  return true;
}

void SimCache::insert(const Key& key, double value) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  s.map.emplace(key, value);
}

SimCache::Stats SimCache::stats() const {
  Stats st;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    st.hits += s.hits;
    st.misses += s.misses;
    st.entries += s.map.size();
  }
  return st;
}

void SimCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.map.clear();
    s.hits = 0;
    s.misses = 0;
  }
}

SimEngine::SimEngine(const CcsdSimulator& simulator, SimEngineOptions options)
    : simulator_(&simulator),
      options_(options),
      machine_tag_(SimCache::machine_tag(simulator.machine().name)) {}

SimCache::Key SimEngine::key_for(const RunConfig& cfg,
                                 std::uint64_t seed) const {
  return SimCache::Key{.machine = machine_tag_,
                       .o = cfg.o,
                       .v = cfg.v,
                       .nodes = cfg.nodes,
                       .tile = cfg.tile,
                       .seed = seed};
}

SimEngineStats SimEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

double SimEngine::iteration_time(const RunConfig& cfg) {
  if (!fast()) {
    const double t = simulator_->iteration_time(cfg);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.graph_builds;
    ++stats_.evaluations;
    return t;
  }
  const SimCache::Key key = key_for(cfg);
  double value = 0.0;
  if (options_.use_cache && cache_.lookup(key, &value)) return value;
  // breakdown(cfg) routes through build_task_graph + breakdown(graph,
  // nodes), so this is bit-identical to the batched path.
  value = simulator_->iteration_time(cfg);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.graph_builds;
    ++stats_.evaluations;
  }
  if (options_.use_cache) cache_.insert(key, value);
  return value;
}

std::vector<double> SimEngine::simulate_batch(
    const std::vector<RunConfig>& configs) {
  std::vector<double> out(configs.size(), 0.0);
  if (configs.empty()) return out;

  if (!fast()) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      out[i] = simulator_->iteration_time(configs[i]);
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.graph_builds += configs.size();
    stats_.evaluations += configs.size();
    return out;
  }

  // Dedupe: one evaluation per distinct configuration.
  using Key4 = std::tuple<int, int, int, int>;
  std::map<Key4, std::size_t> uniq;
  std::vector<RunConfig> ucfg;
  std::vector<std::size_t> uid(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const auto [it, inserted] =
        uniq.emplace(Key4{c.o, c.v, c.nodes, c.tile}, ucfg.size());
    if (inserted) ucfg.push_back(c);
    uid[i] = it->second;
  }

  std::vector<double> uval(ucfg.size(), 0.0);
  std::vector<char> have(ucfg.size(), 0);
  if (options_.use_cache) {
    for (std::size_t u = 0; u < ucfg.size(); ++u) {
      have[u] = cache_.lookup(key_for(ucfg[u]), &uval[u]) ? 1 : 0;
    }
  }

  // Group cache misses by (O, V, tile): one task-graph build per group,
  // evaluated at each of the group's node counts.
  using Key3 = std::tuple<int, int, int>;
  std::map<Key3, std::vector<std::size_t>> groups;
  std::size_t evaluated = 0;
  for (std::size_t u = 0; u < ucfg.size(); ++u) {
    if (have[u]) continue;
    groups[Key3{ucfg[u].o, ucfg[u].v, ucfg[u].tile}].push_back(u);
    ++evaluated;
  }
  std::vector<const std::vector<std::size_t>*> glist;
  glist.reserve(groups.size());
  for (const auto& [key, members] : groups) glist.push_back(&members);

  const auto eval_group = [&](std::size_t gi) {
    const auto& members = *glist[gi];
    const auto& c0 = ucfg[members.front()];
    const TaskGraph graph = simulator_->build_task_graph(c0.o, c0.v, c0.tile);
    for (const std::size_t u : members) {
      uval[u] = simulator_->breakdown(graph, ucfg[u].nodes).total_s();
    }
  };
  if (options_.parallel && glist.size() >= options_.min_parallel_batch) {
    parallel_for(0, glist.size(), eval_group);
  } else {
    for (std::size_t gi = 0; gi < glist.size(); ++gi) eval_group(gi);
  }

  if (options_.use_cache) {
    for (std::size_t u = 0; u < ucfg.size(); ++u) {
      if (!have[u]) cache_.insert(key_for(ucfg[u]), uval[u]);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.graph_builds += glist.size();
    stats_.evaluations += evaluated;
  }

  for (std::size_t i = 0; i < configs.size(); ++i) out[i] = uval[uid[i]];
  return out;
}

std::vector<double> SimEngine::measured_series(const RunConfig& cfg,
                                               std::uint64_t campaign_seed,
                                               int reps) {
  CCPRED_CHECK_MSG(reps >= 0, "repeat count must be non-negative");
  std::vector<double> out(static_cast<std::size_t>(reps), 0.0);
  if (reps == 0) return out;
  const std::uint64_t stream = measurement_stream_seed(campaign_seed, cfg);

  if (fast() && options_.use_cache) {
    bool all = true;
    for (int r = 0; r < reps; ++r) {
      if (!cache_.lookup(key_for(cfg, rep_seed(stream, r)),
                         &out[static_cast<std::size_t>(r)])) {
        all = false;
        break;
      }
    }
    if (all) return out;
  }

  // Replaying the stream from the start makes each rep's value independent
  // of which prefix happened to be cached.
  const double base = iteration_time(cfg);
  Rng rng(stream);
  for (int r = 0; r < reps; ++r) {
    const double value = base * noise_factor(simulator_->machine(), rng);
    out[static_cast<std::size_t>(r)] = value;
    if (fast() && options_.use_cache) {
      cache_.insert(key_for(cfg, rep_seed(stream, r)), value);
    }
  }
  return out;
}

double SimEngine::measured_time(const RunConfig& cfg,
                                std::uint64_t campaign_seed, int rep) {
  CCPRED_CHECK_MSG(rep >= 0, "repeat index must be non-negative");
  return measured_series(cfg, campaign_seed, rep + 1).back();
}

}  // namespace ccpred::sim
