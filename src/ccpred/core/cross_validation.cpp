#include "ccpred/core/cross_validation.hpp"

#include <algorithm>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"

namespace ccpred::ml {

double scoring_value(const Scores& scores, Scoring scoring) {
  switch (scoring) {
    case Scoring::kR2:
      return scores.r2;
    case Scoring::kNegMae:
      return -scores.mae;
    case Scoring::kNegMape:
      return -scores.mape;
  }
  throw Error("unknown scoring");
}

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, int folds,
                                                    Rng& rng) {
  CCPRED_CHECK_MSG(folds >= 2, "need at least 2 folds");
  CCPRED_CHECK_MSG(static_cast<std::size_t>(folds) <= n,
                   "more folds than rows");
  auto perm = rng.permutation(n);
  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(folds));
  for (std::size_t i = 0; i < n; ++i) {
    out[i % static_cast<std::size_t>(folds)].push_back(perm[i]);
  }
  for (auto& fold : out) std::sort(fold.begin(), fold.end());
  return out;
}

CvResult cross_validate(const Regressor& prototype, const linalg::Matrix& x,
                        const std::vector<double>& y, int folds, Rng& rng) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  const auto fold_idx = kfold_indices(x.rows(), folds, rng);

  CvResult result;
  result.fold_scores.resize(fold_idx.size());
  parallel_for(0, fold_idx.size(), [&](std::size_t f) {
    const auto& val_rows = fold_idx[f];
    std::vector<bool> in_val(x.rows(), false);
    for (auto i : val_rows) in_val[i] = true;
    std::vector<std::size_t> train_rows;
    train_rows.reserve(x.rows() - val_rows.size());
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (!in_val[i]) train_rows.push_back(i);
    }

    const linalg::Matrix x_train = x.select_rows(train_rows);
    const linalg::Matrix x_val = x.select_rows(val_rows);
    std::vector<double> y_train(train_rows.size());
    std::vector<double> y_val(val_rows.size());
    for (std::size_t i = 0; i < train_rows.size(); ++i) {
      y_train[i] = y[train_rows[i]];
    }
    for (std::size_t i = 0; i < val_rows.size(); ++i) y_val[i] = y[val_rows[i]];

    auto model = prototype.clone();
    model->fit(x_train, y_train);
    result.fold_scores[f] = score_all(y_val, model->predict(x_val));
  });

  for (const auto& s : result.fold_scores) {
    result.mean.r2 += s.r2;
    result.mean.mae += s.mae;
    result.mean.mape += s.mape;
    result.mean.rmse += s.rmse;
  }
  const auto k = static_cast<double>(result.fold_scores.size());
  result.mean.r2 /= k;
  result.mean.mae /= k;
  result.mean.mape /= k;
  result.mean.rmse /= k;
  return result;
}

}  // namespace ccpred::ml
