/// STQ advisor: answer the shortest-time question for a molecule before
/// committing to a supercomputer allocation.
///
/// Usage: stq_advisor [machine] [O] [V]
///   machine: aurora | frontier     (default aurora)
///   O, V: occupied / virtual orbitals (default 134 951)
///
/// Trains the paper's GB model on the machine's campaign, then sweeps the
/// (nodes, tile) space and prints the recommendation plus the sweep's
/// Pareto view (best time per node count).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "ccpred/common/table.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/guidance/advisor.hpp"

int main(int argc, char** argv) {
  using namespace ccpred;
  const std::string machine = argc > 1 ? argv[1] : "aurora";
  const int o = argc > 2 ? std::atoi(argv[2]) : 134;
  const int v = argc > 3 ? std::atoi(argv[3]) : 951;
  if (o <= 0 || v <= 0 || (machine != "aurora" && machine != "frontier")) {
    std::fprintf(stderr, "usage: %s [aurora|frontier] [O] [V]\n", argv[0]);
    return 1;
  }

  sim::CcsdSimulator simulator(machine == "aurora"
                                   ? sim::MachineModel::aurora()
                                   : sim::MachineModel::frontier());
  std::printf("training runtime model on the %s campaign...\n",
              machine.c_str());
  const auto dataset = data::paper_dataset(simulator);
  auto model = ml::make_paper_gb();
  model->fit(dataset.features(), dataset.targets());

  const guide::Advisor advisor(*model, simulator);
  const auto stq = advisor.shortest_time(o, v);
  const auto bq = advisor.cheapest_run(o, v);

  std::printf(
      "\nproblem O=%d V=%d on %s\n"
      "  shortest time : %d nodes, tile %d -> predicted %.1fs (%.2f "
      "node-hours)\n"
      "  cheapest run  : %d nodes, tile %d -> predicted %.1fs (%.2f "
      "node-hours)\n\n",
      o, v, machine.c_str(), stq.config.nodes, stq.config.tile,
      stq.predicted_time_s, stq.predicted_node_hours, bq.config.nodes,
      bq.config.tile, bq.predicted_time_s, bq.predicted_node_hours);

  // Pareto view: best predicted time and its tile per node count.
  std::map<int, guide::SweepPoint> best_per_nodes;
  for (const auto& pt : stq.sweep) {
    auto it = best_per_nodes.find(pt.config.nodes);
    if (it == best_per_nodes.end() ||
        pt.predicted_time_s < it->second.predicted_time_s) {
      best_per_nodes[pt.config.nodes] = pt;
    }
  }
  TextTable table({"nodes", "best tile", "pred time (s)", "node-hours"},
                  "Sweep: best predicted time per node count");
  for (const auto& [nodes, pt] : best_per_nodes) {
    table.add_row({std::to_string(nodes), std::to_string(pt.config.tile),
                   TextTable::cell(pt.predicted_time_s, 1),
                   TextTable::cell(pt.predicted_node_hours, 2)});
  }
  table.print();
  return 0;
}
