#include "ccpred/core/param_space.hpp"

#include <algorithm>
#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::ml {

std::vector<ParamMap> expand_grid(const ParamGrid& grid) {
  std::vector<ParamMap> out;
  out.push_back({});
  for (const auto& [key, values] : grid) {
    CCPRED_CHECK_MSG(!values.empty(), "empty grid for parameter " << key);
    std::vector<ParamMap> next;
    next.reserve(out.size() * values.size());
    for (const auto& base : out) {
      for (double v : values) {
        ParamMap p = base;
        p[key] = v;
        next.push_back(std::move(p));
      }
    }
    out = std::move(next);
  }
  return out;
}

ParamMap sample_params(const ParamSpace& space, Rng& rng) {
  ParamMap out;
  for (const auto& [key, range] : space) {
    CCPRED_CHECK_MSG(range.lo <= range.hi, "bad range for " << key);
    double v;
    if (range.log_scale) {
      CCPRED_CHECK_MSG(range.lo > 0.0, "log-scale range must be positive");
      v = std::pow(10.0, rng.uniform(std::log10(range.lo),
                                     std::log10(range.hi)));
    } else {
      v = rng.uniform(range.lo, range.hi);
    }
    if (range.integer) v = std::round(v);
    out[key] = std::clamp(v, range.lo, range.hi);
  }
  return out;
}

std::vector<double> encode_params(const ParamSpace& space,
                                  const ParamMap& params) {
  std::vector<double> out;
  out.reserve(space.size());
  for (const auto& [key, range] : space) {
    const auto it = params.find(key);
    CCPRED_CHECK_MSG(it != params.end(), "missing parameter " << key);
    double v = it->second;
    double lo = range.lo;
    double hi = range.hi;
    if (range.log_scale) {
      v = std::log10(v);
      lo = std::log10(range.lo);
      hi = std::log10(range.hi);
    }
    out.push_back(hi > lo ? (v - lo) / (hi - lo) : 0.0);
  }
  return out;
}

ParamMap decode_params(const ParamSpace& space,
                       const std::vector<double>& unit) {
  CCPRED_CHECK_MSG(unit.size() == space.size(), "encoded size mismatch");
  ParamMap out;
  std::size_t i = 0;
  for (const auto& [key, range] : space) {
    double lo = range.lo;
    double hi = range.hi;
    const double u = std::clamp(unit[i++], 0.0, 1.0);
    double v;
    if (range.log_scale) {
      lo = std::log10(range.lo);
      hi = std::log10(range.hi);
      v = std::pow(10.0, lo + u * (hi - lo));
    } else {
      v = lo + u * (hi - lo);
    }
    if (range.integer) v = std::round(v);
    out[key] = std::clamp(v, range.lo, range.hi);
  }
  return out;
}

std::size_t grid_size(const ParamGrid& grid) {
  std::size_t n = 1;
  for (const auto& [key, values] : grid) n *= values.size();
  return n;
}

ParamSpace space_from_grid(const ParamGrid& grid) {
  ParamSpace space;
  for (const auto& [key, values] : grid) {
    CCPRED_CHECK_MSG(!values.empty(), "empty grid for parameter " << key);
    ParamRange r;
    r.lo = *std::min_element(values.begin(), values.end());
    r.hi = *std::max_element(values.begin(), values.end());
    r.integer = std::all_of(values.begin(), values.end(), [](double v) {
      return v == std::round(v);
    });
    r.log_scale = r.lo > 0.0 && r.hi / std::max(r.lo, 1e-300) >= 100.0;
    if (r.lo == r.hi) r.hi = r.lo;  // degenerate single-value dimension
    space[key] = r;
  }
  return space;
}

}  // namespace ccpred::ml
