#include "ccpred/common/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace ccpred {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

namespace {
thread_local bool in_parallel_region = false;
}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();

  const std::size_t n = end - begin;
  const std::size_t workers = std::min(pool->size(), n);

  if (workers <= 1 || in_parallel_region) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool->submit([lo, hi, &body] {
      in_parallel_region = true;
      for (std::size_t i = lo; i < hi; ++i) body(i);
      in_parallel_region = false;
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ccpred
