#include "ccpred/core/model_zoo.hpp"

#include "ccpred/common/error.hpp"
#include "ccpred/core/adaboost.hpp"
#include "ccpred/core/bayesian_ridge.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/kernel_ridge.hpp"
#include "ccpred/core/polynomial.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/core/svr.hpp"

namespace ccpred::ml {

const std::vector<ZooEntry>& model_zoo() {
  static const std::vector<ZooEntry> zoo = {
      {"PR",
       "Polynomial regression (ridge on monomial expansion)",
       [] { return std::make_unique<PolynomialRegression>(); },
       {{"degree", {2, 3, 4}}, {"alpha", {1e-6, 1e-3, 1.0}}}},
      {"KR",
       "Kernel ridge regression (RBF)",
       [] { return std::make_unique<KernelRidgeRegression>(); },
       {{"alpha", {0.01, 0.1, 1.0}}, {"gamma", {0.1, 0.5, 2.0}}}},
      {"DT",
       "CART decision tree",
       [] {
         return std::make_unique<DecisionTreeRegressor>(
             TreeOptions{.max_depth = 12});
       },
       {{"max_depth", {8, 12, 16}}, {"min_samples_leaf", {1, 2, 4}}}},
      {"RF",
       "Random forest (bagged CART)",
       [] {
         return std::make_unique<RandomForestRegressor>(
             100, TreeOptions{.max_depth = 16});
       },
       {{"n_estimators", {100, 200}}, {"max_depth", {12, 16}}}},
      {"GB",
       "Gradient-boosted trees (squared loss)",
       [] { return std::make_unique<GradientBoostingRegressor>(); },
       {{"n_estimators", {250, 750}},
        {"max_depth", {6, 10}},
        {"learning_rate", {0.05, 0.1}}}},
      {"AB",
       "AdaBoost.R2 with CART base learners",
       [] { return std::make_unique<AdaBoostRegressor>(); },
       {{"n_estimators", {50, 100}}, {"max_depth", {4, 8}}}},
      {"GP",
       "Gaussian-process regression (RBF + white noise)",
       [] { return std::make_unique<GaussianProcessRegression>(); },
       {{"gamma", {0.1, 0.5, 2.0}},
        {"noise", {1e-4, 1e-2}},
        {"optimize", {0}}}},
      {"BR",
       "Bayesian ridge regression (evidence maximization)",
       [] { return std::make_unique<BayesianRidgeRegression>(); },
       {{"alpha_1", {1e-6, 1e-4}}, {"lambda_1", {1e-6, 1e-4}}}},
      {"SVR",
       "Epsilon-insensitive support vector regression (RBF)",
       [] { return std::make_unique<SupportVectorRegression>(); },
       {{"C", {1.0, 10.0, 100.0}}, {"gamma", {0.1, 0.5}}}},
  };
  return zoo;
}

const ZooEntry& zoo_entry(const std::string& key) {
  for (const auto& entry : model_zoo()) {
    if (entry.key == key) return entry;
  }
  throw Error("unknown model key: " + key);
}

std::unique_ptr<Regressor> make_model(const std::string& key) {
  return zoo_entry(key).make();
}

std::unique_ptr<Regressor> make_paper_gb() {
  // §4.2: "GB models with 750 tree-based estimators, a maximum depth of 10,
  // and all other default hyper-parameter values".
  return std::make_unique<GradientBoostingRegressor>(
      /*n_estimators=*/750, /*learning_rate=*/0.1,
      TreeOptions{.max_depth = 10});
}

}  // namespace ccpred::ml
