#pragma once

/// \file report.hpp
/// Formatting of STQ/BQ evaluation outcomes as the paper's Tables 3-6:
/// one row per problem size; mismatched predictions shown in parentheses
/// next to the true optimum, exactly like the paper's notation.

#include <string>
#include <vector>

#include "ccpred/common/table.hpp"
#include "ccpred/guidance/optimal.hpp"

namespace ccpred::guide {

/// Tables 3/4 format: O, V, Nodes, Tile size, Runtime(s); predicted values
/// in parentheses where the model chose a different configuration.
TextTable format_stq_table(const std::vector<ProblemOutcome>& outcomes,
                           const std::string& title);

/// Tables 5/6 format: adds the Node Hours column.
TextTable format_bq_table(const std::vector<ProblemOutcome>& outcomes,
                          const std::string& title);

/// "x(y)" when mismatch, "x" otherwise — the paper's cell notation.
std::string paren_cell(double true_value, double pred_value, bool match,
                       int precision);
std::string paren_cell(int true_value, int pred_value, bool match);

/// Number of problems where the model predicted a suboptimal configuration.
std::size_t mismatch_count(const std::vector<ProblemOutcome>& outcomes);

}  // namespace ccpred::guide
