#include "ccpred/serve/online/drift_detector.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::serve::online {

DriftDetector::DriftDetector(DriftOptions options) : options_(options) {
  CCPRED_CHECK_MSG(options_.window > 0, "DriftDetector window must be > 0");
  CCPRED_CHECK_MSG(options_.min_samples > 0,
                   "DriftDetector min_samples must be > 0");
  CCPRED_CHECK_MSG(options_.mape_threshold > 0.0,
                   "DriftDetector mape_threshold must be > 0");
  ape_.reserve(options_.window);
  residual_.reserve(options_.window);
}

void DriftDetector::observe(double predicted_s, double measured_s) {
  if (!std::isfinite(predicted_s) || !std::isfinite(measured_s) ||
      measured_s <= 0.0) {
    return;
  }
  const double ape = std::abs(predicted_s - measured_s) / measured_s;
  const double residual = predicted_s - measured_s;
  if (ape_.size() < options_.window) {
    ape_.push_back(ape);
    residual_.push_back(residual);
  } else {
    ape_[next_] = ape;
    residual_[next_] = residual;
    next_ = (next_ + 1) % options_.window;
  }
  ++observed_;
}

double DriftDetector::rolling_mape() const {
  if (ape_.empty()) return 0.0;
  double sum = 0.0;
  for (const double a : ape_) sum += a;
  return sum / static_cast<double>(ape_.size());
}

double DriftDetector::mean_residual() const {
  if (residual_.empty()) return 0.0;
  double sum = 0.0;
  for (const double r : residual_) sum += r;
  return sum / static_cast<double>(residual_.size());
}

bool DriftDetector::drifting() const {
  return ape_.size() >= options_.min_samples &&
         rolling_mape() > options_.mape_threshold;
}

void DriftDetector::reset() {
  ape_.clear();
  residual_.clear();
  next_ = 0;
}

}  // namespace ccpred::serve::online
