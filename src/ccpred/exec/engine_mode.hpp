#pragma once

/// \file engine_mode.hpp
/// The one reference-vs-fast switch shared by every engine in ccpred.
///
/// PRs 2/3/5 each grew a private two-state enum for "the original serial
/// path we gate against" vs "the optimized path we ship": the simulation
/// engine's SimEngineMode, the Gaussian-process Engine and the Cholesky
/// Method. They all mean the same thing — kReference preserves the original
/// computation as ground truth, kFast is the memoized / blocked / batched
/// path whose outputs must stay bit-identical (or within the engine's
/// documented agreement bound) — so they are now one enum, aliased under
/// the old names where call sites predate the executor layer.

#include <cstddef>

namespace ccpred::exec {

/// Engine execution strategy. Every engine keeps its original computation
/// reachable under kReference; bench gates compare kFast against it.
enum class EngineMode {
  kReference,  ///< the original serial/scalar path (ground truth)
  kFast,       ///< memoized / batched / blocked / parallel
};

inline const char* engine_mode_name(EngineMode mode) {
  return mode == EngineMode::kFast ? "fast" : "reference";
}

/// Default shard count for the executor's sharded caches. SimCache and
/// SweepCache used to hardcode their shard counts independently (16 and 8);
/// both now derive from this constant, and the cache template accepts any
/// positive count so tests can exercise non-default sharding.
inline constexpr std::size_t kDefaultShards = 16;

}  // namespace ccpred::exec
