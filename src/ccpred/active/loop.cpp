#include "ccpred/active/loop.hpp"

#include "ccpred/common/error.hpp"

namespace ccpred::al {

ActiveLearningResult run_active_learning(
    const data::Dataset& train, const data::Dataset& test,
    const ml::Regressor& prototype, QueryStrategy& strategy,
    const ActiveLearningOptions& options) {
  CCPRED_CHECK_MSG(options.n_queries >= 1, "need at least one round");
  CCPRED_CHECK_MSG(!train.empty(), "empty train pool");
  CCPRED_CHECK_MSG(!options.goal || !test.empty(),
                   "goal evaluation needs a test set");

  Rng rng(options.seed);
  Pool pool(train, options.n_initial, rng);

  const linalg::Matrix x_train_full = train.features();
  const auto& y_train_full = train.targets();
  const linalg::Matrix x_test = test.empty() ? linalg::Matrix() : test.features();

  ActiveLearningResult result;
  result.strategy = strategy.name();
  result.model = prototype.name();

  for (int round = 0; round < options.n_queries; ++round) {
    auto model = prototype.clone();
    model->fit(pool.labeled_features(), pool.labeled_targets());

    RoundRecord record;
    record.labeled_count = pool.labeled().size();
    record.train_scores =
        ml::score_all(y_train_full, model->predict(x_train_full));

    if (options.goal) {
      // True-loss goal evaluation: locate predicted optima on the test set
      // and score them at their true targets (§3.4).
      const auto y_pred = model->predict(x_test);
      const auto outcomes = guide::evaluate_optima(test, y_pred, *options.goal);
      record.goal_losses = guide::compute_losses(outcomes);
    }
    result.rounds.push_back(record);

    if (pool.unlabeled().empty()) break;
    auto queries = strategy.select(pool, *model, options.query_size, rng);
    if (queries.empty()) break;
    pool.label_positions(std::move(queries));
  }
  return result;
}

}  // namespace ccpred::al
