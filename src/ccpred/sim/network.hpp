#pragma once

/// \file network.hpp
/// α–β interconnect cost model: message latency plus bandwidth-limited
/// transfer, with node-count-dependent congestion and the locality credit
/// for data already resident on the node.

#include <cstdint>

#include "ccpred/sim/machine.hpp"

namespace ccpred::sim {

/// Time to move `bytes` in `messages` messages to one GPU of a job using
/// `nodes` nodes. Only the remote fraction (1 - 1/nodes) crosses the
/// network; per-node injection bandwidth is shared by the node's GPUs.
double transfer_time_s(const MachineModel& m, double bytes,
                       double messages, int nodes);

/// Time of a binomial-tree allreduce of `bytes` across `nodes` nodes
/// (log2(n) stages, each latency + bytes/bw).
double allreduce_time_s(const MachineModel& m, double bytes, int nodes);

}  // namespace ccpred::sim
