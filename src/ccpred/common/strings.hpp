#pragma once

/// \file strings.hpp
/// Small string utilities shared by CSV I/O and report formatting.

#include <string>
#include <string_view>
#include <vector>

namespace ccpred {

/// Splits `s` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading and trailing whitespace.
std::string trim(std::string_view s);

/// Parses a double; throws ccpred::Error (with the offending text) on
/// failure or trailing garbage.
double parse_double(std::string_view s);

/// Parses a non-negative integer; throws ccpred::Error on failure.
long long parse_int(std::string_view s);

/// Formats `v` with `prec` digits after the decimal point.
std::string format_double(double v, int prec);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace ccpred
