#include "ccpred/serve/online/shadow_evaluator.hpp"

#include <cmath>

#include "ccpred/data/dataset.hpp"

namespace ccpred::serve::online {
namespace {

linalg::Matrix feature_matrix(const std::vector<MeasuredRun>& runs) {
  linalg::Matrix x(runs.size(), data::kNumFeatures);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    x(i, data::kFeatO) = runs[i].o;
    x(i, data::kFeatV) = runs[i].v;
    x(i, data::kFeatNodes) = runs[i].nodes;
    x(i, data::kFeatTile) = runs[i].tile;
  }
  return x;
}

}  // namespace

double ShadowEvaluator::mape(const ml::Regressor& model,
                             const std::vector<MeasuredRun>& holdout) {
  if (holdout.empty()) return 0.0;
  const std::vector<double> predicted = model.predict(feature_matrix(holdout));
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < holdout.size(); ++i) {
    const double measured = holdout[i].wall_time_s;
    if (!(measured > 0.0) || !std::isfinite(predicted[i])) continue;
    sum += std::abs(predicted[i] - measured) / measured;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

ShadowVerdict ShadowEvaluator::judge(const ml::Regressor& candidate,
                                     const ml::Regressor& incumbent,
                                     const std::vector<MeasuredRun>& holdout,
                                     double min_improvement) {
  ShadowVerdict verdict;
  verdict.holdout_size = holdout.size();
  if (holdout.empty()) return verdict;  // nothing to judge on: no promotion
  verdict.candidate_mape = mape(candidate, holdout);
  verdict.incumbent_mape = mape(incumbent, holdout);
  verdict.promote =
      verdict.candidate_mape < verdict.incumbent_mape * (1.0 - min_improvement);
  return verdict;
}

}  // namespace ccpred::serve::online
