#pragma once

/// \file lru_cache.hpp
/// A bounded least-recently-used map with hit/miss/eviction counters — the
/// building block of the serving layer's sweep cache. Not thread-safe by
/// itself; concurrent users shard the key space and put one LruCache (plus
/// a mutex) per shard.

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "ccpred/common/error.hpp"

namespace ccpred {

/// Running counters of one cache (or one shard).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  CacheCounters& operator+=(const CacheCounters& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    return *this;
  }

  /// Hit fraction over all lookups (0 when never queried).
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Fixed-capacity LRU map. get() refreshes recency; put() evicts the least
/// recently used entry once the capacity is exceeded. Values are returned
/// by copy, so callers typically store shared_ptr for large payloads.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    CCPRED_CHECK_MSG(capacity > 0, "LruCache capacity must be > 0");
  }

  /// Looks up `key`; refreshes its recency on a hit.
  std::optional<V> get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++counters_.misses;
      return std::nullopt;
    }
    ++counters_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites `key`, making it most recent; evicts the least
  /// recent entry if the cache is over capacity afterwards.
  void put(const K& key, V value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++counters_.evictions;
    }
  }

  /// True when `key` is present. Neither counters nor recency are touched —
  /// the probe the sharded memo cache's first-writer-wins insert needs.
  bool contains(const K& key) const { return index_.find(key) != index_.end(); }

  /// Counter- and recency-neutral read: the value if present, else nullopt.
  /// Used by coalesced single-flight waiters, whose call already counted
  /// toward the coalesced statistic — a get() here would double-count.
  std::optional<V> peek(const K& key) const {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    return it->second->second;
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheCounters& counters() const { return counters_; }

  void clear() {
    order_.clear();
    index_.clear();
  }

  /// Zeroes the hit/miss/eviction counters (entries are untouched).
  void reset_counters() { counters_ = CacheCounters{}; }

  /// Erases every entry whose key satisfies `pred`; returns how many were
  /// dropped. Targeted invalidation (e.g. a promoted model dropping its
  /// machine's cached sweeps) — not an eviction, so counters are untouched.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->first)) {
        index_.erase(it->first);
        it = order_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

 private:
  using Entry = std::pair<K, V>;

  std::size_t capacity_;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
  CacheCounters counters_;
};

}  // namespace ccpred
