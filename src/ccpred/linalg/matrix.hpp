#pragma once

/// \file matrix.hpp
/// Dense row-major matrix of doubles — the numeric workhorse for the
/// kernel-based regressors (KRR, GP, SVR), Bayesian ridge and the
/// polynomial/linear solvers. Sized for this library's regime (n up to a
/// few thousand); all hot paths route through the blocked kernels in
/// blas.hpp.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "ccpred/common/aligned.hpp"
#include "ccpred/common/error.hpp"

namespace ccpred::linalg {

/// Row-major dense matrix with value semantics.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested initializer lists (rows of equal width).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  /// Builds a matrix from `rows` of equal-width vectors.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws on out-of-range.
  double at(std::size_t r, std::size_t c) const;

  /// Raw contiguous storage (row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  /// Copies row r into a vector.
  std::vector<double> row(std::size_t r) const;
  /// Copies column c into a vector.
  std::vector<double> col(std::size_t c) const;

  /// Returns the transpose.
  Matrix transposed() const;

  /// Extracts the sub-matrix of the given rows (in order).
  Matrix select_rows(const std::vector<std::size_t>& indices) const;

  /// Appends the rows of `other` below this matrix (column counts must
  /// match; appending to an empty matrix adopts other's width). Row-major
  /// storage makes this a single contiguous insert — used by the
  /// incremental GP update to grow the training set in place.
  void append_rows(const Matrix& other);

  /// Element-wise operations (dimension-checked).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Adds `v` to every diagonal element (requires square).
  void add_diagonal(double v);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|; requires equal shapes.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Cache-line-aligned so the SIMD kernels' vector loads over matrix
  // storage start on aligned lines; same growth and value semantics as
  // std::vector<double>.
  AlignedVector<double> data_;
};

}  // namespace ccpred::linalg
