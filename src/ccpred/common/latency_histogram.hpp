#pragma once

/// \file latency_histogram.hpp
/// A lock-free latency histogram with geometric buckets, good enough for
/// serving-layer p50/p95 snapshots. record() is a single relaxed atomic
/// increment on the hot path; quantile() scans the fixed bucket array and
/// interpolates inside the winning bucket.

#include <array>
#include <atomic>
#include <cstdint>

namespace ccpred {

/// Histogram over positive durations in seconds. Buckets are geometric:
/// bucket i covers [kMinSeconds * growth^i, kMinSeconds * growth^(i+1));
/// with 64 buckets from 1 µs growing by 1.5x the range spans past 10^5 s.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr double kMinSeconds = 1e-6;
  static constexpr double kGrowth = 1.5;

  LatencyHistogram() = default;

  /// Records one observation (thread-safe, wait-free).
  void record(double seconds);

  /// Records `n` observations of the same value in one shot — four atomic
  /// adds and one CAS total, instead of per-observation bookkeeping. Used
  /// by the batch dispatch path, where every member of a flush completes
  /// at the same instant.
  void record_n(double seconds, std::uint64_t n);

  /// Number of recorded observations.
  std::uint64_t count() const;

  /// Approximate quantile in seconds, q in [0, 1]. Returns 0 when empty.
  /// Linear interpolation within the selected bucket keeps the error
  /// bounded by the bucket growth factor.
  double quantile(double q) const;

  /// Mean of recorded observations (0 when empty).
  double mean() const;

  /// Largest recorded observation in seconds (0 when empty). Exact, not
  /// bucket-quantized — tail buckets are wide, so the p99/max pair tells
  /// apart "one slow request" from "a slow tail".
  double max() const;

  void reset();

 private:
  std::size_t bucket_for(double seconds) const;
  double bucket_lower(std::size_t i) const;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  /// Sum in nanoseconds so the mean survives atomic accumulation.
  std::atomic<std::uint64_t> sum_ns_{0};
  /// Max in nanoseconds, maintained with a CAS loop.
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace ccpred
