#include "ccpred/common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "ccpred/common/error.hpp"

namespace ccpred {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

double parse_double(std::string_view s) {
  const std::string t = trim(s);
  CCPRED_CHECK_MSG(!t.empty(), "cannot parse empty string as double");
  double value = 0.0;
  const auto* first = t.data();
  const auto* last = t.data() + t.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  CCPRED_CHECK_MSG(ec == std::errc() && ptr == last,
                   "cannot parse '" << t << "' as double");
  return value;
}

long long parse_int(std::string_view s) {
  const std::string t = trim(s);
  CCPRED_CHECK_MSG(!t.empty(), "cannot parse empty string as int");
  long long value = 0;
  const auto* first = t.data();
  const auto* last = t.data() + t.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  CCPRED_CHECK_MSG(ec == std::errc() && ptr == last,
                   "cannot parse '" << t << "' as int");
  return value;
}

std::string format_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace ccpred
