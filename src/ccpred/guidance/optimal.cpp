#include "ccpred/guidance/optimal.hpp"

#include "ccpred/common/error.hpp"
#include "ccpred/exec/task_scope.hpp"

namespace ccpred::guide {
namespace {

/// Deterministic argmin order: objective value, then lowest nodes, then
/// smallest tile. Ties on all three keep the incumbent (lower row).
bool better_choice(double value, const sim::RunConfig& cfg,
                   double best_value, const sim::RunConfig& best_cfg) {
  if (value != best_value) return value < best_value;
  if (cfg.nodes != best_cfg.nodes) return cfg.nodes < best_cfg.nodes;
  return cfg.tile < best_cfg.tile;
}

}  // namespace

double objective_value(const data::Dataset& dataset,
                       const std::vector<double>& y, std::size_t i,
                       Objective objective) {
  CCPRED_CHECK(i < dataset.size() && y.size() == dataset.size());
  switch (objective) {
    case Objective::kShortestTime:
      return y[i];
    case Objective::kNodeHours:
      return sim::CcsdSimulator::node_hours(dataset.config(i), y[i]);
  }
  throw Error("unknown objective");
}

std::vector<ProblemSweep> sweep_optimal_values(const data::Dataset& dataset,
                                               const std::vector<double>& y,
                                               Objective objective) {
  CCPRED_CHECK_MSG(y.size() == dataset.size(), "y size mismatch");
  std::vector<std::pair<std::pair<int, int>, std::vector<std::size_t>>> groups;
  for (auto& [key, rows] : dataset.group_by_problem()) {
    groups.emplace_back(key, std::move(rows));
  }

  std::vector<ProblemSweep> out(groups.size());
  const auto sweep_one = [&](std::size_t gi) {
    const auto& [key, rows] = groups[gi];
    ProblemSweep& sw = out[gi];
    sw.o = key.first;
    sw.v = key.second;
    sw.rows = rows;
    sw.values.reserve(rows.size());
    bool first = true;
    for (const auto r : rows) {
      const double value = objective_value(dataset, y, r, objective);
      sw.values.push_back(value);
      if (first || better_choice(value, dataset.config(r), sw.best.value,
                                 sw.best.config)) {
        sw.best.o = sw.o;
        sw.best.v = sw.v;
        sw.best.row = r;
        sw.best.config = dataset.config(r);
        sw.best.value = value;
        first = false;
      }
    }
  };
  // Each group writes only its own sweep slot, so the fan-out is
  // order-independent (the determinism suite shuffles it).
  if (groups.size() >= 8) {
    exec::TaskScope scope;
    scope.parallel_for(0, groups.size(), sweep_one);
  } else {
    for (std::size_t gi = 0; gi < groups.size(); ++gi) sweep_one(gi);
  }
  return out;
}

std::vector<OptimalChoice> get_optimal_values(const data::Dataset& dataset,
                                              const std::vector<double>& y,
                                              Objective objective) {
  const auto sweeps = sweep_optimal_values(dataset, y, objective);
  std::vector<OptimalChoice> out;
  out.reserve(sweeps.size());
  for (const auto& sw : sweeps) out.push_back(sw.best);
  return out;
}

namespace {

std::vector<ProblemOutcome> evaluate_from(
    const data::Dataset& dataset, Objective objective,
    const std::vector<OptimalChoice>& truths,
    const std::vector<OptimalChoice>& preds) {
  CCPRED_CHECK(truths.size() == preds.size());
  std::vector<ProblemOutcome> out;
  out.reserve(truths.size());
  for (std::size_t i = 0; i < truths.size(); ++i) {
    CCPRED_CHECK(truths[i].o == preds[i].o && truths[i].v == preds[i].v);
    ProblemOutcome po;
    po.o = truths[i].o;
    po.v = truths[i].v;
    po.truth = truths[i];
    po.predicted = preds[i];
    po.true_value = truths[i].value;
    // True-loss semantics: look up the TRUE target at the predicted row.
    po.realized_value = objective_value(dataset, dataset.targets(),
                                        preds[i].row, objective);
    po.true_time = dataset.target(truths[i].row);
    po.realized_time = dataset.target(preds[i].row);
    po.config_match = truths[i].config.nodes == preds[i].config.nodes &&
                      truths[i].config.tile == preds[i].config.tile;
    out.push_back(po);
  }
  return out;
}

}  // namespace

std::vector<ProblemOutcome> evaluate_optima(const data::Dataset& dataset,
                                            const std::vector<double>& y_pred,
                                            Objective objective) {
  return evaluate_from(dataset, objective,
                       get_optimal_values(dataset, dataset.targets(), objective),
                       get_optimal_values(dataset, y_pred, objective));
}

std::vector<ProblemOutcome> evaluate_optima(
    const data::Dataset& dataset, const std::vector<double>& y_pred,
    Objective objective, const std::vector<ProblemSweep>& true_sweeps) {
  std::vector<OptimalChoice> truths;
  truths.reserve(true_sweeps.size());
  for (const auto& sw : true_sweeps) truths.push_back(sw.best);
  return evaluate_from(dataset, objective, truths,
                       get_optimal_values(dataset, y_pred, objective));
}

std::vector<TrueOptimaSweep> true_optima_sweeps(
    sim::SimEngine& engine, const std::vector<data::Problem>& problems,
    Objective objective) {
  CCPRED_CHECK_MSG(!problems.empty(), "need at least one problem");
  const auto& simulator = engine.simulator();
  const auto nodes = simulator.machine().node_menu();
  const auto tiles = simulator.machine().tile_menu();

  // Enumerate every feasible menu configuration of every problem, then
  // simulate them all in one batch: the engine dedupes, reuses one task
  // graph per (O, V, tile) across the node menu and fans the work over the
  // shared pool.
  std::vector<TrueOptimaSweep> out(problems.size());
  std::vector<sim::RunConfig> batch;
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    out[pi].o = problems[pi].o;
    out[pi].v = problems[pi].v;
    for (const int n : nodes) {
      for (const int t : tiles) {
        const sim::RunConfig cfg{
            .o = problems[pi].o, .v = problems[pi].v, .nodes = n, .tile = t};
        if (!simulator.feasible(cfg)) continue;
        out[pi].points.push_back(TrueSweepPoint{.config = cfg});
        batch.push_back(cfg);
      }
    }
    CCPRED_CHECK_MSG(!out[pi].points.empty(),
                     "no feasible menu configuration for O="
                         << problems[pi].o << " V=" << problems[pi].v);
  }

  const std::vector<double> times = engine.simulate_batch(batch);
  std::size_t cursor = 0;
  for (auto& sweep : out) {
    bool first = true;
    for (auto& pt : sweep.points) {
      pt.time_s = times[cursor++];
      pt.value = objective == Objective::kShortestTime
                     ? pt.time_s
                     : sim::CcsdSimulator::node_hours(pt.config, pt.time_s);
      if (first || better_choice(pt.value, pt.config, sweep.best.value,
                                 sweep.best.config)) {
        sweep.best = pt;
        first = false;
      }
    }
  }
  return out;
}

ml::Scores compute_losses(const std::vector<ProblemOutcome>& outcomes) {
  CCPRED_CHECK_MSG(!outcomes.empty(), "no outcomes to score");
  std::vector<double> truth;
  std::vector<double> realized;
  truth.reserve(outcomes.size());
  realized.reserve(outcomes.size());
  for (const auto& po : outcomes) {
    truth.push_back(po.true_value);
    realized.push_back(po.realized_value);
  }
  return ml::score_all(truth, realized);
}

}  // namespace ccpred::guide
