#include "ccpred/active/query_by_committee.hpp"

#include <algorithm>
#include <numeric>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"

namespace ccpred::al {

QueryByCommittee::QueryByCommittee(const ml::Regressor& prototype,
                                   int n_committees)
    : prototype_(prototype), n_committees_(n_committees) {
  CCPRED_CHECK_MSG(n_committees >= 2, "a committee needs at least 2 members");
}

const std::string& QueryByCommittee::name() const {
  static const std::string n = "QC";
  return n;
}

std::vector<std::size_t> QueryByCommittee::select(
    const Pool& pool, const ml::Regressor& /*fitted_model*/,
    std::size_t query_size, Rng& rng) {
  const linalg::Matrix x_unlabeled = pool.unlabeled_features();
  const std::size_t n_unlabeled = x_unlabeled.rows();
  if (n_unlabeled == 0) return {};

  const auto labeled = pool.dataset().select(pool.labeled());
  const linalg::Matrix x_labeled = labeled.features();
  const auto y_labeled = labeled.targets();

  // Each member trains on a bootstrap resample of the labeled rows — the
  // disagreement source. Members train in parallel; their RNG streams are
  // pre-derived so the result is scheduling-independent.
  const auto members = static_cast<std::size_t>(n_committees_);
  std::vector<std::uint64_t> seeds(members);
  for (auto& s : seeds) s = rng.next();

  std::vector<std::vector<double>> predictions(members);
  parallel_for(0, members, [&](std::size_t m) {
    Rng member_rng(seeds[m]);
    const auto boot = member_rng.bootstrap_indices(x_labeled.rows());
    const linalg::Matrix xb = x_labeled.select_rows(boot);
    std::vector<double> yb(boot.size());
    for (std::size_t i = 0; i < boot.size(); ++i) yb[i] = y_labeled[boot[i]];
    auto model = prototype_.clone();
    model->fit(xb, yb);
    predictions[m] = model->predict(x_unlabeled);
  });

  // Committee variance per unlabeled point.
  std::vector<double> variance(n_unlabeled, 0.0);
  for (std::size_t i = 0; i < n_unlabeled; ++i) {
    double mean = 0.0;
    for (std::size_t m = 0; m < members; ++m) mean += predictions[m][i];
    mean /= static_cast<double>(members);
    double var = 0.0;
    for (std::size_t m = 0; m < members; ++m) {
      var += (predictions[m][i] - mean) * (predictions[m][i] - mean);
    }
    variance[i] = var / static_cast<double>(members);
  }

  std::vector<std::size_t> order(n_unlabeled);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t k = std::min(query_size, n_unlabeled);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return variance[a] > variance[b];
                    });
  order.resize(k);
  return order;
}

}  // namespace ccpred::al
