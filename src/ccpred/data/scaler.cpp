#include "ccpred/data/scaler.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"

namespace ccpred::data {

void StandardScaler::fit(const linalg::Matrix& x) {
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit scaler on empty matrix");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x(i, c);
  }
  for (auto& m : mean_) m /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = x(i, c) - mean_[c];
      std_[c] += dv * dv;
    }
  }
  for (auto& s : std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // constant column
  }
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(fitted(), "scaler not fitted");
  CCPRED_CHECK_MSG(x.cols() == mean_.size(), "column count mismatch");
  linalg::Matrix z(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      z(i, c) = (x(i, c) - mean_[c]) / std_[c];
    }
  }
  return z;
}

linalg::Matrix StandardScaler::fit_transform(const linalg::Matrix& x) {
  fit(x);
  return transform(x);
}

linalg::Matrix StandardScaler::inverse_transform(
    const linalg::Matrix& z) const {
  CCPRED_CHECK_MSG(fitted(), "scaler not fitted");
  CCPRED_CHECK_MSG(z.cols() == mean_.size(), "column count mismatch");
  linalg::Matrix x(z.rows(), z.cols());
  for (std::size_t i = 0; i < z.rows(); ++i) {
    for (std::size_t c = 0; c < z.cols(); ++c) {
      x(i, c) = z(i, c) * std_[c] + mean_[c];
    }
  }
  return x;
}

void TargetScaler::fit(const std::vector<double>& y) {
  CCPRED_CHECK_MSG(!y.empty(), "cannot fit target scaler on empty vector");
  mean_ = 0.0;
  for (double v : y) mean_ += v;
  mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) var += (v - mean_) * (v - mean_);
  std_ = std::sqrt(var / static_cast<double>(y.size()));
  if (std_ < 1e-12) std_ = 1.0;
  fitted_ = true;
}

std::vector<double> TargetScaler::transform(
    const std::vector<double>& y) const {
  CCPRED_CHECK_MSG(fitted_, "target scaler not fitted");
  std::vector<double> z(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) z[i] = (y[i] - mean_) / std_;
  return z;
}

std::vector<double> TargetScaler::fit_transform(const std::vector<double>& y) {
  fit(y);
  return transform(y);
}

std::vector<double> TargetScaler::inverse_transform(
    const std::vector<double>& z) const {
  CCPRED_CHECK_MSG(fitted_, "target scaler not fitted");
  std::vector<double> y(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) y[i] = inverse_one(z[i]);
  return y;
}

}  // namespace ccpred::data
