#pragma once

/// \file dataset.hpp
/// The tabular dataset the paper's ML framework consumes: one row per CCSD
/// run with features <O, V, NumNodes, TileSize> and the measured wall time
/// of one iteration as the target.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ccpred/common/csv.hpp"
#include "ccpred/linalg/matrix.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"

namespace ccpred::data {

/// Feature column order used throughout the library.
enum FeatureIndex : std::size_t {
  kFeatO = 0,
  kFeatV = 1,
  kFeatNodes = 2,
  kFeatTile = 3,
  kNumFeatures = 4,
};

/// A supervised dataset: X is n x 4 (O, V, nodes, tile), y is wall time (s).
class Dataset {
 public:
  Dataset() = default;

  /// Appends one run.
  void add(const sim::RunConfig& cfg, double time_s);

  std::size_t size() const { return y_.size(); }
  bool empty() const { return y_.empty(); }

  /// Feature matrix (n x 4), built on demand from the stored rows.
  linalg::Matrix features() const;

  /// Targets (wall time per iteration, seconds).
  const std::vector<double>& targets() const { return y_; }

  /// Run configuration of row i.
  const sim::RunConfig& config(std::size_t i) const;

  /// Target of row i.
  double target(std::size_t i) const;

  /// Node-hours of row i (nodes * time / 3600) — the BQ objective.
  double node_hours(std::size_t i) const;

  /// Subset with the given row indices (in order).
  Dataset select(const std::vector<std::size_t>& indices) const;

  /// Row indices grouped by problem size (O, V), keys in ascending order.
  std::map<std::pair<int, int>, std::vector<std::size_t>> group_by_problem()
      const;

  /// Distinct problem sizes present, in ascending order.
  std::vector<std::pair<int, int>> problems() const;

  /// Canonical feature names: {"O", "V", "nodes", "tilesize"}.
  static const std::vector<std::string>& feature_names();

  /// Conversion to/from CSV (columns O, V, nodes, tilesize, time_s).
  CsvTable to_csv() const;
  static Dataset from_csv(const CsvTable& table);

 private:
  std::vector<sim::RunConfig> configs_;
  std::vector<double> y_;
};

}  // namespace ccpred::data
