#include "ccpred/linalg/matrix.hpp"

#include <cmath>

namespace ccpred::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    CCPRED_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    CCPRED_CHECK_MSG(rows[r].size() == m.cols(), "ragged row data");
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CCPRED_CHECK_MSG(r < rows_ && c < cols_,
                   "index (" << r << "," << c << ") out of range for "
                             << rows_ << "x" << cols_);
  return (*this)(r, c);
}

std::vector<double> Matrix::row(std::size_t r) const {
  CCPRED_CHECK(r < rows_);
  return std::vector<double>(row_ptr(r), row_ptr(r) + cols_);
}

std::vector<double> Matrix::col(std::size_t c) const {
  CCPRED_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    CCPRED_CHECK(indices[i] < rows_);
    const double* src = row_ptr(indices[i]);
    double* dst = out.row_ptr(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::append_rows(const Matrix& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0) {
    *this = other;
    return;
  }
  CCPRED_CHECK_MSG(other.cols_ == cols_,
                   "append_rows column mismatch: " << cols_ << " vs "
                                                   << other.cols_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CCPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CCPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Matrix::add_diagonal(double v) {
  CCPRED_CHECK_MSG(rows_ == cols_, "add_diagonal requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += v;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  CCPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

}  // namespace ccpred::linalg
