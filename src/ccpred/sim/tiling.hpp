#pragma once

/// \file tiling.hpp
/// Tiling of an orbital index range into blocks, mirroring TAMM's tiled
/// index spaces: a range of extent E with tile size T splits into
/// floor(E/T) full tiles plus one ragged remainder tile. The ragged tile
/// is what makes the task-duration distribution non-uniform and gives the
/// runtime surface its load-imbalance structure.

#include <cstdint>
#include <vector>

namespace ccpred::sim {

/// Tile decomposition of one index range.
struct TileDecomposition {
  int extent = 0;        ///< total index extent (O or V)
  int tile = 0;          ///< requested tile size
  int full_tiles = 0;    ///< number of tiles of size `tile`
  int remainder = 0;     ///< extent of the ragged last tile (0 if none)

  /// Total number of tiles.
  int count() const { return full_tiles + (remainder > 0 ? 1 : 0); }

  /// Extent of tile `i` (full tiles first, ragged tile last).
  int tile_extent(int i) const;

  /// All tile extents in order.
  std::vector<int> extents() const;
};

/// Decomposes an index range of `extent` into tiles of size `tile`.
/// Requires extent > 0 and tile > 0.
TileDecomposition decompose(int extent, int tile);

}  // namespace ccpred::sim
