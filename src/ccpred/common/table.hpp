#pragma once

/// \file table.hpp
/// ASCII table rendering for the benchmark harness. Every bench binary
/// prints its reproduction of a paper table/figure through this formatter
/// so the output is uniform and easy to diff against EXPERIMENTS.md.

#include <string>
#include <vector>

namespace ccpred {

/// Column-aligned text table with an optional title and Markdown-style rule.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> header,
                     std::string title = std::string());

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double cell with `prec` decimals.
  static std::string cell(double v, int prec = 2);
  /// Convenience: formats an integer cell.
  static std::string cell(long long v);

  /// Renders to a string (pipe-separated, padded columns).
  std::string str() const;

  /// Renders to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccpred
