#include "al_figures.hpp"

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "ccpred/active/loop.hpp"
#include "ccpred/active/query_by_committee.hpp"
#include "ccpred/active/random_sampling.hpp"
#include "ccpred/active/uncertainty_sampling.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/model_zoo.hpp"

namespace ccpred::bench {
namespace {

/// Strategy/model pairing per the paper: US drives a GP (Algorithm 1), QC
/// and the RS baseline drive the production GB (Algorithm 2).
struct Arm {
  std::string label;
  std::unique_ptr<ml::Regressor> model;
  std::unique_ptr<al::QueryStrategy> strategy;
  int n_queries = 0;
};

std::vector<Arm> make_arms(const ml::Regressor& /*gb_prototype*/) {
  std::vector<Arm> arms;
  {
    // RS baseline: random queries feeding an untuned raw-scale GP — like
    // the paper's RS it fails to learn the surface until most of the pool
    // is labeled (negative R^2, off-the-chart MAPE).
    Arm rs;
    rs.label = "RS";
    rs.model = std::make_unique<ml::GaussianProcessRegression>(
        /*gamma=*/0.5, /*noise=*/1e-4, /*optimize=*/true,
        /*log_target=*/false);
    rs.strategy = std::make_unique<al::RandomSampling>();
    rs.n_queries = fast_mode() ? 5 : 20;
    arms.push_back(std::move(rs));
  }
  {
    Arm us;
    us.label = "US";
    us.model = std::make_unique<ml::GaussianProcessRegression>(
        /*gamma=*/0.5, /*noise=*/1e-4, /*optimize=*/true, /*log_target=*/true);
    us.strategy = std::make_unique<al::UncertaintySampling>();
    us.n_queries = fast_mode() ? 5 : 20;  // Algorithm 1: 20 rounds
    arms.push_back(std::move(us));
  }
  return arms;
}

void print_curve(const al::ActiveLearningResult& result, bool with_goal,
                 const std::string& goal_name) {
  TextTable table(
      with_goal
          ? std::vector<std::string>{"labeled", "R2", "MAPE", "MAE",
                                     goal_name + " R2", goal_name + " MAPE",
                                     goal_name + " MAE"}
          : std::vector<std::string>{"labeled", "R2", "MAPE", "MAE"},
      result.strategy + " (" + result.model + ")");
  for (const auto& round : result.rounds) {
    std::vector<std::string> row = {
        std::to_string(round.labeled_count),
        TextTable::cell(round.train_scores.r2, 3),
        TextTable::cell(round.train_scores.mape, 3),
        TextTable::cell(round.train_scores.mae, 2),
    };
    if (with_goal) {
      row.push_back(TextTable::cell(round.goal_losses->r2, 3));
      row.push_back(TextTable::cell(round.goal_losses->mape, 3));
      row.push_back(TextTable::cell(round.goal_losses->mae, 2));
    }
    table.add_row(row);
  }
  table.print();
  std::printf("\n");
}

/// First labeled count whose goal MAPE drops to `threshold` or below; 0 if
/// never reached.
std::size_t first_reaching(const al::ActiveLearningResult& result,
                           double threshold) {
  for (const auto& round : result.rounds) {
    if (round.goal_losses && round.goal_losses->mape <= threshold) {
      return round.labeled_count;
    }
  }
  return 0;
}

}  // namespace

int run_al_curves(const std::string& machine) {
  const auto data = load_paper_data(machine);
  const auto gb = ml::make_paper_gb();

  auto arms = make_arms(*gb);
  {
    Arm qc;
    qc.label = "QC";
    qc.model = gb->clone();
    qc.strategy = std::make_unique<al::QueryByCommittee>(*gb, 5);
    qc.n_queries = fast_mode() ? 4 : 10;  // Algorithm 2: 10 rounds
    arms.push_back(std::move(qc));
  }

  std::printf("== Active learning curves (%s), no goal ==\n\n",
              machine.c_str());
  for (auto& arm : arms) {
    al::ActiveLearningOptions opt;
    opt.n_queries = arm.n_queries;
    opt.seed = 11;
    const auto result = al::run_active_learning(data.split.train,
                                                data.split.test, *arm.model,
                                                *arm.strategy, opt);
    print_curve(result, /*with_goal=*/false, "");
  }
  return 0;
}

int run_al_goal_curves(const std::string& machine) {
  const auto data = load_paper_data(machine);
  const auto gb = ml::make_paper_gb();

  std::printf("== Active learning with STQ and BQ goals (%s) ==\n\n",
              machine.c_str());
  for (const auto objective :
       {guide::Objective::kShortestTime, guide::Objective::kNodeHours}) {
    const std::string goal_name =
        objective == guide::Objective::kShortestTime ? "STQ" : "BQ";
    auto arms = make_arms(*gb);
    {
      Arm qc;
      qc.label = "QC";
      qc.model = gb->clone();
      qc.strategy = std::make_unique<al::QueryByCommittee>(*gb, 5);
      qc.n_queries = fast_mode() ? 4 : 10;
      arms.push_back(std::move(qc));
    }
    for (auto& arm : arms) {
      al::ActiveLearningOptions opt;
      opt.n_queries = arm.n_queries;
      opt.seed = 11;
      opt.goal = objective;
      const auto result = al::run_active_learning(
          data.split.train, data.split.test, *arm.model, *arm.strategy, opt);
      std::printf("-- goal %s --\n", goal_name.c_str());
      print_curve(result, /*with_goal=*/true, goal_name);
      const auto at02 = first_reaching(result, 0.2);
      const auto at01 = first_reaching(result, 0.1);
      std::printf("%s/%s: goal MAPE<=0.2 first reached at %zu labels; "
                  "<=0.1 at %zu labels (0 = not reached)\n\n",
                  result.strategy.c_str(), goal_name.c_str(), at02, at01);
    }
  }
  std::printf("paper key observations: Aurora STQ MAPE ~0.2 @ ~450 labels, "
              "~0.1 @ ~550; Frontier STQ ~0.2 @ 450-650, ~0.1 @ ~850; "
              "Aurora BQ ~0.2 @ ~500 (US); Frontier BQ ~0.15 @ ~350 (US)\n");
  return 0;
}

}  // namespace ccpred::bench
