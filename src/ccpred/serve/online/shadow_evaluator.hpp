#pragma once

/// \file shadow_evaluator.hpp
/// Promotion gate of the online learning loop: before a freshly retrained
/// candidate replaces the serving model, both are scored on a holdout of
/// the most recent user-reported measurements — rows the candidate never
/// trained on. The candidate is promoted only when its holdout MAPE beats
/// the incumbent's by the configured margin; a retrain that memorized the
/// feedback without generalizing to the newest regime is rejected and the
/// incumbent keeps serving.

#include <cstddef>
#include <vector>

#include "ccpred/core/regressor.hpp"
#include "ccpred/serve/online/feedback_buffer.hpp"

namespace ccpred::serve::online {

/// Outcome of one candidate-vs-incumbent shadow evaluation.
struct ShadowVerdict {
  double candidate_mape = 0.0;
  double incumbent_mape = 0.0;
  bool promote = false;
  std::size_t holdout_size = 0;
};

/// Stateless scoring helpers (all inputs are passed in, so evaluations are
/// trivially reproducible from a buffer snapshot).
class ShadowEvaluator {
 public:
  /// Mean absolute percentage error of `model` on the holdout's measured
  /// wall times. Rows with non-positive measurements are skipped; an empty
  /// (or fully skipped) holdout scores 0.
  static double mape(const ml::Regressor& model,
                     const std::vector<MeasuredRun>& holdout);

  /// Scores both models on the holdout; `promote` is true when the
  /// candidate's MAPE is below incumbent_mape * (1 - min_improvement) and
  /// the holdout is non-empty. min_improvement = 0 promotes any strict
  /// improvement; 0.1 demands a 10% relative error reduction.
  static ShadowVerdict judge(const ml::Regressor& candidate,
                             const ml::Regressor& incumbent,
                             const std::vector<MeasuredRun>& holdout,
                             double min_improvement);
};

}  // namespace ccpred::serve::online
