// Serialization robustness: bit-for-bit round trips for the tree-family
// models (GB and RF) on random inputs, plus negative tests proving that
// corrupted artifacts fail through CCPRED_CHECK rather than reading
// uninitialized structure.

#include <gtest/gtest.h>

#include <sstream>

#include "ccpred/common/error.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/core/serialize.hpp"
#include "test_util.hpp"

namespace ccpred::ml {
namespace {

linalg::Matrix random_queries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix x(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform(-3.0, 3.0);
  }
  return x;
}

GradientBoostingRegressor small_gb(std::uint64_t seed = 7) {
  const auto data = test::make_nonlinear(200, 0.05, seed);
  GradientBoostingRegressor model(25);
  model.fit(data.x, data.y);
  return model;
}

TEST(SerializeGbTest, RoundTripPredictsBitForBitOnRandomInputs) {
  // Property: over several models and query batches, deserialize(serialize)
  // is an exact functional identity — doubles compare with ==, not NEAR.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto model = small_gb(seed);
    const auto restored = deserialize_gb(serialize_gb(model));
    const auto x = random_queries(64, seed * 31 + 1);
    const auto expect = model.predict(x);
    const auto got = restored.predict(x);
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect[i], got[i]) << "seed " << seed << " row " << i;
    }
  }
}

TEST(SerializeGbTest, SerializationIsAFixedPoint) {
  const auto model = small_gb();
  const auto text = serialize_gb(model);
  EXPECT_EQ(text, serialize_gb(deserialize_gb(text)));
}

TEST(SerializeRfTest, RoundTripPredictsBitForBit) {
  const auto data = test::make_nonlinear(200, 0.05, 11);
  RandomForestRegressor model(15);
  model.fit(data.x, data.y);
  const auto restored = deserialize_rf(serialize_rf(model));
  EXPECT_EQ(restored.tree_count(), model.tree_count());
  const auto x = random_queries(64, 99);
  const auto expect = model.predict(x);
  const auto got = restored.predict(x);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i], got[i]);
  }
}

TEST(SerializeRfTest, FixedPointAndHeader) {
  const auto data = test::make_linear(100, 0.0, 3);
  RandomForestRegressor model(5);
  model.fit(data.x, data.y);
  const auto text = serialize_rf(model);
  EXPECT_EQ(text.rfind("ccpred-rf-v1\n", 0), 0u);
  EXPECT_EQ(text, serialize_rf(deserialize_rf(text)));
}

TEST(SerializeNegativeTest, WrongHeaderThrows) {
  const auto text = serialize_gb(small_gb());
  EXPECT_THROW(deserialize_rf(text), Error);   // GB artifact into RF loader
  EXPECT_THROW(deserialize_gb("ccpred-rf-v1\n1\n"), Error);
  EXPECT_THROW(deserialize_gb("not-a-model\n"), Error);
  EXPECT_THROW(deserialize_gb(""), Error);
}

TEST(SerializeNegativeTest, TruncatedNodeRecordsThrow) {
  const auto text = serialize_gb(small_gb());
  // Chop the artifact at several depths: mid-header-line, mid-node-table,
  // mid-final-tree. Every truncation must throw, never return a model.
  for (const double frac : {0.02, 0.3, 0.6, 0.9, 0.99}) {
    const auto cut = text.substr(0, static_cast<std::size_t>(
                                        text.size() * frac));
    EXPECT_THROW(deserialize_gb(cut), Error) << "fraction " << frac;
  }
}

TEST(SerializeNegativeTest, ShortNodeRecordThrows) {
  // A structurally valid prefix whose node table lies about its length.
  std::ostringstream os;
  os << "ccpred-tree-v1\n"
     << "3 2\n"                      // claims 3 nodes...
     << "-1 0 1.5 -1 -1\n";          // ...but provides 1
  EXPECT_THROW(deserialize_tree(os.str()), Error);
}

TEST(SerializeNegativeTest, ImplausibleCountsThrow) {
  EXPECT_THROW(deserialize_tree("ccpred-tree-v1\n999999999 4\n"), Error);
  EXPECT_THROW(deserialize_gb("ccpred-gb-v1\n99999999 0.1 5.0\n"), Error);
  EXPECT_THROW(deserialize_rf("ccpred-rf-v1\n99999999\n"), Error);
  EXPECT_THROW(deserialize_rf("ccpred-rf-v1\n0\n"), Error);
}

TEST(SerializeNegativeTest, TruncatedImportanceThrows) {
  std::ostringstream os;
  os << "ccpred-tree-v1\n"
     << "1 4\n"
     << "-1 0 2.5 -1 -1\n"
     << "0.1 0.2\n";  // 4 importances promised, 2 delivered
  EXPECT_THROW(deserialize_tree(os.str()), Error);
}

TEST(SerializeNegativeTest, UnfittedModelsRefuseToSerialize) {
  EXPECT_THROW(serialize_gb(GradientBoostingRegressor(10)), Error);
  EXPECT_THROW(serialize_rf(RandomForestRegressor(10)), Error);
}

}  // namespace
}  // namespace ccpred::ml
