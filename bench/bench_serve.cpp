/// Serving-layer throughput: cold sweeps vs cached answers.
///
/// Pre-trains a small artifact, then drives the server through two phases:
/// a cold pass where every problem size forces a full enumerate+predict
/// sweep, and a warm pass where the sweep cache answers everything. The
/// interesting number is the ratio — the whole point of caching one
/// kShortestTime sweep per (machine, model, O, V) is that repeat questions
/// (STQ, BQ and budget alike) cost a hash lookup instead of a model sweep.
/// Target: >= 10x. The cache counters printed alongside prove the phases
/// exercised what they claim (cold = all misses, warm = all hits).

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/common/table.hpp"
#include "ccpred/data/problems.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"

int main() {
  using namespace ccpred;
  namespace fs = std::filesystem;

  const bool fast = bench::fast_mode();
  const std::string machine = "aurora";
  const auto& problems = data::problems_for(machine);
  const int warm_rounds = fast ? 20 : 200;

  const fs::path dir = fs::temp_directory_path() / "ccpred_bench_serve";
  fs::remove_all(dir);

  serve::RegistryOptions ropt;
  ropt.fallback_rows = fast ? 300 : 600;
  ropt.gb_estimators = fast ? 40 : 120;
  serve::ModelRegistry registry(dir.string(), ropt);

  Stopwatch train_watch;
  registry.train_artifact(machine, "gb");
  const double train_s = train_watch.elapsed_s();

  serve::ServeOptions sopt;
  sopt.cache_capacity = 64;
  serve::Server server(registry, sopt);

  const auto question = [&](std::size_t step) {
    serve::Request req;
    const auto& p = problems[step % problems.size()];
    req.o = p.o;
    req.v = p.v;
    switch (step % 3) {
      case 0: req.op = serve::Op::kStq; break;
      case 1: req.op = serve::Op::kBq; break;
      default:
        req.op = serve::Op::kBudget;
        req.max_node_hours = 100.0;
    }
    return req;
  };

  // Cold phase: first STQ per problem size computes the sweep.
  Stopwatch cold_watch;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    serve::Request req;
    req.op = serve::Op::kStq;
    req.o = problems[i].o;
    req.v = problems[i].v;
    const auto r = server.handle(req);
    if (!r.ok) {
      std::printf("cold request failed: %s\n", r.error.c_str());
      return 1;
    }
  }
  const double cold_s = cold_watch.elapsed_s();
  const auto cold_stats = server.stats();

  // Warm phase: every question repeats a problem size -> pure cache hits.
  Stopwatch warm_watch;
  std::size_t warm_requests = 0;
  for (int round = 0; round < warm_rounds; ++round) {
    for (std::size_t i = 0; i < problems.size(); ++i, ++warm_requests) {
      const auto r = server.handle(question(warm_requests));
      if (!r.ok) {
        std::printf("warm request failed: %s\n", r.error.c_str());
        return 1;
      }
    }
  }
  const double warm_s = warm_watch.elapsed_s();
  const auto stats = server.stats();

  const double cold_rps = static_cast<double>(problems.size()) / cold_s;
  const double warm_rps = static_cast<double>(warm_requests) / warm_s;
  const double speedup = warm_rps / cold_rps;

  std::printf("== Serving throughput (%s, gb) ==\n\n", machine.c_str());
  TextTable table({"phase", "requests", "seconds", "req/s"},
                  "Cold sweeps vs cached answers");
  table.add_row({"cold (sweep per request)",
                 TextTable::cell(static_cast<long long>(problems.size())),
                 TextTable::cell(cold_s, 4), TextTable::cell(cold_rps, 1)});
  table.add_row({"warm (cache hits)",
                 TextTable::cell(static_cast<long long>(warm_requests)),
                 TextTable::cell(warm_s, 4), TextTable::cell(warm_rps, 1)});
  table.print();

  std::printf(
      "\nartifact training: %.2f s (%zu-row campaign, %d stages)\n"
      "cache counters: %llu hits / %llu misses / %llu evictions "
      "(hit rate %.3f)\n"
      "sweeps computed: %llu (== %zu problem sizes)\n"
      "latency: p50 %.3f ms, p95 %.3f ms\n",
      train_s, ropt.fallback_rows, ropt.gb_estimators,
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      stats.cache_hit_rate,
      static_cast<unsigned long long>(stats.sweeps_computed), problems.size(),
      stats.latency_p50_ms, stats.latency_p95_ms);

  std::printf("\ncache-hit speedup: %.1fx (target >= 10x): %s\n", speedup,
              speedup >= 10.0 ? "PASS" : "FAIL");

  // Sanity: the phases must have exercised what they claim.
  const bool counters_ok =
      cold_stats.cache_misses == problems.size() &&
      cold_stats.sweeps_computed == problems.size() &&
      stats.sweeps_computed == problems.size() &&
      stats.cache_hits == warm_requests;
  if (!counters_ok) {
    std::printf("counter check FAILED: phases did not run as designed\n");
    return 1;
  }

  fs::remove_all(dir);
  return speedup >= 10.0 ? 0 : 1;
}
