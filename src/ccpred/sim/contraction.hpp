#pragma once

/// \file contraction.hpp
/// Representative tensor-contraction classes of one CCSD iteration.
///
/// A full CCSD residual evaluation comprises dozens of contractions; their
/// costs group into a few scaling classes. We model each class as a single
/// contraction with a multiplicity weight, writing the cost as
///   flops = 2 * mult * O^(oo+so) * V^(ov+sv)
/// where (oo, ov) are the occupied/virtual *output* indices (these are
/// tiled into tasks) and (so, sv) the *summation* indices (these form the
/// GEMM k-dimension streamed through each task).

#include <string>
#include <vector>

namespace ccpred::sim {

/// Small-integer power by repeated multiplication. The simulator's index
/// extents are integer-valued doubles small enough that every product is
/// exactly representable, so this matches a correctly-rounded std::pow
/// bit-for-bit while avoiding its transcendental cost in the hot bucket
/// loops.
inline double ipow(double base, int exp) {
  double r = 1.0;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

/// One contraction class of the CCSD iteration.
struct Contraction {
  std::string name;
  int out_occ = 0;    ///< occupied indices on the output tensor
  int out_virt = 0;   ///< virtual indices on the output tensor
  int sum_occ = 0;    ///< occupied summation indices
  int sum_virt = 0;   ///< virtual summation indices
  double mult = 1.0;  ///< number of contractions in this class

  /// Total floating-point operations for problem size (O, V).
  double flops(int o, int v) const;

  /// Extent of the GEMM k-dimension (product of summation index extents).
  double sum_extent(int o, int v) const;
};

/// The CCSD iteration inventory. Dominated by the particle-particle ladder
/// (O^2 V^4); also includes the hole-hole ladder (O^4 V^2), ring terms
/// (O^3 V^3) and the leading quintic singles contributions.
const std::vector<Contraction>& ccsd_contractions();

/// Total iteration flops: sum over the inventory; asymptotically
/// ~ 4 * O^2 V^4 (the textbook 2 * O^2 V^4 ladder plus intermediates).
double ccsd_iteration_flops(int o, int v);

/// The perturbative-triples (T) correction inventory — the septic-scaling
/// step of CCSD(T), the method the paper's framework is designed to grow
/// into. Dominated by the O^3 V^4 particle and O^4 V^3 hole contractions
/// that build the T3 amplitudes on the fly.
const std::vector<Contraction>& triples_contractions();

/// Total flops of the (T) correction.
double triples_flops(int o, int v);

}  // namespace ccpred::sim
