#pragma once

/// \file pool.hpp
/// Labeled/unlabeled pool bookkeeping for active learning: the train set
/// plays the role of the queryable universe — "labeling" a point stands
/// for running that CCSD experiment on the supercomputer and reading off
/// its wall time.

#include <cstddef>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/data/dataset.hpp"

namespace ccpred::al {

/// Partition of a dataset's rows into labeled and unlabeled sets.
class Pool {
 public:
  /// Starts with `n_initial` uniformly random labeled rows.
  Pool(const data::Dataset& dataset, std::size_t n_initial, Rng& rng);

  const data::Dataset& dataset() const { return *dataset_; }

  /// Row indices (into dataset()) currently labeled / unlabeled.
  const std::vector<std::size_t>& labeled() const { return labeled_; }
  const std::vector<std::size_t>& unlabeled() const { return unlabeled_; }

  /// Moves the unlabeled rows at the given *positions within unlabeled()*
  /// into the labeled set. Positions must be unique and in range.
  void label_positions(std::vector<std::size_t> positions);

  /// Materialized labeled training data.
  linalg::Matrix labeled_features() const;
  std::vector<double> labeled_targets() const;

  /// Materialized unlabeled features (for query scoring).
  linalg::Matrix unlabeled_features() const;

 private:
  const data::Dataset* dataset_;
  std::vector<std::size_t> labeled_;
  std::vector<std::size_t> unlabeled_;
};

}  // namespace ccpred::al
