#include "ccpred/sim/tiling.hpp"

#include "ccpred/common/error.hpp"

namespace ccpred::sim {

int TileDecomposition::tile_extent(int i) const {
  CCPRED_CHECK_MSG(i >= 0 && i < count(), "tile index out of range");
  return i < full_tiles ? tile : remainder;
}

std::vector<int> TileDecomposition::extents() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count()));
  for (int i = 0; i < full_tiles; ++i) out.push_back(tile);
  if (remainder > 0) out.push_back(remainder);
  return out;
}

TileDecomposition decompose(int extent, int tile) {
  CCPRED_CHECK_MSG(extent > 0, "index extent must be positive");
  CCPRED_CHECK_MSG(tile > 0, "tile size must be positive");
  TileDecomposition d;
  d.extent = extent;
  d.tile = tile;
  d.full_tiles = extent / tile;
  d.remainder = extent % tile;
  // An extent smaller than the tile is a single ragged tile.
  return d;
}

}  // namespace ccpred::sim
