#pragma once

/// \file linear.hpp
/// Ridge (l2-regularized) linear regression — the base learner behind
/// polynomial regression and the reference point for the kernel models.

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/regressor.hpp"
#include "ccpred/data/scaler.hpp"

namespace ccpred::ml {

/// Linear least squares with l2 penalty on standardized features.
/// Parameters: "alpha" (penalty, >= 0).
class RidgeRegression : public Regressor {
 public:
  explicit RidgeRegression(double alpha = 1.0);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return fitted_; }

  /// Learned coefficients in standardized feature space.
  const std::vector<double>& coefficients() const { return coef_; }
  /// Learned intercept (in target units).
  double intercept() const { return intercept_; }

 private:
  double alpha_;
  bool fitted_ = false;
  data::StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace ccpred::ml
