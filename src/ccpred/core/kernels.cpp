#include "ccpred/core/kernels.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"

namespace ccpred::ml {

double Kernel::operator()(const double* x, const double* z,
                          std::size_t d) const {
  switch (type) {
    case KernelType::kRbf: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        const double diff = x[i] - z[i];
        s += diff * diff;
      }
      return std::exp(-gamma * s);
    }
    case KernelType::kPolynomial: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) s += x[i] * z[i];
      return std::pow(gamma * s + coef0, degree);
    }
    case KernelType::kLinear: {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) s += x[i] * z[i];
      return s;
    }
  }
  throw Error("unknown kernel type");
}

linalg::Matrix Kernel::gram(const linalg::Matrix& a,
                            const linalg::Matrix& b) const {
  CCPRED_CHECK_MSG(a.cols() == b.cols(), "kernel feature dims differ");
  linalg::Matrix k(a.rows(), b.rows());
  const std::size_t d = a.cols();
  parallel_for(0, a.rows(), [&](std::size_t i) {
    const double* ai = a.row_ptr(i);
    double* ki = k.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      ki[j] = (*this)(ai, b.row_ptr(j), d);
    }
  });
  return k;
}

linalg::Matrix Kernel::gram_symmetric(const linalg::Matrix& a) const {
  linalg::Matrix k(a.rows(), a.rows());
  const std::size_t d = a.cols();
  parallel_for(0, a.rows(), [&](std::size_t i) {
    const double* ai = a.row_ptr(i);
    for (std::size_t j = i; j < a.rows(); ++j) {
      k(i, j) = (*this)(ai, a.row_ptr(j), d);
    }
  });
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) k(i, j) = k(j, i);
  }
  return k;
}

std::string Kernel::name() const {
  switch (type) {
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "poly";
    case KernelType::kLinear:
      return "linear";
  }
  return "unknown";
}

KernelType kernel_type_from_name(const std::string& name) {
  if (name == "rbf") return KernelType::kRbf;
  if (name == "poly" || name == "polynomial") return KernelType::kPolynomial;
  if (name == "linear") return KernelType::kLinear;
  throw Error("unknown kernel name: " + name);
}

}  // namespace ccpred::ml
