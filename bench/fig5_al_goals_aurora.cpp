/// Reproduces paper Figure 5: Aurora active learning with the STQ and BQ
/// goals — true-loss learning curves per strategy, with the paper's
/// sample-efficiency thresholds.

#include "al_figures.hpp"

int main() { return ccpred::bench::run_al_goal_curves("aurora"); }
