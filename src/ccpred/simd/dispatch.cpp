/// \file dispatch.cpp
/// Mode resolution and the per-mode Ops tables. The active table is picked
/// once, on first use, from CPUID detection with an optional
/// `CCPRED_SIMD=scalar|avx2` environment override; an `avx2` request on a
/// host (or build) without AVX2+FMA falls back to scalar silently, so the
/// override is safe to export fleet-wide.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "ccpred/simd/kernels.hpp"
#include "ccpred/simd/simd.hpp"

namespace ccpred::simd {

namespace {

constexpr Ops kScalarOps = {
    scalar_rbf_exp_map, scalar_sqdist_row,   scalar_ensemble_step,
    scalar_hist_accumulate, scalar_hist_subtract, scalar_split_scan,
    scalar_bin_codes,   scalar_update2x4,    scalar_update1x4,
};

#if defined(CCPRED_HAVE_AVX2_BUILD)
// split_scan stays scalar in the AVX2 table: the serial-prefix scan has no
// exploitable lane parallelism at the engine's bin counts (a two-pass
// vector-divide variant measured at parity).
constexpr Ops kAvx2Ops = {
    avx2_rbf_exp_map, avx2_sqdist_row,   avx2_ensemble_step,
    avx2_hist_accumulate, avx2_hist_subtract, scalar_split_scan,
    avx2_bin_codes,   avx2_update2x4,    avx2_update1x4,
};
#else
constexpr Ops kAvx2Ops = kScalarOps;
#endif

Mode resolve_mode() {
  const char* env = std::getenv("CCPRED_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Mode::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return avx2_available() ? Mode::kAvx2 : Mode::kScalar;
    }
    // Unknown value: ignore and fall through to detection.
  }
  return avx2_available() ? Mode::kAvx2 : Mode::kScalar;
}

std::atomic<const Ops*> g_active{nullptr};
std::atomic<Mode> g_mode{Mode::kScalar};
std::once_flag g_once;

void init_active() {
  const Mode m = resolve_mode();
  g_mode.store(m, std::memory_order_relaxed);
  g_active.store(&ops_for(m), std::memory_order_release);
}

const Ops* active_table() {
  const Ops* p = g_active.load(std::memory_order_acquire);
  if (p == nullptr) {
    std::call_once(g_once, init_active);
    p = g_active.load(std::memory_order_acquire);
  }
  return p;
}

}  // namespace

CpuFeatures detect_cpu() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

bool avx2_available() {
#if defined(CCPRED_HAVE_AVX2_BUILD)
  static const bool available = [] {
    const CpuFeatures f = detect_cpu();
    return f.avx2 && f.fma;
  }();
  return available;
#else
  return false;
#endif
}

const Ops& ops() { return *active_table(); }

const Ops& ops_for(Mode mode) {
  if (mode == Mode::kAvx2 && avx2_available()) return kAvx2Ops;
  return kScalarOps;
}

Mode active_mode() {
  active_table();
  return g_mode.load(std::memory_order_relaxed);
}

const char* mode_name(Mode mode) {
  return mode == Mode::kAvx2 ? "avx2" : "scalar";
}

void set_mode_for_testing(Mode mode) {
  active_table();  // force one-time resolution first
  const Mode effective =
      (mode == Mode::kAvx2 && avx2_available()) ? Mode::kAvx2 : Mode::kScalar;
  g_mode.store(effective, std::memory_order_relaxed);
  g_active.store(&ops_for(effective), std::memory_order_release);
}

}  // namespace ccpred::simd
