#pragma once

/// \file kernels.hpp
/// Kernel functions shared by kernel ridge regression, Gaussian processes
/// and support vector regression.

#include <string>
#include <vector>

#include "ccpred/linalg/matrix.hpp"

namespace ccpred::ml {

/// Supported kernel families.
enum class KernelType {
  kRbf,         ///< exp(-gamma * ||x - z||^2)
  kPolynomial,  ///< (gamma * <x, z> + coef0)^degree
  kLinear,      ///< <x, z>
};

/// Parsed kernel with its parameters.
struct Kernel {
  KernelType type = KernelType::kRbf;
  double gamma = 1.0;   ///< RBF width / polynomial scale
  double coef0 = 1.0;   ///< polynomial offset
  int degree = 3;       ///< polynomial degree

  /// k(x, z) for two equal-length feature rows.
  double operator()(const double* x, const double* z, std::size_t d) const;

  /// Gram matrix K(A, B): rows of A vs rows of B (column counts must match).
  linalg::Matrix gram(const linalg::Matrix& a, const linalg::Matrix& b) const;

  /// Symmetric Gram matrix K(A, A) (exploits symmetry).
  linalg::Matrix gram_symmetric(const linalg::Matrix& a) const;

  /// Human-readable name ("rbf", "poly", "linear").
  std::string name() const;
};

/// Parses "rbf" / "poly" / "linear".
KernelType kernel_type_from_name(const std::string& name);

}  // namespace ccpred::ml
