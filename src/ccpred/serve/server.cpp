#include "ccpred/serve/server.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <tuple>
#include <utility>

#include "ccpred/common/error.hpp"
#include "ccpred/common/stopwatch.hpp"
#include "ccpred/sim/solver.hpp"

namespace ccpred::serve {
namespace {

/// Decrements a gauge on every exit path (exception-safe queue_depth
/// accounting: a faulted or deadline-exceeded request must still return
/// the depth to zero).
struct GaugeGuard {
  std::atomic<std::size_t>& gauge;
  ~GaugeGuard() { gauge.fetch_sub(1, std::memory_order_relaxed); }
};

}  // namespace

Server::Server(ModelRegistry& registry, ServeOptions options)
    : registry_(registry),
      options_(std::move(options)),
      fault_(options_.fault_injector),
      cache_(options_.cache_capacity, options_.cache_shards),
      pool_(options_.threads),
      sweep_pool_(options_.threads) {
  cache_.set_fault_injector(fault_);
  if (options_.online.enabled) {
    online_ = std::make_unique<online::OnlineTrainer>(
        registry_, &cache_, options_.online, fault_);
  }
  if (options_.batch.enabled) {
    batcher_ = std::make_unique<BatchScheduler>(*this, options_.batch);
  }
}

void Server::set_overflow_source(std::function<std::uint64_t()> source) {
  const std::lock_guard<std::mutex> lock(overflow_mutex_);
  overflow_source_ = std::move(source);
}

const sim::CcsdSimulator& Server::simulator(const std::string& machine) {
  const std::lock_guard<std::mutex> lock(simulators_mutex_);
  auto it = simulators_.find(machine);
  if (it == simulators_.end()) {
    it = simulators_.emplace(machine, simulator_for(machine)).first;
  }
  return it->second;
}

SweepPtr Server::sweep_for(const std::string& machine, const std::string& kind,
                           int o, int v, Clock::time_point deadline,
                           std::uint64_t* model_version, bool* cache_hit,
                           bool* stale, bool* timed_out) {
  *timed_out = false;
  const ModelHandle handle = registry_.get(machine, kind);
  *model_version = handle.version;
  *stale = handle.stale;
  const SweepKey key{machine, kind, handle.version, o, v};
  if (SweepPtr cached = cache_.get(key)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;

  // Single-flight: the first requester becomes the leader and schedules
  // ONE sweep on the sweep pool; everyone (leader included) waits on its
  // shared future. Running the sweep off the request thread lets a
  // deadline abandon the wait while the computation still completes and
  // populates the cache.
  auto promise = std::make_shared<std::promise<SweepResult>>();
  std::shared_future<SweepResult> future;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      leader = true;
      future = promise->get_future().share();
      inflight_[key] = future;
    } else {
      future = it->second;
    }
  }
  if (leader) {
    // A failed sweep resolves the shared future with an error STRING, not
    // an exception_ptr — see SweepResult for why (TSAN vs. cross-thread
    // exception_ptr release in uninstrumented libstdc++).
    sweep_pool_.post([this, promise, handle, key] {
      SweepResult result;
      try {
        if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kSweepCompute);
        const guide::Advisor advisor(*handle.model, simulator(key.machine));
        auto sweep = std::make_shared<const guide::Recommendation>(
            advisor.recommend(key.o, key.v, guide::Objective::kShortestTime));
        sweeps_computed_.fetch_add(1, std::memory_order_relaxed);
        cache_.put(key, sweep);
        result.sweep = std::move(sweep);
      } catch (const std::exception& e) {
        result.error = e.what();
      } catch (...) {
        result.error = "sweep failed with a non-standard exception";
      }
      {
        const std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(key);
      }
      promise->set_value(std::move(result));
    });
  } else {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
  }
  if (deadline != Clock::time_point::max() &&
      future.wait_until(deadline) == std::future_status::timeout) {
    *timed_out = true;
    return nullptr;
  }
  const SweepResult& result = future.get();
  // Rethrown on the waiting thread: handle_until turns it into the same
  // code="internal" response the old exception-carrying future produced.
  if (result.sweep == nullptr) throw Error(result.error);
  return result.sweep;
}

Response Server::dispatch(const Request& req, Clock::time_point deadline) {
  Response r;
  r.op = op_name(req.op);
  r.id = req.id;

  if (req.op == Op::kStats) {
    r.ok = true;
    r.has_stats = true;
    r.stats = stats();
    return r;
  }

  const std::string machine =
      req.machine.empty() ? options_.default_machine : req.machine;

  if (req.op == Op::kReport) {
    if (online_ == nullptr) {
      return error_response("online learning is disabled on this server",
                            r.op, r.id, "bad_request");
    }
    const std::string kind =
        req.model.empty() ? options_.default_model : req.model;
    const sim::RunConfig cfg{
        .o = req.o, .v = req.v, .nodes = req.nodes, .tile = req.tile};
    const online::ReportOutcome outcome =
        online_->ingest(machine, kind, cfg, req.wall_times);
    r.ok = true;
    r.has_report = true;
    r.accepted = outcome.accepted;
    r.duplicates = outcome.duplicates;
    r.buffered = outcome.buffered;
    r.rolling_mape = outcome.rolling_mape;
    r.drifting = outcome.drifting;
    r.refit_scheduled = outcome.refit_scheduled;
    r.model_version = outcome.model_version;
    return r;
  }

  if (req.op == Op::kJob) {
    const sim::RunConfig cfg{
        .o = req.o, .v = req.v, .nodes = req.nodes, .tile = req.tile};
    const auto job = sim::estimate_job(simulator(machine), cfg);
    r.ok = true;
    r.has_job = true;
    r.iterations = job.iterations;
    r.setup_s = job.setup_s;
    r.iteration_s = job.iteration_s;
    r.total_s = job.total_s;
    r.node_hours = job.node_hours;
    return r;
  }

  // STQ / BQ / budget: one cached sweep answers all three.
  const std::string kind =
      req.model.empty() ? options_.default_model : req.model;
  std::uint64_t version = 0;
  bool cache_hit = false;
  bool stale = false;
  bool timed_out = false;
  const SweepPtr sweep = sweep_for(machine, kind, req.o, req.v, deadline,
                                   &version, &cache_hit, &stale, &timed_out);
  if (timed_out) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    r.ok = false;
    r.code = "deadline";
    r.error = "deadline of " + std::to_string(req.deadline_ms) +
              " ms exceeded; the sweep continues in the background";
    return r;
  }

  // Answer through a pointer: STQ reads the cached recommendation in
  // place (copying it would clone the whole swept grid per request).
  guide::Recommendation computed;
  const guide::Recommendation* rec = &computed;
  switch (req.op) {
    case Op::kStq:
      rec = sweep.get();  // the cached sweep IS the shortest-time answer
      break;
    case Op::kBq:
      computed = guide::Advisor::from_sweep(sweep->sweep,
                                            guide::Objective::kNodeHours);
      break;
    case Op::kBudget:
      computed =
          guide::Advisor::fastest_within_budget(*sweep, req.max_node_hours);
      break;
    default:
      throw Error("unhandled op");  // unreachable
  }
  r.ok = true;
  r.stale = stale;
  if (stale) stale_served_.fetch_add(1, std::memory_order_relaxed);
  r.has_recommendation = true;
  r.nodes = rec->config.nodes;
  r.tile = rec->config.tile;
  r.time_s = rec->predicted_time_s;
  r.node_hours = rec->predicted_node_hours;
  r.model_version = version;
  r.sweep_size = sweep->sweep.size();
  r.cache_hit = cache_hit;
  return r;
}

Response Server::handle_until(const Request& req, Clock::time_point deadline) {
  const Stopwatch timer;
  requests_.fetch_add(1, std::memory_order_relaxed);
  Response r;
  try {
    if (deadline != Clock::time_point::max() && Clock::now() >= deadline) {
      // Expired while queued: answer without doing the work.
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      r = error_response("deadline of " + std::to_string(req.deadline_ms) +
                             " ms exceeded before dispatch",
                         op_name(req.op), req.id, "deadline");
    } else {
      r = dispatch(req, deadline);
    }
  } catch (const std::exception& e) {
    r = error_response(e.what(), op_name(req.op), req.id, "internal");
  }
  if (!r.ok) errors_.fetch_add(1, std::memory_order_relaxed);
  const double elapsed_s = timer.elapsed_s();
  latency_.record(elapsed_s);
  op_latency_[static_cast<std::size_t>(req.op)].record(elapsed_s);
  return r;
}

Response Server::handle(const Request& req) {
  return handle_until(req, deadline_for(req));
}

std::vector<Response> Server::dispatch_batch(
    const std::vector<Request>& batch) {
  std::vector<Clock::time_point> deadlines;
  deadlines.reserve(batch.size());
  for (const Request& req : batch) deadlines.push_back(deadline_for(req));
  return handle_batch(batch, deadlines);
}

std::vector<Response> Server::handle_batch(
    const std::vector<Request>& batch,
    const std::vector<Clock::time_point>& deadlines) {
  const Stopwatch timer;
  std::vector<Response> out(batch.size());
  // Group sweep-shaped members by (machine, kind); the other verbs have no
  // cross-request work to share and take the serial path. std::map keeps
  // group order deterministic.
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& req = batch[i];
    if (req.op == Op::kStq || req.op == Op::kBq || req.op == Op::kBudget) {
      groups[{req.machine.empty() ? options_.default_machine : req.machine,
              req.model.empty() ? options_.default_model : req.model}]
          .push_back(i);
    } else {
      out[i] = handle_until(req, deadlines[i]);
    }
  }
  for (const auto& [mk, members] : groups) {
    answer_group(mk.first, mk.second, members, batch, deadlines, timer, &out);
  }
  return out;
}

void Server::answer_group(const std::string& machine, const std::string& kind,
                          const std::vector<std::size_t>& members,
                          const std::vector<Request>& batch,
                          const std::vector<Clock::time_point>& deadlines,
                          const Stopwatch& timer, std::vector<Response>* out) {
  // One model-handle acquisition per group — the serial path stat()s the
  // artifact once per request; the whole group shares one here.
  ModelHandle handle;
  std::string handle_error;
  try {
    handle = registry_.get(machine, kind);
  } catch (const std::exception& e) {
    handle_error = e.what();
  }

  // Dedup members onto unique (O, V) keys and batch-probe the cache once
  // per key (the serial path probes once per request).
  std::vector<SweepKey> keys;
  std::map<std::pair<int, int>, std::size_t> key_index;
  std::vector<std::size_t> member_key(members.size(), 0);
  if (handle_error.empty()) {
    for (std::size_t m = 0; m < members.size(); ++m) {
      const Request& req = batch[members[m]];
      const auto [it, inserted] =
          key_index.try_emplace(std::pair<int, int>{req.o, req.v},
                                keys.size());
      if (inserted) {
        keys.push_back(SweepKey{machine, kind, handle.version, req.o, req.v});
      }
      member_key[m] = it->second;
    }
  }
  std::vector<SweepPtr> cached;
  cache_.get_batch(keys, &cached);

  // Single-flight join per cold key: keys this group leads are computed in
  // ONE batched recommend on the sweep pool; keys already in flight
  // elsewhere are waited on exactly like the serial path.
  std::vector<std::shared_future<SweepResult>> futures(keys.size());
  std::vector<std::shared_ptr<std::promise<SweepResult>>> promises(
      keys.size());
  std::vector<std::size_t> leaders;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (std::size_t k = 0; k < keys.size(); ++k) {
      if (cached[k] != nullptr) continue;
      const auto it = inflight_.find(keys[k]);
      if (it == inflight_.end()) {
        promises[k] = std::make_shared<std::promise<SweepResult>>();
        futures[k] = promises[k]->get_future().share();
        inflight_[keys[k]] = futures[k];
        leaders.push_back(k);
      } else {
        futures[k] = it->second;
      }
    }
  }
  if (!leaders.empty()) {
    std::vector<SweepKey> lead_keys;
    std::vector<std::shared_ptr<std::promise<SweepResult>>> lead_promises;
    lead_keys.reserve(leaders.size());
    lead_promises.reserve(leaders.size());
    for (const std::size_t k : leaders) {
      lead_keys.push_back(keys[k]);
      lead_promises.push_back(promises[k]);
    }
    // One sweep-pool task computes every cold key the group leads with a
    // single concatenated predict (recommend_batch), so the SIMD batch
    // kernels see cross-request batches. If the batched compute fails —
    // e.g. one infeasible problem — fall back to per-key sweeps so the
    // innocent keys keep their serial-path answers.
    sweep_pool_.post([this, handle, lead_keys = std::move(lead_keys),
                      lead_promises = std::move(lead_promises)] {
      if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kSweepCompute);
      std::vector<SweepResult> results(lead_keys.size());
      bool batched_ok = true;
      try {
        const guide::Advisor advisor(*handle.model,
                                     simulator(lead_keys.front().machine));
        std::vector<std::pair<int, int>> problems;
        problems.reserve(lead_keys.size());
        for (const SweepKey& key : lead_keys) {
          problems.emplace_back(key.o, key.v);
        }
        std::vector<guide::Recommendation> recs = advisor.recommend_batch(
            problems, guide::Objective::kShortestTime);
        for (std::size_t k = 0; k < lead_keys.size(); ++k) {
          results[k].sweep = std::make_shared<const guide::Recommendation>(
              std::move(recs[k]));
        }
      } catch (...) {
        batched_ok = false;
      }
      if (!batched_ok) {
        for (std::size_t k = 0; k < lead_keys.size(); ++k) {
          try {
            const guide::Advisor advisor(
                *handle.model, simulator(lead_keys[k].machine));
            results[k].sweep = std::make_shared<const guide::Recommendation>(
                advisor.recommend(lead_keys[k].o, lead_keys[k].v,
                                  guide::Objective::kShortestTime));
          } catch (const std::exception& e) {
            results[k].error = e.what();
          } catch (...) {
            results[k].error = "sweep failed with a non-standard exception";
          }
        }
      }
      for (std::size_t k = 0; k < lead_keys.size(); ++k) {
        if (results[k].sweep != nullptr) {
          sweeps_computed_.fetch_add(1, std::memory_order_relaxed);
          cache_.put(lead_keys[k], results[k].sweep);
        }
        {
          const std::lock_guard<std::mutex> lock(inflight_mutex_);
          inflight_.erase(lead_keys[k]);
        }
        lead_promises[k]->set_value(std::move(results[k]));
      }
    });
  }

  // Answer every member with the serial path's exact derivations and
  // accounting. The first member of a led key is the sweep's "miss"; every
  // further member of that key — and every member of an externally
  // in-flight key — coalesced onto an existing flight, same as serial.
  //
  // BQ/budget answers scan the whole swept grid; members sharing a sweep
  // key, verb, and budget get bit-identical answers by construction (the
  // pick_* scans are pure and shared with the serial path's from_sweep /
  // fastest_within_budget), so each distinct derivation runs once per
  // flush and its winning point fans out.
  std::vector<std::tuple<std::size_t, Op, double>> derived_keys;
  std::vector<guide::SweepPoint> derived_points;
  std::vector<bool> key_claimed(keys.size(), false);
  std::array<std::uint64_t, kNumOps> op_counts{};
  requests_.fetch_add(members.size(), std::memory_order_relaxed);
  for (std::size_t m = 0; m < members.size(); ++m) {
    const std::size_t i = members[m];
    const Request& req = batch[i];
    ++op_counts[static_cast<std::size_t>(req.op)];
    Response r;
    try {
      if (deadlines[i] != Clock::time_point::max() &&
          Clock::now() >= deadlines[i]) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        r = error_response("deadline of " + std::to_string(req.deadline_ms) +
                               " ms exceeded before dispatch",
                           op_name(req.op), req.id, "deadline");
      } else if (!handle_error.empty()) {
        throw Error(handle_error);
      } else {
        const std::size_t k = member_key[m];
        const bool cache_hit = cached[k] != nullptr;
        SweepPtr sweep = cached[k];
        bool timed_out = false;
        if (sweep == nullptr) {
          if (promises[k] != nullptr && !key_claimed[k]) {
            key_claimed[k] = true;
          } else {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
          }
          if (deadlines[i] != Clock::time_point::max() &&
              futures[k].wait_until(deadlines[i]) ==
                  std::future_status::timeout) {
            timed_out = true;
          } else {
            const SweepResult& result = futures[k].get();
            if (result.sweep == nullptr) throw Error(result.error);
            sweep = result.sweep;
          }
        }
        r.op = op_name(req.op);
        r.id = req.id;
        if (timed_out) {
          deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
          r.ok = false;
          r.code = "deadline";
          r.error = "deadline of " + std::to_string(req.deadline_ms) +
                    " ms exceeded; the sweep continues in the background";
        } else {
          guide::SweepPoint pt;
          if (req.op == Op::kStq) {
            // The cached sweep IS the shortest-time answer.
            pt.config = sweep->config;
            pt.predicted_time_s = sweep->predicted_time_s;
            pt.predicted_node_hours = sweep->predicted_node_hours;
          } else {
            const double budget =
                req.op == Op::kBudget ? req.max_node_hours : 0.0;
            bool memoized = false;
            for (std::size_t d = 0; d < derived_keys.size(); ++d) {
              const auto& [dk, dop, dbudget] = derived_keys[d];
              if (dk == k && dop == req.op && dbudget == budget) {
                pt = derived_points[d];
                memoized = true;
                break;
              }
            }
            if (!memoized) {
              switch (req.op) {
                case Op::kBq:
                  pt = guide::Advisor::pick_best(
                      sweep->sweep, guide::Objective::kNodeHours);
                  break;
                case Op::kBudget:
                  pt = guide::Advisor::pick_within_budget(*sweep, budget);
                  break;
                default:
                  throw Error("unhandled op");  // unreachable
              }
              derived_keys.emplace_back(k, req.op, budget);
              derived_points.push_back(pt);
            }
          }
          r.ok = true;
          r.stale = handle.stale;
          if (handle.stale) {
            stale_served_.fetch_add(1, std::memory_order_relaxed);
          }
          r.has_recommendation = true;
          r.nodes = pt.config.nodes;
          r.tile = pt.config.tile;
          r.time_s = pt.predicted_time_s;
          r.node_hours = pt.predicted_node_hours;
          r.model_version = handle.version;
          r.sweep_size = sweep->sweep.size();
          r.cache_hit = cache_hit;
        }
      }
    } catch (const std::exception& e) {
      r = error_response(e.what(), op_name(req.op), req.id, "internal");
    }
    if (!r.ok) errors_.fetch_add(1, std::memory_order_relaxed);
    (*out)[i] = std::move(r);
  }
  // Every member of the flush completes when the flush completes, so one
  // timestamp and one bulk record per verb replaces 2 histogram updates
  // per member.
  const double elapsed_s = timer.elapsed_s();
  latency_.record_n(elapsed_s, members.size());
  for (std::size_t op = 0; op < kNumOps; ++op) {
    op_latency_[op].record_n(elapsed_s, op_counts[op]);
  }
}

std::future<Response> Server::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  submit_with(std::move(request),
              [promise](Response r) { promise->set_value(std::move(r)); });
  return future;
}

void Server::submit_with(Request request, std::function<void(Response)> done) {
  if (batcher_ != nullptr) {
    batcher_->submit(std::move(request), std::move(done));
    return;
  }
  const auto deadline = deadline_for(request);
  const std::string op = op_name(request.op);
  const std::string id = request.id;

  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  auto task = [this, done, deadline, request = std::move(request)]() {
    const GaugeGuard guard{queue_depth_};
    if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kWorkerStall);
    done(handle_until(request, deadline));
  };
  bool admitted = true;
  if (options_.max_queue_depth == 0) {
    pool_.post(std::move(task));
  } else {
    admitted = pool_.try_post(std::move(task), options_.max_queue_depth);
  }
  if (!admitted) {
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    done(error_response("server overloaded: queue depth limit " +
                            std::to_string(options_.max_queue_depth) +
                            " reached",
                        op, id, "overloaded"));
  }
}

void Server::submit_batch_with(std::vector<Request> batch,
                               std::function<void(std::vector<Response>)> done) {
  if (batcher_ != nullptr) {
    // Per-record routing through the scheduler: records from one wire
    // frame coalesce with every other connection's traffic; the frame's
    // responses reassemble in order once the last record answers.
    if (batch.empty()) {
      done({});
      return;
    }
    struct FanIn {
      std::vector<Response> out;
      std::atomic<std::size_t> remaining{0};
      std::function<void(std::vector<Response>)> done;
    };
    auto fan = std::make_shared<FanIn>();
    fan->out.resize(batch.size());
    fan->remaining.store(batch.size(), std::memory_order_relaxed);
    fan->done = std::move(done);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batcher_->submit(std::move(batch[i]), [fan, i](Response r) {
        fan->out[i] = std::move(r);
        if (fan->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          fan->done(std::move(fan->out));
        }
      });
    }
    return;
  }
  // Deadline clocks start at submission (time queued counts), matching
  // submit(); captured per request before the batch is enqueued.
  std::vector<Clock::time_point> deadlines;
  deadlines.reserve(batch.size());
  for (const Request& req : batch) deadlines.push_back(deadline_for(req));
  // Echo fields for the shed path, captured before the batch moves into
  // the task (a rejected try_post leaves the task — and the batch inside
  // it — in a moved-from state).
  std::vector<std::pair<std::string, std::string>> echoes;
  echoes.reserve(batch.size());
  for (const Request& req : batch) echoes.emplace_back(op_name(req.op), req.id);

  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  auto task = [this, done, deadlines = std::move(deadlines),
               batch = std::move(batch)]() {
    const GaugeGuard guard{queue_depth_};
    if (fault_ != nullptr) fault_->maybe_delay(FaultPoint::kWorkerStall);
    std::vector<Response> out;
    out.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out.push_back(handle_until(batch[i], deadlines[i]));
    }
    done(std::move(out));
  };
  bool admitted = true;
  if (options_.max_queue_depth == 0) {
    pool_.post(std::move(task));
  } else {
    admitted = pool_.try_post(std::move(task), options_.max_queue_depth);
  }
  if (!admitted) {
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(echoes.size(), std::memory_order_relaxed);
    // A shed frame answers every record: batches are admitted as a unit.
    const std::string why = "server overloaded: queue depth limit " +
                            std::to_string(options_.max_queue_depth) +
                            " reached";
    std::vector<Response> out;
    out.reserve(echoes.size());
    for (const auto& [op, id] : echoes) {
      out.push_back(error_response(why, op, id, "overloaded"));
    }
    done(std::move(out));
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sweeps_computed = sweeps_computed_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  const CacheCounters cc = cache_.counters();
  s.cache_hits = cc.hits;
  s.cache_misses = cc.misses;
  s.cache_evictions = cc.evictions;
  s.cache_hit_rate = cc.hit_rate();
  s.cache_size = cache_.size();
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.stale_served = stale_served_.load(std::memory_order_relaxed);
  s.reload_failures = registry_.reload_failures();
  s.retries = retries_.load(std::memory_order_relaxed);
  s.models_loaded = registry_.loads();
  s.models_trained = registry_.trainings();
  // Bucket quantiles interpolate toward the bucket's upper bound, so with
  // few samples they can overshoot the exact tracked max; clamp so the
  // reported p50 <= p95 <= p99 <= max always holds.
  const double overall_max = latency_.max() * 1e3;
  s.latency_p50_ms = std::min(latency_.quantile(0.50) * 1e3, overall_max);
  s.latency_p95_ms = std::min(latency_.quantile(0.95) * 1e3, overall_max);
  s.latency_mean_ms = latency_.mean() * 1e3;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const double verb_max = op_latency_[i].max() * 1e3;
    s.verb_latency[i].count = op_latency_[i].count();
    s.verb_latency[i].p50_ms =
        std::min(op_latency_[i].quantile(0.50) * 1e3, verb_max);
    s.verb_latency[i].p95_ms =
        std::min(op_latency_[i].quantile(0.95) * 1e3, verb_max);
    s.verb_latency[i].p99_ms =
        std::min(op_latency_[i].quantile(0.99) * 1e3, verb_max);
    s.verb_latency[i].max_ms = verb_max;
  }
  if (batcher_ != nullptr) {
    const BatchCounters bc = batcher_->counters();
    s.batched_requests = bc.batched_requests;
    s.batch_flushes = bc.batch_flushes;
    s.batch_bypass = bc.batch_bypass;
    s.batch_size_p50 = bc.size_p50;
    s.batch_size_p95 = bc.size_p95;
  }
  {
    const std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (overflow_source_) s.overflow_closed = overflow_source_();
  }
  if (online_ != nullptr) {
    s.online_enabled = true;
    const online::OnlineCounters oc = online_->counters();
    s.online.reports = oc.reports;
    s.online.measurements = oc.measurements;
    s.online.duplicates = oc.duplicates;
    s.online.rejected = oc.rejected;
    s.online.buffered = oc.buffered;
    s.online.rolling_mape = oc.rolling_mape;
    s.online.drift_events = oc.drift_events;
    s.online.incremental_updates = oc.incremental_updates;
    s.online.refits = oc.refits;
    s.online.shadow_evals = oc.shadow_evals;
    s.online.promotions = oc.promotions;
    s.online.promotions_rejected = oc.promotions_rejected;
    s.online.cache_invalidated = oc.cache_invalidated;
  }
  return s;
}

}  // namespace ccpred::serve
