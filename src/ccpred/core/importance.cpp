#include "ccpred/core/importance.hpp"

#include "ccpred/common/error.hpp"
#include "ccpred/core/metrics.hpp"

namespace ccpred::ml {

std::vector<double> permutation_importance(const Regressor& model,
                                           const linalg::Matrix& x,
                                           const std::vector<double>& y,
                                           const PermutationOptions& options) {
  CCPRED_CHECK_MSG(model.is_fitted(), "permutation_importance needs a "
                                      "fitted model");
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(options.n_repeats >= 1, "n_repeats must be >= 1");

  const double baseline = r2_score(y, model.predict(x));
  Rng rng(options.seed);

  std::vector<double> importance(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double drop_sum = 0.0;
    for (int rep = 0; rep < options.n_repeats; ++rep) {
      linalg::Matrix shuffled = x;
      const auto perm = rng.permutation(x.rows());
      for (std::size_t i = 0; i < x.rows(); ++i) {
        shuffled(i, c) = x(perm[i], c);
      }
      drop_sum += baseline - r2_score(y, model.predict(shuffled));
    }
    importance[c] = drop_sum / static_cast<double>(options.n_repeats);
  }
  return importance;
}

}  // namespace ccpred::ml
