#pragma once

/// \file model_comparison.hpp
/// Shared driver for Figures 1-2: hyper-parameter-optimize all nine models
/// with the three search strategies (grid, randomized, Bayesian) and report
/// R^2 / MAE / MAPE on the held-out test set plus the optimization wall
/// time — the four panels of the paper's figures.

#include <string>

namespace ccpred::bench {

/// Runs the full comparison for one machine and prints the panel tables.
/// Returns 0 on success.
int run_model_comparison(const std::string& machine);

}  // namespace ccpred::bench
