/// Reproduces paper Table 3: Aurora shortest-time (STQ) results —
/// per-problem optimal (nodes, tile, runtime), with the model's prediction
/// in parentheses where it disagrees.

#include "stq_bq_tables.hpp"

int main() {
  return ccpred::bench::run_optimal_table(
      "aurora", ccpred::guide::Objective::kShortestTime,
      "Table 3: Aurora shortest time results");
}
