#include "ccpred/serve/fleet.hpp"

#include <algorithm>
#include <utility>

#include "ccpred/common/error.hpp"

namespace ccpred::serve {
namespace {

/// splitmix64 finalizer (same construction as the FaultInjector's mixer):
/// ring point placement must be identical in every process.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a, explicitly — std::hash makes no cross-process guarantee, and
/// the serverd router and its shard children must agree on every key.
std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  CCPRED_CHECK_MSG(vnodes_ > 0, "hash ring needs at least one vnode");
}

void HashRing::add(int shard) {
  if (!shards_.insert(shard).second) return;
  for (std::size_t r = 0; r < vnodes_; ++r) {
    const std::uint64_t point =
        mix64(mix64(static_cast<std::uint64_t>(shard) + 1) ^
              mix64(static_cast<std::uint64_t>(r) + 0x51ULL));
    ring_.emplace(point, shard);  // collisions keep the first owner
  }
}

void HashRing::remove(int shard) {
  if (shards_.erase(shard) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard ? ring_.erase(it) : std::next(it);
  }
}

int HashRing::owner(std::uint64_t key) const {
  CCPRED_CHECK_MSG(!ring_.empty(), "hash ring is empty");
  const auto it = ring_.lower_bound(key);
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

std::vector<int> HashRing::preference(std::uint64_t key, std::size_t n) const {
  std::vector<int> out;
  if (ring_.empty() || n == 0) return out;
  auto it = ring_.lower_bound(key);
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < n; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::uint64_t HashRing::key_hash(const std::string& machine,
                                 const std::string& kind, int o, int v) {
  std::uint64_t h = fnv1a(machine, 1469598103934665603ULL);
  h = fnv1a("/", h);  // separator: ("ab","c") must differ from ("a","bc")
  h = fnv1a(kind, h);
  const std::uint64_t ov =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(o)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
  return mix64(h ^ mix64(ov));
}

ShardFleet::ShardFleet(ModelRegistry& registry, FleetOptions options)
    : registry_(registry), options_(std::move(options)), ring_(options_.vnodes) {
  CCPRED_CHECK_MSG(options_.shards > 0, "fleet needs at least one shard");
  slots_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->server = std::make_shared<Server>(registry_, options_.serve);
    slots_.push_back(std::move(slot));
    ring_.add(static_cast<int>(i));
  }
}

std::shared_ptr<Server> ShardFleet::pin(std::size_t i) const {
  const Slot& slot = *slots_[i];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.server;
}

std::uint64_t ShardFleet::request_key(const Request& req) const {
  const std::string& machine =
      req.machine.empty() ? options_.serve.default_machine : req.machine;
  const std::string& kind =
      req.model.empty() ? options_.serve.default_model : req.model;
  return HashRing::key_hash(machine, kind, req.o, req.v);
}

int ShardFleet::pick(std::uint64_t key, bool* failed_over) const {
  if (failed_over != nullptr) *failed_over = false;
  for (const int s : ring_.preference(key, slots_.size())) {
    if (slots_[static_cast<std::size_t>(s)]->alive.load(
            std::memory_order_acquire)) {
      return s;
    }
    if (failed_over != nullptr) *failed_over = true;
  }
  return -1;
}

void ShardFleet::maybe_chaos(std::uint64_t key) {
  FaultInjector* fault = options_.fault_injector;
  if (fault == nullptr || !fault->enabled()) return;
  if (fault->fire(FaultPoint::kShardKill)) {
    const int target = pick(key, nullptr);
    if (target >= 0) kill_shard(static_cast<std::size_t>(target));
  }
  if (fault->fire(FaultPoint::kShardRestart)) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i]->alive.load(std::memory_order_acquire)) {
        restart_shard(i);
        break;
      }
    }
  }
}

Response ShardFleet::handle(const Request& req) {
  if (req.op == Op::kStats) return stats_response(req);
  const std::uint64_t key = request_key(req);
  maybe_chaos(key);
  bool failed_over = false;
  for (const int s : ring_.preference(key, slots_.size())) {
    const auto i = static_cast<std::size_t>(s);
    const std::shared_ptr<Server> srv = pin(i);
    if (srv == nullptr) {
      failed_over = true;
      continue;
    }
    if (failed_over) failovers_.fetch_add(1, std::memory_order_relaxed);
    slots_[i]->routed.fetch_add(1, std::memory_order_relaxed);
    return srv->handle(req);
  }
  unrouteable_.fetch_add(1, std::memory_order_relaxed);
  return error_response("no live shard for this key", op_name(req.op), req.id,
                        "unavailable");
}

void ShardFleet::submit_with(Request req, std::function<void(Response)> done) {
  if (req.op == Op::kStats) {
    done(stats_response(req));
    return;
  }
  const std::uint64_t key = request_key(req);
  maybe_chaos(key);
  bool failed_over = false;
  for (const int s : ring_.preference(key, slots_.size())) {
    const auto i = static_cast<std::size_t>(s);
    const std::shared_ptr<Server> srv = pin(i);
    if (srv == nullptr) {
      failed_over = true;
      continue;
    }
    if (failed_over) failovers_.fetch_add(1, std::memory_order_relaxed);
    slots_[i]->routed.fetch_add(1, std::memory_order_relaxed);
    srv->submit_with(std::move(req), std::move(done));
    return;
  }
  unrouteable_.fetch_add(1, std::memory_order_relaxed);
  done(error_response("no live shard for this key", op_name(req.op), req.id,
                      "unavailable"));
}

void ShardFleet::submit_batch_with(
    std::vector<Request> batch,
    std::function<void(std::vector<Response>)> done) {
  if (batch.empty()) {
    done({});
    return;
  }
  // Stats inside a frame would need a fan-out from a shard worker; answer
  // such frames through the synchronous per-record path instead.
  const bool any_stats =
      std::any_of(batch.begin(), batch.end(),
                  [](const Request& r) { return r.op == Op::kStats; });
  if (any_stats) {
    std::vector<Response> out;
    out.reserve(batch.size());
    for (const Request& r : batch) out.push_back(handle(r));
    done(std::move(out));
    return;
  }
  // Route the whole frame by its first record: clients batch questions
  // that share a destination; strays still answer correctly, they just
  // miss this shard's cache.
  const std::uint64_t key = request_key(batch.front());
  maybe_chaos(key);
  bool failed_over = false;
  for (const int s : ring_.preference(key, slots_.size())) {
    const auto i = static_cast<std::size_t>(s);
    const std::shared_ptr<Server> srv = pin(i);
    if (srv == nullptr) {
      failed_over = true;
      continue;
    }
    if (failed_over) failovers_.fetch_add(1, std::memory_order_relaxed);
    slots_[i]->routed.fetch_add(batch.size(), std::memory_order_relaxed);
    srv->submit_batch_with(std::move(batch), std::move(done));
    return;
  }
  unrouteable_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Response> out;
  out.reserve(batch.size());
  for (const Request& r : batch) {
    out.push_back(error_response("no live shard for this key", op_name(r.op),
                                 r.id, "unavailable"));
  }
  done(std::move(out));
}

bool ShardFleet::kill_shard(std::size_t i) {
  if (i >= slots_.size()) return false;
  std::shared_ptr<Server> victim;
  {
    const std::lock_guard<std::mutex> membership(membership_mutex_);
    std::size_t live = 0;
    for (const auto& slot : slots_) {
      if (slot->alive.load(std::memory_order_acquire)) ++live;
    }
    Slot& slot = *slots_[i];
    const std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.server == nullptr || live <= 1) return false;
    victim = std::move(slot.server);
    slot.server = nullptr;
    slot.alive.store(false, std::memory_order_release);
    kills_.fetch_add(1, std::memory_order_relaxed);
  }
  // `victim` dies here unless in-flight requests still pin it; the last
  // holder runs the destructor (draining the shard's pools) off the locks.
  return true;
}

bool ShardFleet::restart_shard(std::size_t i) {
  if (i >= slots_.size()) return false;
  // Built outside the locks: Server construction spawns worker pools.
  auto fresh = std::make_shared<Server>(registry_, options_.serve);
  const std::lock_guard<std::mutex> membership(membership_mutex_);
  Slot& slot = *slots_[i];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.server != nullptr) return false;
  slot.server = std::move(fresh);
  slot.alive.store(true, std::memory_order_release);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ShardFleet::alive(std::size_t i) const {
  return i < slots_.size() &&
         slots_[i]->alive.load(std::memory_order_acquire);
}

int ShardFleet::route_of(const Request& req) const {
  if (req.op == Op::kStats) return -1;
  return pick(request_key(req), nullptr);
}

FleetCounters ShardFleet::counters() const {
  FleetCounters c;
  c.shards = slots_.size();
  for (const auto& slot : slots_) {
    if (slot->alive.load(std::memory_order_acquire)) ++c.alive;
    c.routed += slot->routed.load(std::memory_order_relaxed);
  }
  c.failovers = failovers_.load(std::memory_order_relaxed);
  c.kills = kills_.load(std::memory_order_relaxed);
  c.restarts = restarts_.load(std::memory_order_relaxed);
  c.unrouteable = unrouteable_.load(std::memory_order_relaxed);
  return c;
}

ServerStats ShardFleet::aggregated_stats() const {
  ServerStats total;
  std::uint64_t latency_weight = 0;
  std::uint64_t verb_weight[kNumOps] = {};
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::shared_ptr<Server> srv = pin(i);
    if (srv == nullptr) continue;
    const ServerStats s = srv->stats();
    total.requests += s.requests;
    total.errors += s.errors;
    total.sweeps_computed += s.sweeps_computed;
    total.coalesced += s.coalesced;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_evictions += s.cache_evictions;
    total.cache_size += s.cache_size;
    total.queue_depth += s.queue_depth;
    total.deadline_exceeded += s.deadline_exceeded;
    total.shed += s.shed;
    total.stale_served += s.stale_served;
    total.retries += s.retries;
    // Registry counters are shared by every shard: take them once, not
    // summed N times.
    total.reload_failures = s.reload_failures;
    total.models_loaded = s.models_loaded;
    total.models_trained = s.models_trained;
    // Request-weighted latency means (a true fleet quantile would need
    // histogram merging; the weighted mean is stable and monotone).
    total.latency_p50_ms += s.latency_p50_ms * static_cast<double>(s.requests);
    total.latency_p95_ms += s.latency_p95_ms * static_cast<double>(s.requests);
    total.latency_mean_ms += s.latency_mean_ms * static_cast<double>(s.requests);
    latency_weight += s.requests;
    // Batch-scheduler counters sum; the size quantiles are weighted by
    // each shard's dispatch count (flushes + bypasses).
    total.batched_requests += s.batched_requests;
    total.batch_flushes += s.batch_flushes;
    total.batch_bypass += s.batch_bypass;
    const auto dispatches =
        static_cast<double>(s.batch_flushes + s.batch_bypass);
    total.batch_size_p50 += s.batch_size_p50 * dispatches;
    total.batch_size_p95 += s.batch_size_p95 * dispatches;
    total.overflow_closed += s.overflow_closed;
    for (std::size_t v = 0; v < kNumOps; ++v) {
      total.verb_latency[v].count += s.verb_latency[v].count;
      total.verb_latency[v].p50_ms += s.verb_latency[v].p50_ms *
                                      static_cast<double>(s.verb_latency[v].count);
      total.verb_latency[v].p95_ms += s.verb_latency[v].p95_ms *
                                      static_cast<double>(s.verb_latency[v].count);
      total.verb_latency[v].p99_ms += s.verb_latency[v].p99_ms *
                                      static_cast<double>(s.verb_latency[v].count);
      // The fleet's worst observation is the max of the shard maxima —
      // exact, unlike the weighted quantile means.
      total.verb_latency[v].max_ms =
          std::max(total.verb_latency[v].max_ms, s.verb_latency[v].max_ms);
      verb_weight[v] += s.verb_latency[v].count;
    }
    if (s.online_enabled) {
      total.online_enabled = true;
      total.online.reports += s.online.reports;
      total.online.measurements += s.online.measurements;
      total.online.duplicates += s.online.duplicates;
      total.online.rejected += s.online.rejected;
      total.online.buffered += s.online.buffered;
      total.online.rolling_mape =
          std::max(total.online.rolling_mape, s.online.rolling_mape);
      total.online.drift_events += s.online.drift_events;
      total.online.incremental_updates += s.online.incremental_updates;
      total.online.refits += s.online.refits;
      total.online.shadow_evals += s.online.shadow_evals;
      total.online.promotions += s.online.promotions;
      total.online.promotions_rejected += s.online.promotions_rejected;
      total.online.cache_invalidated += s.online.cache_invalidated;
    }
  }
  if (latency_weight > 0) {
    const double w = static_cast<double>(latency_weight);
    total.latency_p50_ms /= w;
    total.latency_p95_ms /= w;
    total.latency_mean_ms /= w;
  }
  for (std::size_t v = 0; v < kNumOps; ++v) {
    if (verb_weight[v] > 0) {
      const double w = static_cast<double>(verb_weight[v]);
      total.verb_latency[v].p50_ms /= w;
      total.verb_latency[v].p95_ms /= w;
      total.verb_latency[v].p99_ms /= w;
    }
  }
  const std::uint64_t total_dispatches =
      total.batch_flushes + total.batch_bypass;
  if (total_dispatches > 0) {
    const double w = static_cast<double>(total_dispatches);
    total.batch_size_p50 /= w;
    total.batch_size_p95 /= w;
  }
  const std::uint64_t lookups = total.cache_hits + total.cache_misses;
  total.cache_hit_rate = lookups == 0
                             ? 0.0
                             : static_cast<double>(total.cache_hits) /
                                   static_cast<double>(lookups);
  return total;
}

Response ShardFleet::stats_response(const Request& req) {
  Response r;
  r.ok = true;
  r.op = op_name(Op::kStats);
  r.id = req.id;
  r.has_stats = true;
  r.stats = aggregated_stats();
  return r;
}

}  // namespace ccpred::serve
