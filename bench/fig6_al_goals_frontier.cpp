/// Reproduces paper Figure 6: Frontier active learning with the STQ and BQ
/// goals.

#include "al_figures.hpp"

int main() { return ccpred::bench::run_al_goal_curves("frontier"); }
