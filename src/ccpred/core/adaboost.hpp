#pragma once

/// \file adaboost.hpp
/// AdaBoost.R2 (paper §3.1 "AB", Drucker 1997): boosting for regression by
/// weighted resampling — each stage trains a CART tree on a bootstrap
/// sample drawn from the current weight distribution, weights are updated
/// from per-sample relative errors, and the final prediction is the
/// weighted median of the stage predictions.

#include <memory>
#include <string>
#include <vector>

#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// Loss shaping for AdaBoost.R2.
enum class AdaBoostLoss { kLinear, kSquare, kExponential };

/// Parameters: "n_estimators", "learning_rate", "loss" (0 linear, 1 square,
/// 2 exponential), plus the tree keys "max_depth", ...
class AdaBoostRegressor : public Regressor {
 public:
  explicit AdaBoostRegressor(int n_estimators = 50, double learning_rate = 1.0,
                             AdaBoostLoss loss = AdaBoostLoss::kLinear,
                             TreeOptions tree_options = {.max_depth = 4},
                             std::uint64_t seed = 42);

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return !trees_.empty(); }

  std::size_t stage_count() const { return trees_.size(); }

 private:
  int n_estimators_;
  double learning_rate_;
  AdaBoostLoss loss_;
  TreeOptions tree_options_;
  std::uint64_t seed_;

  std::vector<DecisionTreeRegressor> trees_;
  std::vector<double> stage_weights_;  // log(1/beta_t)
};

}  // namespace ccpred::ml
