#include "ccpred/core/gradient_boosting.hpp"

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/core/compiled_ensemble.hpp"
#include "ccpred/exec/arena.hpp"

namespace ccpred::ml {

GradientBoostingRegressor::GradientBoostingRegressor(int n_estimators,
                                                     double learning_rate,
                                                     TreeOptions tree_options,
                                                     double subsample,
                                                     std::uint64_t seed)
    : n_estimators_(n_estimators),
      learning_rate_(learning_rate),
      tree_options_(tree_options),
      subsample_(subsample),
      seed_(seed) {
  CCPRED_CHECK_MSG(n_estimators > 0, "n_estimators must be > 0");
  CCPRED_CHECK_MSG(learning_rate > 0.0 && learning_rate <= 1.0,
                   "learning_rate must be in (0, 1]");
  CCPRED_CHECK_MSG(subsample > 0.0 && subsample <= 1.0,
                   "subsample must be in (0, 1]");
}

void GradientBoostingRegressor::fit(const linalg::Matrix& x,
                                    const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  const std::size_t n = x.rows();

  base_prediction_ = 0.0;
  for (double v : y) base_prediction_ += v;
  base_prediction_ /= static_cast<double>(n);

  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - base_prediction_;

  // Histogram mode: quantile-bin the features once; every stage trains on
  // the shared binned view (the residual targets change per stage, the
  // binning does not).
  const bool histogram = tree_options_.split_mode == SplitMode::kHistogram;
  FeatureBins bins;
  if (histogram) bins = FeatureBins::build(x, tree_options_.max_bins);

  trees_.clear();
  compiled_.reset();
  fitted_ = false;
  trees_.reserve(static_cast<std::size_t>(n_estimators_));
  Rng rng(seed_);
  std::vector<std::size_t> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = i;

  // With the full training set per stage (no subsampling), the tree's
  // training partition already knows every row's leaf, so fit_binned hands
  // back per-row predictions (bit-identical to predict_row) and the
  // residual update needs no per-row tree walk.
  std::vector<double> train_pred;
  const bool use_train_pred = histogram && subsample_ >= 1.0;
  if (use_train_pred) train_pred.resize(n);

  // One arena reused across every stage's tree fit: fit_binned resets it
  // and bump-allocates all its scratch, so the boosting loop stops calling
  // malloc per stage.
  exec::Arena stage_arena;

  for (int stage = 0; stage < n_estimators_; ++stage) {
    TreeOptions opt = tree_options_;
    opt.seed = rng.next();
    DecisionTreeRegressor tree(opt);
    const std::vector<std::size_t>& rows =
        subsample_ < 1.0
            ? rng.sample_without_replacement(
                  n, std::max<std::size_t>(
                         1, static_cast<std::size_t>(
                                subsample_ * static_cast<double>(n))))
            : all_rows;
    if (histogram) {
      tree.fit_binned(bins, residual, rows,
                      use_train_pred ? train_pred.data() : nullptr,
                      &stage_arena);
    } else {
      tree.fit_rows(x, residual, rows);
    }
    // Update residuals with the shrunken stage prediction, chunked over the
    // pool (each index is independent, so the result is deterministic).
    if (use_train_pred) {
      parallel_for(0, n, [&](std::size_t i) {
        residual[i] -= learning_rate_ * train_pred[i];
      });
    } else {
      parallel_for(0, n, [&](std::size_t i) {
        residual[i] -= learning_rate_ * tree.predict_row(x.row_ptr(i));
      });
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  compiled_ =
      std::make_shared<const CompiledEnsemble>(CompiledEnsemble::compile(*this));
}

const CompiledEnsemble& GradientBoostingRegressor::compiled() const {
  CCPRED_CHECK_MSG(fitted_ && compiled_ != nullptr,
                   "GradientBoostingRegressor::compiled before fit");
  return *compiled_;
}

std::vector<double> GradientBoostingRegressor::predict(
    const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(fitted_, "GradientBoostingRegressor::predict before fit");
  return compiled_->predict_batch(x);
}

std::vector<double> GradientBoostingRegressor::predict_walk(
    const linalg::Matrix& x) const {
  return predict_staged(x, trees_.size());
}

std::vector<double> GradientBoostingRegressor::predict_staged(
    const linalg::Matrix& x, std::size_t stages) const {
  CCPRED_CHECK_MSG(fitted_, "GradientBoostingRegressor::predict before fit");
  CCPRED_CHECK_MSG(stages <= trees_.size(), "stage count out of range");
  std::vector<double> out(x.rows(), base_prediction_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_ptr(i);
    double s = 0.0;
    for (std::size_t t = 0; t < stages; ++t) s += trees_[t].predict_row(row);
    out[i] += learning_rate_ * s;
  }
  return out;
}

GradientBoostingRegressor GradientBoostingRegressor::from_parts(
    double learning_rate, double base_prediction,
    std::vector<DecisionTreeRegressor> stages) {
  CCPRED_CHECK_MSG(!stages.empty(), "a fitted model needs at least one stage");
  GradientBoostingRegressor model(static_cast<int>(stages.size()),
                                  learning_rate);
  model.base_prediction_ = base_prediction;
  model.trees_ = std::move(stages);
  model.fitted_ = true;
  model.compiled_ =
      std::make_shared<const CompiledEnsemble>(CompiledEnsemble::compile(model));
  return model;
}

std::vector<double> GradientBoostingRegressor::feature_importances() const {
  CCPRED_CHECK_MSG(fitted_, "feature_importances before fit");
  std::vector<double> out;
  for (const auto& tree : trees_) {
    const auto imp = tree.feature_importances();
    if (out.empty()) out.assign(imp.size(), 0.0);
    for (std::size_t c = 0; c < imp.size(); ++c) out[c] += imp[c];
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (auto& v : out) v /= total;
  }
  return out;
}

std::unique_ptr<Regressor> GradientBoostingRegressor::clone() const {
  return std::make_unique<GradientBoostingRegressor>(
      n_estimators_, learning_rate_, tree_options_, subsample_, seed_);
}

const std::string& GradientBoostingRegressor::name() const {
  static const std::string n = "GB";
  return n;
}

void GradientBoostingRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "n_estimators") {
      const int iv = static_cast<int>(std::lround(value));
      CCPRED_CHECK_MSG(iv > 0, "n_estimators must be > 0");
      n_estimators_ = iv;
    } else if (key == "learning_rate") {
      CCPRED_CHECK_MSG(value > 0.0 && value <= 1.0,
                       "learning_rate must be in (0, 1]");
      learning_rate_ = value;
    } else if (key == "subsample") {
      CCPRED_CHECK_MSG(value > 0.0 && value <= 1.0,
                       "subsample must be in (0, 1]");
      subsample_ = value;
    } else if (key == "max_depth" || key == "min_samples_split" ||
               key == "min_samples_leaf" || key == "max_features" ||
               key == "split_mode" || key == "max_bins") {
      DecisionTreeRegressor probe(tree_options_);
      probe.set_params({{key, value}});
      tree_options_ = probe.options();
    } else {
      throw Error("GradientBoostingRegressor: unknown parameter '" + key +
                  "'");
    }
  }
}

}  // namespace ccpred::ml
