#include "stq_bq_tables.hpp"

#include <cstdio>

#include "bench_util.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/guidance/report.hpp"

namespace ccpred::bench {

int run_optimal_table(const std::string& machine, guide::Objective objective,
                      const std::string& table_name) {
  const auto data = load_paper_data(machine);
  auto gb = ml::make_paper_gb();
  gb->fit(data.split.train.features(), data.split.train.targets());
  const auto y_pred = gb->predict(data.split.test.features());

  // Headline test-set regression scores (the paper quotes these alongside
  // each table).
  const auto scores = ml::score_all(data.split.test.targets(), y_pred);

  // Sweep the true objective surface once and share it with the
  // evaluation (the argmin and the loss lookup used to each recompute it).
  const auto true_sweeps = guide::sweep_optimal_values(
      data.split.test, data.split.test.targets(), objective);
  const auto outcomes =
      guide::evaluate_optima(data.split.test, y_pred, objective, true_sweeps);
  const auto table = objective == guide::Objective::kShortestTime
                         ? guide::format_stq_table(outcomes, table_name)
                         : guide::format_bq_table(outcomes, table_name);
  table.print();
  std::printf(
      "\nmismatched configurations: %zu of %zu problems\n"
      "test-set scores: R^2=%.3f MAE=%.2f MAPE=%.3f\n",
      guide::mismatch_count(outcomes), outcomes.size(), scores.r2, scores.mae,
      scores.mape);
  if (objective == guide::Objective::kShortestTime) {
    std::printf("paper: aurora R^2=0.999 MAE=2.36 MAPE=0.023 (3 mismatches); "
                "frontier R^2=0.969 MAE=4.65 MAPE=0.073 (5 mismatches)\n");
  } else {
    std::printf("paper: aurora R^2=0.979 MAE=0.41 MAPE=0.12 (5 mismatches); "
                "frontier R^2=0.892 MAE=0.59 MAPE=0.11 (9 mismatches)\n");
  }
  return 0;
}

}  // namespace ccpred::bench
