#pragma once

/// \file optimal.hpp
/// get_optimal_values / compute_losses (paper §3.4): per problem size, the
/// configuration minimizing an objective, and the *true-loss* evaluation of
/// predicted optima — the loss of a predicted configuration is its TRUE
/// measured value, not the model's predicted value (the paper's bold
/// caveat: anything else under-reports the loss).

#include <vector>

#include "ccpred/core/metrics.hpp"
#include "ccpred/data/dataset.hpp"

namespace ccpred::guide {

/// User objective: STQ minimizes wall time, BQ minimizes node-hours.
enum class Objective {
  kShortestTime,  ///< STQ
  kNodeHours,     ///< BQ
};

/// Objective value of dataset row `i` given (possibly predicted) times `y`.
double objective_value(const data::Dataset& dataset,
                       const std::vector<double>& y, std::size_t i,
                       Objective objective);

/// The winning row for one problem size.
struct OptimalChoice {
  int o = 0;
  int v = 0;
  std::size_t row = 0;        ///< dataset row index of the optimum
  sim::RunConfig config;      ///< its (nodes, tile)
  double value = 0.0;         ///< objective value used for the argmin
};

/// Per problem size (ascending), the row of `dataset` minimizing the
/// objective computed from `y` (pass dataset.targets() for true optima or
/// model predictions for predicted optima). Ties break to the lower row.
std::vector<OptimalChoice> get_optimal_values(const data::Dataset& dataset,
                                              const std::vector<double>& y,
                                              Objective objective);

/// True-vs-predicted optimum for one problem size.
struct ProblemOutcome {
  int o = 0;
  int v = 0;
  OptimalChoice truth;          ///< argmin under true values
  OptimalChoice predicted;      ///< argmin under predicted values
  double true_value = 0.0;      ///< objective at truth.row (true y)
  double realized_value = 0.0;  ///< TRUE objective at predicted.row
  double true_time = 0.0;       ///< wall time at truth.row
  double realized_time = 0.0;   ///< TRUE wall time at predicted.row
  bool config_match = false;    ///< same (nodes, tile)?
};

/// Evaluates predicted optima with true-loss semantics: the predicted
/// configuration is located with `y_pred`, then scored at its *true*
/// target. `y_pred` must be predictions for the rows of `dataset`.
std::vector<ProblemOutcome> evaluate_optima(const data::Dataset& dataset,
                                            const std::vector<double>& y_pred,
                                            Objective objective);

/// Paper-style losses over the outcomes: R^2 / MAE / MAPE between the true
/// optimal objective values and the realized (true-at-predicted-config)
/// values.
ml::Scores compute_losses(const std::vector<ProblemOutcome>& outcomes);

}  // namespace ccpred::guide
