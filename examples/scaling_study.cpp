/// Scaling study: the workload the paper's introduction motivates — a
/// computational chemist sizing a new molecule. Uses the simulator
/// directly (no ML) to chart strong scaling, parallel efficiency and cost,
/// then shows where the trained model's recommendation lands on the chart.
///
/// Usage: scaling_study [O] [V]   (default 180 1070, on Aurora)

#include <cstdio>
#include <cstdlib>

#include "ccpred/common/table.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/data/generator.hpp"
#include "ccpred/guidance/advisor.hpp"
#include "ccpred/sim/contraction.hpp"

int main(int argc, char** argv) {
  using namespace ccpred;
  const int o = argc > 1 ? std::atoi(argv[1]) : 180;
  const int v = argc > 2 ? std::atoi(argv[2]) : 1070;
  if (o <= 0 || v <= 0) {
    std::fprintf(stderr, "usage: %s [O] [V]\n", argv[0]);
    return 1;
  }

  sim::CcsdSimulator simulator(sim::MachineModel::aurora());
  std::printf("molecule: O=%d, V=%d -> %.1f Tflop per CCSD iteration, "
              "needs >= %d nodes for memory\n\n",
              o, v, sim::ccsd_iteration_flops(o, v) / 1e12,
              simulator.min_nodes(o, v));

  // Strong-scaling chart at the per-problem best tile.
  TextTable table({"nodes", "best tile", "time (s)", "efficiency",
                   "node-hours"},
                  "Strong scaling (simulated ground truth)");
  double t_ref = 0.0;
  int n_ref = 0;
  for (int nodes : simulator.machine().node_menu()) {
    if (nodes < simulator.min_nodes(o, v)) continue;
    double best_t = 0.0;
    int best_tile = 0;
    for (int tile : simulator.machine().tile_menu()) {
      const sim::RunConfig cfg{.o = o, .v = v, .nodes = nodes, .tile = tile};
      const double t = simulator.iteration_time(cfg);
      if (best_tile == 0 || t < best_t) {
        best_t = t;
        best_tile = tile;
      }
    }
    if (n_ref == 0) {
      t_ref = best_t;
      n_ref = nodes;
    }
    const sim::RunConfig cfg{.o = o, .v = v, .nodes = nodes,
                             .tile = best_tile};
    table.add_row({std::to_string(nodes), std::to_string(best_tile),
                   TextTable::cell(best_t, 1),
                   TextTable::cell(t_ref * n_ref / (best_t * nodes), 3),
                   TextTable::cell(sim::CcsdSimulator::node_hours(cfg, best_t),
                                   2)});
  }
  table.print();

  // Where does the trained model recommend running?
  std::printf("\ntraining the runtime model to get recommendations...\n");
  const auto dataset = data::paper_dataset(simulator);
  auto model = ml::make_paper_gb();
  model->fit(dataset.features(), dataset.targets());
  const guide::Advisor advisor(*model, simulator);
  const auto stq = advisor.shortest_time(o, v);
  const auto bq = advisor.cheapest_run(o, v);
  std::printf(
      "model says: fastest at %d nodes / tile %d (%.1fs); cheapest at %d "
      "nodes / tile %d (%.2f node-hours)\n",
      stq.config.nodes, stq.config.tile, stq.predicted_time_s, bq.config.nodes,
      bq.config.tile, bq.predicted_node_hours);
  return 0;
}
