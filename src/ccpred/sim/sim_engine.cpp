#include "ccpred/sim/sim_engine.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <utility>

#include "ccpred/common/error.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/exec/arena.hpp"
#include "ccpred/exec/task_scope.hpp"
#include "ccpred/sim/noise.hpp"

namespace ccpred::sim {
namespace {

using exec::kGoldenGamma;
using exec::splitmix64;

/// Cache seed of the rep-th measurement of a stream. Never 0 (0 is the
/// noise-free key).
std::uint64_t rep_seed(std::uint64_t stream, int rep) {
  const std::uint64_t h = splitmix64(
      stream + kGoldenGamma * (static_cast<std::uint64_t>(rep) + 1));
  return h == 0 ? 1 : h;
}

/// Per-thread scratch for simulate_batch's dedupe/grouping pass, reused
/// across calls so batching itself stops hitting the heap. Thread-local
/// because one engine may serve concurrent batch calls (the serving layer
/// does exactly that).
exec::Arena& batch_arena() {
  thread_local exec::Arena arena;
  return arena;
}

std::tuple<int, int, int, int> sort_key(const RunConfig& c) {
  return {c.o, c.v, c.tile, c.nodes};
}

bool same_group(const RunConfig& a, const RunConfig& b) {
  return a.o == b.o && a.v == b.v && a.tile == b.tile;
}

}  // namespace

std::uint64_t measurement_stream_seed(std::uint64_t campaign_seed,
                                      const RunConfig& cfg) {
  std::uint64_t h = campaign_seed ^ 0x6a09e667f3bcc909ULL;
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(cfg.o));
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(cfg.v));
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(cfg.nodes));
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(cfg.tile));
  return h;
}

std::uint64_t SimCache::machine_tag(const std::string& name) {
  // FNV-1a: stable across processes, unlike std::hash.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t SimCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = k.machine;
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(k.o));
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(k.v));
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(k.nodes));
  h = splitmix64(h + kGoldenGamma * static_cast<std::uint64_t>(k.tile));
  h = splitmix64(h + k.seed);
  return static_cast<std::size_t>(h);
}

SimEngine::SimEngine(const CcsdSimulator& simulator, SimEngineOptions options)
    : simulator_(&simulator),
      options_(options),
      machine_tag_(SimCache::machine_tag(simulator.machine().name)) {}

SimCache::Key SimEngine::key_for(const RunConfig& cfg,
                                 std::uint64_t seed) const {
  return SimCache::Key{.machine = machine_tag_,
                       .o = cfg.o,
                       .v = cfg.v,
                       .nodes = cfg.nodes,
                       .tile = cfg.tile,
                       .seed = seed};
}

SimEngineStats SimEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

double SimEngine::iteration_time(const RunConfig& cfg) {
  const auto simulate = [this, &cfg] {
    // breakdown(cfg) routes through build_task_graph + breakdown(graph,
    // nodes), so this is bit-identical to the batched path.
    const double t = simulator_->iteration_time(cfg);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.graph_builds;
    ++stats_.evaluations;
    return t;
  };
  if (!fast() || !options_.use_cache) return simulate();
  // Single-flight: concurrent callers of the same uncached config coalesce
  // onto one simulation instead of duplicating the graph build.
  return cache_.get_or_compute(key_for(cfg), simulate);
}

std::vector<double> SimEngine::simulate_batch(
    const std::vector<RunConfig>& configs) {
  std::vector<double> out(configs.size(), 0.0);
  if (configs.empty()) return out;

  if (!fast()) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      out[i] = simulator_->iteration_time(configs[i]);
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.graph_builds += configs.size();
    stats_.evaluations += configs.size();
    return out;
  }

  // All grouping scratch bump-allocates from a reused per-thread arena —
  // the batching layer itself does not touch the heap.
  exec::Arena& arena = batch_arena();
  arena.reset();
  const std::size_t n = configs.size();

  // Sorting by (O, V, tile, nodes) makes duplicates adjacent and keeps
  // every unique of one (O, V, tile) group contiguous, so dedupe and
  // grouping are both single sorted walks.
  std::size_t* order = arena.alloc_array<std::size_t>(n);
  std::iota(order, order + n, std::size_t{0});
  std::sort(order, order + n, [&configs](std::size_t a, std::size_t b) {
    return sort_key(configs[a]) < sort_key(configs[b]);
  });

  // Dedupe: one evaluation per distinct configuration.
  std::size_t* uid = arena.alloc_array<std::size_t>(n);   // config -> unique
  std::size_t* urep = arena.alloc_array<std::size_t>(n);  // unique -> config
  std::size_t nu = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    if (k == 0 || !(configs[order[k - 1]] == configs[i])) urep[nu++] = i;
    uid[i] = nu - 1;
  }

  double* uval = arena.alloc_array<double>(nu);
  unsigned char* have = arena.alloc_array<unsigned char>(nu);
  std::fill(have, have + nu, static_cast<unsigned char>(0));
  if (options_.use_cache) {
    for (std::size_t u = 0; u < nu; ++u) {
      have[u] = cache_.lookup(key_for(configs[urep[u]]), &uval[u]) ? 1 : 0;
    }
  }

  // Group cache misses by (O, V, tile): one task-graph build per group,
  // evaluated at each of the group's node counts. Uniques are in sorted
  // order, so a group is a run of consecutive uncached uniques sharing
  // (O, V, tile).
  std::size_t* gmember = arena.alloc_array<std::size_t>(nu);
  std::size_t* gstart = arena.alloc_array<std::size_t>(nu + 1);
  std::size_t ngroups = 0;
  std::size_t evaluated = 0;
  for (std::size_t u = 0; u < nu; ++u) {
    if (have[u]) continue;
    if (evaluated == 0 ||
        !same_group(configs[urep[gmember[evaluated - 1]]],
                    configs[urep[u]])) {
      gstart[ngroups++] = evaluated;
    }
    gmember[evaluated++] = u;
  }
  gstart[ngroups] = evaluated;

  const auto eval_group = [&](std::size_t gi) {
    const auto& c0 = configs[urep[gmember[gstart[gi]]]];
    const TaskGraph graph = simulator_->build_task_graph(c0.o, c0.v, c0.tile);
    for (std::size_t m = gstart[gi]; m < gstart[gi + 1]; ++m) {
      const std::size_t u = gmember[m];
      uval[u] = simulator_->breakdown(graph, configs[urep[u]].nodes).total_s();
    }
  };
  if (options_.parallel && ngroups >= options_.min_parallel_batch) {
    exec::TaskScope scope;
    scope.parallel_for(0, ngroups, eval_group);
  } else {
    for (std::size_t gi = 0; gi < ngroups; ++gi) eval_group(gi);
  }

  if (options_.use_cache) {
    for (std::size_t m = 0; m < evaluated; ++m) {
      const std::size_t u = gmember[m];
      cache_.insert(key_for(configs[urep[u]]), uval[u]);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.graph_builds += ngroups;
    stats_.evaluations += evaluated;
  }

  for (std::size_t i = 0; i < n; ++i) out[i] = uval[uid[i]];
  return out;
}

std::vector<double> SimEngine::measured_series(const RunConfig& cfg,
                                               std::uint64_t campaign_seed,
                                               int reps) {
  CCPRED_CHECK_MSG(reps >= 0, "repeat count must be non-negative");
  std::vector<double> out(static_cast<std::size_t>(reps), 0.0);
  if (reps == 0) return out;
  const std::uint64_t stream = measurement_stream_seed(campaign_seed, cfg);

  if (fast() && options_.use_cache) {
    bool all = true;
    for (int r = 0; r < reps; ++r) {
      if (!cache_.lookup(key_for(cfg, rep_seed(stream, r)),
                         &out[static_cast<std::size_t>(r)])) {
        all = false;
        break;
      }
    }
    if (all) return out;
  }

  // Replaying the stream from the start makes each rep's value independent
  // of which prefix happened to be cached.
  const double base = iteration_time(cfg);
  Rng rng(stream);
  for (int r = 0; r < reps; ++r) {
    const double value = base * noise_factor(simulator_->machine(), rng);
    out[static_cast<std::size_t>(r)] = value;
    if (fast() && options_.use_cache) {
      cache_.insert(key_for(cfg, rep_seed(stream, r)), value);
    }
  }
  return out;
}

double SimEngine::measured_time(const RunConfig& cfg,
                                std::uint64_t campaign_seed, int rep) {
  CCPRED_CHECK_MSG(rep >= 0, "repeat index must be non-negative");
  return measured_series(cfg, campaign_seed, rep + 1).back();
}

}  // namespace ccpred::sim
