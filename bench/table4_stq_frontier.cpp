/// Reproduces paper Table 4: Frontier shortest-time (STQ) results.

#include "stq_bq_tables.hpp"

int main() {
  return ccpred::bench::run_optimal_table(
      "frontier", ccpred::guide::Objective::kShortestTime,
      "Table 4: Frontier shortest time results");
}
