#include "ccpred/sim/noise.hpp"

namespace ccpred::sim {

double noise_factor(const MachineModel& m, Rng& rng) {
  double f = rng.lognormal_median(1.0, m.noise_sigma);
  if (m.spike_prob > 0.0 && rng.bernoulli(m.spike_prob)) {
    f *= 1.0 + rng.uniform(m.spike_min, m.spike_max);
  }
  return f;
}

}  // namespace ccpred::sim
