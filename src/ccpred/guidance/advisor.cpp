#include "ccpred/guidance/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ccpred/common/error.hpp"

namespace ccpred::guide {

namespace {

/// A NaN/Inf prediction would silently win or lose every comparison below,
/// turning one bad model output into a confidently wrong recommendation —
/// reject the sweep instead and name the offending configuration.
void check_sweep_finite(const std::vector<SweepPoint>& sweep) {
  for (const auto& pt : sweep) {
    CCPRED_CHECK_MSG(std::isfinite(pt.predicted_time_s) &&
                         std::isfinite(pt.predicted_node_hours),
                     "non-finite prediction (time="
                         << pt.predicted_time_s
                         << ", node_hours=" << pt.predicted_node_hours
                         << ") for O=" << pt.config.o << " V=" << pt.config.v
                         << " nodes=" << pt.config.nodes
                         << " tile=" << pt.config.tile
                         << "; refusing to recommend from a corrupt sweep");
  }
}

}  // namespace

std::vector<SweepPoint> pareto_front(const std::vector<SweepPoint>& sweep) {
  std::vector<SweepPoint> sorted = sweep;
  std::sort(sorted.begin(), sorted.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              if (a.predicted_time_s != b.predicted_time_s) {
                return a.predicted_time_s < b.predicted_time_s;
              }
              return a.predicted_node_hours < b.predicted_node_hours;
            });
  std::vector<SweepPoint> front;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& pt : sorted) {
    if (pt.predicted_node_hours < best_cost) {
      front.push_back(pt);
      best_cost = pt.predicted_node_hours;
    }
  }
  return front;
}

Advisor::Advisor(const ml::Regressor& model,
                 const sim::CcsdSimulator& simulator)
    : model_(model), simulator_(simulator) {
  CCPRED_CHECK_MSG(model.is_fitted(), "Advisor needs a fitted model");
}

Recommendation Advisor::recommend(int o, int v, Objective objective) const {
  CCPRED_CHECK_MSG(o > 0 && v > 0, "orbital counts must be positive");

  // Enumerate feasible candidates.
  std::vector<sim::RunConfig> candidates;
  for (int n : simulator_.machine().node_menu()) {
    for (int t : simulator_.machine().tile_menu()) {
      const sim::RunConfig cfg{.o = o, .v = v, .nodes = n, .tile = t};
      if (simulator_.feasible(cfg)) candidates.push_back(cfg);
    }
  }
  CCPRED_CHECK_MSG(!candidates.empty(), "no feasible configuration for O="
                                            << o << " V=" << v);

  // One batched prediction over the whole sweep.
  linalg::Matrix x(candidates.size(), data::kNumFeatures);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    x(i, data::kFeatO) = candidates[i].o;
    x(i, data::kFeatV) = candidates[i].v;
    x(i, data::kFeatNodes) = candidates[i].nodes;
    x(i, data::kFeatTile) = candidates[i].tile;
  }
  const auto times = model_.predict(x);

  std::vector<SweepPoint> sweep;
  sweep.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    SweepPoint pt;
    pt.config = candidates[i];
    pt.predicted_time_s = times[i];
    pt.predicted_node_hours =
        sim::CcsdSimulator::node_hours(candidates[i], times[i]);
    sweep.push_back(pt);
  }
  return from_sweep(std::move(sweep), objective);
}

Recommendation Advisor::from_sweep(std::vector<SweepPoint> sweep,
                                   Objective objective) {
  CCPRED_CHECK_MSG(!sweep.empty(), "cannot recommend from an empty sweep");
  check_sweep_finite(sweep);
  Recommendation rec;
  rec.objective = objective;
  rec.sweep = std::move(sweep);
  bool first = true;
  double best = 0.0;
  for (const auto& pt : rec.sweep) {
    const double value = objective == Objective::kShortestTime
                             ? pt.predicted_time_s
                             : pt.predicted_node_hours;
    if (first || value < best) {
      best = value;
      rec.config = pt.config;
      rec.predicted_time_s = pt.predicted_time_s;
      rec.predicted_node_hours = pt.predicted_node_hours;
      first = false;
    }
  }
  return rec;
}

Recommendation Advisor::fastest_within_budget(int o, int v,
                                               double max_node_hours) const {
  // One recommend() sweep, then the constraint filter on the cached points.
  return fastest_within_budget(recommend(o, v, Objective::kShortestTime),
                               max_node_hours);
}

Recommendation Advisor::fastest_within_budget(const Recommendation& base,
                                              double max_node_hours) {
  CCPRED_CHECK_MSG(max_node_hours > 0.0, "budget must be positive");
  check_sweep_finite(base.sweep);
  Recommendation rec = base;
  rec.objective = Objective::kShortestTime;
  bool found = false;
  double best_time = 0.0;
  for (const auto& pt : rec.sweep) {
    if (pt.predicted_node_hours > max_node_hours) continue;
    if (!found || pt.predicted_time_s < best_time) {
      best_time = pt.predicted_time_s;
      rec.config = pt.config;
      rec.predicted_time_s = pt.predicted_time_s;
      rec.predicted_node_hours = pt.predicted_node_hours;
      found = true;
    }
  }
  CCPRED_CHECK_MSG(found, "no swept configuration for O="
                              << rec.config.o << " V=" << rec.config.v
                              << " fits within " << max_node_hours
                              << " node-hours");
  return rec;
}

}  // namespace ccpred::guide
