#include "ccpred/core/serialize.hpp"

#include <fstream>
#include <sstream>

#include "ccpred/common/error.hpp"
#include "ccpred/common/strings.hpp"

namespace ccpred::ml {
namespace {

constexpr const char* kTreeHeader = "ccpred-tree-v1";
constexpr const char* kGbHeader = "ccpred-gb-v1";
constexpr const char* kRfHeader = "ccpred-rf-v1";

void write_tree_body(std::ostream& out, const DecisionTreeRegressor& tree) {
  out.precision(17);
  const auto& nodes = tree.nodes();
  const auto& importance = tree.raw_importance();
  out << nodes.size() << ' ' << importance.size() << '\n';
  for (const auto& n : nodes) {
    out << n.feature << ' ' << n.threshold << ' ' << n.value << ' ' << n.left
        << ' ' << n.right << '\n';
  }
  for (std::size_t i = 0; i < importance.size(); ++i) {
    out << (i ? " " : "") << importance[i];
  }
  if (!importance.empty()) out << '\n';
}

DecisionTreeRegressor read_tree_body(std::istream& in) {
  std::size_t n_nodes = 0;
  std::size_t n_features = 0;
  CCPRED_CHECK_MSG(static_cast<bool>(in >> n_nodes >> n_features),
                   "tree body: missing size line");
  CCPRED_CHECK_MSG(n_nodes >= 1 && n_nodes < (1u << 26),
                   "tree body: implausible node count " << n_nodes);
  std::vector<TreeNode> nodes(n_nodes);
  for (auto& node : nodes) {
    CCPRED_CHECK_MSG(
        static_cast<bool>(in >> node.feature >> node.threshold >>
                          node.value >> node.left >> node.right),
        "tree body: truncated node record");
  }
  std::vector<double> importance(n_features);
  for (auto& v : importance) {
    CCPRED_CHECK_MSG(static_cast<bool>(in >> v),
                     "tree body: truncated importance record");
  }
  return DecisionTreeRegressor::from_parts({}, std::move(nodes),
                                           std::move(importance));
}

}  // namespace

std::string serialize_tree(const DecisionTreeRegressor& tree) {
  CCPRED_CHECK_MSG(tree.is_fitted(), "cannot serialize an unfitted tree");
  std::ostringstream out;
  out << kTreeHeader << '\n';
  write_tree_body(out, tree);
  return out.str();
}

DecisionTreeRegressor deserialize_tree(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  CCPRED_CHECK_MSG(static_cast<bool>(in >> header) && header == kTreeHeader,
                   "not a ccpred tree file");
  return read_tree_body(in);
}

std::string serialize_gb(const GradientBoostingRegressor& model) {
  CCPRED_CHECK_MSG(model.is_fitted(), "cannot serialize an unfitted model");
  std::ostringstream out;
  out.precision(17);
  out << kGbHeader << '\n'
      << model.stages().size() << ' ' << model.learning_rate() << ' '
      << model.base_prediction() << '\n';
  for (const auto& tree : model.stages()) write_tree_body(out, tree);
  return out.str();
}

GradientBoostingRegressor deserialize_gb(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  CCPRED_CHECK_MSG(static_cast<bool>(in >> header) && header == kGbHeader,
                   "not a ccpred GB model file");
  std::size_t n_stages = 0;
  double learning_rate = 0.0;
  double base = 0.0;
  CCPRED_CHECK_MSG(
      static_cast<bool>(in >> n_stages >> learning_rate >> base),
      "GB model file: missing header line");
  CCPRED_CHECK_MSG(n_stages >= 1 && n_stages < (1u << 20),
                   "GB model file: implausible stage count " << n_stages);
  std::vector<DecisionTreeRegressor> stages;
  stages.reserve(n_stages);
  for (std::size_t s = 0; s < n_stages; ++s) {
    stages.push_back(read_tree_body(in));
  }
  return GradientBoostingRegressor::from_parts(learning_rate, base,
                                               std::move(stages));
}

std::string serialize_rf(const RandomForestRegressor& model) {
  CCPRED_CHECK_MSG(model.is_fitted(), "cannot serialize an unfitted model");
  std::ostringstream out;
  out << kRfHeader << '\n' << model.tree_count() << '\n';
  for (std::size_t t = 0; t < model.tree_count(); ++t) {
    write_tree_body(out, model.tree(t));
  }
  return out.str();
}

RandomForestRegressor deserialize_rf(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  CCPRED_CHECK_MSG(static_cast<bool>(in >> header) && header == kRfHeader,
                   "not a ccpred RF model file");
  std::size_t n_trees = 0;
  CCPRED_CHECK_MSG(static_cast<bool>(in >> n_trees),
                   "RF model file: missing tree count");
  CCPRED_CHECK_MSG(n_trees >= 1 && n_trees < (1u << 20),
                   "RF model file: implausible tree count " << n_trees);
  std::vector<DecisionTreeRegressor> trees;
  trees.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    trees.push_back(read_tree_body(in));
  }
  return RandomForestRegressor::from_parts(std::move(trees));
}

void save_rf(const RandomForestRegressor& model, const std::string& path) {
  std::ofstream out(path);
  CCPRED_CHECK_MSG(out.good(), "cannot open model file for write: " << path);
  out << serialize_rf(model);
  CCPRED_CHECK_MSG(out.good(), "I/O error writing model file: " << path);
}

RandomForestRegressor load_rf(const std::string& path) {
  std::ifstream in(path);
  CCPRED_CHECK_MSG(in.good(), "cannot open model file: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_rf(buf.str());
}

void save_gb(const GradientBoostingRegressor& model, const std::string& path) {
  std::ofstream out(path);
  CCPRED_CHECK_MSG(out.good(), "cannot open model file for write: " << path);
  out << serialize_gb(model);
  CCPRED_CHECK_MSG(out.good(), "I/O error writing model file: " << path);
}

GradientBoostingRegressor load_gb(const std::string& path) {
  std::ifstream in(path);
  CCPRED_CHECK_MSG(in.good(), "cannot open model file: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_gb(buf.str());
}

}  // namespace ccpred::ml
