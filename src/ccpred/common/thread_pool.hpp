#pragma once

/// \file thread_pool.hpp
/// A fixed-size worker pool, a deterministic parallel_for and a TaskGroup
/// batch waiter.
///
/// ccpred parallelizes embarrassingly parallel loops: forest/committee
/// member training, gradient-boosting residual updates, cross-validation
/// folds, hyper-parameter candidates and dataset generation. Work is
/// partitioned statically by index so results are bitwise identical
/// regardless of worker count or scheduling, as long as each index derives
/// its randomness from its own Rng stream.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ccpred {

/// RAII thread pool; joins all workers on destruction.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Fire-and-forget enqueue: no future is allocated, so there is nobody to
  /// receive an exception — the task must not throw. Waiters that need
  /// exception propagation without per-task futures use TaskGroup, whose
  /// run() wraps the task accordingly.
  void post(std::function<void()> task);

  /// Bounded-admission post: enqueues only if fewer than `max_queue` tasks
  /// are waiting (tasks already running do not count), otherwise rejects
  /// and returns false without consuming resources. This is the load-
  /// shedding primitive for callers that must not build an unbounded
  /// backlog (the serving layer's admission control).
  bool try_post(std::function<void()> task, std::size_t max_queue);

  /// Tasks enqueued but not yet picked up by a worker.
  std::size_t queue_size() const;

  /// Process-wide shared pool (lazily constructed). Its size honors the
  /// CCPRED_THREADS environment variable when set to a positive integer,
  /// otherwise hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Submits a batch of tasks to a pool and waits for them as one unit.
/// Unlike raw post(), a task exception is not lost: the first one is
/// captured as a std::exception_ptr and rethrown from wait(), so the waiter
/// observes failures exactly as it would with per-task futures but without
/// a future allocation per task.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::global());

  /// Waits for outstanding tasks; a still-pending exception is dropped
  /// (destructors must not throw) — call wait() to observe it.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues one task on the pool as part of this group.
  void run(std::function<void()> task);

  /// Blocks until every task run() so far has finished, then rethrows the
  /// first captured task exception (if any). The group is reusable after
  /// wait() returns or throws.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;
};

/// Runs body(i) for i in [begin, end) across the pool, blocking until all
/// iterations finish. The index range is split into contiguous chunks, one
/// per worker. The first exception thrown by any iteration is rethrown.
///
/// Safe to call from non-worker threads only (no nested parallel_for on the
/// same pool — nesting would deadlock a fixed-size pool; nested calls instead
/// run serially, detected via a thread-local depth flag).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

/// True on a thread currently running inside a parallel_for (or TaskScope)
/// chunk. Data-parallel constructs check this and run serially when nested,
/// because nested fan-out on a fixed-size pool would deadlock.
bool in_parallel_region();

/// Marks/unmarks the calling thread as inside a parallel chunk. Exposed for
/// the executor layer's TaskScope, which shares parallel_for's nested-
/// execution rule; application code has no reason to call it.
void set_in_parallel_region(bool value);

}  // namespace ccpred
