// Tests for the nine regression models: per-model behaviour plus the
// parameterized interface-contract suite over the whole zoo.

#include <gtest/gtest.h>

#include <cmath>

#include "ccpred/core/adaboost.hpp"
#include "ccpred/core/bayesian_ridge.hpp"
#include "ccpred/core/decision_tree.hpp"
#include "ccpred/core/gaussian_process.hpp"
#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/kernel_ridge.hpp"
#include "ccpred/core/kernels.hpp"
#include "ccpred/core/linear.hpp"
#include "ccpred/core/metrics.hpp"
#include "ccpred/core/model_zoo.hpp"
#include "ccpred/core/polynomial.hpp"
#include "ccpred/core/random_forest.hpp"
#include "ccpred/core/svr.hpp"
#include "test_util.hpp"

namespace ccpred::ml {
namespace {

using test::make_linear;
using test::make_nonlinear;

// ---------- kernels ----------

TEST(KernelTest, RbfSelfSimilarityIsOne) {
  const Kernel k{.type = KernelType::kRbf, .gamma = 0.7};
  const double x[] = {1.0, -2.0};
  EXPECT_DOUBLE_EQ(k(x, x, 2), 1.0);
}

TEST(KernelTest, RbfDecaysWithDistance) {
  const Kernel k{.type = KernelType::kRbf, .gamma = 1.0};
  const double a[] = {0.0};
  const double b[] = {1.0};
  const double c[] = {2.0};
  EXPECT_GT(k(a, b, 1), k(a, c, 1));
  EXPECT_NEAR(k(a, b, 1), std::exp(-1.0), 1e-12);
}

TEST(KernelTest, LinearAndPolynomial) {
  const double a[] = {1.0, 2.0};
  const double b[] = {3.0, 4.0};
  const Kernel lin{.type = KernelType::kLinear};
  EXPECT_DOUBLE_EQ(lin(a, b, 2), 11.0);
  const Kernel poly{.type = KernelType::kPolynomial, .gamma = 1.0,
                    .coef0 = 1.0, .degree = 2};
  EXPECT_DOUBLE_EQ(poly(a, b, 2), 144.0);
}

TEST(KernelTest, GramSymmetricMatchesGram) {
  Rng rng(3);
  linalg::Matrix x(15, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(-1, 1);
  const Kernel k{.type = KernelType::kRbf, .gamma = 0.5};
  EXPECT_LT(k.gram_symmetric(x).max_abs_diff(k.gram(x, x)), 1e-12);
}

TEST(KernelTest, NameParsing) {
  EXPECT_EQ(kernel_type_from_name("rbf"), KernelType::kRbf);
  EXPECT_EQ(kernel_type_from_name("poly"), KernelType::kPolynomial);
  EXPECT_EQ(kernel_type_from_name("linear"), KernelType::kLinear);
  EXPECT_THROW(kernel_type_from_name("laplace"), Error);
}

// ---------- metrics ----------

TEST(MetricsTest, PerfectPredictions) {
  const std::vector<double> y = {1, 2, 3};
  const auto s = score_all(y, y);
  EXPECT_DOUBLE_EQ(s.r2, 1.0);
  EXPECT_DOUBLE_EQ(s.mae, 0.0);
  EXPECT_DOUBLE_EQ(s.mape, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
}

TEST(MetricsTest, HandComputedValues) {
  const std::vector<double> yt = {1, 2, 4};
  const std::vector<double> yp = {2, 2, 2};
  EXPECT_NEAR(mean_absolute_error(yt, yp), 1.0, 1e-12);
  EXPECT_NEAR(mean_absolute_percentage_error(yt, yp),
              (1.0 / 1 + 0.0 / 2 + 2.0 / 4) / 3.0, 1e-12);
  EXPECT_NEAR(root_mean_squared_error(yt, yp), std::sqrt(5.0 / 3.0), 1e-12);
  // SS_res = 5, mean = 7/3, SS_tot = (16+1+25)/9 * 3 = 14/3... compute:
  const double mean = 7.0 / 3.0;
  const double ss_tot = (1 - mean) * (1 - mean) + (2 - mean) * (2 - mean) +
                        (4 - mean) * (4 - mean);
  EXPECT_NEAR(r2_score(yt, yp), 1.0 - 5.0 / ss_tot, 1e-12);
}

TEST(MetricsTest, MeanPredictorHasZeroR2) {
  const std::vector<double> yt = {1, 2, 3, 4};
  const std::vector<double> yp(4, 2.5);
  EXPECT_NEAR(r2_score(yt, yp), 0.0, 1e-12);
}

TEST(MetricsTest, WorseThanMeanIsNegative) {
  EXPECT_LT(r2_score({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(MetricsTest, ErrorsOnBadInput) {
  EXPECT_THROW(r2_score({}, {}), Error);
  EXPECT_THROW(mean_absolute_error({1}, {1, 2}), Error);
  EXPECT_THROW(mean_absolute_percentage_error({0.0}, {1.0}), Error);
}

// ---------- linear / polynomial ----------

TEST(RidgeTest, RecoversLinearFunction) {
  const auto s = make_linear(200);
  RidgeRegression model(1e-8);
  model.fit(s.x, s.y);
  const auto pred = model.predict(s.x);
  EXPECT_GT(r2_score(s.y, pred), 0.999);
}

TEST(RidgeTest, InterceptLearned) {
  // Constant target: prediction should be that constant.
  linalg::Matrix x(10, 1);
  for (std::size_t i = 0; i < 10; ++i) x(i, 0) = static_cast<double>(i);
  const std::vector<double> y(10, 7.5);
  RidgeRegression model(1.0);
  model.fit(x, y);
  EXPECT_NEAR(model.predict_one({3.0}), 7.5, 1e-6);
}

TEST(RidgeTest, SetParamsValidation) {
  RidgeRegression model;
  EXPECT_NO_THROW(model.set_params({{"alpha", 0.5}}));
  EXPECT_THROW(model.set_params({{"alpha", -1.0}}), Error);
  EXPECT_THROW(model.set_params({{"bogus", 1.0}}), Error);
}

TEST(PolynomialTest, MonomialEnumeration) {
  // d=2, degree=2: x, y, x^2, xy, y^2 -> 5 monomials.
  EXPECT_EQ(monomial_exponents(2, 2).size(), 5u);
  // d=4, degree=3: C(7,3)-1 = 34.
  EXPECT_EQ(monomial_exponents(4, 3).size(), 34u);
  EXPECT_THROW(monomial_exponents(0, 2), Error);
  EXPECT_THROW(monomial_exponents(2, 0), Error);
}

TEST(PolynomialTest, ExpansionValues) {
  const linalg::Matrix x = {{2.0, 3.0}};
  const auto exps = monomial_exponents(2, 2);
  const auto ex = polynomial_expand(x, exps);
  // Find the xy term (exponents {1,1}).
  bool found = false;
  for (std::size_t m = 0; m < exps.size(); ++m) {
    if (exps[m] == std::vector<int>{1, 1}) {
      EXPECT_DOUBLE_EQ(ex(0, m), 6.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PolynomialTest, FitsQuadraticExactly) {
  Rng rng(4);
  linalg::Matrix x(100, 2);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(-2, 2);
    x(i, 1) = rng.uniform(-2, 2);
    y[i] = 2.0 * x(i, 0) * x(i, 0) - x(i, 0) * x(i, 1) + 3.0;
  }
  PolynomialRegression model(2, 1e-10);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.9999);
}

TEST(PolynomialTest, DegreeBoundsEnforced) {
  EXPECT_THROW(PolynomialRegression(0), Error);
  EXPECT_THROW(PolynomialRegression(7), Error);
  PolynomialRegression model;
  EXPECT_THROW(model.set_params({{"degree", 9.0}}), Error);
}

// ---------- kernel ridge / GP / BR ----------

TEST(KernelRidgeTest, InterpolatesSmoothFunction) {
  const auto s = make_nonlinear(300);
  KernelRidgeRegression model(Kernel{.type = KernelType::kRbf, .gamma = 0.5},
                              1e-3);
  model.fit(s.x, s.y);
  EXPECT_GT(r2_score(s.y, model.predict(s.x)), 0.99);
}

TEST(KernelRidgeTest, GeneralizesToHeldOut) {
  const auto train = make_nonlinear(400, 0.05, 21);
  const auto test = make_nonlinear(100, 0.0, 22);
  KernelRidgeRegression model(Kernel{.type = KernelType::kRbf, .gamma = 0.5},
                              1e-2);
  model.fit(train.x, train.y);
  EXPECT_GT(r2_score(test.y, model.predict(test.x)), 0.95);
}

TEST(KernelRidgeTest, AlphaMustBePositive) {
  EXPECT_THROW(KernelRidgeRegression({}, 0.0), Error);
  KernelRidgeRegression model;
  EXPECT_THROW(model.set_params({{"alpha", -0.1}}), Error);
  EXPECT_NO_THROW(model.set_params({{"kernel", 1.0}, {"degree", 2.0}}));
  EXPECT_THROW(model.set_params({{"kernel", 5.0}}), Error);
}

TEST(GaussianProcessTest, PredictsTrainingPointsWithLowNoise) {
  const auto s = make_nonlinear(150);
  GaussianProcessRegression gp(0.5, 1e-8, /*optimize=*/false);
  gp.fit(s.x, s.y);
  EXPECT_GT(r2_score(s.y, gp.predict(s.x)), 0.999);
}

TEST(GaussianProcessTest, UncertaintyGrowsAwayFromData) {
  // Train on x in [-1, 1]; std at x=4 must exceed std at x=0.
  linalg::Matrix x(20, 1);
  std::vector<double> y(20);
  for (int i = 0; i < 20; ++i) {
    x(i, 0) = -1.0 + 2.0 * i / 19.0;
    y[i] = std::sin(3.0 * x(i, 0));
  }
  GaussianProcessRegression gp(1.0, 1e-6, /*optimize=*/false);
  gp.fit(x, y);
  linalg::Matrix probes = {{0.0}, {4.0}};
  std::vector<double> mean;
  std::vector<double> std;
  gp.predict_with_std(probes, mean, std);
  EXPECT_LT(std[0], std[1]);
  EXPECT_GE(std[0], 0.0);
}

TEST(GaussianProcessTest, MarginalLikelihoodPicksReasonableGamma) {
  const auto s = make_nonlinear(200, 0.05);
  GaussianProcessRegression gp;  // optimize = true
  gp.fit(s.x, s.y);
  EXPECT_GT(gp.gamma(), 0.0);
  EXPECT_GT(r2_score(s.y, gp.predict(s.x)), 0.95);
}

TEST(GaussianProcessTest, LogTargetHandlesMultiplicativeNoise) {
  // y = exp(x) with lognormal noise: log-target GP should generalize.
  Rng rng(31);
  linalg::Matrix x(120, 1);
  std::vector<double> y(120);
  for (int i = 0; i < 120; ++i) {
    x(i, 0) = rng.uniform(0.0, 4.0);
    y[i] = std::exp(x(i, 0)) * rng.lognormal_median(1.0, 0.05);
  }
  GaussianProcessRegression gp(0.5, 1e-4, true, /*log_target=*/true);
  gp.fit(x, y);
  EXPECT_NEAR(gp.predict_one({2.0}), std::exp(2.0),
              0.15 * std::exp(2.0));
  // Negative targets are invalid in log space.
  std::vector<double> bad = y;
  bad[0] = -1.0;
  GaussianProcessRegression gp2(0.5, 1e-4, false, true);
  EXPECT_THROW(gp2.fit(x, bad), Error);
}

TEST(BayesianRidgeTest, RecoversCoefficientsAndNoise) {
  const auto s = make_linear(400, 0.1);
  BayesianRidgeRegression model;
  model.fit(s.x, s.y);
  EXPECT_GT(r2_score(s.y, model.predict(s.x)), 0.99);
  // Estimated noise precision should be in the right ballpark:
  // alpha ~ 1/var(noise) in *standardized* target units.
  EXPECT_GT(model.alpha(), 1.0);
}

TEST(BayesianRidgeTest, UncertaintyPositive) {
  const auto s = make_linear(100, 0.2);
  BayesianRidgeRegression model;
  model.fit(s.x, s.y);
  std::vector<double> mean;
  std::vector<double> std;
  model.predict_with_std(s.x, mean, std);
  for (double v : std) EXPECT_GT(v, 0.0);
}

// ---------- trees & ensembles ----------

TEST(DecisionTreeTest, LearnsStepFunctionExactly) {
  linalg::Matrix x(40, 1);
  std::vector<double> y(40);
  for (int i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 20 ? 1.0 : 5.0;
  }
  DecisionTreeRegressor tree(TreeOptions{.max_depth = 2});
  tree.fit(x, y);
  EXPECT_DOUBLE_EQ(tree.predict_one({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict_one({30.0}), 5.0);
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTreeTest, DepthZeroMeansUnlimited) {
  const auto s = make_nonlinear(200);
  DecisionTreeRegressor tree(TreeOptions{.max_depth = 0});
  tree.fit(s.x, s.y);
  EXPECT_GT(r2_score(s.y, tree.predict(s.x)), 0.999);  // interpolates
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  const auto s = make_nonlinear(100);
  DecisionTreeRegressor tree(
      TreeOptions{.max_depth = 0, .min_samples_leaf = 25});
  tree.fit(s.x, s.y);
  // With >= 25 samples per leaf and 100 samples, at most 4 leaves.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTreeTest, ConstantTargetIsSingleLeaf) {
  linalg::Matrix x(10, 2, 1.0);
  const std::vector<double> y(10, 3.0);
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_one({1.0, 1.0}), 3.0);
}

TEST(DecisionTreeTest, FitRowsSubset) {
  const auto s = make_linear(50);
  DecisionTreeRegressor tree;
  tree.fit_rows(s.x, s.y, {0, 1, 2, 3, 4});
  EXPECT_TRUE(tree.is_fitted());
  EXPECT_THROW(tree.fit_rows(s.x, s.y, {999}), Error);
  DecisionTreeRegressor empty;
  EXPECT_THROW(empty.fit_rows(s.x, s.y, {}), Error);
}

TEST(DecisionTreeTest, InvalidOptionsThrow) {
  EXPECT_THROW(DecisionTreeRegressor(TreeOptions{.max_depth = -1}), Error);
  EXPECT_THROW(DecisionTreeRegressor(TreeOptions{.min_samples_split = 1}),
               Error);
  EXPECT_THROW(DecisionTreeRegressor(TreeOptions{.min_samples_leaf = 0}),
               Error);
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  const auto train = make_nonlinear(300, 0.4, 41);
  const auto test = make_nonlinear(150, 0.0, 42);
  DecisionTreeRegressor tree(TreeOptions{.max_depth = 0});
  tree.fit(train.x, train.y);
  RandomForestRegressor forest(100, TreeOptions{.max_depth = 0});
  forest.fit(train.x, train.y);
  const double tree_r2 = r2_score(test.y, tree.predict(test.x));
  const double forest_r2 = r2_score(test.y, forest.predict(test.x));
  EXPECT_GT(forest_r2, tree_r2);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  const auto s = make_nonlinear(100, 0.1);
  RandomForestRegressor a(20, {}, true, 7);
  RandomForestRegressor b(20, {}, true, 7);
  a.fit(s.x, s.y);
  b.fit(s.x, s.y);
  const auto pa = a.predict(s.x);
  const auto pb = b.predict(s.x);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(RandomForestTest, TreeCountMatches) {
  const auto s = make_linear(60);
  RandomForestRegressor forest(17);
  forest.fit(s.x, s.y);
  EXPECT_EQ(forest.tree_count(), 17u);
}

TEST(GradientBoostingTest, ImprovesWithStages) {
  const auto train = make_nonlinear(300, 0.1, 51);
  const auto test = make_nonlinear(150, 0.0, 52);
  GradientBoostingRegressor gb(200, 0.1, TreeOptions{.max_depth = 3});
  gb.fit(train.x, train.y);
  const double r2_early = r2_score(test.y, gb.predict_staged(test.x, 10));
  const double r2_late = r2_score(test.y, gb.predict_staged(test.x, 200));
  EXPECT_GT(r2_late, r2_early);
  EXPECT_GT(r2_late, 0.9);
  EXPECT_THROW(gb.predict_staged(test.x, 201), Error);
}

TEST(GradientBoostingTest, SubsampleStillLearns) {
  const auto s = make_nonlinear(300, 0.1, 53);
  GradientBoostingRegressor gb(150, 0.1, TreeOptions{.max_depth = 3}, 0.5);
  gb.fit(s.x, s.y);
  EXPECT_GT(r2_score(s.y, gb.predict(s.x)), 0.85);
}

TEST(GradientBoostingTest, PaperConfiguration) {
  const auto gb = make_paper_gb();
  EXPECT_EQ(gb->name(), "GB");
  // §4.2: 750 estimators, depth 10.
  const auto* cast = dynamic_cast<GradientBoostingRegressor*>(gb.get());
  ASSERT_NE(cast, nullptr);
  EXPECT_DOUBLE_EQ(cast->learning_rate(), 0.1);
}

TEST(GradientBoostingTest, InvalidHyperparamsThrow) {
  EXPECT_THROW(GradientBoostingRegressor(0), Error);
  EXPECT_THROW(GradientBoostingRegressor(10, 0.0), Error);
  EXPECT_THROW(GradientBoostingRegressor(10, 0.1, {}, 1.5), Error);
}

TEST(AdaBoostTest, LearnsNonlinearTarget) {
  const auto train = make_nonlinear(300, 0.05, 61);
  const auto test = make_nonlinear(100, 0.0, 62);
  AdaBoostRegressor model(60, 1.0, AdaBoostLoss::kLinear,
                          TreeOptions{.max_depth = 6});
  model.fit(train.x, train.y);
  EXPECT_GT(r2_score(test.y, model.predict(test.x)), 0.85);
  EXPECT_GE(model.stage_count(), 1u);
}

TEST(AdaBoostTest, LossVariantsAllWork) {
  const auto s = make_nonlinear(150, 0.05, 63);
  for (auto loss : {AdaBoostLoss::kLinear, AdaBoostLoss::kSquare,
                    AdaBoostLoss::kExponential}) {
    AdaBoostRegressor model(30, 1.0, loss, TreeOptions{.max_depth = 5});
    model.fit(s.x, s.y);
    EXPECT_GT(r2_score(s.y, model.predict(s.x)), 0.7);
  }
}

TEST(AdaBoostTest, PerfectLearnerStopsEarly) {
  // Step function learnable exactly by one tree.
  linalg::Matrix x(20, 1);
  std::vector<double> y(20);
  for (int i = 0; i < 20; ++i) {
    x(i, 0) = i;
    y[i] = i < 10 ? 0.0 : 1.0;
  }
  AdaBoostRegressor model(50, 1.0, AdaBoostLoss::kLinear,
                          TreeOptions{.max_depth = 3});
  model.fit(x, y);
  EXPECT_LT(model.stage_count(), 50u);
  EXPECT_DOUBLE_EQ(model.predict_one({15.0}), 1.0);
}

// ---------- SVR ----------

TEST(SvrTest, FitsSmoothFunction) {
  const auto train = make_nonlinear(300, 0.05, 71);
  const auto test = make_nonlinear(100, 0.0, 72);
  SupportVectorRegression svr(10.0, 0.05, 0.5);
  svr.fit(train.x, train.y);
  EXPECT_GT(r2_score(test.y, svr.predict(test.x)), 0.9);
  EXPECT_GT(svr.support_vector_count(), 0u);
  EXPECT_LE(svr.support_vector_count(), 300u);
}

TEST(SvrTest, EpsilonTubeSparsifies) {
  const auto s = make_nonlinear(200, 0.02, 73);
  SupportVectorRegression tight(10.0, 0.01, 0.5);
  SupportVectorRegression loose(10.0, 0.5, 0.5);
  tight.fit(s.x, s.y);
  loose.fit(s.x, s.y);
  EXPECT_LT(loose.support_vector_count(), tight.support_vector_count());
}

TEST(SvrTest, ParameterValidation) {
  EXPECT_THROW(SupportVectorRegression(0.0), Error);
  EXPECT_THROW(SupportVectorRegression(1.0, -0.1), Error);
  EXPECT_THROW(SupportVectorRegression(1.0, 0.1, 0.0), Error);
  SupportVectorRegression svr;
  EXPECT_THROW(svr.set_params({{"C", -5.0}}), Error);
  EXPECT_NO_THROW(svr.set_params({{"max_sweeps", 50.0}, {"tol", 1e-3}}));
}

// ---------- interface contract over the whole zoo ----------

class ZooContract : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooContract, PredictBeforeFitThrows) {
  const auto model = make_model(GetParam());
  EXPECT_FALSE(model->is_fitted());
  EXPECT_THROW(model->predict(linalg::Matrix(1, 3)), Error);
}

TEST_P(ZooContract, FitsLinearDataReasonably) {
  const auto s = make_linear(250, 0.05, 81);
  auto model = make_model(GetParam());
  // Shrink the heavy ensembles for test speed.
  if (GetParam() == "GB") model->set_params({{"n_estimators", 100.0}});
  if (GetParam() == "RF") model->set_params({{"n_estimators", 30.0}});
  model->fit(s.x, s.y);
  EXPECT_TRUE(model->is_fitted());
  const auto pred = model->predict(s.x);
  ASSERT_EQ(pred.size(), s.y.size());
  EXPECT_GT(r2_score(s.y, pred), 0.9) << GetParam();
}

TEST_P(ZooContract, CloneIsUnfittedAndIndependent) {
  const auto s = make_linear(100, 0.0, 82);
  auto model = make_model(GetParam());
  if (GetParam() == "GB") model->set_params({{"n_estimators", 50.0}});
  model->fit(s.x, s.y);
  const auto copy = model->clone();
  EXPECT_FALSE(copy->is_fitted());
  EXPECT_EQ(copy->name(), model->name());
  EXPECT_TRUE(model->is_fitted());  // original untouched
}

TEST_P(ZooContract, UnknownParameterThrows) {
  const auto model = make_model(GetParam());
  EXPECT_THROW(model->set_params({{"definitely_not_a_param", 1.0}}), Error);
}

TEST_P(ZooContract, GridParamsAreAccepted) {
  const auto& entry = zoo_entry(GetParam());
  const auto model = entry.make();
  for (const auto& params : expand_grid(entry.grid)) {
    EXPECT_NO_THROW(model->set_params(params));
  }
}

TEST_P(ZooContract, FitRejectsMismatchedSizes) {
  const auto model = make_model(GetParam());
  linalg::Matrix x(5, 3);
  EXPECT_THROW(model->fit(x, std::vector<double>(4, 1.0)), Error);
}

TEST_P(ZooContract, RefitReplacesOldModel) {
  const auto a = make_linear(120, 0.0, 83);
  auto b = a;
  for (auto& v : b.y) v += 100.0;  // shifted target
  auto model = make_model(GetParam());
  if (GetParam() == "GB") model->set_params({{"n_estimators", 50.0}});
  model->fit(a.x, a.y);
  const double before = model->predict_one(a.x.row(0));
  model->fit(b.x, b.y);
  const double after = model->predict_one(a.x.row(0));
  EXPECT_NEAR(after - before, 100.0, 20.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooContract,
                         ::testing::Values("PR", "KR", "DT", "RF", "GB", "AB",
                                           "GP", "BR", "SVR"),
                         [](const auto& info) { return info.param; });

TEST(ZooTest, CatalogueCompleteAndOrdered) {
  const auto& zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 9u);  // §3.1: nine evaluated model families
  EXPECT_EQ(zoo.front().key, "PR");
  EXPECT_EQ(zoo.back().key, "SVR");
  EXPECT_THROW(zoo_entry("XGB"), Error);
  for (const auto& entry : zoo) {
    EXPECT_FALSE(entry.description.empty());
    EXPECT_FALSE(entry.grid.empty());
  }
}

}  // namespace
}  // namespace ccpred::ml
