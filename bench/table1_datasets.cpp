/// Reproduces paper Table 1: dataset sizes and train/test breakdowns for
/// both machines (Aurora 2329 = 1746 + 583, Frontier 2454 = 1840 + 614).

#include <cstdio>

#include "bench_util.hpp"
#include "ccpred/common/table.hpp"

int main() {
  using namespace ccpred;
  TextTable table({"System", "Total", "Train", "Test", "Problems"},
                  "Table 1: Datasets and size breakdowns");
  for (const std::string machine : {"aurora", "frontier"}) {
    const auto data = bench::load_paper_data(machine);
    table.add_row({machine, std::to_string(data.full.size()),
                   std::to_string(data.split.train.size()),
                   std::to_string(data.split.test.size()),
                   std::to_string(data.full.problems().size())});
  }
  table.print();
  std::printf("\npaper: aurora 2329/1746/583, frontier 2454/1840/614\n");
  return 0;
}
