#pragma once

/// \file noise.hpp
/// Run-to-run measurement-noise model. Supercomputer wall times jitter
/// multiplicatively (OS noise, network traffic from other jobs, GPU clock
/// variation); Frontier traces additionally show occasional contention
/// spikes, which is why the paper found it markedly harder to predict.

#include "ccpred/common/rng.hpp"
#include "ccpred/sim/machine.hpp"

namespace ccpred::sim {

/// Multiplicative noise factor (~1.0) drawn for one run on machine `m`.
/// Lognormal with median 1 and sigma = m.noise_sigma, plus a contention
/// spike (probability m.spike_prob) adding uniform(spike_min, spike_max)
/// extra slowdown.
double noise_factor(const MachineModel& m, Rng& rng);

}  // namespace ccpred::sim
