#pragma once

/// \file sharded_cache.hpp
/// The executor layer's generic sharded memo cache.
///
/// One template replaces the three hand-rolled sharded caches that PRs 1/3/5
/// grew independently: the simulation engine's SimCache (unbounded memo of
/// simulated times), the serving layer's SweepCache (bounded LRU of advisor
/// sweeps) and the ad-hoc single-flight logic in front of them. Each shard
/// is an LruCache under its own mutex; keys are distributed by a mixed hash
/// so shard choice and bucket choice stay uncorrelated. A per-shard
/// in-flight set gives get_or_compute() single-flight coalescing: concurrent
/// callers of the same missing key run the compute function once and share
/// the result.
///
/// Capacity semantics: `per_shard_capacity == 0` means unbounded (memo
/// table, inserts never evict); a positive value bounds each shard with LRU
/// eviction. Shard count defaults to exec::kDefaultShards but any positive
/// count works, which is what the property tests exercise.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ccpred/common/error.hpp"
#include "ccpred/common/lru_cache.hpp"
#include "ccpred/exec/engine_mode.hpp"

namespace ccpred::exec {

/// splitmix64 finalizer: the strong 64-bit mix shared by shard selection,
/// task-seed derivation and the simulation engine's stream seeding.
inline std::uint64_t splitmix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

inline constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

/// Aggregated counters of one sharded cache.
struct MemoCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t coalesced = 0;  ///< get_or_compute calls that waited on a peer
  std::size_t entries = 0;
};

/// Thread-safe sharded memo cache; see the file comment for semantics.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedMemoCache {
 public:
  explicit ShardedMemoCache(std::size_t shards = kDefaultShards,
                            std::size_t per_shard_capacity = 0) {
    CCPRED_CHECK_MSG(shards > 0, "ShardedMemoCache needs at least one shard");
    const std::size_t cap = per_shard_capacity == 0
                                ? std::numeric_limits<std::size_t>::max()
                                : per_shard_capacity;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(cap));
    }
  }

  /// Returns true and fills `*value` on a hit (refreshing LRU recency);
  /// counts the miss otherwise.
  bool lookup(const K& key, V* value) const {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (lock_hook_) lock_hook_();
    auto hit = s.cache.get(key);
    if (!hit) return false;
    *value = std::move(*hit);
    return true;
  }

  /// First writer wins: inserts only when the key is absent (racing writers
  /// compute identical values by construction, so dropping the second write
  /// is safe). Counters are untouched.
  void insert(const K& key, V value) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (lock_hook_) lock_hook_();
    if (!s.cache.contains(key)) s.cache.put(key, std::move(value));
  }

  /// Inserts or overwrites, making the key most recent.
  void put(const K& key, V value) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (lock_hook_) lock_hook_();
    s.cache.put(key, std::move(value));
  }

  /// Single-flight memoization: returns the cached value, or runs `fn` and
  /// caches its result. Concurrent callers of the same missing key coalesce
  /// onto one compute; the losers block until the winner publishes (or
  /// rethrows, in which case one waiter retries the compute).
  ///
  /// Accounting: every call resolves as exactly one of a hit (served from
  /// the cache), a miss (this caller computed), or a coalesced wait (got
  /// the value another caller was already computing) — so
  /// hits + misses + coalesced equals the number of calls.
  template <typename Fn>
  V get_or_compute(const K& key, Fn&& fn) {
    Shard& s = shard_for(key);
    std::unique_lock<std::mutex> lock(s.mutex);
    if (lock_hook_) lock_hook_();
    if (s.inflight.count(key) == 0) {
      if (auto hit = s.cache.get(key)) return std::move(*hit);
      s.inflight.insert(key);  // cold key: the get above counted our miss
    } else {
      ++s.coalesced;
      do {
        s.cv.wait(lock);
      } while (s.inflight.count(key) != 0);
      if (auto hit = s.cache.peek(key)) return std::move(*hit);
      // The compute we waited on threw; take over ownership and retry.
      s.inflight.insert(key);
    }
    lock.unlock();
    V value;
    try {
      value = fn();
    } catch (...) {
      lock.lock();
      s.inflight.erase(key);
      s.cv.notify_all();
      throw;
    }
    lock.lock();
    s.cache.put(key, value);
    s.inflight.erase(key);
    s.cv.notify_all();
    return value;
  }

  /// Erases every entry whose key satisfies `pred` across all shards;
  /// returns how many were dropped (not counted as evictions).
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t erased = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      if (lock_hook_) lock_hook_();
      erased += s->cache.erase_if(pred);
    }
    return erased;
  }

  void clear() {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->cache.clear();
      s->cache.reset_counters();
      s->coalesced = 0;
    }
  }

  MemoCacheStats stats() const {
    MemoCacheStats total;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      const CacheCounters& c = s->cache.counters();
      total.hits += c.hits;
      total.misses += c.misses;
      total.evictions += c.evictions;
      total.coalesced += s->coalesced;
      total.entries += s->cache.size();
    }
    return total;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->cache.size();
    }
    return total;
  }

  std::size_t shard_count() const { return shards_.size(); }

  /// Test/chaos hook invoked while a shard mutex is held on every cache
  /// operation (the SweepCache kCacheShard fault point). Pass an empty
  /// function to disarm. Not thread-safe against concurrent cache use —
  /// arm before sharing the cache.
  void set_lock_hook(std::function<void()> hook) {
    lock_hook_ = std::move(hook);
  }

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : cache(capacity) {}
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    mutable LruCache<K, V, Hash> cache;
    std::unordered_set<K, Hash> inflight;
    mutable std::uint64_t coalesced = 0;
  };

  Shard& shard_for(const K& key) const {
    // A different mix than the bucket hash so shard choice and bucket
    // choice are uncorrelated.
    const std::uint64_t h = splitmix64(
        static_cast<std::uint64_t>(Hash{}(key)) + kGoldenGamma);
    return *shards_[h % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> lock_hook_;
};

}  // namespace ccpred::exec
