#pragma once

/// \file decision_tree.hpp
/// CART regression tree (paper §3.1 "DT"): axis-aligned variance-reduction
/// splits found by exact sorted scans. The shared base learner of the
/// random-forest, gradient-boosting and AdaBoost ensembles.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ccpred/common/rng.hpp"
#include "ccpred/core/regressor.hpp"

namespace ccpred::ml {

/// Hyper-parameters of a CART regression tree.
struct TreeOptions {
  int max_depth = 10;          ///< 0 means unlimited (capped at 64)
  int min_samples_split = 2;   ///< don't split nodes smaller than this
  int min_samples_leaf = 1;    ///< each child must keep at least this many
  int max_features = 0;        ///< features tried per split; 0 = all
  std::uint64_t seed = 1;      ///< feature-subsampling stream
};

/// Flattened tree node; children referenced by index into the node array.
struct TreeNode {
  int feature = -1;        ///< split feature, -1 for leaves
  double threshold = 0.0;  ///< go left if x[feature] <= threshold
  double value = 0.0;      ///< leaf prediction (mean of samples)
  int left = -1;
  int right = -1;

  bool is_leaf() const { return feature < 0; }
};

/// CART regressor. Parameters: "max_depth", "min_samples_split",
/// "min_samples_leaf", "max_features".
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {});

  void fit(const linalg::Matrix& x, const std::vector<double>& y) override;

  /// Fits on a subset of rows (used by the ensembles to avoid copying the
  /// feature matrix for every bootstrap resample).
  void fit_rows(const linalg::Matrix& x, const std::vector<double>& y,
                const std::vector<std::size_t>& rows);

  std::vector<double> predict(const linalg::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  const std::string& name() const override;
  void set_params(const ParamMap& params) override;
  bool is_fitted() const override { return !nodes_.empty(); }

  /// Prediction for one row given as a raw pointer (hot path in ensembles).
  double predict_row(const double* row) const;

  /// Number of nodes in the fitted tree.
  std::size_t node_count() const { return nodes_.size(); }

  /// Impurity-based feature importances: per-feature sum of the variance
  /// reduction its splits achieved, normalized to sum to 1 (all zeros for
  /// a single-leaf tree). Requires fit().
  std::vector<double> feature_importances() const;

  /// Fitted tree structure (flattened nodes) — used by serialization.
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Reconstructs a fitted tree from its parts (serialization loader).
  /// `raw_importance` holds the unnormalized per-feature gain sums.
  static DecisionTreeRegressor from_parts(TreeOptions options,
                                          std::vector<TreeNode> nodes,
                                          std::vector<double> raw_importance);

  /// Unnormalized per-feature gain sums (serialization writer).
  const std::vector<double>& raw_importance() const { return importance_; }
  /// Depth of the fitted tree.
  int depth() const;
  const TreeOptions& options() const { return options_; }

 private:
  struct BuildContext;
  int build(BuildContext& ctx, std::vector<std::size_t>& rows, int depth);

  TreeOptions options_;
  std::vector<TreeNode> nodes_;
  std::vector<double> importance_;  ///< raw per-feature gain sums
};

}  // namespace ccpred::ml
