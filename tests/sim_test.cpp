// Unit and property tests for the CCSD performance simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "ccpred/common/error.hpp"
#include "ccpred/common/rng.hpp"
#include "ccpred/sim/ccsd_simulator.hpp"
#include "ccpred/sim/contraction.hpp"
#include "ccpred/sim/machine.hpp"
#include "ccpred/sim/network.hpp"
#include "ccpred/sim/noise.hpp"
#include "ccpred/sim/scheduler.hpp"
#include "ccpred/sim/tiling.hpp"

namespace ccpred::sim {
namespace {

// ---------- tiling ----------

TEST(TilingTest, ExactDivision) {
  const auto d = decompose(120, 40);
  EXPECT_EQ(d.full_tiles, 3);
  EXPECT_EQ(d.remainder, 0);
  EXPECT_EQ(d.count(), 3);
  EXPECT_EQ(d.extents(), (std::vector<int>{40, 40, 40}));
}

TEST(TilingTest, RaggedRemainder) {
  const auto d = decompose(100, 40);
  EXPECT_EQ(d.full_tiles, 2);
  EXPECT_EQ(d.remainder, 20);
  EXPECT_EQ(d.count(), 3);
  EXPECT_EQ(d.tile_extent(2), 20);
}

TEST(TilingTest, ExtentSmallerThanTile) {
  const auto d = decompose(30, 40);
  EXPECT_EQ(d.full_tiles, 0);
  EXPECT_EQ(d.remainder, 30);
  EXPECT_EQ(d.count(), 1);
}

TEST(TilingTest, ExtentsSumToExtent) {
  for (int extent : {1, 7, 40, 99, 260, 1568}) {
    for (int tile : {1, 40, 73, 100, 2000}) {
      const auto d = decompose(extent, tile);
      int sum = 0;
      for (int e : d.extents()) sum += e;
      EXPECT_EQ(sum, extent) << "extent=" << extent << " tile=" << tile;
    }
  }
}

TEST(TilingTest, InvalidInputsThrow) {
  EXPECT_THROW(decompose(0, 10), Error);
  EXPECT_THROW(decompose(10, 0), Error);
  const auto d = decompose(10, 4);
  EXPECT_THROW(d.tile_extent(3), Error);
}

// ---------- contractions ----------

TEST(ContractionTest, PpLadderFlops) {
  // pp_ladder: 2 * mult * O^2 V^4 with mult = 2.
  const auto& inventory = ccsd_contractions();
  const auto& pp = inventory.front();
  EXPECT_EQ(pp.name, "pp_ladder");
  EXPECT_DOUBLE_EQ(pp.flops(10, 100), 2.0 * 2.0 * 100.0 * 1e8);
}

TEST(ContractionTest, SumExtent) {
  const Contraction c{.name = "t", .out_occ = 2, .out_virt = 2,
                      .sum_occ = 1, .sum_virt = 1, .mult = 1.0};
  EXPECT_DOUBLE_EQ(c.sum_extent(10, 100), 1000.0);
}

TEST(ContractionTest, IterationFlopsDominatedBySextic) {
  // For large V the O^2 V^4 terms dominate: doubling V multiplies total
  // flops by ~16.
  const double f1 = ccsd_iteration_flops(100, 800);
  const double f2 = ccsd_iteration_flops(100, 1600);
  EXPECT_GT(f2 / f1, 12.0);
  EXPECT_LT(f2 / f1, 16.5);
}

TEST(ContractionTest, FlopsPositiveAndIncreasing) {
  EXPECT_GT(ccsd_iteration_flops(44, 260), 0.0);
  EXPECT_GT(ccsd_iteration_flops(100, 700), ccsd_iteration_flops(50, 700));
  EXPECT_THROW(ccsd_contractions().front().flops(0, 10), Error);
}

// ---------- scheduler ----------

TEST(SchedulerTest, SingleWorkerGetsTotalWork) {
  const std::vector<TaskGroup> groups = {{1.0, 4}, {0.5, 2}};
  EXPECT_DOUBLE_EQ(lpt_makespan(groups, 1), 5.0);
}

TEST(SchedulerTest, EvenDivision) {
  const std::vector<TaskGroup> groups = {{2.0, 8}};
  EXPECT_DOUBLE_EQ(lpt_makespan(groups, 4), 4.0);
}

TEST(SchedulerTest, RemainderCreatesImbalance) {
  const std::vector<TaskGroup> groups = {{1.0, 5}};
  EXPECT_DOUBLE_EQ(lpt_makespan(groups, 4), 2.0);
}

TEST(SchedulerTest, MoreWorkersThanTasks) {
  const std::vector<TaskGroup> groups = {{3.0, 2}};
  EXPECT_DOUBLE_EQ(lpt_makespan(groups, 100), 3.0);
}

TEST(SchedulerTest, MixedGroupsRespectLptOrder) {
  // One long task and four short: LPT puts the long task alone.
  const std::vector<TaskGroup> groups = {{4.0, 1}, {1.0, 4}};
  EXPECT_DOUBLE_EQ(lpt_makespan(groups, 2), 4.0);
}

TEST(SchedulerTest, MakespanBounds) {
  // Greedy list scheduling: max(avg, longest) <= makespan <= avg + longest.
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TaskGroup> groups;
    for (int g = 0; g < 5; ++g) {
      groups.push_back(TaskGroup{rng.uniform(0.1, 3.0),
                                 rng.uniform_int(1, 40)});
    }
    const int workers = static_cast<int>(rng.uniform_int(1, 16));
    const double makespan = lpt_makespan(groups, workers);
    const double avg = total_work(groups) / workers;
    double longest = 0.0;
    for (const auto& g : groups) longest = std::max(longest, g.duration_s);
    EXPECT_GE(makespan, avg - 1e-9);
    EXPECT_GE(makespan, longest - 1e-9);
    EXPECT_LE(makespan, avg + longest + 1e-9);
  }
}

TEST(SchedulerTest, EmptyAndInvalid) {
  EXPECT_DOUBLE_EQ(lpt_makespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(lpt_makespan({{1.0, 0}}, 4), 0.0);
  EXPECT_THROW(lpt_makespan({{1.0, 1}}, 0), Error);
  EXPECT_THROW(lpt_makespan({{-1.0, 1}}, 2), Error);
}

TEST(SchedulerTest, TotalHelpers) {
  const std::vector<TaskGroup> groups = {{2.0, 3}, {0.5, 4}};
  EXPECT_DOUBLE_EQ(total_work(groups), 8.0);
  EXPECT_EQ(total_tasks(groups), 7);
}

// ---------- machine & network ----------

TEST(MachineTest, GemmEfficiencyIncreasesWithTile) {
  const auto m = MachineModel::aurora();
  EXPECT_LT(m.gemm_efficiency(40), m.gemm_efficiency(80));
  EXPECT_LT(m.gemm_efficiency(80), m.gemm_efficiency(160));
  EXPECT_LT(m.gemm_efficiency(160), 1.0);
  EXPECT_GT(m.gemm_efficiency(40), 0.0);
  EXPECT_THROW(m.gemm_efficiency(0), Error);
}

TEST(MachineTest, HalfEfficiencyAtHalfEffTile) {
  auto m = MachineModel::aurora();
  m.half_eff_tile = 60.0;
  EXPECT_NEAR(m.gemm_efficiency(60), 0.5, 1e-12);
}

TEST(MachineTest, BandwidthDegradesWithScale) {
  const auto m = MachineModel::frontier();
  EXPECT_GT(m.effective_bw_bytes(2), m.effective_bw_bytes(100));
  EXPECT_GT(m.effective_bw_bytes(100), m.effective_bw_bytes(900));
  EXPECT_THROW(m.effective_bw_bytes(0), Error);
}

TEST(MachineTest, PresetsDiffer) {
  const auto a = MachineModel::aurora();
  const auto f = MachineModel::frontier();
  EXPECT_EQ(a.gpus_per_node, 6);
  EXPECT_EQ(f.gpus_per_node, 8);
  EXPECT_LT(a.noise_sigma, f.noise_sigma);  // Frontier harder to predict
  EXPECT_EQ(a.workers(10), 60);
  EXPECT_EQ(f.workers(10), 80);
}

TEST(MachineTest, MenusNonEmptyAndSorted) {
  for (const auto& m : {MachineModel::aurora(), MachineModel::frontier()}) {
    const auto nodes = m.node_menu();
    const auto tiles = m.tile_menu();
    EXPECT_FALSE(nodes.empty());
    EXPECT_FALSE(tiles.empty());
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
    EXPECT_TRUE(std::is_sorted(tiles.begin(), tiles.end()));
  }
}

TEST(NetworkTest, TransferScalesWithBytes) {
  const auto m = MachineModel::aurora();
  EXPECT_LT(transfer_time_s(m, 1e6, 1, 10), transfer_time_s(m, 1e9, 1, 10));
}

TEST(NetworkTest, SingleNodeIsFree) {
  const auto m = MachineModel::aurora();
  EXPECT_DOUBLE_EQ(transfer_time_s(m, 1e9, 10, 1), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_time_s(m, 1e9, 1), 0.0);
}

TEST(NetworkTest, AllreduceGrowsLogarithmically) {
  const auto m = MachineModel::aurora();
  const double t4 = allreduce_time_s(m, 1e6, 4);
  const double t16 = allreduce_time_s(m, 1e6, 16);
  EXPECT_GT(t16, t4);
  EXPECT_THROW(allreduce_time_s(m, 1e6, 0), Error);
  EXPECT_THROW(transfer_time_s(m, -1.0, 1, 2), Error);
}

// ---------- noise ----------

TEST(NoiseTest, MedianNearOne) {
  const auto m = MachineModel::aurora();
  Rng rng(1);
  std::vector<double> f(10001);
  for (auto& v : f) v = noise_factor(m, rng);
  std::sort(f.begin(), f.end());
  EXPECT_NEAR(f[f.size() / 2], 1.0, 0.02);
  EXPECT_GT(f.front(), 0.5);
}

TEST(NoiseTest, FrontierNoisierThanAurora) {
  Rng ra(2), rf(2);
  const auto ma = MachineModel::aurora();
  const auto mf = MachineModel::frontier();
  auto spread = [](const MachineModel& m, Rng& rng) {
    double s = 0.0;
    for (int i = 0; i < 20000; ++i) {
      const double f = noise_factor(m, rng);
      s += (f - 1.0) * (f - 1.0);
    }
    return s;
  };
  EXPECT_GT(spread(mf, rf), 2.0 * spread(ma, ra));
}

// ---------- simulator ----------

class SimulatorTest : public ::testing::Test {
 protected:
  CcsdSimulator aurora_{MachineModel::aurora()};
  CcsdSimulator frontier_{MachineModel::frontier()};
};

TEST_F(SimulatorTest, DeterministicAcrossCalls) {
  const RunConfig cfg{134, 951, 110, 90};
  EXPECT_DOUBLE_EQ(aurora_.iteration_time(cfg), aurora_.iteration_time(cfg));
}

TEST_F(SimulatorTest, BreakdownSumsToTotal) {
  const RunConfig cfg{99, 718, 50, 80};
  const auto b = aurora_.breakdown(cfg);
  EXPECT_NEAR(b.total_s(), aurora_.iteration_time(cfg), 1e-12);
  EXPECT_GT(b.contraction_s, 0.0);
  EXPECT_GT(b.tasks, 0);
}

TEST_F(SimulatorTest, InfeasibleConfigurationsRejected) {
  EXPECT_FALSE(aurora_.feasible({134, 951, 0, 90}));
  EXPECT_FALSE(aurora_.feasible({0, 951, 10, 90}));
  EXPECT_FALSE(aurora_.feasible({134, 951, 10, 0}));
  // Below the memory floor.
  const int min_n = aurora_.min_nodes(280, 1040);
  if (min_n > 1) {
    EXPECT_FALSE(aurora_.feasible({280, 1040, min_n - 1, 90}));
    EXPECT_THROW(aurora_.iteration_time({280, 1040, min_n - 1, 90}), Error);
  }
  EXPECT_TRUE(aurora_.feasible({280, 1040, min_n, 90}));
}

TEST_F(SimulatorTest, MinNodesGrowsWithProblem) {
  EXPECT_LE(aurora_.min_nodes(44, 260), aurora_.min_nodes(146, 1568));
  EXPECT_THROW(aurora_.min_nodes(0, 10), Error);
}

TEST_F(SimulatorTest, TimeDecreasesFromSmallNodeCounts) {
  // Strong scaling holds in the compute-bound regime.
  const double t10 = aurora_.iteration_time({134, 951, 10, 90});
  const double t50 = aurora_.iteration_time({134, 951, 50, 90});
  const double t200 = aurora_.iteration_time({134, 951, 200, 90});
  EXPECT_GT(t10, t50);
  EXPECT_GT(t50, t200);
}

TEST_F(SimulatorTest, NodeHoursIncreaseWithNodes) {
  // Parallel efficiency < 1: node-hours rise monotonically in nodes.
  double prev = 0.0;
  for (int n : {10, 25, 50, 110, 200, 400}) {
    const RunConfig cfg{134, 951, n, 90};
    const double nh =
        CcsdSimulator::node_hours(cfg, aurora_.iteration_time(cfg));
    EXPECT_GT(nh, prev) << "nodes=" << n;
    prev = nh;
  }
}

TEST_F(SimulatorTest, TileSweetSpotExists) {
  // Extreme tiles are worse than the best mid-range tile at scale.
  const double t40 = aurora_.iteration_time({134, 951, 400, 40});
  const double t180 = aurora_.iteration_time({134, 951, 400, 180});
  double best_mid = 1e300;
  for (int t : {80, 90, 100, 110}) {
    best_mid = std::min(best_mid, aurora_.iteration_time({134, 951, 400, t}));
  }
  EXPECT_LT(best_mid, t40);
  EXPECT_LT(best_mid, t180);
}

TEST_F(SimulatorTest, BiggerProblemsTakeLonger) {
  const double small = aurora_.iteration_time({85, 698, 110, 90});
  const double large = aurora_.iteration_time({280, 1040, 110, 90});
  EXPECT_GT(large, 5.0 * small);
}

TEST_F(SimulatorTest, MeasuredTimeJittersAroundTruth) {
  const RunConfig cfg{116, 840, 110, 90};
  const double truth = aurora_.iteration_time(cfg);
  Rng rng(33);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += aurora_.measured_time(cfg, rng);
  EXPECT_NEAR(sum / n / truth, 1.0, 0.02);
}

TEST_F(SimulatorTest, TaskGroupCountsMatchTileGrid) {
  // pp_ladder at O=100 V=200 tile=50: output tiles = 2^2 * 4^2 = 64,
  // k-chunks = 4^2 = 16 -> 1024 tasks.
  const auto& pp = ccsd_contractions().front();
  const auto groups = aurora_.task_groups(pp, {100, 200, 10, 50});
  EXPECT_EQ(total_tasks(groups), 64 * 16);
}

TEST_F(SimulatorTest, RaggedTilesProduceMultipleGroups) {
  const auto& pp = ccsd_contractions().front();
  const auto exact = aurora_.task_groups(pp, {100, 200, 10, 50});
  const auto ragged = aurora_.task_groups(pp, {99, 201, 10, 50});
  EXPECT_GT(ragged.size(), exact.size());
}

TEST_F(SimulatorTest, MemoryPerNodeShrinksWithNodes) {
  const double m10 = aurora_.memory_per_node_gb({134, 951, 10, 90});
  const double m100 = aurora_.memory_per_node_gb({134, 951, 100, 90});
  EXPECT_GT(m10, m100);
  EXPECT_GT(m100, 0.0);
}

TEST_F(SimulatorTest, MemoryPerNodeGrowsWithTile) {
  EXPECT_LT(aurora_.memory_per_node_gb({134, 951, 100, 60}),
            aurora_.memory_per_node_gb({134, 951, 100, 160}));
  EXPECT_THROW(aurora_.memory_per_node_gb({0, 951, 100, 60}), Error);
}

TEST_F(SimulatorTest, MinNodesConsistentWithMemoryModel) {
  // At the memory floor, the distributed share fits within node memory
  // (buffers excluded, matching min_nodes' inventory).
  const int n = aurora_.min_nodes(280, 1040);
  const double tiny_buffers =
      aurora_.memory_per_node_gb({280, 1040, n, 40});
  EXPECT_LT(tiny_buffers, 1.6 * aurora_.machine().node_mem_gb);
}

TEST_F(SimulatorTest, NodeHoursHelper) {
  EXPECT_DOUBLE_EQ(CcsdSimulator::node_hours({1, 1, 10, 1}, 360.0), 1.0);
}

// Property sweep over the paper's problems: all in-menu configurations are
// finite, positive, and noise stays within a sane multiplicative band.
class SimulatorProblemSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SimulatorProblemSweep, SaneTimesAcrossMenu) {
  const auto [o, v] = GetParam();
  const CcsdSimulator simulator(MachineModel::frontier());
  for (int n : {10, 110, 400}) {
    if (n < simulator.min_nodes(o, v)) continue;
    for (int t : {40, 90, 150}) {
      const RunConfig cfg{o, v, n, t};
      const double time = simulator.iteration_time(cfg);
      EXPECT_TRUE(std::isfinite(time));
      EXPECT_GT(time, 0.0);
      EXPECT_LT(time, 5e4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperProblems, SimulatorProblemSweep,
    ::testing::Values(std::pair{44, 260}, std::pair{49, 663},
                      std::pair{99, 1021}, std::pair{146, 1568},
                      std::pair{280, 1040}, std::pair{345, 791}));

}  // namespace
}  // namespace ccpred::sim
