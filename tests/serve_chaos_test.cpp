// Chaos stress test for the serving layer: N client threads fire a mixed
// STQ/BQ/budget/job/stats workload at a Server while a seeded FaultInjector
// trips artifact-read failures, sweep slowdowns, worker stalls and cache
// shard contention, and a publisher thread keeps bumping the artifact's
// mtime to force hot-reload attempts mid-run. The properties under test:
//
//  * no crash, and every request is answered exactly once;
//  * every non-faulted (ok) answer is bit-identical to a fault-free
//    serial run of the same request — faults change timing, never values;
//  * every faulted answer is structured: code is one of
//    "overloaded" | "deadline" | "internal";
//  * the stats counters add up exactly (requests + shed == issued,
//    errors == non-shed failures, deadline/stale counts match what the
//    clients observed, queue_depth drains to zero).
//
// The whole fault schedule is a pure function of the seed, so a failing
// seed reproduces. CCPRED_CHAOS_FAST=1 shrinks the workload for
// sanitizer CI jobs.
//
// Two online-learning variants ride on the same machinery: a report storm
// with promotion disabled (ingestion faults must never move a served
// answer) and a promotion race with aggressive refit/promote faults
// (liveness, exactly-one answer, monotone model versions per thread).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccpred/core/gradient_boosting.hpp"
#include "ccpred/core/serialize.hpp"
#include "ccpred/serve/fault_injector.hpp"
#include "ccpred/serve/fleet.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/server.hpp"
#include "test_util.hpp"

namespace ccpred::serve {
namespace {

namespace fs = std::filesystem;

bool fast_mode() { return std::getenv("CCPRED_CHAOS_FAST") != nullptr; }
int per_thread_requests() { return fast_mode() ? 12 : 40; }
constexpr int kClientThreads = 4;

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ccpred_chaos_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// One small fitted GB, shared by every server in the file (loads of the
/// same bytes yield bit-identical models, so republishing it mid-run
/// changes versions but never answers).
const ml::GradientBoostingRegressor& campaign_gb() {
  static const auto* model = [] {
    const auto split = test::small_campaign(250);
    auto* m = new ml::GradientBoostingRegressor(15);
    m->fit(split.train.features(), split.train.targets());
    return m;
  }();
  return *model;
}

/// The deterministic mixed workload: request i is the same object in the
/// baseline run and in every chaos run.
Request make_request(int i) {
  static const std::vector<std::pair<int, int>> problems = {
      {44, 260}, {85, 698}, {116, 575}, {134, 951}};
  const auto& [o, v] = problems[static_cast<std::size_t>(i) % problems.size()];
  Request r;
  r.o = o;
  r.v = v;
  r.id = std::to_string(i);
  switch (i % 8) {
    case 0:
    case 1: r.op = Op::kStq; break;
    case 2: r.op = Op::kBq; break;
    case 3:
      r.op = Op::kBudget;
      r.max_node_hours = 100.0;  // generous: feasible for every problem
      break;
    case 4:
      r.op = Op::kJob;
      r.nodes = 64;
      r.tile = 80;
      break;
    case 5:
      r.op = Op::kStq;
      r.deadline_ms = 1;  // expires in the queue or mid-sweep
      break;
    case 6: r.op = Op::kStats; break;
    default: r.op = Op::kStq;
  }
  return r;
}

/// Registry + server over a pre-published artifact.
struct ChaosFixture {
  ChaosFixture(const std::string& name, ServeOptions opt)
      : dir(scratch_dir(name)), registry(dir) {
    ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
    server = std::make_unique<Server>(registry, opt);
  }

  std::string dir;
  ModelRegistry registry;
  std::unique_ptr<Server> server;
};

/// Fault-free serial reference answers, computed once.
const std::vector<Response>& baseline() {
  static const auto* answers = [] {
    ServeOptions opt;
    opt.threads = 1;
    ChaosFixture f("baseline", opt);
    auto* out = new std::vector<Response>();
    const int total = kClientThreads * per_thread_requests();
    for (int i = 0; i < total; ++i) {
      Request req = make_request(i);
      req.deadline_ms = 0;  // deadlines change timing, never values
      out->push_back(f.server->handle(req));
    }
    return out;
  }();
  return *answers;
}

/// ok answers must be bit-identical to the fault-free serial reference.
void expect_matches_baseline(const Response& got, int i) {
  const Response& want = baseline()[static_cast<std::size_t>(i)];
  ASSERT_TRUE(want.ok) << "baseline request " << i << ": " << want.error;
  if (want.has_recommendation) {
    EXPECT_EQ(got.nodes, want.nodes) << "request " << i;
    EXPECT_EQ(got.tile, want.tile) << "request " << i;
    EXPECT_EQ(got.time_s, want.time_s) << "request " << i;
    EXPECT_EQ(got.node_hours, want.node_hours) << "request " << i;
  }
  if (want.has_job) {
    EXPECT_EQ(got.iterations, want.iterations) << "request " << i;
    EXPECT_EQ(got.total_s, want.total_s) << "request " << i;
    EXPECT_EQ(got.node_hours, want.node_hours) << "request " << i;
  }
}

/// Runs the whole workload against `server` from kClientThreads threads,
/// submitting in bursts so the bounded queue actually sheds. Returns the
/// responses indexed by request number.
std::vector<Response> run_clients(Server& server) {
  const int per_thread = per_thread_requests();
  std::vector<Response> responses(
      static_cast<std::size_t>(kClientThreads * per_thread));
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      constexpr int kBurst = 8;
      for (int base = 0; base < per_thread; base += kBurst) {
        std::vector<std::pair<int, std::future<Response>>> burst;
        for (int j = base; j < std::min(base + kBurst, per_thread); ++j) {
          const int i = t * per_thread + j;
          burst.emplace_back(i, server.submit(make_request(i)));
        }
        for (auto& [i, fut] : burst) {
          responses[static_cast<std::size_t>(i)] = fut.get();
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  return responses;
}

void run_chaos_at_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  FaultOptions fopt;
  fopt.seed = seed;
  fopt.artifact_read_failure = 0.5;
  fopt.sweep_delay = 0.5;
  fopt.sweep_delay_ms = 10.0;
  fopt.worker_stall = 0.3;
  fopt.worker_stall_ms = 5.0;
  fopt.cache_shard_hold = 0.3;
  fopt.cache_shard_hold_ms = 2.0;
  FaultInjector fault(fopt);

  ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  opt.max_queue_depth = 6;
  opt.fault_injector = &fault;
  ChaosFixture f("seed_" + std::to_string(seed), opt);
  // The registry is external to the server (shared across servers in the
  // daemon), so its injection point is armed separately.
  f.registry.set_fault_injector(&fault);
  const auto artifact = f.registry.artifact_path("aurora", "gb");

  // Publisher: republish the same bytes with a bumped mtime, forcing
  // hot-reload attempts that the injector fails half the time — the
  // degraded path must keep serving identical (stale) answers.
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    int bumps = 0;
    const int max_bumps = fast_mode() ? 4 : 10;
    while (!done.load() && bumps < max_bumps) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      fs::last_write_time(artifact, fs::last_write_time(artifact) +
                                        std::chrono::seconds(2));
      ++bumps;
    }
  });

  const auto responses = run_clients(*f.server);
  done.store(true);
  publisher.join();

  // Classify what the clients saw.
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t internal = 0;
  std::uint64_t stale = 0;
  for (int i = 0; i < static_cast<int>(responses.size()); ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    if (r.ok) {
      if (r.stale) ++stale;
      expect_matches_baseline(r, i);
    } else if (r.code == "overloaded") {
      ++shed;
    } else if (r.code == "deadline") {
      ++deadline;
    } else {
      // Injected artifact-read failures surface as structured internal
      // errors while the registry has no last-good model yet.
      EXPECT_EQ(r.code, "internal") << "request " << i << ": " << r.error;
      ++internal;
    }
    EXPECT_FALSE(!r.ok && r.error.empty()) << "request " << i;
  }

  // The counters must add up exactly against what the clients observed.
  const auto total = static_cast<std::uint64_t>(responses.size());
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->stats().queue_depth != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.requests + stats.shed, total);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.errors, deadline + internal);
  EXPECT_EQ(stats.deadline_exceeded, deadline);
  EXPECT_EQ(stats.stale_served, stale);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Every injection point was exercised; the delay points fired for sure
  // (hundreds of deterministic draws at p >= 0.3).
  for (const FaultPoint p :
       {FaultPoint::kArtifactRead, FaultPoint::kSweepCompute,
        FaultPoint::kWorkerStall, FaultPoint::kCacheShard}) {
    EXPECT_GT(fault.arrivals(p), 0u) << fault_point_name(p);
  }
  EXPECT_GT(fault.injected(FaultPoint::kWorkerStall), 0u);
  EXPECT_GT(fault.injected(FaultPoint::kCacheShard), 0u);
  EXPECT_EQ(stats.reload_failures,
            fault.injected(FaultPoint::kArtifactRead));
}

TEST(ServeChaosTest, NoFaultConcurrentRunMatchesSerialBaseline) {
  ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  ChaosFixture f("nofault", opt);
  const auto responses = run_clients(*f.server);
  for (int i = 0; i < static_cast<int>(responses.size()); ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    // deadline_ms=1 requests may legitimately expire even without faults.
    if (!r.ok) {
      EXPECT_EQ(r.code, "deadline") << "request " << i << ": " << r.error;
      continue;
    }
    EXPECT_FALSE(r.stale) << "request " << i;
    expect_matches_baseline(r, i);
  }
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.requests, responses.size());
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.stale_served, 0u);
  EXPECT_EQ(stats.reload_failures, 0u);
}

TEST(ServeChaosTest, Seed1) { run_chaos_at_seed(1); }
TEST(ServeChaosTest, Seed7) { run_chaos_at_seed(7); }
TEST(ServeChaosTest, Seed42) { run_chaos_at_seed(42); }

// ------------------------------------------------------------ report storm

/// A feasible configuration + measurement for reporter thread `t`, report
/// `j`. Wall times are all distinct (no two reports dedup against each
/// other) and strictly positive.
Request make_report(int t, int j) {
  Request r;
  r.op = Op::kReport;
  r.o = 44;
  r.v = 260;
  r.nodes = (j % 2 == 0) ? 5 : 15;
  r.tile = 40 + 10 * (j % 8);
  r.id = "rep" + std::to_string(t) + "_" + std::to_string(j);
  r.wall_times = {19.0 + 0.01 * (t * 1000 + j)};
  return r;
}

/// Online learning enabled but promotion disabled (the refit threshold is
/// unreachable): a storm of report ingestions racing the standard mixed
/// workload under report/worker/cache faults must not perturb a single
/// served answer — ingestion rides the hot path, but the serving model
/// never changes.
void run_report_storm_at_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  FaultOptions fopt;
  fopt.seed = seed;
  fopt.report_ingest = 0.5;
  fopt.report_ingest_ms = 2.0;
  fopt.worker_stall = 0.3;
  fopt.worker_stall_ms = 5.0;
  fopt.cache_shard_hold = 0.3;
  fopt.cache_shard_hold_ms = 2.0;
  FaultInjector fault(fopt);

  ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  opt.max_queue_depth = 6;
  opt.fault_injector = &fault;
  opt.online.enabled = true;
  opt.online.min_refit_rows = 1u << 30;  // never refit, never promote
  opt.online.gp_max_rows = 64;           // keep the surrogate cheap
  ChaosFixture f("storm_" + std::to_string(seed), opt);

  const int reports_per_thread = fast_mode() ? 20 : 60;
  constexpr int kReporters = 2;
  std::vector<std::thread> reporters;
  std::atomic<std::uint64_t> report_failures{0};
  for (int t = 0; t < kReporters; ++t) {
    reporters.emplace_back([&, t] {
      for (int j = 0; j < reports_per_thread; ++j) {
        const Response r = f.server->handle(make_report(t, j));
        if (!r.ok || !r.has_report || r.accepted != 1) {
          report_failures.fetch_add(1);
        }
      }
    });
  }
  const auto responses = run_clients(*f.server);
  for (auto& t : reporters) t.join();
  EXPECT_EQ(report_failures.load(), 0u);

  // Not one served answer moved: the storm is observable only in timing
  // and in the online counters.
  std::uint64_t shed = 0;
  for (int i = 0; i < static_cast<int>(responses.size()); ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    if (r.ok) {
      EXPECT_FALSE(r.stale) << "request " << i;
      expect_matches_baseline(r, i);
    } else {
      EXPECT_TRUE(r.code == "overloaded" || r.code == "deadline")
          << "request " << i << ": " << r.code << " " << r.error;
      shed += r.code == "overloaded";
    }
  }

  const std::uint64_t total_reports =
      static_cast<std::uint64_t>(kReporters) * reports_per_thread;
  const auto c = f.server->online()->counters();
  EXPECT_EQ(c.reports, total_reports);
  EXPECT_EQ(c.measurements, total_reports);
  EXPECT_EQ(c.duplicates, 0u);
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_EQ(c.buffered, total_reports);
  EXPECT_EQ(c.refits, 0u);
  EXPECT_EQ(c.promotions, 0u);
  EXPECT_EQ(c.cache_invalidated, 0u);
  EXPECT_GT(c.incremental_updates, 0u);  // the GP surrogate grew on-line

  // The gauge decrements just after each future resolves; poll briefly.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->stats().queue_depth != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.requests + stats.shed,
            static_cast<std::uint64_t>(responses.size()) + total_reports);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.verb_latency[static_cast<std::size_t>(Op::kReport)].count,
            total_reports);

  // Every ingest consulted the report injection point; half fired.
  EXPECT_EQ(fault.arrivals(FaultPoint::kReportIngest), total_reports);
  EXPECT_GT(fault.injected(FaultPoint::kReportIngest), 0u);
}

TEST(ServeChaosTest, ReportStormSeed1) { run_report_storm_at_seed(1); }
TEST(ServeChaosTest, ReportStormSeed7) { run_report_storm_at_seed(7); }
TEST(ServeChaosTest, ReportStormSeed42) { run_report_storm_at_seed(42); }

// --------------------------------------------------------- promotion race

/// Aggressive refit/promotion churn under stall + artifact-read faults:
/// reporters feed a shifted regime that trips drift almost immediately
/// while clients keep asking STQ. Answers legitimately change when a
/// candidate wins, so there is no bit-identity here — the properties are
/// liveness, exactly-one answer per request, per-thread monotone model
/// versions and self-consistent counters.
void run_promotion_race_at_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  FaultOptions fopt;
  fopt.seed = seed;
  fopt.artifact_read_failure = 0.3;
  fopt.worker_stall = 0.3;
  fopt.worker_stall_ms = 2.0;
  fopt.refit_stall = 0.5;
  fopt.refit_stall_ms = 10.0;
  fopt.promotion_race = 0.5;
  fopt.promotion_race_ms = 5.0;
  FaultInjector fault(fopt);

  const auto dir = scratch_dir("race_" + std::to_string(seed));
  RegistryOptions ropt;
  ropt.fallback_rows = 160;
  ropt.gb_estimators = 60;
  ModelRegistry registry(dir, ropt);
  ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
  registry.set_fault_injector(&fault);

  ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  opt.fault_injector = &fault;
  opt.online.enabled = true;
  opt.online.synchronous = false;  // refits race the request threads
  opt.online.drift.window = 16;
  opt.online.drift.min_samples = 4;
  opt.online.drift.mape_threshold = 0.05;
  opt.online.min_refit_rows = 8;
  opt.online.holdout = 4;
  opt.online.gp_max_rows = 64;
  Server server(registry, opt);

  const int reports_per_thread = fast_mode() ? 24 : 60;
  const int queries_per_thread = fast_mode() ? 24 : 60;
  constexpr int kReporters = 2;
  constexpr int kQueriers = 2;
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReporters; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < reports_per_thread; ++j) {
        const Response r = server.handle(make_report(t, j));
        // An ingest that draws an injected artifact-read failure before
        // any model loaded legitimately errors; it must still come back
        // as a structured response, never vanish or crash.
        if (r.ok ? !r.has_report : r.code != "internal") bad.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kQueriers; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t last_version = 0;
      for (int j = 0; j < queries_per_thread; ++j) {
        Request q;
        q.op = (j % 3 == 2) ? Op::kBq : Op::kStq;
        q.o = 44 + 41 * (j % 2);  // alternate two problem sizes
        q.v = 260 + 438 * (j % 2);
        q.id = "q" + std::to_string(t) + "_" + std::to_string(j);
        const Response r = server.handle(q);
        if (!r.ok) {
          // Same as above: only a structured first-load failure is legal.
          if (r.code != "internal") bad.fetch_add(1);
        } else {
          // Sequential requests from one thread can never see the model
          // version move backwards: loads are serialized and versions
          // only grow.
          EXPECT_GE(r.model_version, last_version)
              << "thread " << t << " request " << j;
          last_version = r.model_version;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.online()->wait_idle();
  EXPECT_EQ(bad.load(), 0u);

  // Counter consistency: every judged candidate was either promoted or
  // rejected; every promotion invalidated at least zero shards; a refit
  // that died on an injected artifact read judged nothing.
  const auto c = server.online()->counters();
  EXPECT_GE(c.refits, 1u);
  EXPECT_LE(c.shadow_evals, c.refits);
  EXPECT_LE(c.promotions + c.promotions_rejected, c.shadow_evals);
  EXPECT_EQ(c.reports,
            static_cast<std::uint64_t>(kReporters) * reports_per_thread);
  EXPECT_GT(fault.arrivals(FaultPoint::kRefitStall), 0u);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kReporters) * reports_per_thread +
                static_cast<std::uint64_t>(kQueriers) * queries_per_thread);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.online.promotions, c.promotions);
}

TEST(ServeChaosTest, PromotionRaceSeed1) { run_promotion_race_at_seed(1); }
TEST(ServeChaosTest, PromotionRaceSeed7) { run_promotion_race_at_seed(7); }
TEST(ServeChaosTest, PromotionRaceSeed42) { run_promotion_race_at_seed(42); }

// ------------------------------------------------------------- shard chaos
//
// Whole-shard death: the same mixed workload fired at a 3-shard
// ShardFleet while the injector's kShardKill / kShardRestart points tear
// shards down mid-traffic and revive them. Properties: every request is
// answered exactly once (a double completion would double-set a promise
// and throw), every ok answer is bit-identical to the single-server
// fault-free baseline (failover changes WHICH shard computes, never the
// bytes), at least one shard survives, and after restarting the casualties
// a serial re-run over rejoined empty-cache shards still matches the
// baseline exactly.

void run_shard_chaos_at_seed(std::uint64_t seed) {
  SCOPED_TRACE("shard seed " + std::to_string(seed));
  FaultOptions fopt;
  fopt.seed = seed;
  fopt.shard_kill = 0.05;
  fopt.shard_restart = 0.10;
  FaultInjector fault(fopt);

  FleetOptions opt;
  opt.shards = 3;
  opt.serve.threads = 2;
  opt.serve.cache_capacity = 64;
  opt.fault_injector = &fault;
  const std::string dir = scratch_dir("shard_seed_" + std::to_string(seed));
  ModelRegistry registry(dir);
  ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
  ShardFleet fleet(registry, opt);

  const int per_thread = per_thread_requests();
  const int total = kClientThreads * per_thread;
  std::vector<Response> responses(static_cast<std::size_t>(total));
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int j = 0; j < per_thread; ++j) {
        const int i = t * per_thread + j;
        Request req = make_request(i);
        req.deadline_ms = 0;  // timing faults are not under test here
        // Exactly-once is load-bearing: if the fleet ever completed a
        // request twice the second set_value would throw right here.
        std::promise<Response> promise;
        auto future = promise.get_future();
        fleet.submit_with(std::move(req), [&promise](Response r) {
          promise.set_value(std::move(r));
        });
        responses[static_cast<std::size_t>(i)] = future.get();
      }
    });
  }
  for (auto& c : clients) c.join();

  std::uint64_t unavailable = 0;
  for (int i = 0; i < total; ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    if (r.ok) {
      expect_matches_baseline(r, i);
    } else {
      // The only legitimate failure is the (extreme-interleaving) window
      // where the preference walk observed every slot dead at once.
      EXPECT_EQ(r.code, "unavailable") << "request " << i << ": " << r.error;
      ++unavailable;
    }
  }

  const FleetCounters during = fleet.counters();
  EXPECT_GE(during.alive, 1u) << "the last live shard must never die";
  EXPECT_GT(fault.injected(FaultPoint::kShardKill), 0u)
      << "seed never exercised a shard kill — raise shard_kill";
  // fire() counts every verdict; kill_shard refuses dead and last-live
  // targets, so actual deaths are bounded by (and usually below) it.
  EXPECT_GT(during.kills, 0u);
  EXPECT_LE(during.kills, fault.injected(FaultPoint::kShardKill));
  EXPECT_LE(during.restarts, fault.injected(FaultPoint::kShardRestart));
  EXPECT_EQ(during.unrouteable, unavailable);
  EXPECT_EQ(during.shards, 3u);

  // Revive the casualties: rejoined shards start with an EMPTY cache but
  // must produce bit-identical answers. Chaos stays armed during the
  // re-run (more kills may fire), which is the point — failover and
  // rejoin must be invisible in the values.
  for (std::size_t i = 0; i < fleet.shard_count(); ++i) {
    if (!fleet.alive(i)) EXPECT_TRUE(fleet.restart_shard(i));
  }
  EXPECT_EQ(fleet.counters().alive, 3u);

  for (int i = 0; i < total; ++i) {
    Request req = make_request(i);
    req.deadline_ms = 0;
    const Response r = fleet.handle(req);
    if (!r.ok) {
      EXPECT_EQ(r.code, "unavailable") << "request " << i << ": " << r.error;
      continue;
    }
    expect_matches_baseline(r, i);
  }
}

TEST(ServeChaosTest, ShardStormSeed1) { run_shard_chaos_at_seed(1); }
TEST(ServeChaosTest, ShardStormSeed7) { run_shard_chaos_at_seed(7); }
TEST(ServeChaosTest, ShardStormSeed42) { run_shard_chaos_at_seed(42); }

// ------------------------------------------------------------- batch storm
//
// Dynamic batching under fire: half the client threads route through the
// BatchScheduler (submit_with) while the other half stay on the serial
// handle() path, sharing the cache and single-flight map, with worker
// stalls and sweep delays injected. Properties: every request is answered
// exactly once (a double completion double-sets a promise and throws),
// every answer is bit-identical to the unbatched fault-free serial
// baseline, and the scheduler's counters reconcile exactly with what the
// clients pushed through it.

void run_batch_storm_at_seed(std::uint64_t seed) {
  SCOPED_TRACE("batch seed " + std::to_string(seed));
  FaultOptions fopt;
  fopt.seed = seed;
  fopt.worker_stall = 0.3;
  fopt.worker_stall_ms = 5.0;
  fopt.sweep_delay = 0.3;
  fopt.sweep_delay_ms = 5.0;
  FaultInjector fault(fopt);

  ServeOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 64;
  opt.fault_injector = &fault;
  opt.batch.enabled = true;
  opt.batch.max_batch = 16;
  opt.batch.max_hold_us = 1000;
  ChaosFixture f("batch_seed_" + std::to_string(seed), opt);

  const int per_thread = per_thread_requests();
  const int total = kClientThreads * per_thread;
  std::vector<Response> responses(static_cast<std::size_t>(total));
  std::atomic<std::uint64_t> scheduled{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int j = 0; j < per_thread; ++j) {
        const int i = t * per_thread + j;
        Request req = make_request(i);
        req.deadline_ms = 0;  // hold-vs-deadline is covered in serve_test
        if (t % 2 == 0) {
          // Batched client. Exactly-once is load-bearing: if a flush ever
          // answered a member twice the second set_value would throw.
          std::promise<Response> promise;
          auto future = promise.get_future();
          f.server->submit_with(std::move(req), [&promise](Response r) {
            promise.set_value(std::move(r));
          });
          scheduled.fetch_add(1, std::memory_order_relaxed);
          responses[static_cast<std::size_t>(i)] = future.get();
        } else {
          // Unbatched client on the serial path, concurrently.
          responses[static_cast<std::size_t>(i)] = f.server->handle(req);
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  for (int i = 0; i < total; ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    ASSERT_TRUE(r.ok) << "request " << i << ": " << r.error;
    expect_matches_baseline(r, i);
  }

  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->stats().queue_depth != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(total));
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Scheduler accounting: every request pushed through the batcher came
  // out in exactly one dispatch — a >=2 flush or a bypass, never both.
  EXPECT_EQ(stats.batched_requests + stats.batch_bypass, scheduled.load());
  if (stats.batch_flushes > 0) {
    EXPECT_GE(stats.batch_size_p95, stats.batch_size_p50);
    EXPECT_GE(stats.batch_size_p50, 1.0);
  }
  EXPECT_GT(fault.injected(FaultPoint::kWorkerStall), 0u);
  // Only a handful of sweep-compute arrivals happen (one per unique
  // problem), so whether the delay fires is seed luck — just require the
  // injection point was reached.
  EXPECT_GT(fault.arrivals(FaultPoint::kSweepCompute), 0u);
}

TEST(ServeChaosTest, BatchStormSeed1) { run_batch_storm_at_seed(1); }
TEST(ServeChaosTest, BatchStormSeed7) { run_batch_storm_at_seed(7); }
TEST(ServeChaosTest, BatchStormSeed42) { run_batch_storm_at_seed(42); }

// Batching on every shard of a fleet while kShardKill / kShardRestart tear
// shards down mid-traffic: failover may change WHICH shard's scheduler
// coalesces a request, never the bytes of its answer.

void run_fleet_batch_storm_at_seed(std::uint64_t seed) {
  SCOPED_TRACE("fleet batch seed " + std::to_string(seed));
  FaultOptions fopt;
  fopt.seed = seed;
  fopt.shard_kill = 0.05;
  fopt.shard_restart = 0.10;
  fopt.worker_stall = 0.2;
  fopt.worker_stall_ms = 2.0;
  FaultInjector fault(fopt);

  FleetOptions opt;
  opt.shards = 3;
  opt.serve.threads = 2;
  opt.serve.cache_capacity = 64;
  opt.serve.batch.enabled = true;
  opt.serve.batch.max_batch = 16;
  opt.serve.batch.max_hold_us = 500;
  opt.fault_injector = &fault;
  const std::string dir =
      scratch_dir("fleet_batch_seed_" + std::to_string(seed));
  ModelRegistry registry(dir);
  ml::save_gb(campaign_gb(), registry.artifact_path("aurora", "gb"));
  ShardFleet fleet(registry, opt);

  const int per_thread = per_thread_requests();
  const int total = kClientThreads * per_thread;
  std::vector<Response> responses(static_cast<std::size_t>(total));
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int j = 0; j < per_thread; ++j) {
        const int i = t * per_thread + j;
        Request req = make_request(i);
        req.deadline_ms = 0;
        std::promise<Response> promise;
        auto future = promise.get_future();
        fleet.submit_with(std::move(req), [&promise](Response r) {
          promise.set_value(std::move(r));
        });
        responses[static_cast<std::size_t>(i)] = future.get();
      }
    });
  }
  for (auto& c : clients) c.join();

  std::uint64_t unavailable = 0;
  for (int i = 0; i < total; ++i) {
    const Response& r = responses[static_cast<std::size_t>(i)];
    if (r.ok) {
      expect_matches_baseline(r, i);
    } else {
      EXPECT_EQ(r.code, "unavailable") << "request " << i << ": " << r.error;
      ++unavailable;
    }
  }

  const FleetCounters during = fleet.counters();
  EXPECT_GE(during.alive, 1u);
  EXPECT_EQ(during.unrouteable, unavailable);

  // The aggregated stats fold every surviving shard's scheduler counters;
  // a killed shard takes its counts with it, so the sum is a lower bound
  // that must stay consistent with itself and non-trivial.
  const ServerStats agg = fleet.aggregated_stats();
  EXPECT_GE(agg.batched_requests + agg.batch_bypass, 1u);
  EXPECT_LE(agg.batched_requests + agg.batch_bypass, agg.requests);
  if (agg.batch_flushes + agg.batch_bypass > 0) {
    EXPECT_GE(agg.batch_size_p95, agg.batch_size_p50);
  }
}

TEST(ServeChaosTest, FleetBatchStormSeed1) { run_fleet_batch_storm_at_seed(1); }
TEST(ServeChaosTest, FleetBatchStormSeed7) { run_fleet_batch_storm_at_seed(7); }
TEST(ServeChaosTest, FleetBatchStormSeed42) {
  run_fleet_batch_storm_at_seed(42);
}

}  // namespace
}  // namespace ccpred::serve
