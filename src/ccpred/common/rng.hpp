#pragma once

/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// Every stochastic component in ccpred (simulator noise, bootstrap
/// resampling, data splits, random search, ...) draws from an explicit Rng
/// instance so that all experiments are reproducible from a single seed.
/// Rng::split() derives statistically independent child streams, which lets
/// parallel workers (thread pool tasks) consume randomness without
/// contention while keeping results independent of scheduling order.

#include <cstdint>
#include <vector>

namespace ccpred {

/// xoshiro256** generator seeded via splitmix64; 2^256-1 period,
/// passes BigCrush, and much faster than std::mt19937_64.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` through splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Derives an independent child stream; advances this stream.
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal such that the *median* of the distribution is `median`
  /// and the underlying normal has standard deviation `sigma`.
  double lognormal_median(double median, double sigma);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (k <= n),
  /// in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// n indices drawn uniformly with replacement from [0, n) —
  /// a bootstrap resample.
  std::vector<std::size_t> bootstrap_indices(std::size_t n);

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ccpred
