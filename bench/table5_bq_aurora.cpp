/// Reproduces paper Table 5: Aurora shortest node-hours (BQ) results.

#include "stq_bq_tables.hpp"

int main() {
  return ccpred::bench::run_optimal_table(
      "aurora", ccpred::guide::Objective::kNodeHours,
      "Table 5: Aurora shortest node hours results");
}
