#include "ccpred/core/linear.hpp"

#include "ccpred/common/error.hpp"
#include "ccpred/linalg/blas.hpp"
#include "ccpred/linalg/solve.hpp"

namespace ccpred::ml {

RidgeRegression::RidgeRegression(double alpha) : alpha_(alpha) {
  CCPRED_CHECK_MSG(alpha >= 0.0, "ridge alpha must be >= 0");
}

void RidgeRegression::fit(const linalg::Matrix& x,
                          const std::vector<double>& y) {
  CCPRED_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  CCPRED_CHECK_MSG(x.rows() > 0, "cannot fit on empty data");
  const linalg::Matrix z = scaler_.fit_transform(x);
  // Center the target so no intercept column is needed.
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  std::vector<double> yc(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) yc[i] = y[i] - mean_y;
  coef_ = linalg::ridge_solve(z, yc, alpha_);
  intercept_ = mean_y;
  fitted_ = true;
}

std::vector<double> RidgeRegression::predict(const linalg::Matrix& x) const {
  CCPRED_CHECK_MSG(fitted_, "RidgeRegression::predict before fit");
  const linalg::Matrix z = scaler_.transform(x);
  auto out = linalg::gemv(z, coef_);
  for (auto& v : out) v += intercept_;
  return out;
}

std::unique_ptr<Regressor> RidgeRegression::clone() const {
  return std::make_unique<RidgeRegression>(alpha_);
}

const std::string& RidgeRegression::name() const {
  static const std::string n = "Ridge";
  return n;
}

void RidgeRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "alpha") {
      CCPRED_CHECK_MSG(value >= 0.0, "ridge alpha must be >= 0");
      alpha_ = value;
    } else {
      throw Error("RidgeRegression: unknown parameter '" + key + "'");
    }
  }
}

}  // namespace ccpred::ml
