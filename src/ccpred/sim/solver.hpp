#pragma once

/// \file solver.hpp
/// Job-level CCSD cost model: the paper predicts the cost of one iteration
/// (performance per iteration is stable — §4.1); a user's allocation
/// request is for the whole job. This module composes the per-iteration
/// simulator with a DIIS-accelerated convergence model and the one-time
/// setup costs (integral transformation) to estimate complete jobs.

#include "ccpred/sim/ccsd_simulator.hpp"

namespace ccpred::sim {

/// Convergence behaviour of the CCSD amplitude equations under DIIS.
struct ConvergenceModel {
  double initial_residual = 1.0;  ///< residual norm after the MP2 guess
  /// Per-iteration residual contraction factor; DIIS-accelerated CCSD on
  /// well-behaved closed-shell systems contracts by ~3-10x per iteration.
  double decay = 0.3;
  double tolerance = 1e-7;  ///< convergence threshold on the residual
  int max_iterations = 100; ///< safety cap

  /// Iterations needed to reach the tolerance (at least 1).
  int iterations_to_converge() const;
};

/// A whole-job estimate.
struct JobEstimate {
  int iterations = 0;       ///< CCSD iterations executed
  double setup_s = 0.0;     ///< integral transformation / Cholesky setup
  double iteration_s = 0.0; ///< per-iteration wall time (noise-free)
  double total_s = 0.0;     ///< setup + iterations * iteration time
  double node_hours = 0.0;  ///< total cost of the job
};

/// Estimates a complete CCSD job (setup + converged iterations) for one
/// configuration. Deterministic; apply noise per-iteration via
/// CcsdSimulator::measured_time if a sampled trajectory is needed.
JobEstimate estimate_job(const CcsdSimulator& simulator, const RunConfig& cfg,
                         const ConvergenceModel& convergence = {});

/// One-time setup wall time: the O(N^4) Cholesky/integral transformation
/// distributed over the job's GPUs.
double setup_time_s(const CcsdSimulator& simulator, const RunConfig& cfg);

}  // namespace ccpred::sim
