#pragma once

/// \file server.hpp
/// The recommendation server: a thread-safe request handler over a model
/// registry, a sharded sweep cache, and a worker pool. Three properties
/// matter for a guidance service and are tested explicitly:
///
///  * determinism — any interleaving of requests produces the same answers
///    as serial execution against the same artifacts (sweeps are pure
///    functions of (machine, model-version, O, V));
///  * single-flight sweeps — concurrent requests for the same uncached
///    (machine, O, V) run ONE enumerate+predict sweep; the rest block on
///    its future (`coalesced` counts them);
///  * cheap repeats — a cached sweep answers STQ, BQ and budget questions
///    without touching the model at all.

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ccpred/common/latency_histogram.hpp"
#include "ccpred/common/thread_pool.hpp"
#include "ccpred/serve/model_registry.hpp"
#include "ccpred/serve/protocol.hpp"
#include "ccpred/serve/stats.hpp"
#include "ccpred/serve/sweep_cache.hpp"

namespace ccpred::serve {

/// Server construction knobs.
struct ServeOptions {
  std::size_t threads = 0;        ///< worker pool size; 0 = hardware
  std::size_t cache_capacity = 256;  ///< sweeps kept across all shards
  std::size_t cache_shards = 8;
  std::string default_machine = "aurora";  ///< when a request omits it
  std::string default_model = "gb";        ///< when a request omits it
};

/// See file comment. The registry must outlive the server.
class Server {
 public:
  explicit Server(ModelRegistry& registry, ServeOptions options = {});

  /// Handles one request synchronously. Thread-safe; never throws —
  /// failures come back as ok=false responses.
  Response handle(const Request& request);

  /// Enqueues a request onto the worker pool.
  std::future<Response> submit(Request request);

  /// Point-in-time statistics snapshot.
  ServerStats stats() const;

  const ServeOptions& options() const { return options_; }
  const SweepCache& cache() const { return cache_; }

 private:
  Response dispatch(const Request& request);

  /// The sweep for (machine, kind, o, v): cache -> in-flight future ->
  /// compute. Sets `cache_hit`; returns the model version used.
  SweepPtr sweep_for(const std::string& machine, const std::string& kind,
                     int o, int v, std::uint64_t* model_version,
                     bool* cache_hit);

  /// Lazily-built simulator per machine (stable address for Advisor refs).
  const sim::CcsdSimulator& simulator(const std::string& machine);

  ModelRegistry& registry_;
  ServeOptions options_;
  SweepCache cache_;
  ThreadPool pool_;
  LatencyHistogram latency_;

  std::mutex simulators_mutex_;
  std::map<std::string, sim::CcsdSimulator> simulators_;

  std::mutex inflight_mutex_;
  std::unordered_map<SweepKey, std::shared_future<SweepPtr>, SweepKeyHash>
      inflight_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> sweeps_computed_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::size_t> queue_depth_{0};
};

}  // namespace ccpred::serve
