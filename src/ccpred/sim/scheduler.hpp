#pragma once

/// \file scheduler.hpp
/// Deterministic list scheduling of tile tasks onto GPU workers.
///
/// TAMM's task-based runtime hands ready contraction tasks to idle GPUs;
/// for fixed-duration independent tasks this behaves like greedy
/// longest-processing-time (LPT) list scheduling. Because a tiled
/// contraction produces at most 2^k distinct task durations (full vs.
/// ragged tile per dimension), tasks arrive as (duration, count) groups
/// and the scheduler exploits that: a group with count >= workers loads
/// every worker evenly, and only remainders need the least-loaded search.

#include <cstdint>
#include <vector>

namespace ccpred::sim {

/// A set of identical tasks.
struct TaskGroup {
  double duration_s = 0.0;
  std::int64_t count = 0;
};

/// Greedy LPT makespan of the grouped task set on `workers` identical
/// workers. Groups are processed in descending duration; within a group,
/// whole multiples of `workers` are spread evenly and the remainder goes
/// to the currently least-loaded workers. Returns the maximum worker load.
double lpt_makespan(std::vector<TaskGroup> groups, int workers);

/// Sum of duration*count over all groups (aggregate work).
double total_work(const std::vector<TaskGroup>& groups);

/// Total number of tasks.
std::int64_t total_tasks(const std::vector<TaskGroup>& groups);

}  // namespace ccpred::sim
