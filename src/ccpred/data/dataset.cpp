#include "ccpred/data/dataset.hpp"

#include "ccpred/common/error.hpp"

namespace ccpred::data {

void Dataset::add(const sim::RunConfig& cfg, double time_s) {
  CCPRED_CHECK_MSG(time_s > 0.0, "wall time must be positive");
  CCPRED_CHECK_MSG(cfg.o > 0 && cfg.v > 0 && cfg.nodes > 0 && cfg.tile > 0,
                   "run configuration fields must be positive");
  configs_.push_back(cfg);
  y_.push_back(time_s);
}

linalg::Matrix Dataset::features() const {
  linalg::Matrix x(size(), kNumFeatures);
  for (std::size_t i = 0; i < size(); ++i) {
    x(i, kFeatO) = configs_[i].o;
    x(i, kFeatV) = configs_[i].v;
    x(i, kFeatNodes) = configs_[i].nodes;
    x(i, kFeatTile) = configs_[i].tile;
  }
  return x;
}

const sim::RunConfig& Dataset::config(std::size_t i) const {
  CCPRED_CHECK(i < size());
  return configs_[i];
}

double Dataset::target(std::size_t i) const {
  CCPRED_CHECK(i < size());
  return y_[i];
}

double Dataset::node_hours(std::size_t i) const {
  return sim::CcsdSimulator::node_hours(config(i), target(i));
}

Dataset Dataset::select(const std::vector<std::size_t>& indices) const {
  Dataset out;
  for (auto i : indices) out.add(config(i), target(i));
  return out;
}

std::map<std::pair<int, int>, std::vector<std::size_t>>
Dataset::group_by_problem() const {
  std::map<std::pair<int, int>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < size(); ++i) {
    groups[{configs_[i].o, configs_[i].v}].push_back(i);
  }
  return groups;
}

std::vector<std::pair<int, int>> Dataset::problems() const {
  std::vector<std::pair<int, int>> out;
  for (const auto& [key, rows] : group_by_problem()) out.push_back(key);
  return out;
}

const std::vector<std::string>& Dataset::feature_names() {
  static const std::vector<std::string> names = {"O", "V", "nodes",
                                                 "tilesize"};
  return names;
}

CsvTable Dataset::to_csv() const {
  CsvTable t;
  t.header = {"O", "V", "nodes", "tilesize", "time_s"};
  t.rows.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    const auto& c = configs_[i];
    t.rows.push_back({static_cast<double>(c.o), static_cast<double>(c.v),
                      static_cast<double>(c.nodes),
                      static_cast<double>(c.tile), y_[i]});
  }
  return t;
}

Dataset Dataset::from_csv(const CsvTable& table) {
  Dataset d;
  const auto co = table.column("O");
  const auto cv = table.column("V");
  const auto cn = table.column("nodes");
  const auto ct = table.column("tilesize");
  const auto cy = table.column("time_s");
  for (const auto& row : table.rows) {
    d.add(sim::RunConfig{.o = static_cast<int>(row[co]),
                         .v = static_cast<int>(row[cv]),
                         .nodes = static_cast<int>(row[cn]),
                         .tile = static_cast<int>(row[ct])},
          row[cy]);
  }
  return d;
}

}  // namespace ccpred::data
